/**
 * @file
 * Memory disambiguation ablation (paper Section 2).
 *
 * "The DAG construction algorithm may have to treat memory as a
 * single resource, which leads to serialization of all loads and
 * stores.  It has been observed that if two memory references use the
 * same base register but different offsets, they cannot refer to the
 * same location. ... Warren noted that storage classes (e.g., heap
 * vs. stack) typically do not overlap."
 *
 * Sweeps the four disambiguation policies over the FP workloads and
 * reports arc counts, construction time, and scheduled cycles —
 * quantifying how much each step of Section 2's ladder buys.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Memory disambiguation ladder (paper Section 2)");

    BenchReporter rep("alias-policies");
    MachineModel machine = sparcstation2();
    const AliasPolicy policies[] = {
        AliasPolicy::SerializeAll,
        AliasPolicy::BaseOffset,
        AliasPolicy::StorageClassed,
        AliasPolicy::SymbolicExpr,
    };

    for (const Workload &w :
         {Workload{"linpack", "linpack", 0},
          Workload{"lloops", "lloops", 0},
          Workload{"tomcatv", "tomcatv", 0},
          Workload{"fpppp-1000", "fpppp", 1000}}) {
        std::printf("\n-- %s --\n", w.display.c_str());
        std::vector<int> widths{17, 10, 10, 10, 10, 8};
        printCells({"policy", "arcs/blk", "build-ms", "cyc-orig",
                    "cyc-sched", "gain"},
                   widths);
        printRule(widths);

        for (AliasPolicy policy : policies) {
            PipelineOptions opts;
            opts.builder = BuilderKind::TableForward;
            opts.algorithm = AlgorithmKind::Krishnamurthy;
            opts.build.memPolicy = policy;
            opts.evaluate = true;
            ProgramResult r = rep.timed(
                w, machine, opts, 3,
                w.display + "/" +
                    std::string(aliasPolicyName(policy)));

            double gain =
                r.cyclesOriginal
                    ? 100.0 * (r.cyclesOriginal - r.cyclesScheduled) /
                          static_cast<double>(r.cyclesOriginal)
                    : 0.0;
            printCells({std::string(aliasPolicyName(policy)),
                        formatFixed(r.dagStats.arcsPerBlock.avg(), 1),
                        formatFixed(r.buildSeconds * 1e3, 2),
                        std::to_string(r.cyclesOriginal),
                        std::to_string(r.cyclesScheduled),
                        formatFixed(gain, 1) + "%"},
                       widths);
        }
    }

    std::printf("\nReading: serialize-all chains every access and "
                "strangles the scheduler;\neach disambiguation step "
                "removes arcs and unlocks reordering.  The\n"
                "expression-as-resource model (the paper's own "
                "accounting) is the fully\ndisambiguated end of the "
                "ladder.\n");
    return 0;
}
