/**
 * @file
 * The paper's future-work question (Section 7): "characterizing the
 * attributes of larger basic blocks that enable certain heuristics to
 * outperform others".
 *
 * Sweeps synthetic single-block programs along two axes — block size
 * and floating-point fraction (which controls latency diversity and
 * function-unit pressure) — and reports each published algorithm's
 * cycle gain over original order, so the crossovers between heuristic
 * families become visible.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

Program
makeBlock(int size, double fp_fraction, std::uint64_t seed)
{
    WorkloadProfile p = profileByName("lloops");
    p.seed = seed;
    p.numBlocks = 2;
    p.totalInsts = size + 4;
    p.maxBlock = size;
    p.secondBlock = 0;
    p.fpFraction = fp_fraction;
    p.branchProb = 0.0;
    p.callProb = 0.0;
    p.avgMemExprs = 2.0 + size / 24.0;
    p.maxMemExprs = 16 + size / 4;
    return generateProgram(p);
}

} // namespace

int
main()
{
    banner("Heuristic performance vs block attributes "
           "(paper future work)");

    BenchReporter rep("block-attributes");
    MachineModel machine = sparcstation2();
    const int sizes[] = {8, 16, 32, 64, 128, 256};
    const double fps[] = {0.0, 0.3, 0.7};

    for (double fp : fps) {
        std::printf("\n-- floating-point fraction %.0f%% --\n",
                    fp * 100);
        std::vector<int> widths{6, 9};
        std::vector<std::string> header{"size", "orig"};
        for (AlgorithmKind kind : publishedAlgorithms()) {
            header.emplace_back(algorithmName(kind).substr(0, 9));
            widths.push_back(9);
        }
        printCells(header, widths);
        printRule(widths);

        for (int size : sizes) {
            long long orig_total = 0;
            std::vector<long long> totals(publishedAlgorithms().size(),
                                          0);
            // Average several random blocks per point.
            for (std::uint64_t seed = 1; seed <= 5; ++seed) {
                Program prog = makeBlock(size, fp, seed * 977);
                auto blocks = partitionBlocks(prog);
                BasicBlock big = blocks[0];
                for (const auto &bb : blocks)
                    if (bb.size() > big.size())
                        big = bb;
                BlockView block(prog, big);
                BuildOptions bopts;
                bopts.memPolicy = AliasPolicy::SymbolicExpr;
                Dag gt = TableForwardBuilder().build(block, machine,
                                                     bopts);
                orig_total +=
                    simulateSchedule(gt,
                                     originalOrderSchedule(gt).order,
                                     machine)
                        .cycles;

                std::size_t a = 0;
                for (AlgorithmKind kind : publishedAlgorithms()) {
                    PipelineOptions opts;
                    opts.algorithm = kind;
                    opts.builder =
                        algorithmSpec(kind).preferredBuilder;
                    opts.build.memPolicy = AliasPolicy::SymbolicExpr;
                    auto h = scheduleBlock(block, machine, opts);
                    totals[a++] +=
                        simulateSchedule(gt, h.sched.order, machine)
                            .cycles;
                }
            }

            BenchRecord rec;
            rec.workload = "fp" +
                           std::to_string(static_cast<int>(fp * 100)) +
                           "/size" + std::to_string(size);
            rec.addScalar("orig_cycles",
                          static_cast<double>(orig_total));
            std::vector<std::string> row{std::to_string(size),
                                         std::to_string(orig_total)};
            std::size_t a = 0;
            for (long long t : totals) {
                double gain = orig_total
                                  ? 100.0 * (orig_total - t) /
                                        static_cast<double>(orig_total)
                                  : 0.0;
                rec.addScalar(
                    std::string(
                        algorithmName(publishedAlgorithms()[a++])) +
                        "_gain_pct",
                    gain);
                row.push_back(formatFixed(gain, 1) + "%");
            }
            rep.write(rec);
            printCells(row, widths);
        }
    }

    std::printf("\nReading: integer-only blocks (0%%) offer little to "
                "reorder beyond load\ndelay slots, so all algorithms "
                "cluster; as FP fraction and block size grow,\n"
                "latency diversity rewards the timing-driven forward "
                "algorithms and punishes\nthe purely structural "
                "rankings — the attribute the paper conjectured.\n");
    return 0;
}
