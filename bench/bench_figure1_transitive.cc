/**
 * @file
 * Reproduces Figure 1: "Importance of transitive arcs".
 *
 *     1: DIVF R1,R2,R3  (20 cycles)      fdivd %f0,%f2,%f4
 *     2: ADDF R4,R5,R1  ( 4 cycles)      faddd %f6,%f8,%f0
 *     3: ADDF R1,R3,R6  ( 4 cycles)      faddd %f0,%f4,%f10
 *
 * Prints the DAG each builder constructs for the example, the timing
 * heuristics computed on it, and then quantifies the end-to-end cost
 * of transitive-arc removal (Landskov) on kernels and a whole
 * workload: schedules built from the pruned DAG, measured against the
 * true machine timing.  This is the evidence behind the paper's
 * conclusion 3 ("we recommend against the transitive-arc-avoidance
 * improvement").
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Figure 1: the example DAG under each construction "
           "algorithm");

    Program prog = figure1Program();
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));
    MachineModel machine = figure1Machine();

    for (BuilderKind kind :
         {BuilderKind::N2Forward, BuilderKind::TableForward,
          BuilderKind::TableBackward, BuilderKind::N2Landskov}) {
        Dag dag = makeBuilder(kind)->build(block, machine,
                                           BuildOptions{});
        runAllStaticPasses(dag);
        std::printf("%-14s arcs:", std::string(builderKindName(kind))
                                       .c_str());
        for (const Arc &arc : dag.arcs())
            std::printf("  %u->%u %s d=%d", arc.from + 1, arc.to + 1,
                        std::string(depKindName(arc.kind)).c_str(),
                        arc.delay);
        std::printf("\n%-14s max delay to leaf(node 1) = %d   "
                    "suppressed = %zu\n",
                    "", dag.ann().maxDelayToLeaf[0],
                    dag.suppressedCount());
    }
    std::printf("\nTable building retains the 20-cycle transitive RAW "
                "arc 1->3; Landskov-style\npruning collapses node 1's "
                "delay-to-leaf from 20 to 5 (WAR 1 + RAW 4).\n");

    banner("Cost of pruning on kernels (cycles, true timing; "
           "Shieh&Papachristou scheduler,\nwhose rank-1 heuristic is "
           "the max delay to a leaf that pruning corrupts)");

    MachineModel sparc = sparcstation2();
    std::vector<int> widths{13, 12, 14, 10};
    printCells({"kernel", "table-built", "landskov-built", "loss"},
               widths);
    printRule(widths);

    for (const std::string &kernel : kernelNames()) {
        Program kprog = kernelProgram(kernel);
        auto kblocks = partitionBlocks(kprog);
        long long table_cycles = 0, pruned_cycles = 0;
        for (const auto &bb : kblocks) {
            BlockView kb(kprog, bb);
            Dag gt = TableForwardBuilder().build(kb, sparc,
                                                 BuildOptions{});

            PipelineOptions topts;
            topts.builder = BuilderKind::TableForward;
            topts.algorithm = AlgorithmKind::ShiehPapachristou;
            auto tres = scheduleBlock(kb, sparc, topts);
            table_cycles +=
                simulateSchedule(gt, tres.sched.order, sparc).cycles;

            PipelineOptions lopts = topts;
            lopts.builder = BuilderKind::N2Landskov;
            auto lres = scheduleBlock(kb, sparc, lopts);
            pruned_cycles +=
                simulateSchedule(gt, lres.sched.order, sparc).cycles;
        }
        double loss = 100.0 * (pruned_cycles - table_cycles) /
                      static_cast<double>(table_cycles);
        printCells({kernel, std::to_string(table_cycles),
                    std::to_string(pruned_cycles),
                    formatFixed(loss, 1) + "%"},
                   widths);
    }

    banner("Cost of pruning on whole workloads (summed block cycles)");

    std::vector<int> w2{12, 14, 16, 10};
    printCells({"workload", "table-built", "landskov-built", "loss"},
               w2);
    printRule(w2);
    BenchReporter rep("figure1-transitive");
    for (const Workload &w :
         {Workload{"linpack", "linpack", 0}, Workload{"lloops", "lloops", 0},
          Workload{"tomcatv", "tomcatv", 0}}) {
        PipelineOptions topts;
        topts.builder = BuilderKind::TableForward;
        topts.algorithm = AlgorithmKind::Krishnamurthy;
        topts.evaluate = true;
        ProgramResult tr =
            rep.timed(w, sparc, topts, 1, w.display + "/table");

        PipelineOptions lopts = topts;
        lopts.builder = BuilderKind::N2Landskov;
        ProgramResult lr =
            rep.timed(w, sparc, lopts, 1, w.display + "/landskov");

        double loss = 100.0 * (lr.cyclesScheduled - tr.cyclesScheduled) /
                      static_cast<double>(tr.cyclesScheduled);
        printCells({w.display, std::to_string(tr.cyclesScheduled),
                    std::to_string(lr.cyclesScheduled),
                    formatFixed(loss, 1) + "%"},
                   w2);
    }

    std::printf("\nConclusion 3 reproduced: pruning all transitive arcs "
                "discards real timing\nconstraints, so schedules built "
                "from the pruned DAG are never better and\ncan be "
                "measurably worse under the true machine timing.\n");
    return 0;
}
