/**
 * @file
 * The paper's future-work question (Section 7): "determining the
 * benefits of global scheduling information (e.g., operation
 * latencies inherited from previous basic blocks)".
 *
 * Schedules each workload block-by-block in program order, threading
 * the dangling latencies of each block into the next (Section 2's
 * pseudo-arc information).  Both the latency-aware and the purely
 * local scheduler are measured under the *true* carried-latency
 * timing, so the delta is exactly the benefit of the global
 * information.
 */

#include "bench_util.hh"
#include "heuristics/register_pressure.hh"
#include "sched/global_info.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

/** Whole-program cycles, threading latencies between blocks. */
long long
runThreaded(Program &prog, const MachineModel &machine, bool aware)
{
    PartitionOptions popts;
    auto blocks = partitionBlocks(prog, popts);
    SchedulerConfig config =
        algorithmSpec(AlgorithmKind::Krishnamurthy).config;
    ListScheduler scheduler(config, machine);

    long long total = 0;
    InheritedLatencies carried;
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        Dag dag = TableForwardBuilder().build(block, machine,
                                              BuildOptions{});
        runForwardPass(dag);
        runBackwardPass(dag);
        computeSlack(dag);
        if (aware)
            applyInheritedLatencies(dag, carried);
        Schedule sched = scheduler.run(dag);

        // Measure under the true carried timing either way.
        std::vector<int> ready = inheritedReadyTimes(dag, carried);
        total += simulateSchedule(dag, sched.order, machine, &ready)
                     .cycles;

        carried = computeOutgoingLatencies(dag, sched, machine);
    }
    return total;
}

} // namespace

int
main()
{
    banner("Benefit of inherited cross-block latencies "
           "(paper future work)");

    BenchReporter rep("global");
    MachineModel machine = sparcstation2();
    std::vector<int> widths{11, 13, 13, 9};
    printCells({"workload", "local", "global-aware", "gain"}, widths);
    printRule(widths);

    for (const Workload &w : allWorkloads()) {
        Program prog_a = loadProgram(w);
        PartitionOptions popts;
        popts.window = w.window;
        if (w.window > 0)
            continue; // windows split blocks mid-flight; keep it simple
        long long local = runThreaded(prog_a, machine, false);
        Program prog_b = loadProgram(w);
        long long aware = runThreaded(prog_b, machine, true);
        double gain = local
                          ? 100.0 * (local - aware) /
                                static_cast<double>(local)
                          : 0.0;
        BenchRecord rec;
        rec.workload = w.display;
        rec.addScalar("local_cycles", static_cast<double>(local));
        rec.addScalar("global_cycles", static_cast<double>(aware));
        rec.addScalar("gain_pct", gain);
        rep.write(rec);
        printCells({w.display, std::to_string(local),
                    std::to_string(aware),
                    formatFixed(gain, 2) + "%"},
                   widths);
    }

    std::printf("\nReading: carried latencies matter most for FP codes "
                "whose blocks end with\nlong operations (divides, "
                "loads) consumed early in the successor — the\n"
                "global-aware scheduler defers those consumers behind "
                "independent work.\n");
    return 0;
}
