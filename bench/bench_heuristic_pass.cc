/**
 * @file
 * Reproduces the Section 4 / conclusion 4 experiment: the
 * intermediate heuristic calculation step implemented as a level
 * algorithm (per-level node lists, outer loop max level to min)
 * versus a simple reverse walk of the instruction list.
 *
 * "Thus it is better to construct a linked list of instructions
 * during DAG construction and reverse walk it than constructing a
 * more sophisticated data structure such as an array of level-lists."
 *
 * Also measures the node-revisitation overhead question of the
 * abstract: the backward-pass construction (whose first pass "merely
 * constructs the linked list and does not have to visit children")
 * versus forward construction, at the whole-pipeline level — shown in
 * the paper to be negligible (conclusion 6).
 */

#include "bench_util.hh"
#include "obs/phase.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Heuristic calculation step: level lists vs reverse walk");

    BenchReporter rep("heuristic-pass");
    MachineModel machine = sparcstation2();
    std::vector<int> widths{11, 14, 14, 8};
    printCells({"workload", "rev-walk(ms)", "lvl-list(ms)", "ratio"},
               widths);
    printRule(widths);

    for (const Workload &w : allWorkloads()) {
        Program prog = loadProgram(w);
        PartitionOptions popts;
        popts.window = w.window;
        auto blocks = partitionBlocks(prog, popts);

        // Pre-build all DAGs once; time only the heuristic passes.
        std::vector<Dag> dags;
        dags.reserve(blocks.size());
        TableForwardBuilder builder;
        for (const auto &bb : blocks)
            dags.push_back(builder.build(BlockView(prog, bb), machine,
                                         BuildOptions{}));

        double times[2] = {0, 0};
        constexpr int kRuns = 5;
        PassImpl impls[2] = {PassImpl::ReverseWalk,
                             PassImpl::LevelLists};
        BenchRecord rec;
        rec.workload = w.display;
        rec.repetitions = kRuns;
        const char *metric_names[2] = {"reverse_walk_seconds",
                                       "level_lists_seconds"};
        for (int v = 0; v < 2; ++v) {
            for (int run = 0; run < kRuns; ++run) {
                obs::ScopedPhase t("heur-pass");
                for (Dag &dag : dags)
                    runAllStaticPasses(dag, impls[v]);
                double s = t.stop();
                rec.metric(metric_names[v]).add(s);
                times[v] += s;
            }
            times[v] /= kRuns;
        }
        rec.addScalar("level_over_walk_ratio", times[1] / times[0]);
        rep.write(rec);

        printCells({w.display, formatFixed(times[0] * 1e3, 2),
                    formatFixed(times[1] * 1e3, 2),
                    formatFixed(times[1] / times[0], 2)},
                   widths);
    }

    std::printf("\nConclusion 4 reproduced when ratio ~>= 1: the level "
                "algorithm buys nothing\nover a reverse program-order "
                "walk (any reverse topological sort gives the\nsame "
                "result, and program order is one).\n");

    banner("Node-revisitation overhead: forward vs backward "
           "construction, full pipeline");

    std::vector<int> w2{11, 12, 12, 12, 12};
    printCells({"workload", "fwd-build", "bwd-build", "fwd-total",
                "bwd-total"},
               w2);
    printRule(w2);
    for (const Workload &w : allWorkloads()) {
        PipelineOptions fwd;
        fwd.builder = BuilderKind::TableForward;
        fwd.build.memPolicy = AliasPolicy::SymbolicExpr;
        fwd.algorithm = AlgorithmKind::SimpleForward;
        ProgramResult rf =
            rep.timed(w, machine, fwd, 3, w.display + "/fwd");
        PipelineOptions bwd = fwd;
        bwd.builder = BuilderKind::TableBackward;
        ProgramResult rb =
            rep.timed(w, machine, bwd, 3, w.display + "/bwd");
        printCells({w.display, formatFixed(rf.buildSeconds * 1e3, 2),
                    formatFixed(rb.buildSeconds * 1e3, 2),
                    formatFixed(rf.totalSeconds() * 1e3, 2),
                    formatFixed(rb.totalSeconds() * 1e3, 2)},
                   w2);
    }
    std::printf("\nAbstract reproduced: \"the node revisitation "
                "overhead of intermediate\nheuristic calculation steps "
                "... is negligible\" — forward and backward\n"
                "table building cost essentially the same.\n");
    return 0;
}
