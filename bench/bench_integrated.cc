/**
 * @file
 * Integrated scheduling + register allocation (paper Section 3:
 * "The integration of register allocation and instruction scheduling
 * into one pass has also been studied by other authors [2,5]").
 *
 * Compares three realistic compilation flows on the FP workloads,
 * sweeping the register-file size:
 *
 *   postpass-only : allocate the original order, then schedule the
 *                   allocated block (spill code and all);
 *   prepass-only  : schedule first (latency-driven), then allocate —
 *                   lifetimes stretched by scheduling now cost spills;
 *   pre+post      : liveness-aware prepass, allocate, then a postpass
 *                   reschedule of the allocated block (Warren's
 *                   intended double duty).
 *
 * Final cycles are measured by simulating the *allocated* block —
 * spill stores and reloads execute like any other instruction.
 */

#include "bench_util.hh"
#include "heuristics/register_pressure.hh"
#include "regalloc/local_allocator.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

/** Schedule one block with a config; returns block-relative order. */
std::vector<std::uint32_t>
scheduleOrder(const BlockView &block, const MachineModel &machine,
              const SchedulerConfig &config)
{
    BuildOptions bopts;
    bopts.memPolicy = AliasPolicy::SymbolicExpr;
    Dag dag = TableForwardBuilder().build(block, machine, bopts);
    runAllStaticPasses(dag);
    computeRegisterPressure(dag);
    ListScheduler scheduler(config, machine);
    return scheduler.run(dag).order;
}

/** Cycles of an allocated instruction list, optionally rescheduled. */
long long
cyclesOf(const std::vector<Instruction> &insts,
         const MachineModel &machine, const SchedulerConfig *postpass)
{
    Program prog;
    for (const Instruction &inst : insts)
        prog.append(inst);
    auto blocks = partitionBlocks(prog);

    long long total = 0;
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        BuildOptions bopts;
        bopts.memPolicy = AliasPolicy::SymbolicExpr;
        Dag dag = TableForwardBuilder().build(block, machine, bopts);
        std::vector<std::uint32_t> order;
        if (postpass) {
            runAllStaticPasses(dag);
            ListScheduler scheduler(*postpass, machine);
            order = scheduler.run(dag).order;
        } else {
            order = originalOrderSchedule(dag).order;
        }
        total += simulateSchedule(dag, order, machine).cycles;
    }
    return total;
}

SchedulerConfig
livenessFirstConfig()
{
    SchedulerConfig c;
    c.name = "liveness-first";
    c.ranking = {
        {Heuristic::Liveness, /*preferLarger=*/true},
        {Heuristic::EarliestExecutionTime, false},
        {Heuristic::MaxDelayToLeaf, true},
    };
    c.needsBackwardPass = true;
    c.needsRegisterPressure = true;
    return c;
}

} // namespace

int
main()
{
    banner("Integrated scheduling x register allocation "
           "(paper Section 3, refs [2,5])");

    BenchReporter rep("integrated");
    MachineModel machine = sparcstation2();
    SchedulerConfig latency =
        algorithmSpec(AlgorithmKind::Krishnamurthy).config;
    SchedulerConfig liveness = livenessFirstConfig();

    for (const Workload &w :
         {Workload{"linpack", "linpack", 0},
          Workload{"lloops", "lloops", 0},
          Workload{"tomcatv", "tomcatv", 0}}) {
        Program prog = loadProgram(w);
        auto blocks = partitionBlocks(prog);

        for (int pairs : {4, 6, 10}) {
            AllocatorOptions aopts;
            aopts.fpPool.clear();
            for (int i = 0; i < pairs; ++i)
                aopts.fpPool.push_back(2 * i);
            aopts.intPool = {8, 9, 10, 11, 12, 13, 16, 17};

            long long cyc[3] = {0, 0, 0};
            long long spill[3] = {0, 0, 0};
            int covered = 0;

            for (const auto &bb : blocks) {
                BlockView block(prog, bb);
                std::vector<std::uint32_t> identity(block.size());
                for (std::uint32_t i = 0; i < identity.size(); ++i)
                    identity[i] = i;

                // All three flows must allocate successfully for an
                // apples-to-apples comparison.
                auto post_only = allocateBlock(block, identity, aopts);
                auto pre_latency = allocateBlock(
                    block, scheduleOrder(block, machine, latency),
                    aopts);
                auto pre_liveness = allocateBlock(
                    block, scheduleOrder(block, machine, liveness),
                    aopts);
                if (!post_only || !pre_latency || !pre_liveness)
                    continue;
                ++covered;

                cyc[0] += cyclesOf(post_only->insts, machine, &latency);
                spill[0] += post_only->overhead();
                cyc[1] += cyclesOf(pre_latency->insts, machine, nullptr);
                spill[1] += pre_latency->overhead();
                cyc[2] +=
                    cyclesOf(pre_liveness->insts, machine, &latency);
                spill[2] += pre_liveness->overhead();
            }

            std::printf("\n%s, %d FP pairs (%d blocks covered)\n",
                        w.display.c_str(), pairs, covered);
            std::vector<int> widths{26, 10, 12};
            printCells({"flow", "cycles", "spill-insts"}, widths);
            printRule(widths);
            const char *labels[3] = {"postpass-only",
                                     "prepass-latency",
                                     "pre+post (liveness)"};
            BenchRecord rec;
            rec.workload =
                w.display + "/pairs" + std::to_string(pairs);
            const char *keys[3] = {"postpass", "prepass", "prepost"};
            for (int f = 0; f < 3; ++f) {
                rec.addScalar(std::string(keys[f]) + "_cycles",
                              static_cast<double>(cyc[f]));
                rec.addScalar(std::string(keys[f]) + "_spills",
                              static_cast<double>(spill[f]));
            }
            rep.write(rec);
            for (int f = 0; f < 3; ++f)
                printCells({labels[f], std::to_string(cyc[f]),
                            std::to_string(spill[f])},
                           widths);
        }
    }

    std::printf("\nReading: with a tight register file the "
                "latency-driven prepass pays its\nstretched lifetimes "
                "back as spill code; the liveness-aware prepass plus\n"
                "postpass reschedule recovers most of the latency "
                "without the spills —\nthe motivation for integrated "
                "approaches [2,5].\n");
    return 0;
}
