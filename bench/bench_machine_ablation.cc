/**
 * @file
 * Machine-model ablation for the Section 2 delay subtleties: WAR
 * shortening, double-word register-pair skew, asymmetric bypass
 * (RS/6000-like), store bypass, and the 2-issue superscalar model.
 *
 * For each machine variant the bench reports (a) how much the DAG's
 * timing weights change (total arc delay over the daxpy/livermore
 * kernels) and (b) what that does to scheduled cycles — making
 * concrete the paper's warning that "care must be exercised" with
 * dependence-kind-specific delays.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

long long
totalArcDelay(const Dag &dag)
{
    long long sum = 0;
    for (const Arc &arc : dag.arcs())
        sum += arc.delay;
    return sum;
}

} // namespace

int
main()
{
    banner("Machine-model ablation: Section 2 delay effects");

    struct Variant
    {
        const char *label;
        MachineModel machine;
    };
    std::vector<Variant> variants;
    variants.push_back({"sparcstation2 (baseline)", sparcstation2()});

    MachineModel war3 = sparcstation2();
    war3.name = "war=3";
    war3.warDelay = 3;
    variants.push_back({"WAR delay 3 (no early-read)", war3});

    MachineModel skew = sparcstation2();
    skew.name = "pair-skew";
    skew.pairSkew = true;
    variants.push_back({"double-word pair skew", skew});

    MachineModel bypass = sparcstation2();
    bypass.name = "asym";
    bypass.asymmetricBypass = true;
    variants.push_back({"asymmetric bypass (+1 on 2nd src)", bypass});

    MachineModel store_b = sparcstation2();
    store_b.name = "store-bypass";
    store_b.storeBypassSaving = 1;
    variants.push_back({"store bypass (-1 into stores)", store_b});

    variants.push_back({"rs6000like (all of the above)", rs6000Like()});

    std::vector<int> widths{34, 12, 10, 10};
    printCells({"machine variant", "arc-delays", "cycles", "vs base"},
               widths);
    printRule(widths);

    BenchReporter rep("machine-ablation");
    long long base_cycles = 0;
    for (const Variant &v : variants) {
        long long delays = 0;
        long long cycles = 0;
        for (const char *kernel : {"daxpy", "livermore1", "tomcatv"}) {
            Program prog = kernelProgram(kernel);
            auto blocks = partitionBlocks(prog);
            for (const auto &bb : blocks) {
                BlockView block(prog, bb);
                PipelineOptions opts;
                opts.algorithm = AlgorithmKind::Krishnamurthy;
                auto result = scheduleBlock(block, v.machine, opts);
                delays += totalArcDelay(result.dag);
                cycles += simulateSchedule(result.dag,
                                           result.sched.order,
                                           v.machine)
                              .cycles;
            }
        }
        if (base_cycles == 0)
            base_cycles = cycles;
        BenchRecord rec;
        rec.workload = v.machine.name;
        rec.addScalar("arc_delays", static_cast<double>(delays));
        rec.addScalar("cycles", static_cast<double>(cycles));
        rep.write(rec);
        printCells({v.label, std::to_string(delays),
                    std::to_string(cycles),
                    formatFixed(100.0 * (cycles - base_cycles) /
                                    static_cast<double>(base_cycles),
                                1) + "%"},
                   widths);
    }

    banner("Superscalar (2-issue) vs single issue, alternate-type "
           "aware scheduling");

    std::vector<int> w2{11, 13, 13, 9};
    printCells({"workload", "1-issue", "2-issue", "speedup"}, w2);
    printRule(w2);
    MachineModel single = sparcstation2();
    MachineModel dual = superscalar2();
    for (const Workload &w :
         {Workload{"linpack", "linpack", 0},
          Workload{"lloops", "lloops", 0},
          Workload{"tomcatv", "tomcatv", 0}}) {
        long long c1 = 0, c2 = 0;
        Program prog = loadProgram(w);
        auto blocks = partitionBlocks(prog);
        for (const auto &bb : blocks) {
            BlockView block(prog, bb);
            PipelineOptions opts;
            opts.algorithm = AlgorithmKind::Warren; // alternate-type
            opts.builder = BuilderKind::N2Forward;
            auto r1 = scheduleBlock(block, single, opts);
            c1 += simulateSchedule(r1.dag, r1.sched.order, single)
                      .cycles;
            auto r2 = scheduleBlock(block, dual, opts);
            c2 += simulateSchedule(r2.dag, r2.sched.order, dual).cycles;
        }
        BenchRecord rec;
        rec.workload = w.display + "/superscalar";
        rec.addScalar("single_issue_cycles", static_cast<double>(c1));
        rec.addScalar("dual_issue_cycles", static_cast<double>(c2));
        rep.write(rec);
        printCells({w.display, std::to_string(c1), std::to_string(c2),
                    formatFixed(static_cast<double>(c1) / c2, 2) + "x"},
                   w2);
    }

    std::printf("\nReading: dependence-kind-specific delays shift the "
                "DAG's timing weights\n(arc-delay column) and move "
                "scheduled cycles by a few percent each; the\n2-issue "
                "model shows the alternate-type heuristic converting "
                "class diversity\ninto dual-issue slots.\n");
    return 0;
}
