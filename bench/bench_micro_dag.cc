/**
 * @file
 * google-benchmark microbenchmarks for the DAG machinery and the
 * ablations of DESIGN.md section 6: add_arc throughput (with and
 * without reachability maps), bitmap OR/popcount, per-builder cost on
 * single blocks of varying size, and duplicate-arc merge cost.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "workload/generator.hh"

using namespace sched91;

namespace
{

/** One FP-heavy synthetic block of the requested size. */
Program
syntheticBlock(int size)
{
    WorkloadProfile p = profileByName("lloops");
    p.numBlocks = 2;
    p.totalInsts = size + 4;
    p.maxBlock = size;
    p.secondBlock = 0;
    p.branchProb = 0.0;
    p.callProb = 0.0;
    return generateProgram(p);
}

void
BM_BitmapOrPopcount(benchmark::State &state)
{
    std::size_t bits = static_cast<std::size_t>(state.range(0));
    Bitmap a(bits), b(bits);
    for (std::size_t i = 0; i < bits; i += 3)
        b.set(i);
    for (auto _ : state) {
        a.orWith(b);
        benchmark::DoNotOptimize(a.count());
    }
}
BENCHMARK(BM_BitmapOrPopcount)->Arg(256)->Arg(1024)->Arg(11750);

void
BM_Builder(benchmark::State &state, BuilderKind kind, bool reach_maps)
{
    int size = static_cast<int>(state.range(0));
    Program prog = syntheticBlock(size);
    auto blocks = partitionBlocks(prog);
    // Largest block is the one we measure.
    BasicBlock big = blocks[0];
    for (const auto &bb : blocks)
        if (bb.size() > big.size())
            big = bb;
    BlockView block(prog, big);
    MachineModel machine = sparcstation2();
    BuildOptions opts;
    opts.maintainReachMaps = reach_maps;
    auto builder = makeBuilder(kind);

    for (auto _ : state) {
        Dag dag = builder->build(block, machine, opts);
        benchmark::DoNotOptimize(dag.numArcs());
    }
    state.SetItemsProcessed(state.iterations() * block.size());
}

void
BM_TableForward(benchmark::State &state)
{
    BM_Builder(state, BuilderKind::TableForward, false);
}
void
BM_TableBackward(benchmark::State &state)
{
    BM_Builder(state, BuilderKind::TableBackward, false);
}
void
BM_TableBackwardReachMaps(benchmark::State &state)
{
    BM_Builder(state, BuilderKind::TableBackward, true);
}
void
BM_N2Forward(benchmark::State &state)
{
    BM_Builder(state, BuilderKind::N2Forward, false);
}
void
BM_N2Landskov(benchmark::State &state)
{
    BM_Builder(state, BuilderKind::N2Landskov, false);
}

BENCHMARK(BM_TableForward)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_TableBackward)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_TableBackwardReachMaps)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_N2Forward)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_N2Landskov)->Arg(64)->Arg(256);

void
BM_StaticPasses(benchmark::State &state, PassImpl impl)
{
    Program prog = syntheticBlock(static_cast<int>(state.range(0)));
    auto blocks = partitionBlocks(prog);
    BasicBlock big = blocks[0];
    for (const auto &bb : blocks)
        if (bb.size() > big.size())
            big = bb;
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, big), machine,
                                          BuildOptions{});
    for (auto _ : state) {
        runAllStaticPasses(dag, impl);
        benchmark::DoNotOptimize(dag.ann().maxDelayToLeaf[0]);
    }
}

void
BM_PassReverseWalk(benchmark::State &state)
{
    BM_StaticPasses(state, PassImpl::ReverseWalk);
}
void
BM_PassLevelLists(benchmark::State &state)
{
    BM_StaticPasses(state, PassImpl::LevelLists);
}
BENCHMARK(BM_PassReverseWalk)->Arg(256)->Arg(1024);
BENCHMARK(BM_PassLevelLists)->Arg(256)->Arg(1024);

void
BM_ListScheduler(benchmark::State &state)
{
    Program prog = syntheticBlock(static_cast<int>(state.range(0)));
    auto blocks = partitionBlocks(prog);
    BasicBlock big = blocks[0];
    for (const auto &bb : blocks)
        if (bb.size() > big.size())
            big = bb;
    MachineModel machine = sparcstation2();
    Dag dag = TableForwardBuilder().build(BlockView(prog, big), machine,
                                          BuildOptions{});
    runAllStaticPasses(dag);
    SchedulerConfig config = simpleForwardConfig();
    ListScheduler scheduler(config, machine);
    for (auto _ : state) {
        Schedule s = scheduler.run(dag);
        benchmark::DoNotOptimize(s.makespan);
    }
}
BENCHMARK(BM_ListScheduler)->Arg(64)->Arg(256)->Arg(1024);

/**
 * Console output plus one versioned record per benchmark run in
 * BENCH_micro-dag.json (bench_util.hh): the per-iteration wall time
 * is the regression metric; gbench's own iteration count stands in
 * for repetitions.
 */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit RecordingReporter(sched91::bench::BenchReporter &rep)
        : rep_(rep)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            sched91::bench::BenchRecord rec;
            rec.workload = run.benchmark_name();
            rec.repetitions = 1;
            double per_iter =
                run.iterations > 0
                    ? run.real_accumulated_time /
                          static_cast<double>(run.iterations)
                    : 0.0;
            rec.metric("wall_seconds").add(per_iter);
            rec.addScalar("iterations",
                          static_cast<double>(run.iterations));
            rep_.write(rec);
        }
    }

  private:
    sched91::bench::BenchReporter &rep_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    sched91::bench::BenchReporter rep("micro-dag");
    RecordingReporter console(rep);
    benchmark::RunSpecifiedBenchmarks(&console);
    return 0;
}
