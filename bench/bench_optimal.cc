/**
 * @file
 * The paper's future-work question (Section 7): would "an optimal
 * branch-and-bound scheduler ... benefit performance for small basic
 * blocks"?
 *
 * Runs the branch-and-bound scheduler once over every small block of
 * the integer and FP workloads and reports, per heuristic algorithm,
 * how many blocks the heuristic schedules optimally and how many
 * cycles it leaves on the table — answering the question on the same
 * workload suite as the rest of the reproduction.
 */

#include <map>

#include "bench_util.hh"
#include "sched/branch_and_bound.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

struct Tally
{
    long long optimal = 0;
    long long heuristic = 0;
    int blocks = 0;
    int matched = 0;
};

} // namespace

int
main()
{
    banner("Branch-and-bound optimum vs heuristics on small blocks "
           "(paper future work)");

    MachineModel machine = sparcstation2();
    constexpr std::uint32_t kMaxBlock = 24;
    constexpr int kMaxBlocksPerWorkload = 400;

    std::vector<Workload> workloads{
        {"grep", "grep", 0},       {"cccp", "cccp", 0},
        {"linpack", "linpack", 0}, {"lloops", "lloops", 0},
        {"tomcatv", "tomcatv", 0},
    };

    // tallies[algorithm][workload]
    std::map<AlgorithmKind, std::map<std::string, Tally>> tallies;

    for (const Workload &w : workloads) {
        Program prog = loadProgram(w);
        PartitionOptions popts;
        auto blocks = partitionBlocks(prog, popts);

        int considered = 0;
        for (const auto &bb : blocks) {
            if (bb.size() < 3 || bb.size() > kMaxBlock)
                continue;
            if (considered >= kMaxBlocksPerWorkload)
                break;
            BlockView block(prog, bb);

            Dag opt_dag = TableForwardBuilder().build(block, machine,
                                                      BuildOptions{});
            BnbResult optimal = scheduleOptimal(opt_dag, machine);
            if (!optimal.optimal)
                continue; // budget blown: keep it apples-to-apples
            ++considered;

            Dag gt = TableForwardBuilder().build(block, machine,
                                                 BuildOptions{});
            for (AlgorithmKind kind : publishedAlgorithms()) {
                PipelineOptions opts;
                opts.algorithm = kind;
                opts.builder = algorithmSpec(kind).preferredBuilder;
                auto h = scheduleBlock(block, machine, opts);
                int cycles =
                    simulateSchedule(gt, h.sched.order, machine).cycles;

                Tally &t = tallies[kind][w.display];
                t.optimal += optimal.cycles;
                t.heuristic += cycles;
                ++t.blocks;
                if (cycles == optimal.cycles)
                    ++t.matched;
            }
        }
    }

    std::vector<int> widths{19, 10, 9, 10, 11, 9};
    printCells({"algorithm", "workload", "blocks", "optimal",
                "extra-cyc", "gap"},
               widths);
    printRule(widths);

    BenchReporter rep("optimal");
    for (AlgorithmKind kind : publishedAlgorithms()) {
        for (const Workload &w : workloads) {
            const Tally &t = tallies[kind][w.display];
            double gap = t.optimal
                             ? 100.0 * (t.heuristic - t.optimal) /
                                   static_cast<double>(t.optimal)
                             : 0.0;
            BenchRecord rec;
            rec.workload =
                w.display + "/" + std::string(algorithmName(kind));
            rec.addScalar("blocks", t.blocks);
            rec.addScalar("matched_optimal", t.matched);
            rec.addScalar("extra_cycles",
                          static_cast<double>(t.heuristic - t.optimal));
            rec.addScalar("gap_pct", gap);
            rep.write(rec);
            printCells({std::string(algorithmName(kind)), w.display,
                        std::to_string(t.blocks),
                        std::to_string(t.matched),
                        std::to_string(t.heuristic - t.optimal),
                        formatFixed(gap, 2) + "%"},
                       widths);
        }
        printRule(widths);
    }

    std::printf("\nReading: 'optimal' counts blocks the heuristic "
                "already schedules optimally;\n'gap' is the summed "
                "cycle overhead.  The answer to the paper's question: "
                "good\ntiming-driven heuristics are within a few "
                "percent of optimal on small blocks,\nso branch and "
                "bound buys little except as a validation oracle.\n");
    return 0;
}
