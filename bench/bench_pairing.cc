/**
 * @file
 * Reproduces conclusion 6: "Our conjecture that we should always pair
 * a DAG construction algorithm with an opposite direction scheduling
 * pass was false.  Our results showed negligible difference in
 * efficiency for the proposed pairing."
 *
 * Runs every (construction direction x scheduling direction)
 * combination of the table builders over the workloads and reports
 * total pipeline time.  Same-direction pairs need the intermediate
 * heuristic pass (e.g. forward construction + forward scheduling must
 * compute the backward to-leaf heuristics in an extra pass); opposite
 * pairs could in principle fold that work into construction — the
 * measurement shows the difference does not matter.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Construction direction x scheduling direction "
           "(conclusion 6)");

    BenchReporter rep("pairing");
    MachineModel machine = sparcstation2();

    struct Combo
    {
        const char *label;
        BuilderKind builder;
        AlgorithmKind algorithm;
    };
    // simple-forward schedules forward (needs backward heuristics);
    // schlansker schedules backward.
    const Combo combos[] = {
        {"fwd-dag/fwd-sched", BuilderKind::TableForward,
         AlgorithmKind::SimpleForward},
        {"bwd-dag/fwd-sched", BuilderKind::TableBackward,
         AlgorithmKind::SimpleForward},
        {"fwd-dag/bwd-sched", BuilderKind::TableForward,
         AlgorithmKind::Schlansker},
        {"bwd-dag/bwd-sched", BuilderKind::TableBackward,
         AlgorithmKind::Schlansker},
    };

    std::vector<int> widths{11, 19, 10, 10, 10, 11};
    printCells({"workload", "pairing", "build(ms)", "heur(ms)",
                "sched(ms)", "total(ms)"},
               widths);
    printRule(widths);

    for (const Workload &w : allWorkloads()) {
        for (const Combo &combo : combos) {
            PipelineOptions opts;
            opts.builder = combo.builder;
            opts.algorithm = combo.algorithm;
            opts.build.memPolicy = AliasPolicy::SymbolicExpr;
            ProgramResult r = rep.timed(w, machine, opts, 3,
                                        w.display + "/" + combo.label);
            printCells({w.display, combo.label,
                        formatFixed(r.buildSeconds * 1e3, 2),
                        formatFixed(r.heurSeconds * 1e3, 2),
                        formatFixed(r.schedSeconds * 1e3, 2),
                        formatFixed(r.totalSeconds() * 1e3, 2)},
                       widths);
        }
        printRule(widths);
    }

    std::printf("\nConclusion 6 reproduced when, for each workload, "
                "the four totals sit within\nnoise of one another: "
                "pairing construction with an opposite-direction\n"
                "scheduling pass buys nothing measurable.\n");
    return 0;
}
