/**
 * @file
 * Block-parallel pipeline scaling: wall-clock time of the full
 * build/heur/sched pipeline at 1 (serial), 2, 4, and
 * hardware-concurrency worker lanes, over all twelve Table 3 workload
 * rows.
 *
 * Unlike the table-reproduction benches, the quantity of interest here
 * is elapsed wall time, not the sum of per-block phase seconds (which
 * is thread-count-invariant by design) — so this bench times the
 * runPipeline call itself.  The printed speedups are relative to the
 * serial (--threads 1) run of the same workload.
 *
 * Machine-readable output: one versioned record per
 * workload/thread-count in BENCH_parallel-pipeline.json (wall-seconds
 * samples, speedup, per-phase seconds, and the counter deltas of a
 * counted run — the timed runs keep counters off).
 */

#include <algorithm>
#include <chrono>

#include "bench_util.hh"
#include "support/thread_pool.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

/** Fastest-of-N wall-clock runPipeline time for one configuration;
 * every sample also lands in @p rec for the emitted record. */
double
wallSeconds(const Workload &w, const MachineModel &machine,
            PipelineOptions opts, BenchRecord &rec, int runs = 3)
{
    opts.partition.window = w.window;
    rec.repetitions = runs;
    double best = 0.0;
    for (int r = 0; r < runs; ++r) {
        Program prog = loadProgram(w);
        auto t0 = std::chrono::steady_clock::now();
        ProgramResult res = runPipeline(prog, machine, opts);
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        rec.metric("wall_seconds").add(s);
        rec.addPhases(res);
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

} // namespace

int
main()
{
    unsigned hw = ThreadPool::hardwareConcurrency();
    banner("Block-parallel pipeline: wall-clock scaling (forward table "
           "builder + simple forward scheduling)");
    std::printf("hardware concurrency: %u\n\n", hw);

    // Thread counts to sweep: serial baseline plus 2, 4, and hw lanes
    // (deduplicated, ascending).
    std::vector<unsigned> lanes{1, 2, 4, hw};
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());

    std::vector<int> widths{11, 10};
    std::vector<std::string> header{"benchmark", "serial(ms)"};
    for (std::size_t i = 1; i < lanes.size(); ++i) {
        header.push_back("t" + std::to_string(lanes[i]) + "(ms)");
        header.push_back("x");
        widths.push_back(9);
        widths.push_back(6);
    }
    printCells(header, widths);
    printRule(widths);

    BenchReporter rep("parallel-pipeline");
    MachineModel machine = sparcstation2();
    for (const Workload &w : allWorkloads()) {
        PipelineOptions opts;
        opts.builder = BuilderKind::TableForward;
        opts.build.memPolicy = AliasPolicy::SymbolicExpr;
        opts.algorithm = AlgorithmKind::SimpleForward;

        std::vector<std::string> cells{w.display};
        double serial = 0.0;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            opts.threads = lanes[i];
            BenchRecord rec;
            rec.workload = w.display;
            rec.threads = lanes[i];
            double s = wallSeconds(w, machine, opts, rec);
            if (i == 0)
                serial = s;
            rec.addScalar("speedup", i == 0 ? 1.0 : serial / s);
            // One counted run per cell so the record carries real
            // counter deltas (the timed runs keep counters off).
            rec.counters =
                countedPipeline(w, machine, opts).counters;
            rep.write(rec);
            cells.push_back(formatFixed(s * 1e3, 1));
            if (i > 0)
                cells.push_back(formatFixed(serial / s, 2));
        }
        printCells(cells, widths);
    }

    std::printf("\nShape check: (1) per-phase seconds and all "
                "statistics are identical at\nevery thread count (the "
                "deterministic-reduction contract); (2) wall time\n"
                "shrinks with lanes on multi-core hosts, bounded by the "
                "largest single\nblock (fpppp's 11750-instruction block "
                "dominates its rows).\n");
    return 0;
}
