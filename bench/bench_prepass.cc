/**
 * @file
 * Prepass vs postpass scheduling (paper Section 3, register usage):
 * "This kind of heuristic ... [is] useful in prepass scheduling
 * (i.e., before register allocation).  In fact, an algorithm like
 * Warren's is designed to be performed both prepass as well as
 * postpass."
 *
 * For each FP workload and register-file size, the bench compares a
 * latency-only schedule (Krishnamurthy), Warren's liveness-aware
 * ranking, and a liveness-first prepass configuration on two axes:
 * simulated cycles (the postpass objective) and estimated spilled
 * values under a Belady-style local allocator (the prepass
 * objective).  The tension between the two is exactly why the
 * integrated approaches of Goodman & Hsu [5] and Bradlee et al. [2]
 * exist.
 */

#include "bench_util.hh"
#include "heuristics/register_pressure.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

struct Contender
{
    const char *label;
    SchedulerConfig config;
};

std::vector<Contender>
contenders()
{
    SchedulerConfig pressure_first;
    pressure_first.name = "liveness-first";
    pressure_first.ranking = {
        {Heuristic::Liveness, /*preferLarger=*/true},
        {Heuristic::EarliestExecutionTime, false},
        {Heuristic::MaxDelayToLeaf, true},
    };
    pressure_first.needsBackwardPass = true;
    pressure_first.needsRegisterPressure = true;

    return {
        {"krishnamurthy (latency)",
         algorithmSpec(AlgorithmKind::Krishnamurthy).config},
        {"warren (liveness rank 4)",
         algorithmSpec(AlgorithmKind::Warren).config},
        {"liveness-first prepass", pressure_first},
    };
}

} // namespace

int
main()
{
    banner("Prepass register pressure vs postpass latency "
           "(register-usage heuristics)");

    BenchReporter rep("prepass");
    MachineModel machine = sparcstation2();
    const int reg_files[] = {8, 12, 16};

    for (const Workload &w :
         {Workload{"linpack", "linpack", 0},
          Workload{"lloops", "lloops", 0},
          Workload{"tomcatv", "tomcatv", 0}}) {
        std::printf("\n-- %s --\n", w.display.c_str());
        std::vector<int> widths{26, 9, 8, 8, 8};
        printCells({"scheduler", "cycles", "sp@8", "sp@12", "sp@16"},
                   widths);
        printRule(widths);

        Program prog = loadProgram(w);
        auto blocks = partitionBlocks(prog);

        for (const Contender &c : contenders()) {
            ListScheduler scheduler(c.config, machine);
            long long cycles = 0;
            long long spills[3] = {0, 0, 0};

            for (const auto &bb : blocks) {
                BlockView block(prog, bb);
                BuildOptions bopts;
                bopts.memPolicy = AliasPolicy::SymbolicExpr;
                Dag dag = TableForwardBuilder().build(block, machine,
                                                      bopts);
                runAllStaticPasses(dag);
                computeRegisterPressure(dag);
                Schedule sched = scheduler.run(dag);
                cycles +=
                    simulateSchedule(dag, sched.order, machine).cycles;
                for (int k = 0; k < 3; ++k)
                    spills[k] += estimateSpilledValues(dag, sched.order,
                                                       reg_files[k]);
            }

            BenchRecord rec;
            rec.workload = w.display + "/" + c.config.name;
            rec.addScalar("cycles", static_cast<double>(cycles));
            for (int k = 0; k < 3; ++k)
                rec.addScalar("spills_at_" +
                                  std::to_string(reg_files[k]),
                              static_cast<double>(spills[k]));
            rep.write(rec);
            printCells({c.label, std::to_string(cycles),
                        std::to_string(spills[0]),
                        std::to_string(spills[1]),
                        std::to_string(spills[2])},
                       widths);
        }
    }

    std::printf("\nReading: latency-first scheduling wins cycles but "
                "stretches lifetimes and\nspills more under small "
                "register files; the liveness-first prepass inverts\n"
                "the trade — Warren's ranking (liveness at rank 4) "
                "sits between, which is\nwhy it can serve both "
                "prepass and postpass roles.\n");
    return 0;
}
