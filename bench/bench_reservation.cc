/**
 * @file
 * Reservation-table scheduling vs list scheduling (paper Section 1:
 * the "more refined form of scheduling" with explicit resource
 * reservation tables, "more popular for use with processors having a
 * large number of multi-cycle instructions").
 *
 * Compares the earliest-fit reservation scheduler against the list
 * schedulers on machines with progressively more multi-cycle /
 * multi-resource instructions — the regime the paper says favors
 * reservation tables.
 */

#include "bench_util.hh"
#include "sched/reservation.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

long long
listCycles(Program &prog, const MachineModel &machine,
           AlgorithmKind kind)
{
    auto blocks = partitionBlocks(prog);
    long long total = 0;
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        PipelineOptions opts;
        opts.algorithm = kind;
        opts.build.memPolicy = AliasPolicy::SymbolicExpr;
        auto r = scheduleBlock(block, machine, opts);
        total += simulateSchedule(r.dag, r.sched.order, machine).cycles;
    }
    return total;
}

long long
reservationCycles(Program &prog, const MachineModel &machine)
{
    auto blocks = partitionBlocks(prog);
    long long total = 0;
    for (const auto &bb : blocks) {
        BlockView block(prog, bb);
        BuildOptions bopts;
        bopts.memPolicy = AliasPolicy::SymbolicExpr;
        Dag dag = TableForwardBuilder().build(block, machine, bopts);
        runAllStaticPasses(dag);
        ReservationResult r = scheduleWithReservationTable(dag, machine);
        total += simulateSchedule(dag, r.sched.order, machine).cycles;
    }
    return total;
}

} // namespace

int
main()
{
    banner("Reservation-table vs list scheduling (paper Section 1)");

    // A divide-heavy machine: FP adds/multiplies also non-pipelined,
    // the regime reservation tables were built for.
    MachineModel heavy = sparcstation2();
    heavy.name = "non-pipelined-fp";
    heavy.fuDesc(FuKind::FpAdd).pipelined = false;
    heavy.fuDesc(FuKind::FpMul).pipelined = false;

    BenchReporter rep("reservation");
    for (const MachineModel &machine : {sparcstation2(), heavy}) {
        std::printf("\n-- machine: %s --\n", machine.name.c_str());
        std::vector<int> widths{11, 12, 13, 13, 13};
        printCells({"workload", "orig", "krishnamur.", "shieh-papa.",
                    "reservation"},
                   widths);
        printRule(widths);

        for (const Workload &w :
             {Workload{"linpack", "linpack", 0},
              Workload{"lloops", "lloops", 0},
              Workload{"tomcatv", "tomcatv", 0}}) {
            Program prog = loadProgram(w);

            // Baseline: original order cycles.
            long long orig = 0;
            {
                auto blocks = partitionBlocks(prog);
                for (const auto &bb : blocks) {
                    BlockView block(prog, bb);
                    BuildOptions bopts;
                    bopts.memPolicy = AliasPolicy::SymbolicExpr;
                    Dag dag = TableForwardBuilder().build(block, machine,
                                                          bopts);
                    orig += simulateSchedule(
                                dag, originalOrderSchedule(dag).order,
                                machine)
                                .cycles;
                }
            }

            long long krish = listCycles(
                prog, machine, AlgorithmKind::Krishnamurthy);
            long long shieh = listCycles(
                prog, machine, AlgorithmKind::ShiehPapachristou);
            long long resv = reservationCycles(prog, machine);
            BenchRecord rec;
            rec.workload = w.display + "/" + machine.name;
            rec.addScalar("orig_cycles", static_cast<double>(orig));
            rec.addScalar("krishnamurthy_cycles",
                          static_cast<double>(krish));
            rec.addScalar("shieh_papachristou_cycles",
                          static_cast<double>(shieh));
            rec.addScalar("reservation_cycles",
                          static_cast<double>(resv));
            rep.write(rec);
            printCells({w.display, std::to_string(orig),
                        std::to_string(krish), std::to_string(shieh),
                        std::to_string(resv)},
                       widths);
        }
    }

    std::printf("\nReading: the earliest-fit reservation scheduler "
                "clearly beats the list\nscheduler that lacks timing "
                "awareness (Shieh & Papachristou), but the\n"
                "EET-plus-FU-busy list scheduler (Krishnamurthy) "
                "retains the edge — its\nrank-2 FPU-interlock "
                "heuristic already encodes the reservation table's\n"
                "knowledge, which is exactly why the paper lists busy "
                "times among the 26.\n");
    return 0;
}
