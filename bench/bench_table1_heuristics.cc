/**
 * @file
 * Reproduces Table 1: the 26-heuristic survey, printed from the live
 * metadata table, followed by a computed demonstration: every static
 * heuristic's value on the daxpy kernel's DAG under its declared
 * calculation pass, and the transitive-arc bias the "**" rows warn
 * about (n**2 DAG vs table DAG values).
 */

#include <map>

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Table 1: the 26 scheduling heuristics");

    std::vector<int> widths{16, 42, 7, 5, 4};
    printCells({"category", "heuristic", "timing", "pass", "**"},
               widths);
    printRule(widths);

    for (const HeuristicInfo &h : allHeuristics()) {
        printCells({std::string(heuristicCategoryName(h.category)),
                    h.name, h.timingBased ? "timing" : "rel.",
                    std::string(calcPassName(h.pass)),
                    h.transitiveSensitive ? "**" : ""},
                   widths);
    }
    std::printf("\nLegend: a = determined at add-node/add-arc time; "
                "f/b = forward/backward pass\nover the basic block; "
                "v = node visitation during scheduling; ** = "
                "calculation\naffected by the presence of transitive "
                "arcs.\n");

    // --- Demonstrate the ** bias on a real DAG --------------------
    banner("Transitive-arc bias of the ** heuristics "
           "(daxpy block, n**2 vs table DAG)");

    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));
    MachineModel machine = sparcstation2();

    Dag n2 = N2ForwardBuilder().build(block, machine, BuildOptions{});
    Dag table = TableForwardBuilder().build(block, machine,
                                            BuildOptions{});
    runAllStaticPasses(n2, PassImpl::ReverseWalk, true);
    runAllStaticPasses(table, PassImpl::ReverseWalk, true);

    std::vector<int> w2{34, 10, 10};
    printCells({"heuristic (summed over nodes)", "n**2", "table"}, w2);
    printRule(w2);
    BenchReporter rep("table1-heuristics");
    for (Heuristic h :
         {Heuristic::NumChildren, Heuristic::NumParents,
          Heuristic::DelaysToChildren, Heuristic::DelaysFromParents,
          Heuristic::InterlockWithChild, Heuristic::MaxDelayToLeaf,
          Heuristic::NumDescendants}) {
        long long a = 0, b = 0;
        for (std::uint32_t i = 0; i < n2.size(); ++i) {
            a += staticValue(n2, i, h);
            b += staticValue(table, i, h);
        }
        BenchRecord rec;
        rec.workload =
            "daxpy/" + std::string(heuristicInfo(h).name);
        rec.addScalar("n2_sum", static_cast<double>(a));
        rec.addScalar("table_sum", static_cast<double>(b));
        rep.write(rec);
        printCells({std::string(heuristicInfo(h).name),
                    std::to_string(a), std::to_string(b)},
                   w2);
    }
    std::printf("\n#children / #parents / phi-delays are inflated by "
                "the n**2 builder's\ntransitive arcs (Table 1's ** "
                "rows); #descendants and max delay to leaf are\n"
                "closure properties and agree.\n");
    return 0;
}
