/**
 * @file
 * Reproduces Table 2: the six published scheduling algorithms.
 *
 * Part 1 prints each algorithm's configuration (DAG construction pass
 * and algorithm, scheduling pass direction, ranked heuristics) from
 * the live registry, mirroring the published table.
 *
 * Part 2 runs all six over the workload suite and reports scheduling
 * time and schedule quality (simulated cycles, original vs scheduled)
 * — the paper analyzes the algorithms qualitatively; this extends the
 * analysis with measurements on the same infrastructure.  Algorithms
 * whose reference used an n**2 builder run fpppp under the paper's
 * 1000-instruction window.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

std::string
rankingToString(const SchedulerConfig &config)
{
    std::string out;
    int rank = 1;
    for (const RankedHeuristic &rh : config.ranking) {
        if (!out.empty())
            out += ", ";
        out += std::to_string(rank++);
        out += ":";
        out += heuristicInfo(rh.heuristic).name;
        if (!rh.preferLarger)
            out += " (inv)";
    }
    return out;
}

} // namespace

int
main()
{
    banner("Table 2: the six published scheduling algorithms");

    for (AlgorithmKind kind : publishedAlgorithms()) {
        AlgorithmSpec spec = algorithmSpec(kind);
        std::printf("%s  [%s]\n", std::string(algorithmName(kind)).c_str(),
                    spec.citation);
        std::printf("  dag construction : %s\n",
                    std::string(builderKindName(spec.preferredBuilder))
                        .c_str());
        std::printf("  scheduling pass  : %s%s%s\n",
                    spec.config.forward ? "forward" : "backward",
                    spec.config.postpassFixup ? " + postpass fixup" : "",
                    spec.config.birthing ? " + birthing adjustment" : "");
        std::printf("  heuristics       : %s\n",
                    rankingToString(spec.config).c_str());
        std::printf("  static passes    : %s%s%s%s\n\n",
                    spec.config.needsForwardPass ? "forward " : "",
                    spec.config.needsBackwardPass ? "backward " : "",
                    spec.config.needsDescendants ? "descendants " : "",
                    spec.config.needsRegisterPressure ? "reg-pressure"
                                                      : "");
    }

    banner("Measured: scheduling time and schedule quality per "
           "algorithm");

    MachineModel machine = sparcstation2();
    auto workloads = std::vector<Workload>{
        {"grep", "grep", 0},       {"cccp", "cccp", 0},
        {"linpack", "linpack", 0}, {"lloops", "lloops", 0},
        {"tomcatv", "tomcatv", 0}, {"nasa7", "nasa7", 0},
        {"fpppp-1000", "fpppp", 1000},
    };

    std::vector<int> widths{19, 11, 10, 11, 11, 7};
    printCells({"algorithm", "workload", "time(ms)", "cyc-orig",
                "cyc-sched", "gain"},
               widths);
    printRule(widths);

    BenchReporter rep("table2-schedulers");
    for (AlgorithmKind kind : publishedAlgorithms()) {
        AlgorithmSpec spec = algorithmSpec(kind);
        for (const Workload &w : workloads) {
            PipelineOptions opts;
            opts.algorithm = kind;
            opts.builder = spec.preferredBuilder;
            opts.evaluate = true;
            ProgramResult r = rep.timed(
                w, machine, opts, 3,
                w.display + "/" + std::string(algorithmName(kind)));

            double gain =
                r.cyclesOriginal > 0
                    ? 100.0 * (r.cyclesOriginal - r.cyclesScheduled) /
                          r.cyclesOriginal
                    : 0.0;
            printCells({std::string(algorithmName(kind)), w.display,
                        formatFixed(r.totalSeconds() * 1e3, 1),
                        std::to_string(r.cyclesOriginal),
                        std::to_string(r.cyclesScheduled),
                        formatFixed(gain, 1) + "%"},
                       widths);
        }
        printRule(widths);
    }

    std::printf("\nNotes: cycles are summed per-block completion times "
                "on the in-order\nSPARCstation-2-class model.  The "
                "timing-driven forward algorithms\n(Krishnamurthy, "
                "Warren, Gibbons&Muchnick) recover most load/FP stalls;"
                "\nbackward critical-path algorithms (Schlansker, "
                "Tiemann) trail slightly, as\nexpected for heuristics "
                "without an explicit machine timing model.\n");
    return 0;
}
