/**
 * @file
 * Reproduces Table 3: "Structural data for benchmarks independent of
 * approach" — basic blocks, instructions, instructions per basic
 * block (max/avg), unique memory expressions per block (max/avg) —
 * for the synthetic workloads, side by side with the published
 * numbers.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Table 3: structural data for benchmarks "
           "(measured vs paper)");

    std::vector<int> widths{11, 8, 7, 6, 7, 6, 6};
    printCells({"benchmark", "blocks", "insts", "i/b", "i/b", "mx/b",
                "mx/b"},
               widths);
    printCells({"", "", "", "max", "avg", "max", "avg"}, widths);
    printRule(widths);

    BenchReporter rep("table3-structure");
    auto paper = paperTable3();
    for (const Workload &w : allWorkloads()) {
        Program prog = loadProgram(w);
        PartitionOptions popts;
        popts.window = w.window;
        auto blocks = partitionBlocks(prog, popts);
        auto s = measureStructure(prog, blocks);

        BenchRecord rec;
        rec.workload = w.display;
        rec.addScalar("blocks", static_cast<double>(s.numBlocks));
        rec.addScalar("insts", static_cast<double>(s.numInsts));
        rec.addScalar("insts_per_block_max", s.instsPerBlock.max());
        rec.addScalar("insts_per_block_avg", s.instsPerBlock.avg());
        rec.addScalar("mem_exprs_per_block_avg",
                      s.memExprsPerBlock.avg());
        rep.write(rec);

        printCells({w.display, std::to_string(s.numBlocks),
                    std::to_string(s.numInsts),
                    std::to_string(static_cast<int>(s.instsPerBlock.max())),
                    formatFixed(s.instsPerBlock.avg(), 2),
                    std::to_string(
                        static_cast<int>(s.memExprsPerBlock.max())),
                    formatFixed(s.memExprsPerBlock.avg(), 2)},
                   widths);

        for (const Table3Row &row : paper) {
            if (w.display == row.benchmark) {
                printCells({"  (paper)", std::to_string(row.basicBlocks),
                            std::to_string(row.insts),
                            std::to_string(row.maxInstsPerBlock),
                            formatFixed(row.avgInstsPerBlock, 2),
                            std::to_string(row.maxMemExprsPerBlock),
                            formatFixed(row.avgMemExprsPerBlock, 2)},
                           widths);
            }
        }
    }

    std::printf("\nNotes: programs are synthetic, calibrated to the "
                "paper's structural targets\n(see DESIGN.md, "
                "substitutions).  Block, instruction and max-block "
                "counts are\npinned exactly; memory-expression "
                "statistics are approximate.\n");
    return 0;
}
