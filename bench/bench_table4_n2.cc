/**
 * @file
 * Reproduces Table 4: "Scheduling run times and structural data for
 * n**2 approach" — the compare-against-all forward builder paired
 * with the Section 6 simple forward scheduling pass.
 *
 * Like the paper ("versions of fpppp other than the 1000-instruction
 * maximum were not run for this approach due to the excessive time
 * and space requirements"), the sweep stops at fpppp-1000.
 *
 * Expected shape (paper, SPARCstation-2 seconds): run time explodes
 * with block size — grep 2.2s ... nasa7 49.4s ... fpppp-1000 1522s —
 * while children/inst and arcs/block balloon with the transitive
 * arcs.  Absolute times differ on modern hardware; the growth curve
 * and the structural columns are the reproduction target.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

struct PaperRow
{
    const char *name;
    double seconds;
    int max_children;
    double avg_children;
    int max_arcs;
    double avg_arcs;
};

const PaperRow kPaper[] = {
    {"grep", 2.2, 7, 0.70, 71, 1.66},
    {"regex", 3.0, 8, 0.72, 107, 2.00},
    {"dfa", 5.3, 15, 0.89, 185, 2.61},
    {"cccp", 8.5, 9, 0.67, 94, 1.70},
    {"linpack", 11.1, 34, 2.10, 1024, 18.29},
    {"lloops", 11.6, 22, 1.86, 651, 26.54},
    {"tomcatv", 16.3, 59, 4.91, 4861, 84.53},
    {"nasa7", 49.4, 58, 3.62, 4659, 50.95},
    {"fpppp-1000", 1522.0, 602, 55.61, 155421, 2104.56},
};

} // namespace

int
main()
{
    banner("Table 4: scheduling run times and structural data, "
           "n**2 forward approach");

    std::vector<int> widths{11, 10, 9, 6, 6, 8, 8};
    printCells({"benchmark", "time(ms)", "paper(s)", "ch", "ch", "arcs",
                "arcs"},
               widths);
    printCells({"", "", "", "max", "avg", "max", "avg"}, widths);
    printRule(widths);

    MachineModel machine = sparcstation2();
    auto workloads = baseWorkloads();
    workloads.push_back({"fpppp-1000", "fpppp", 1000});

    BenchReporter rep("table4-n2");
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = workloads[i];
        PipelineOptions opts;
        opts.builder = BuilderKind::N2Forward;
        opts.build.memPolicy = AliasPolicy::SymbolicExpr;
        opts.algorithm = AlgorithmKind::SimpleForward;
        // fpppp-1000 n**2 is heavy; a single timing run suffices there.
        int runs = w.window > 0 ? 1 : 5;
        ProgramResult r = rep.timed(w, machine, opts, runs);

        printCells(
            {w.display, formatFixed(r.totalSeconds() * 1e3, 1),
             formatFixed(kPaper[i].seconds, 1),
             std::to_string(
                 static_cast<int>(r.dagStats.childrenPerInst.max())),
             formatFixed(r.dagStats.childrenPerInst.avg(), 2),
             std::to_string(
                 static_cast<int>(r.dagStats.arcsPerBlock.max())),
             formatFixed(r.dagStats.arcsPerBlock.avg(), 2)},
            widths);
    }

    std::printf("\nPaper comparison points (children/inst avg, "
                "arcs/block avg):\n");
    for (const PaperRow &row : kPaper)
        std::printf("  %-11s paper: ch avg %.2f, arcs avg %.2f\n",
                    row.name, row.avg_children, row.avg_arcs);

    std::printf("\nShape check: time grows superlinearly with block "
                "size (tomcatv and nasa7\ncost far more per "
                "instruction than grep/cccp; fpppp-1000 dominates), "
                "and the\nn**2 DAGs carry an order of magnitude more "
                "arcs than Table 5's.\n");
    return 0;
}
