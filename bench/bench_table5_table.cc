/**
 * @file
 * Reproduces Table 5: "Scheduling run times and structural data for
 * table-building approaches" — forward (Krishnamurthy-like) and
 * backward (Section 2 pseudocode) table building paired with the same
 * simple forward scheduling pass, over all twelve workload rows
 * including the full 11750-instruction fpppp block.
 *
 * Expected shape (paper): both table builders handle every workload
 * without an instruction window (grep 2.0s ... fpppp 26.5s on a
 * SPARCstation-2), the forward and backward variants are essentially
 * equal, and arc counts stay an order of magnitude below Table 4's.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

namespace
{

struct PaperRow
{
    const char *name;
    double fwd_seconds;
    double bwd_seconds;
    int max_children;
    double avg_children;
    int max_arcs;
    double avg_arcs;
};

const PaperRow kPaper[] = {
    {"grep", 2.0, 2.0, 4, 0.52, 42, 1.23},
    {"regex", 2.7, 2.7, 4, 0.53, 41, 1.46},
    {"dfa", 4.5, 4.5, 10, 0.62, 65, 1.81},
    {"cccp", 8.1, 8.0, 7, 0.52, 47, 1.31},
    {"linpack", 3.4, 3.4, 17, 1.02, 258, 8.88},
    {"lloops", 3.7, 3.7, 9, 1.07, 219, 15.29},
    {"tomcatv", 2.3, 2.2, 9, 1.52, 744, 26.14},
    {"nasa7", 9.3, 9.2, 26, 1.26, 572, 17.73},
    {"fpppp-1000", 23.2, 23.1, 185, 2.33, 3098, 88.35},
    {"fpppp-2000", 23.9, 23.6, 403, 2.43, 6345, 93.10},
    {"fpppp-4000", 24.5, 24.5, 503, 2.53, 13059, 97.15},
    {"fpppp", 26.5, 26.8, 503, 2.60, 37881, 100.27},
};

} // namespace

int
main()
{
    banner("Table 5: run times and structural data, table-building "
           "approaches");

    std::vector<int> widths{11, 9, 9, 9, 9, 6, 6, 7, 7};
    printCells({"benchmark", "fwd(ms)", "bwd(ms)", "pap-f(s)",
                "pap-b(s)", "ch", "ch", "arcs", "arcs"},
               widths);
    printCells({"", "", "", "", "", "max", "avg", "max", "avg"}, widths);
    printRule(widths);

    MachineModel machine = sparcstation2();
    auto workloads = allWorkloads();

    BenchReporter rep("table5-table");
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = workloads[i];

        PipelineOptions fwd;
        fwd.builder = BuilderKind::TableForward;
        fwd.build.memPolicy = AliasPolicy::SymbolicExpr;
        fwd.algorithm = AlgorithmKind::SimpleForward;
        ProgramResult rf =
            rep.timed(w, machine, fwd, 5, w.display + "/fwd");

        PipelineOptions bwd = fwd;
        bwd.builder = BuilderKind::TableBackward;
        ProgramResult rb =
            rep.timed(w, machine, bwd, 5, w.display + "/bwd");

        printCells(
            {w.display, formatFixed(rf.totalSeconds() * 1e3, 1),
             formatFixed(rb.totalSeconds() * 1e3, 1),
             formatFixed(kPaper[i].fwd_seconds, 1),
             formatFixed(kPaper[i].bwd_seconds, 1),
             std::to_string(
                 static_cast<int>(rf.dagStats.childrenPerInst.max())),
             formatFixed(rf.dagStats.childrenPerInst.avg(), 2),
             std::to_string(
                 static_cast<int>(rf.dagStats.arcsPerBlock.max())),
             formatFixed(rf.dagStats.arcsPerBlock.avg(), 2)},
            widths);
    }

    // Counted companion runs: one obs-enabled pass per workload,
    // reporting the table builder's unit of work (definition-table and
    // memory-entry probes) next to the arcs it actually created.  The
    // timed runs above keep counters off.
    banner("Table 5 counters: table probes vs arcs (forward builder)");
    std::vector<int> cwidths{11, 12, 10, 10, 12};
    printCells({"benchmark", "probes", "arcs", "dup", "probes/arc"},
               cwidths);
    printRule(cwidths);
    for (const Workload &w : workloads) {
        PipelineOptions fwd;
        fwd.builder = BuilderKind::TableForward;
        fwd.build.memPolicy = AliasPolicy::SymbolicExpr;
        fwd.algorithm = AlgorithmKind::SimpleForward;
        ProgramResult rc = countedPipeline(w, machine, fwd);
        BenchRecord rec;
        rec.workload = w.display + "/counted";
        rec.addScalar("build_seconds", rc.buildSeconds);
        rec.addScalar("heur_seconds", rc.heurSeconds);
        rec.addScalar("sched_seconds", rc.schedSeconds);
        rec.counters = rc.counters;
        rep.write(rec);
        std::uint64_t probes = rc.counters.value("dag.table_probes");
        std::uint64_t arcs = rc.counters.value("dag.arcs_added");
        std::uint64_t dups = rc.counters.value("dag.arcs_duplicate");
        printCells({w.display, std::to_string(probes),
                    std::to_string(arcs), std::to_string(dups),
                    formatFixed(arcs ? static_cast<double>(probes) /
                                           static_cast<double>(arcs)
                                     : 0.0,
                                2)},
                   cwidths);
    }

    std::printf("\nShape check: (1) no instruction window needed even "
                "for the 11750-inst\nfpppp block; (2) forward and "
                "backward table building are essentially equal;\n(3) "
                "run time grows roughly linearly in instructions, not "
                "block size; (4) arc\ncounts are an order of magnitude "
                "below the n**2 builder's (Table 4).\n");
    return 0;
}
