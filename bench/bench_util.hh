/**
 * @file
 * Shared helpers for the table-reproduction benches: workload loading
 * (including the fpppp instruction-window variants), repeated-run
 * timing in the paper's style ("average of user+sys over five runs"),
 * fixed-width table printing, and the versioned BenchRecord schema
 * every bench target emits for the regression harness
 * (tools/bench_compare.cc, docs/PERFORMANCE.md).
 */

#ifndef SCHED91_BENCH_BENCH_UTIL_HH
#define SCHED91_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/sched91.hh"
#include "support/string_util.hh"

namespace sched91::bench
{

/** A benchmark row: profile name plus optional instruction window. */
struct Workload
{
    std::string display;  ///< "fpppp-1000"
    std::string profile;  ///< "fpppp"
    int window = 0;       ///< 0 = none
};

/** The nine Table 3 benchmarks in order. */
inline std::vector<Workload>
baseWorkloads()
{
    return {
        {"grep", "grep", 0},       {"regex", "regex", 0},
        {"dfa", "dfa", 0},         {"cccp", "cccp", 0},
        {"linpack", "linpack", 0}, {"lloops", "lloops", 0},
        {"tomcatv", "tomcatv", 0}, {"nasa7", "nasa7", 0},
    };
}

/** All twelve Table 3 rows (adds the fpppp window variants). */
inline std::vector<Workload>
allWorkloads()
{
    auto v = baseWorkloads();
    v.push_back({"fpppp-1000", "fpppp", 1000});
    v.push_back({"fpppp-2000", "fpppp", 2000});
    v.push_back({"fpppp-4000", "fpppp", 4000});
    v.push_back({"fpppp", "fpppp", 0});
    return v;
}

/** Fresh copy of a workload's program (cached generation). */
inline Program
loadProgram(const Workload &w)
{
    return cachedProgram(w.profile);
}

/** Run the pipeline @p runs times; returns the fastest-of-runs result
 * with times averaged over the runs (paper: average of five). */
inline ProgramResult
timedPipeline(const Workload &w, const MachineModel &machine,
              PipelineOptions opts, int runs = 5)
{
    opts.partition.window = w.window;
    ProgramResult sum{};
    for (int r = 0; r < runs; ++r) {
        Program prog = loadProgram(w);
        ProgramResult res = runPipeline(prog, machine, opts);
        if (r == 0)
            sum = res;
        else {
            sum.buildSeconds += res.buildSeconds;
            sum.heurSeconds += res.heurSeconds;
            sum.schedSeconds += res.schedSeconds;
        }
    }
    sum.buildSeconds /= runs;
    sum.heurSeconds /= runs;
    sum.schedSeconds /= runs;
    return sum;
}

/**
 * One extra pipeline run with the observability layer enabled; the
 * returned result carries the run's counter deltas in `.counters`.
 * Kept separate from timedPipeline so the timed runs measure the
 * counters-off configuration (the shipping default).
 */
inline ProgramResult
countedPipeline(const Workload &w, const MachineModel &machine,
                PipelineOptions opts)
{
    opts.partition.window = w.window;
    bool was_enabled = obs::enabled();
    obs::setEnabled(true);
    Program prog = loadProgram(w);
    ProgramResult res = runPipeline(prog, machine, opts);
    obs::setEnabled(was_enabled);
    return res;
}

// --- Versioned bench records (the regression-harness contract) ------
//
// Every bench target writes BENCH_<bench>.json: one self-describing
// JSON object per line, schema id "sched91.bench.v2".  A record is
// keyed by (bench, workload, threads); its metrics carry median and
// p90 over the record's repetitions so tools/bench_compare.cc can
// diff two runs (or directories of runs) without knowing any bench's
// internals.  Bump the schema id when a field changes meaning —
// bench_compare refuses to diff records with mismatched schemas.

inline constexpr const char *kBenchSchemaId = "sched91.bench.v2";

/** Toolchain-stamped source revision (set by bench/CMakeLists.txt). */
inline const char *
benchGitDescribe()
{
#ifdef SCHED91_GIT_DESCRIBE
    return SCHED91_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

/** Order statistics over repeated measurements of one metric. */
class Samples
{
  public:
    void add(double x) { v_.push_back(x); }
    std::size_t count() const { return v_.size(); }

    /** Empirical quantile (lower element, no interpolation): the
     * value at sorted index floor(q * (n-1)).  Deterministic and
     * robust for the tiny sample counts benches use (1..10 reps). */
    double
    quantile(double q) const
    {
        if (v_.empty())
            return 0.0;
        std::vector<double> s = v_;
        std::sort(s.begin(), s.end());
        double pos = q * static_cast<double>(s.size() - 1);
        std::size_t idx = static_cast<std::size_t>(pos);
        return s[idx];
    }

    double median() const { return quantile(0.5); }
    double p90() const { return quantile(0.9); }

  private:
    std::vector<double> v_;
};

/** One bench observation: a (bench, workload, threads) cell with
 * repeated metric samples and the counter deltas of a counted run. */
struct BenchRecord
{
    std::string workload;  ///< row label, may carry a config suffix
    unsigned threads = 0;  ///< requested lanes (0 = auto)
    int repetitions = 1;   ///< timing repetitions behind the samples
    std::vector<std::pair<std::string, Samples>> metrics;
    obs::CounterSet counters;

    /** Sample accumulator for @p name (appends on first use). */
    Samples &
    metric(const std::string &name)
    {
        for (auto &[n, s] : metrics)
            if (n == name)
                return s;
        metrics.emplace_back(name, Samples{});
        return metrics.back().second;
    }

    /** Record a derived scalar (speedup, ratio): one-sample metric. */
    void addScalar(const std::string &name, double value)
    {
        metric(name).add(value);
    }

    /** Record the per-phase seconds of one pipeline run. */
    void
    addPhases(const ProgramResult &res)
    {
        metric("build_seconds").add(res.buildSeconds);
        metric("heur_seconds").add(res.heurSeconds);
        metric("sched_seconds").add(res.schedSeconds);
        metric("total_seconds").add(res.totalSeconds());
    }
};

/**
 * Writes BENCH_<bench>.json in the current directory, one versioned
 * record per line.  Construct once per bench main(); records flow
 * through write() or the timed() convenience wrapper.
 */
class BenchReporter
{
  public:
    explicit BenchReporter(std::string bench)
        : bench_(std::move(bench)),
          out_(std::fopen(("BENCH_" + bench_ + ".json").c_str(), "w"))
    {
    }

    ~BenchReporter()
    {
        if (out_)
            std::fclose(out_);
    }

    BenchReporter(const BenchReporter &) = delete;
    BenchReporter &operator=(const BenchReporter &) = delete;

    const std::string &bench() const { return bench_; }

    void
    write(const BenchRecord &rec)
    {
        if (!out_)
            return;
        obs::JsonWriter w;
        w.beginObject()
            .key("schema").value(kBenchSchemaId)
            .key("bench").value(bench_)
            .key("workload").value(rec.workload)
            .key("git").value(benchGitDescribe())
            .key("threads")
            .value(static_cast<std::uint64_t>(rec.threads))
            .key("repetitions")
            .value(static_cast<std::uint64_t>(
                rec.repetitions > 0 ? rec.repetitions : 1));
        w.key("metrics").beginObject();
        for (const auto &[name, s] : rec.metrics) {
            w.key(name).beginObject()
                .key("median").value(s.median())
                .key("p90").value(s.p90())
                .endObject();
        }
        w.endObject();
        w.key("counters");
        obs::CounterSet nz = rec.counters.nonzero();
        w.beginObject();
        for (const auto &[name, value] : nz.items())
            w.key(name).value(value);
        w.endObject().endObject();
        std::fprintf(out_, "%s\n", w.take().c_str());
    }

    /**
     * Drop-in replacement for timedPipeline that also emits a record:
     * times @p runs repetitions (wall + per-phase seconds), attaches
     * the counter deltas of one extra observability-enabled run, and
     * returns the run-averaged result for the printed tables.  Pass
     * @p label when one workload appears under several configurations
     * ("fpppp/bwd"); it defaults to the workload display name.
     */
    ProgramResult
    timed(const Workload &w, const MachineModel &machine,
          PipelineOptions opts, int runs = 5,
          const std::string &label = "")
    {
        opts.partition.window = w.window;
        BenchRecord rec;
        rec.workload = label.empty() ? w.display : label;
        rec.threads = opts.threads;
        rec.repetitions = runs;
        ProgramResult avg{};
        for (int r = 0; r < runs; ++r) {
            Program prog = loadProgram(w);
            auto t0 = std::chrono::steady_clock::now();
            ProgramResult res = runPipeline(prog, machine, opts);
            auto t1 = std::chrono::steady_clock::now();
            rec.metric("wall_seconds")
                .add(std::chrono::duration<double>(t1 - t0).count());
            rec.addPhases(res);
            if (r == 0)
                avg = res;
            else {
                avg.buildSeconds += res.buildSeconds;
                avg.heurSeconds += res.heurSeconds;
                avg.schedSeconds += res.schedSeconds;
            }
        }
        avg.buildSeconds /= runs;
        avg.heurSeconds /= runs;
        avg.schedSeconds /= runs;
        rec.counters = countedPipeline(w, machine, opts).counters;
        write(rec);
        return avg;
    }

  private:
    std::string bench_;
    std::FILE *out_;
};

/** printf a row of right-aligned cells. */
inline void
printCells(const std::vector<std::string> &cells,
           const std::vector<int> &widths)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::string pad = i == 0 ? padRight(cells[i], widths[i])
                                 : padLeft(cells[i], widths[i]);
        std::fputs(pad.c_str(), stdout);
        std::fputs(i + 1 == cells.size() ? "\n" : "  ", stdout);
    }
}

/** Horizontal rule sized to the column widths. */
inline void
printRule(const std::vector<int> &widths)
{
    int total = 0;
    for (int w : widths)
        total += w + 2;
    for (int i = 0; i < total - 2; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace sched91::bench

#endif // SCHED91_BENCH_BENCH_UTIL_HH
