/**
 * @file
 * Shared helpers for the table-reproduction benches: workload loading
 * (including the fpppp instruction-window variants), repeated-run
 * timing in the paper's style ("average of user+sys over five runs"),
 * and fixed-width table printing.
 */

#ifndef SCHED91_BENCH_BENCH_UTIL_HH
#define SCHED91_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/sched91.hh"
#include "support/string_util.hh"

namespace sched91::bench
{

/** A benchmark row: profile name plus optional instruction window. */
struct Workload
{
    std::string display;  ///< "fpppp-1000"
    std::string profile;  ///< "fpppp"
    int window = 0;       ///< 0 = none
};

/** The nine Table 3 benchmarks in order. */
inline std::vector<Workload>
baseWorkloads()
{
    return {
        {"grep", "grep", 0},       {"regex", "regex", 0},
        {"dfa", "dfa", 0},         {"cccp", "cccp", 0},
        {"linpack", "linpack", 0}, {"lloops", "lloops", 0},
        {"tomcatv", "tomcatv", 0}, {"nasa7", "nasa7", 0},
    };
}

/** All twelve Table 3 rows (adds the fpppp window variants). */
inline std::vector<Workload>
allWorkloads()
{
    auto v = baseWorkloads();
    v.push_back({"fpppp-1000", "fpppp", 1000});
    v.push_back({"fpppp-2000", "fpppp", 2000});
    v.push_back({"fpppp-4000", "fpppp", 4000});
    v.push_back({"fpppp", "fpppp", 0});
    return v;
}

/** Fresh copy of a workload's program (cached generation). */
inline Program
loadProgram(const Workload &w)
{
    return cachedProgram(w.profile);
}

/** Run the pipeline @p runs times; returns the fastest-of-runs result
 * with times averaged over the runs (paper: average of five). */
inline ProgramResult
timedPipeline(const Workload &w, const MachineModel &machine,
              PipelineOptions opts, int runs = 5)
{
    opts.partition.window = w.window;
    ProgramResult sum{};
    for (int r = 0; r < runs; ++r) {
        Program prog = loadProgram(w);
        ProgramResult res = runPipeline(prog, machine, opts);
        if (r == 0)
            sum = res;
        else {
            sum.buildSeconds += res.buildSeconds;
            sum.heurSeconds += res.heurSeconds;
            sum.schedSeconds += res.schedSeconds;
        }
    }
    sum.buildSeconds /= runs;
    sum.heurSeconds /= runs;
    sum.schedSeconds /= runs;
    return sum;
}

/**
 * One extra pipeline run with the observability layer enabled; the
 * returned result carries the run's counter deltas in `.counters`.
 * Kept separate from timedPipeline so the timed runs measure the
 * counters-off configuration (the shipping default).
 */
inline ProgramResult
countedPipeline(const Workload &w, const MachineModel &machine,
                PipelineOptions opts)
{
    opts.partition.window = w.window;
    bool was_enabled = obs::enabled();
    obs::setEnabled(true);
    Program prog = loadProgram(w);
    ProgramResult res = runPipeline(prog, machine, opts);
    obs::setEnabled(was_enabled);
    return res;
}

/**
 * Emit one bench observation as a JSON line on @p out (one object per
 * workload/config: name, phase seconds, optional bench-specific
 * numeric fields, and nonzero counter deltas).  Machine-readable
 * companion to the printed tables.
 */
inline void
emitBenchJsonLine(std::FILE *out, const std::string &bench,
                  const std::string &workload, const ProgramResult &res,
                  const std::vector<std::pair<std::string, double>>
                      &extra = {})
{
    obs::JsonWriter w;
    w.beginObject()
        .key("bench").value(bench)
        .key("workload").value(workload)
        .key("build_seconds").value(res.buildSeconds)
        .key("heur_seconds").value(res.heurSeconds)
        .key("sched_seconds").value(res.schedSeconds);
    for (const auto &[name, value] : extra)
        w.key(name).value(value);
    w.key("counters");
    obs::CounterSet nz = res.counters.nonzero();
    w.beginObject();
    for (const auto &[name, value] : nz.items())
        w.key(name).value(value);
    w.endObject().endObject();
    std::fprintf(out, "%s\n", w.take().c_str());
}

/** printf a row of right-aligned cells. */
inline void
printCells(const std::vector<std::string> &cells,
           const std::vector<int> &widths)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::string pad = i == 0 ? padRight(cells[i], widths[i])
                                 : padLeft(cells[i], widths[i]);
        std::fputs(pad.c_str(), stdout);
        std::fputs(i + 1 == cells.size() ? "\n" : "  ", stdout);
    }
}

/** Horizontal rule sized to the column widths. */
inline void
printRule(const std::vector<int> &widths)
{
    int total = 0;
    for (int w : widths)
        total += w + 2;
    for (int i = 0; i < total - 2; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace sched91::bench

#endif // SCHED91_BENCH_BENCH_UTIL_HH
