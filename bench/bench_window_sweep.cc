/**
 * @file
 * Reproduces the Section 6 instruction-window analysis: "For the n**2
 * algorithm to remain practical, an instruction window size (i.e.,
 * maximum basic block size) of no more than 300-400 instructions
 * should be maintained (cf. tomcatv and nasa7).  The table-building
 * methods do not require the use of instruction windows."
 *
 * Sweeps the window size on the large-block workloads and prints the
 * total pipeline time for the n**2 builder next to the (flat)
 * table-building time.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Instruction-window sweep: n**2 vs table building "
           "(conclusions 1 & 2)");

    BenchReporter rep("window-sweep");
    MachineModel machine = sparcstation2();
    const int windows[] = {50, 100, 200, 300, 400, 800, 1000, 2000};

    for (const char *profile : {"tomcatv", "nasa7", "fpppp"}) {
        std::printf("\n-- %s --\n", profile);
        std::vector<int> widths{8, 9, 12, 12, 8};
        printCells({"window", "blocks", "n**2(ms)", "table(ms)",
                    "ratio"},
                   widths);
        printRule(widths);

        for (int window : windows) {
            Workload w{std::string(profile) + "-" +
                           std::to_string(window),
                       profile, window};

            // fpppp n**2 beyond a 2000 window explodes, as the paper
            // found; keep the sweep affordable.
            if (std::string(profile) == "fpppp" && window > 2000)
                continue;

            PipelineOptions n2;
            n2.builder = BuilderKind::N2Forward;
            n2.build.memPolicy = AliasPolicy::SymbolicExpr;
            n2.algorithm = AlgorithmKind::SimpleForward;
            n2.partition.window = window;
            ProgramResult rn =
                rep.timed(w, machine, n2, 2, w.display + "/n2");

            PipelineOptions table = n2;
            table.builder = BuilderKind::TableForward;
            ProgramResult rt =
                rep.timed(w, machine, table, 2, w.display + "/table");

            printCells({std::to_string(window),
                        std::to_string(rn.numBlocks),
                        formatFixed(rn.totalSeconds() * 1e3, 2),
                        formatFixed(rt.totalSeconds() * 1e3, 2),
                        formatFixed(rn.totalSeconds() /
                                        rt.totalSeconds(),
                                    1)},
                       widths);
        }

        // No window at all: the table builders' headline capability.
        Workload w{std::string(profile), profile, 0};
        PipelineOptions table;
        table.builder = BuilderKind::TableForward;
        table.algorithm = AlgorithmKind::SimpleForward;
        table.build.memPolicy = AliasPolicy::SymbolicExpr;
        ProgramResult rt = rep.timed(w, machine, table, 2,
                                     w.display + "-none/table");
        printCells({"none", std::to_string(rt.numBlocks), "-",
                    formatFixed(rt.totalSeconds() * 1e3, 2), "-"},
                   widths);
    }

    std::printf("\nShape check: the n**2/table ratio grows with the "
                "window (roughly linearly\nin block size), crossing "
                "from tolerable to impractical around the paper's\n"
                "300-400 instruction bound, while table building is "
                "flat and needs no\nwindow at all.\n");
    return 0;
}
