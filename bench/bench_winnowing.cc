/**
 * @file
 * Which heuristics actually decide? (paper Section 5)
 *
 * "Some algorithms combine the heuristic information into a single
 * priority value per node, while others apply heuristics in a given
 * order in a winnowing-like process ... the use of minimum path to a
 * root in Shieh and Papachristou could possibly be omitted or
 * replaced with little effect because it is the last heuristic to be
 * applied."
 *
 * This bench runs every algorithm's winnowing chain with decision
 * accounting over the workload suite and prints, per rank, how often
 * that heuristic was the one that singled out the winner — a direct
 * quantitative test of the paper's omission claim.
 */

#include "bench_util.hh"

using namespace sched91;
using namespace sched91::bench;

int
main()
{
    banner("Winnowing decisiveness per heuristic rank "
           "(paper Section 5)");

    BenchReporter rep("winnowing");
    MachineModel machine = sparcstation2();
    std::vector<Workload> workloads{
        {"grep", "grep", 0},       {"cccp", "cccp", 0},
        {"linpack", "linpack", 0}, {"lloops", "lloops", 0},
        {"tomcatv", "tomcatv", 0}, {"nasa7", "nasa7", 0},
    };

    for (AlgorithmKind kind : publishedAlgorithms()) {
        AlgorithmSpec spec = algorithmSpec(kind);
        ListScheduler scheduler(spec.config, machine);
        std::unique_ptr<DagBuilder> builder =
            makeBuilder(spec.preferredBuilder);

        DecisionStats stats;
        for (const Workload &w : workloads) {
            Program prog = loadProgram(w);
            auto blocks = partitionBlocks(prog);
            for (const auto &bb : blocks) {
                BlockView block(prog, bb);
                PipelineOptions opts;
                opts.algorithm = kind;
                opts.builder = spec.preferredBuilder;
                Dag dag = builder->build(block, machine, opts.build);
                runAllStaticPasses(dag, PassImpl::ReverseWalk,
                                   spec.config.needsDescendants);
                if (spec.config.needsRegisterPressure)
                    computeRegisterPressure(dag);
                scheduler.run(dag, &stats);
            }
        }

        std::printf("%s  (%lld picks, %lld single-candidate)\n",
                    std::string(algorithmName(kind)).c_str(),
                    stats.totalPicks, stats.trivialPicks);
        long long contested = stats.totalPicks - stats.trivialPicks;
        BenchRecord rec;
        rec.workload = std::string(algorithmName(kind));
        rec.addScalar("total_picks",
                      static_cast<double>(stats.totalPicks));
        rec.addScalar("trivial_picks",
                      static_cast<double>(stats.trivialPicks));
        rec.addScalar("original_order_ties",
                      static_cast<double>(stats.originalOrderTies));
        for (std::size_t r = 0; r < stats.decidedAtRank.size(); ++r)
            rec.addScalar(
                "decided_at_rank_" + std::to_string(r + 1),
                static_cast<double>(stats.decidedAtRank[r]));
        rep.write(rec);
        for (std::size_t r = 0; r < stats.decidedAtRank.size(); ++r) {
            double pct = contested
                             ? 100.0 * stats.decidedAtRank[r] /
                                   static_cast<double>(contested)
                             : 0.0;
            std::printf("  rank %zu %-38s %8lld  (%5.1f%%)\n", r + 1,
                        heuristicInfo(spec.config.ranking[r].heuristic)
                            .name,
                        stats.decidedAtRank[r], pct);
        }
        double tie_pct = contested
                             ? 100.0 * stats.originalOrderTies /
                                   static_cast<double>(contested)
                             : 0.0;
        std::printf("  ----- original order tie break %15lld  "
                    "(%5.1f%%)\n\n",
                    stats.originalOrderTies, tie_pct);
    }

    std::printf("Reading: a rank that decides ~0%% of contested picks "
                "is removable with\nlittle effect — the paper's "
                "Section 5 conjecture about Shieh & Papachristou's\n"
                "last heuristic, now measured.\n");
    return 0;
}
