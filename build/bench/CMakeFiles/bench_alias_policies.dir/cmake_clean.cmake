file(REMOVE_RECURSE
  "CMakeFiles/bench_alias_policies.dir/bench_alias_policies.cc.o"
  "CMakeFiles/bench_alias_policies.dir/bench_alias_policies.cc.o.d"
  "bench_alias_policies"
  "bench_alias_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alias_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
