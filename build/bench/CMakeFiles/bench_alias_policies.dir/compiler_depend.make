# Empty compiler generated dependencies file for bench_alias_policies.
# This may be replaced when dependencies are built.
