file(REMOVE_RECURSE
  "CMakeFiles/bench_block_attributes.dir/bench_block_attributes.cc.o"
  "CMakeFiles/bench_block_attributes.dir/bench_block_attributes.cc.o.d"
  "bench_block_attributes"
  "bench_block_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
