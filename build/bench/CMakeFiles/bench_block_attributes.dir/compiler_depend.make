# Empty compiler generated dependencies file for bench_block_attributes.
# This may be replaced when dependencies are built.
