file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_transitive.dir/bench_figure1_transitive.cc.o"
  "CMakeFiles/bench_figure1_transitive.dir/bench_figure1_transitive.cc.o.d"
  "bench_figure1_transitive"
  "bench_figure1_transitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_transitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
