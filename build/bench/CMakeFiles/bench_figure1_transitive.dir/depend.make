# Empty dependencies file for bench_figure1_transitive.
# This may be replaced when dependencies are built.
