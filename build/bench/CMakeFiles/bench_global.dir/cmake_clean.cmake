file(REMOVE_RECURSE
  "CMakeFiles/bench_global.dir/bench_global.cc.o"
  "CMakeFiles/bench_global.dir/bench_global.cc.o.d"
  "bench_global"
  "bench_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
