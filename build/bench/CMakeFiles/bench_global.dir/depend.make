# Empty dependencies file for bench_global.
# This may be replaced when dependencies are built.
