file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_pass.dir/bench_heuristic_pass.cc.o"
  "CMakeFiles/bench_heuristic_pass.dir/bench_heuristic_pass.cc.o.d"
  "bench_heuristic_pass"
  "bench_heuristic_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
