# Empty compiler generated dependencies file for bench_heuristic_pass.
# This may be replaced when dependencies are built.
