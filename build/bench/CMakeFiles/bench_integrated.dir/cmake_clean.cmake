file(REMOVE_RECURSE
  "CMakeFiles/bench_integrated.dir/bench_integrated.cc.o"
  "CMakeFiles/bench_integrated.dir/bench_integrated.cc.o.d"
  "bench_integrated"
  "bench_integrated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integrated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
