# Empty dependencies file for bench_integrated.
# This may be replaced when dependencies are built.
