file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_ablation.dir/bench_machine_ablation.cc.o"
  "CMakeFiles/bench_machine_ablation.dir/bench_machine_ablation.cc.o.d"
  "bench_machine_ablation"
  "bench_machine_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
