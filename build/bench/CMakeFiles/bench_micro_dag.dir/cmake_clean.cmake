file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dag.dir/bench_micro_dag.cc.o"
  "CMakeFiles/bench_micro_dag.dir/bench_micro_dag.cc.o.d"
  "bench_micro_dag"
  "bench_micro_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
