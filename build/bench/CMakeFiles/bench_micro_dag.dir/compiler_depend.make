# Empty compiler generated dependencies file for bench_micro_dag.
# This may be replaced when dependencies are built.
