file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal.dir/bench_optimal.cc.o"
  "CMakeFiles/bench_optimal.dir/bench_optimal.cc.o.d"
  "bench_optimal"
  "bench_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
