# Empty compiler generated dependencies file for bench_optimal.
# This may be replaced when dependencies are built.
