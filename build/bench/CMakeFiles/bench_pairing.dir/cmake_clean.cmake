file(REMOVE_RECURSE
  "CMakeFiles/bench_pairing.dir/bench_pairing.cc.o"
  "CMakeFiles/bench_pairing.dir/bench_pairing.cc.o.d"
  "bench_pairing"
  "bench_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
