# Empty compiler generated dependencies file for bench_pairing.
# This may be replaced when dependencies are built.
