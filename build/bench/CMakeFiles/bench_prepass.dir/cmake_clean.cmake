file(REMOVE_RECURSE
  "CMakeFiles/bench_prepass.dir/bench_prepass.cc.o"
  "CMakeFiles/bench_prepass.dir/bench_prepass.cc.o.d"
  "bench_prepass"
  "bench_prepass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prepass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
