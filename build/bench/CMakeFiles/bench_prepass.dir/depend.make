# Empty dependencies file for bench_prepass.
# This may be replaced when dependencies are built.
