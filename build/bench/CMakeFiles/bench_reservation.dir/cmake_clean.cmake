file(REMOVE_RECURSE
  "CMakeFiles/bench_reservation.dir/bench_reservation.cc.o"
  "CMakeFiles/bench_reservation.dir/bench_reservation.cc.o.d"
  "bench_reservation"
  "bench_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
