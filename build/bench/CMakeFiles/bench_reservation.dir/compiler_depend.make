# Empty compiler generated dependencies file for bench_reservation.
# This may be replaced when dependencies are built.
