file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_heuristics.dir/bench_table1_heuristics.cc.o"
  "CMakeFiles/bench_table1_heuristics.dir/bench_table1_heuristics.cc.o.d"
  "bench_table1_heuristics"
  "bench_table1_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
