# Empty dependencies file for bench_table1_heuristics.
# This may be replaced when dependencies are built.
