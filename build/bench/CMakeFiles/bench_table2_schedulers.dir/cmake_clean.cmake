file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_schedulers.dir/bench_table2_schedulers.cc.o"
  "CMakeFiles/bench_table2_schedulers.dir/bench_table2_schedulers.cc.o.d"
  "bench_table2_schedulers"
  "bench_table2_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
