# Empty dependencies file for bench_table2_schedulers.
# This may be replaced when dependencies are built.
