file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_structure.dir/bench_table3_structure.cc.o"
  "CMakeFiles/bench_table3_structure.dir/bench_table3_structure.cc.o.d"
  "bench_table3_structure"
  "bench_table3_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
