# Empty compiler generated dependencies file for bench_table3_structure.
# This may be replaced when dependencies are built.
