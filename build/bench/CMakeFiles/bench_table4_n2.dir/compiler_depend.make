# Empty compiler generated dependencies file for bench_table4_n2.
# This may be replaced when dependencies are built.
