file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_table.dir/bench_table5_table.cc.o"
  "CMakeFiles/bench_table5_table.dir/bench_table5_table.cc.o.d"
  "bench_table5_table"
  "bench_table5_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
