# Empty compiler generated dependencies file for bench_table5_table.
# This may be replaced when dependencies are built.
