file(REMOVE_RECURSE
  "CMakeFiles/bench_window_sweep.dir/bench_window_sweep.cc.o"
  "CMakeFiles/bench_window_sweep.dir/bench_window_sweep.cc.o.d"
  "bench_window_sweep"
  "bench_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
