# Empty compiler generated dependencies file for bench_window_sweep.
# This may be replaced when dependencies are built.
