file(REMOVE_RECURSE
  "CMakeFiles/bench_winnowing.dir/bench_winnowing.cc.o"
  "CMakeFiles/bench_winnowing.dir/bench_winnowing.cc.o.d"
  "bench_winnowing"
  "bench_winnowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_winnowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
