# Empty compiler generated dependencies file for bench_winnowing.
# This may be replaced when dependencies are built.
