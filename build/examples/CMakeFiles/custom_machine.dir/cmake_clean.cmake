file(REMOVE_RECURSE
  "CMakeFiles/custom_machine.dir/custom_machine.cpp.o"
  "CMakeFiles/custom_machine.dir/custom_machine.cpp.o.d"
  "custom_machine"
  "custom_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
