# Empty compiler generated dependencies file for extensions_tour.
# This may be replaced when dependencies are built.
