file(REMOVE_RECURSE
  "CMakeFiles/prepass_pressure.dir/prepass_pressure.cpp.o"
  "CMakeFiles/prepass_pressure.dir/prepass_pressure.cpp.o.d"
  "prepass_pressure"
  "prepass_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepass_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
