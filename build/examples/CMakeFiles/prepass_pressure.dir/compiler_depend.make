# Empty compiler generated dependencies file for prepass_pressure.
# This may be replaced when dependencies are built.
