file(REMOVE_RECURSE
  "CMakeFiles/superscalar.dir/superscalar.cpp.o"
  "CMakeFiles/superscalar.dir/superscalar.cpp.o.d"
  "superscalar"
  "superscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
