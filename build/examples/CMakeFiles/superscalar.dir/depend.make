# Empty dependencies file for superscalar.
# This may be replaced when dependencies are built.
