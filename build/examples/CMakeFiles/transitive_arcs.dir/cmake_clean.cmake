file(REMOVE_RECURSE
  "CMakeFiles/transitive_arcs.dir/transitive_arcs.cpp.o"
  "CMakeFiles/transitive_arcs.dir/transitive_arcs.cpp.o.d"
  "transitive_arcs"
  "transitive_arcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transitive_arcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
