# Empty dependencies file for transitive_arcs.
# This may be replaced when dependencies are built.
