
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cc" "src/CMakeFiles/sched91.dir/core/backend.cc.o" "gcc" "src/CMakeFiles/sched91.dir/core/backend.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/sched91.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/sched91.dir/core/pipeline.cc.o.d"
  "/root/repo/src/dag/builder.cc" "src/CMakeFiles/sched91.dir/dag/builder.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/builder.cc.o.d"
  "/root/repo/src/dag/dag.cc" "src/CMakeFiles/sched91.dir/dag/dag.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/dag.cc.o.d"
  "/root/repo/src/dag/dag_stats.cc" "src/CMakeFiles/sched91.dir/dag/dag_stats.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/dag_stats.cc.o.d"
  "/root/repo/src/dag/dot_export.cc" "src/CMakeFiles/sched91.dir/dag/dot_export.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/dot_export.cc.o.d"
  "/root/repo/src/dag/memdep.cc" "src/CMakeFiles/sched91.dir/dag/memdep.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/memdep.cc.o.d"
  "/root/repo/src/dag/n2_forward.cc" "src/CMakeFiles/sched91.dir/dag/n2_forward.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/n2_forward.cc.o.d"
  "/root/repo/src/dag/n2_landskov.cc" "src/CMakeFiles/sched91.dir/dag/n2_landskov.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/n2_landskov.cc.o.d"
  "/root/repo/src/dag/table_backward.cc" "src/CMakeFiles/sched91.dir/dag/table_backward.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/table_backward.cc.o.d"
  "/root/repo/src/dag/table_forward.cc" "src/CMakeFiles/sched91.dir/dag/table_forward.cc.o" "gcc" "src/CMakeFiles/sched91.dir/dag/table_forward.cc.o.d"
  "/root/repo/src/heuristics/dynamic.cc" "src/CMakeFiles/sched91.dir/heuristics/dynamic.cc.o" "gcc" "src/CMakeFiles/sched91.dir/heuristics/dynamic.cc.o.d"
  "/root/repo/src/heuristics/heuristic.cc" "src/CMakeFiles/sched91.dir/heuristics/heuristic.cc.o" "gcc" "src/CMakeFiles/sched91.dir/heuristics/heuristic.cc.o.d"
  "/root/repo/src/heuristics/register_pressure.cc" "src/CMakeFiles/sched91.dir/heuristics/register_pressure.cc.o" "gcc" "src/CMakeFiles/sched91.dir/heuristics/register_pressure.cc.o.d"
  "/root/repo/src/heuristics/static_passes.cc" "src/CMakeFiles/sched91.dir/heuristics/static_passes.cc.o" "gcc" "src/CMakeFiles/sched91.dir/heuristics/static_passes.cc.o.d"
  "/root/repo/src/ir/basic_block.cc" "src/CMakeFiles/sched91.dir/ir/basic_block.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/basic_block.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/CMakeFiles/sched91.dir/ir/instruction.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/instruction.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/CMakeFiles/sched91.dir/ir/opcode.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/opcode.cc.o.d"
  "/root/repo/src/ir/operand.cc" "src/CMakeFiles/sched91.dir/ir/operand.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/operand.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/CMakeFiles/sched91.dir/ir/parser.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/parser.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/CMakeFiles/sched91.dir/ir/program.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/program.cc.o.d"
  "/root/repo/src/ir/resource.cc" "src/CMakeFiles/sched91.dir/ir/resource.cc.o" "gcc" "src/CMakeFiles/sched91.dir/ir/resource.cc.o.d"
  "/root/repo/src/machine/function_unit.cc" "src/CMakeFiles/sched91.dir/machine/function_unit.cc.o" "gcc" "src/CMakeFiles/sched91.dir/machine/function_unit.cc.o.d"
  "/root/repo/src/machine/machine_model.cc" "src/CMakeFiles/sched91.dir/machine/machine_model.cc.o" "gcc" "src/CMakeFiles/sched91.dir/machine/machine_model.cc.o.d"
  "/root/repo/src/machine/presets.cc" "src/CMakeFiles/sched91.dir/machine/presets.cc.o" "gcc" "src/CMakeFiles/sched91.dir/machine/presets.cc.o.d"
  "/root/repo/src/regalloc/local_allocator.cc" "src/CMakeFiles/sched91.dir/regalloc/local_allocator.cc.o" "gcc" "src/CMakeFiles/sched91.dir/regalloc/local_allocator.cc.o.d"
  "/root/repo/src/sched/algorithms/gibbons_muchnick.cc" "src/CMakeFiles/sched91.dir/sched/algorithms/gibbons_muchnick.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/algorithms/gibbons_muchnick.cc.o.d"
  "/root/repo/src/sched/algorithms/krishnamurthy.cc" "src/CMakeFiles/sched91.dir/sched/algorithms/krishnamurthy.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/algorithms/krishnamurthy.cc.o.d"
  "/root/repo/src/sched/algorithms/schlansker.cc" "src/CMakeFiles/sched91.dir/sched/algorithms/schlansker.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/algorithms/schlansker.cc.o.d"
  "/root/repo/src/sched/algorithms/shieh_papachristou.cc" "src/CMakeFiles/sched91.dir/sched/algorithms/shieh_papachristou.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/algorithms/shieh_papachristou.cc.o.d"
  "/root/repo/src/sched/algorithms/tiemann.cc" "src/CMakeFiles/sched91.dir/sched/algorithms/tiemann.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/algorithms/tiemann.cc.o.d"
  "/root/repo/src/sched/algorithms/warren.cc" "src/CMakeFiles/sched91.dir/sched/algorithms/warren.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/algorithms/warren.cc.o.d"
  "/root/repo/src/sched/branch_and_bound.cc" "src/CMakeFiles/sched91.dir/sched/branch_and_bound.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/branch_and_bound.cc.o.d"
  "/root/repo/src/sched/delay_slot.cc" "src/CMakeFiles/sched91.dir/sched/delay_slot.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/delay_slot.cc.o.d"
  "/root/repo/src/sched/fixup.cc" "src/CMakeFiles/sched91.dir/sched/fixup.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/fixup.cc.o.d"
  "/root/repo/src/sched/global_info.cc" "src/CMakeFiles/sched91.dir/sched/global_info.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/global_info.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/CMakeFiles/sched91.dir/sched/list_scheduler.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/list_scheduler.cc.o.d"
  "/root/repo/src/sched/pipeline_sim.cc" "src/CMakeFiles/sched91.dir/sched/pipeline_sim.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/pipeline_sim.cc.o.d"
  "/root/repo/src/sched/registry.cc" "src/CMakeFiles/sched91.dir/sched/registry.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/registry.cc.o.d"
  "/root/repo/src/sched/report.cc" "src/CMakeFiles/sched91.dir/sched/report.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/report.cc.o.d"
  "/root/repo/src/sched/reservation.cc" "src/CMakeFiles/sched91.dir/sched/reservation.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/reservation.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/CMakeFiles/sched91.dir/sched/schedule.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/schedule.cc.o.d"
  "/root/repo/src/sched/simple_forward.cc" "src/CMakeFiles/sched91.dir/sched/simple_forward.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/simple_forward.cc.o.d"
  "/root/repo/src/sched/timeline.cc" "src/CMakeFiles/sched91.dir/sched/timeline.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sched/timeline.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/CMakeFiles/sched91.dir/sim/executor.cc.o" "gcc" "src/CMakeFiles/sched91.dir/sim/executor.cc.o.d"
  "/root/repo/src/support/bitmap.cc" "src/CMakeFiles/sched91.dir/support/bitmap.cc.o" "gcc" "src/CMakeFiles/sched91.dir/support/bitmap.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/sched91.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/sched91.dir/support/stats.cc.o.d"
  "/root/repo/src/support/string_util.cc" "src/CMakeFiles/sched91.dir/support/string_util.cc.o" "gcc" "src/CMakeFiles/sched91.dir/support/string_util.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/sched91.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/sched91.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/kernels.cc" "src/CMakeFiles/sched91.dir/workload/kernels.cc.o" "gcc" "src/CMakeFiles/sched91.dir/workload/kernels.cc.o.d"
  "/root/repo/src/workload/profiles.cc" "src/CMakeFiles/sched91.dir/workload/profiles.cc.o" "gcc" "src/CMakeFiles/sched91.dir/workload/profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
