file(REMOVE_RECURSE
  "libsched91.a"
)
