# Empty compiler generated dependencies file for sched91.
# This may be replaced when dependencies are built.
