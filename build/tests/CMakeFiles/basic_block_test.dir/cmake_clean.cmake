file(REMOVE_RECURSE
  "CMakeFiles/basic_block_test.dir/basic_block_test.cc.o"
  "CMakeFiles/basic_block_test.dir/basic_block_test.cc.o.d"
  "basic_block_test"
  "basic_block_test.pdb"
  "basic_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
