# Empty dependencies file for basic_block_test.
# This may be replaced when dependencies are built.
