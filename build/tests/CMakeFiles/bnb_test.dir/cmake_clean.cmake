file(REMOVE_RECURSE
  "CMakeFiles/bnb_test.dir/bnb_test.cc.o"
  "CMakeFiles/bnb_test.dir/bnb_test.cc.o.d"
  "bnb_test"
  "bnb_test.pdb"
  "bnb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bnb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
