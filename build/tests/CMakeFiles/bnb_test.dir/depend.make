# Empty dependencies file for bnb_test.
# This may be replaced when dependencies are built.
