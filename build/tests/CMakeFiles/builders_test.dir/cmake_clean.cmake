file(REMOVE_RECURSE
  "CMakeFiles/builders_test.dir/builders_test.cc.o"
  "CMakeFiles/builders_test.dir/builders_test.cc.o.d"
  "builders_test"
  "builders_test.pdb"
  "builders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
