# Empty compiler generated dependencies file for builders_test.
# This may be replaced when dependencies are built.
