file(REMOVE_RECURSE
  "CMakeFiles/dag_test.dir/dag_test.cc.o"
  "CMakeFiles/dag_test.dir/dag_test.cc.o.d"
  "dag_test"
  "dag_test.pdb"
  "dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
