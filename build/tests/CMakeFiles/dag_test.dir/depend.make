# Empty dependencies file for dag_test.
# This may be replaced when dependencies are built.
