file(REMOVE_RECURSE
  "CMakeFiles/decision_stats_test.dir/decision_stats_test.cc.o"
  "CMakeFiles/decision_stats_test.dir/decision_stats_test.cc.o.d"
  "decision_stats_test"
  "decision_stats_test.pdb"
  "decision_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
