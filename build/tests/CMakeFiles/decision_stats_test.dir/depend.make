# Empty dependencies file for decision_stats_test.
# This may be replaced when dependencies are built.
