file(REMOVE_RECURSE
  "CMakeFiles/delay_slot_test.dir/delay_slot_test.cc.o"
  "CMakeFiles/delay_slot_test.dir/delay_slot_test.cc.o.d"
  "delay_slot_test"
  "delay_slot_test.pdb"
  "delay_slot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_slot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
