# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for delay_slot_test.
