# Empty dependencies file for delay_slot_test.
# This may be replaced when dependencies are built.
