file(REMOVE_RECURSE
  "CMakeFiles/dot_test.dir/dot_test.cc.o"
  "CMakeFiles/dot_test.dir/dot_test.cc.o.d"
  "dot_test"
  "dot_test.pdb"
  "dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
