file(REMOVE_RECURSE
  "CMakeFiles/figure1_test.dir/figure1_test.cc.o"
  "CMakeFiles/figure1_test.dir/figure1_test.cc.o.d"
  "figure1_test"
  "figure1_test.pdb"
  "figure1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
