# Empty dependencies file for figure1_test.
# This may be replaced when dependencies are built.
