file(REMOVE_RECURSE
  "CMakeFiles/forest_test.dir/forest_test.cc.o"
  "CMakeFiles/forest_test.dir/forest_test.cc.o.d"
  "forest_test"
  "forest_test.pdb"
  "forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
