file(REMOVE_RECURSE
  "CMakeFiles/global_info_test.dir/global_info_test.cc.o"
  "CMakeFiles/global_info_test.dir/global_info_test.cc.o.d"
  "global_info_test"
  "global_info_test.pdb"
  "global_info_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
