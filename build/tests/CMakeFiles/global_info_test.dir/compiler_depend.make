# Empty compiler generated dependencies file for global_info_test.
# This may be replaced when dependencies are built.
