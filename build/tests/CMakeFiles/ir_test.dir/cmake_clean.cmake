file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ir_test.cc.o"
  "CMakeFiles/ir_test.dir/ir_test.cc.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
