file(REMOVE_RECURSE
  "CMakeFiles/list_scheduler_unit_test.dir/list_scheduler_unit_test.cc.o"
  "CMakeFiles/list_scheduler_unit_test.dir/list_scheduler_unit_test.cc.o.d"
  "list_scheduler_unit_test"
  "list_scheduler_unit_test.pdb"
  "list_scheduler_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_scheduler_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
