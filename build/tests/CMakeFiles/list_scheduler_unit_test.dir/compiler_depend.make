# Empty compiler generated dependencies file for list_scheduler_unit_test.
# This may be replaced when dependencies are built.
