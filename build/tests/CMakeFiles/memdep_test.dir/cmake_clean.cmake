file(REMOVE_RECURSE
  "CMakeFiles/memdep_test.dir/memdep_test.cc.o"
  "CMakeFiles/memdep_test.dir/memdep_test.cc.o.d"
  "memdep_test"
  "memdep_test.pdb"
  "memdep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
