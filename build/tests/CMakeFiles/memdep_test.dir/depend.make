# Empty dependencies file for memdep_test.
# This may be replaced when dependencies are built.
