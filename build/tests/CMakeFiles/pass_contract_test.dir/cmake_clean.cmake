file(REMOVE_RECURSE
  "CMakeFiles/pass_contract_test.dir/pass_contract_test.cc.o"
  "CMakeFiles/pass_contract_test.dir/pass_contract_test.cc.o.d"
  "pass_contract_test"
  "pass_contract_test.pdb"
  "pass_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
