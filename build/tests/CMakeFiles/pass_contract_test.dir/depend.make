# Empty dependencies file for pass_contract_test.
# This may be replaced when dependencies are built.
