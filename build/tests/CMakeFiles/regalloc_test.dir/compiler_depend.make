# Empty compiler generated dependencies file for regalloc_test.
# This may be replaced when dependencies are built.
