file(REMOVE_RECURSE
  "CMakeFiles/reservation_test.dir/reservation_test.cc.o"
  "CMakeFiles/reservation_test.dir/reservation_test.cc.o.d"
  "reservation_test"
  "reservation_test.pdb"
  "reservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
