# Empty dependencies file for reservation_test.
# This may be replaced when dependencies are built.
