file(REMOVE_RECURSE
  "CMakeFiles/semantic_preservation_test.dir/semantic_preservation_test.cc.o"
  "CMakeFiles/semantic_preservation_test.dir/semantic_preservation_test.cc.o.d"
  "semantic_preservation_test"
  "semantic_preservation_test.pdb"
  "semantic_preservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_preservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
