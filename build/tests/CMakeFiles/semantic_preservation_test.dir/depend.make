# Empty dependencies file for semantic_preservation_test.
# This may be replaced when dependencies are built.
