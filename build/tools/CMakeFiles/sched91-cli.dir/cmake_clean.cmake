file(REMOVE_RECURSE
  "CMakeFiles/sched91-cli.dir/sched91_cli.cc.o"
  "CMakeFiles/sched91-cli.dir/sched91_cli.cc.o.d"
  "sched91"
  "sched91.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched91-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
