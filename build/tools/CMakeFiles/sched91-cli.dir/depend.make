# Empty dependencies file for sched91-cli.
# This may be replaced when dependencies are built.
