/**
 * @file
 * Run all six published scheduling algorithms (paper Table 2) on the
 * daxpy and tomcatv kernels and compare the schedules they produce.
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

namespace
{

void
compareOn(const std::string &kernel)
{
    std::printf("\n== kernel: %s ==\n", kernel.c_str());
    Program prog = kernelProgram(kernel);
    MachineModel machine = sparcstation2();
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));

    Dag ground_truth =
        TableForwardBuilder().build(block, machine, BuildOptions{});
    int original = simulateSchedule(
                       ground_truth,
                       originalOrderSchedule(ground_truth).order, machine)
                       .cycles;
    std::printf("%-20s %5d cycles (baseline)\n", "original order",
                original);

    for (AlgorithmKind kind : publishedAlgorithms()) {
        AlgorithmSpec spec = algorithmSpec(kind);
        PipelineOptions opts;
        opts.algorithm = kind;
        opts.builder = spec.preferredBuilder;
        BlockScheduleResult result = scheduleBlock(block, machine, opts);
        int cycles =
            simulateSchedule(ground_truth, result.sched.order, machine)
                .cycles;
        std::printf("%-20s %5d cycles (%+.1f%%)  [%s pass, %s]\n",
                    std::string(algorithmName(kind)).c_str(), cycles,
                    100.0 * (cycles - original) / original,
                    spec.config.forward ? "forward" : "backward",
                    std::string(builderKindName(spec.preferredBuilder))
                        .c_str());
    }
}

} // namespace

int
main()
{
    compareOn("daxpy");
    compareOn("tomcatv");
    compareOn("divide-chain");
    return 0;
}
