/**
 * @file
 * Building your own machine model and scheduling algorithm.
 *
 * The six Table 2 algorithms are just SchedulerConfig values over the
 * generic list-scheduling engine, and machine models are plain data —
 * this example defines a deep-pipeline machine (slow loads, fast FP)
 * and a custom winnowing chain tuned for it, then checks the result
 * against the stock algorithms and the branch-and-bound optimum.
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

int
main()
{
    // --- a custom machine: deep pipeline, 4-cycle loads ------------
    MachineModel machine;
    machine.name = "deep-pipeline";
    machine.setLatency(InstClass::IntAlu, 1);
    machine.setLatency(InstClass::Load, 4);
    machine.setLatency(InstClass::LoadDouble, 5);
    machine.setLatency(InstClass::Store, 2);
    machine.setLatency(InstClass::StoreDouble, 2);
    machine.setLatency(InstClass::FpAdd, 2);
    machine.setLatency(InstClass::FpMul, 3);
    machine.setLatency(InstClass::FpDiv, 12);
    machine.setLatency(InstClass::Branch, 1);
    machine.warDelay = 1;
    machine.fuDesc(FuKind::MemPort).count = 2; // dual-ported cache

    // --- a custom algorithm: loads first, then critical path --------
    SchedulerConfig config;
    config.name = "loads-first";
    config.ranking = {
        {Heuristic::EarliestExecutionTime, /*preferLarger=*/false},
        {Heuristic::InterlockWithChild, true}, // long-delay producers
        {Heuristic::MaxDelayToLeaf, true},
        {Heuristic::NumUncoveredChildren, true},
    };
    config.needsBackwardPass = true;

    Program prog = kernelProgram("daxpy");
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));

    BuildOptions bopts;
    bopts.memPolicy = AliasPolicy::SymbolicExpr;
    Dag dag = TableForwardBuilder().build(block, machine, bopts);
    runAllStaticPasses(dag);

    ListScheduler scheduler(config, machine);
    DecisionStats stats;
    Schedule mine = scheduler.run(dag, &stats);

    int original = simulateSchedule(
                       dag, originalOrderSchedule(dag).order, machine)
                       .cycles;
    int custom = simulateSchedule(dag, mine.order, machine).cycles;
    std::printf("daxpy on %s: original %d cycles, %s %d cycles\n",
                machine.name.c_str(), original, config.name.c_str(),
                custom);

    std::printf("decisions: ");
    for (std::size_t r = 0; r < stats.decidedAtRank.size(); ++r)
        std::printf("rank%zu=%lld ", r + 1, stats.decidedAtRank[r]);
    std::printf("ties=%lld trivial=%lld\n", stats.originalOrderTies,
                stats.trivialPicks);

    // --- sanity: stock algorithms and the optimum -------------------
    for (AlgorithmKind kind :
         {AlgorithmKind::Krishnamurthy, AlgorithmKind::Warren}) {
        PipelineOptions opts;
        opts.algorithm = kind;
        opts.build.memPolicy = AliasPolicy::SymbolicExpr;
        auto r = scheduleBlock(block, machine, opts);
        std::printf("%-22s %d cycles\n",
                    std::string(algorithmName(kind)).c_str(),
                    simulateSchedule(dag, r.sched.order, machine).cycles);
    }

    Dag opt_dag = TableForwardBuilder().build(block, machine, bopts);
    BnbResult optimal = scheduleOptimal(opt_dag, machine);
    std::printf("%-22s %d cycles (%s)\n", "branch-and-bound",
                optimal.cycles,
                optimal.optimal ? "proven optimal" : "budget-best");

    std::printf("\ntimeline of the custom schedule:\n%s",
                renderTimeline(dag, mine.order, machine).c_str());
    return 0;
}
