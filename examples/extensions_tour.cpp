/**
 * @file
 * Tour of the beyond-the-evaluation machinery: the reservation-table
 * scheduler (paper Section 1), branch delay-slot filling (Section 1),
 * cross-block inherited latencies (Section 2 / future work), and the
 * optimal branch-and-bound scheduler (future work).
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

int
main()
{
    MachineModel machine = sparcstation2();

    // ---- Reservation-table scheduling --------------------------------
    std::printf("== reservation-table scheduling ==\n");
    Program res_prog = parseAssembly(R"(
        fdivd %f0, %f2, %f4
        faddd %f4, %f6, %f8
        add %g1, 1, %g2
        add %g3, 1, %g4
        ld [%o0], %l0
    )");
    auto res_blocks = partitionBlocks(res_prog);
    Dag res_dag = TableForwardBuilder().build(
        BlockView(res_prog, res_blocks[0]), machine, BuildOptions{});
    runAllStaticPasses(res_dag);
    ReservationResult res = scheduleWithReservationTable(res_dag, machine);
    for (std::uint32_t i = 0; i < res_dag.size(); ++i)
        std::printf("  cycle %2d: %s\n", res.cycle[i],
                    res_dag.inst(i).toString().c_str());
    std::printf("  makespan %d cycles — the ALU work back-fills the "
                "divider's shadow\n\n",
                res.makespan);

    // ---- Delay-slot filling -------------------------------------------
    std::printf("== branch delay-slot filling ==\n");
    Program ds_prog = parseAssembly(R"(
        ld [%o0], %g1
        add %g2, %g3, %g4
        cmp %g1, 0
        bne out
    )");
    auto ds_blocks = partitionBlocks(ds_prog);
    Dag ds_dag = TableForwardBuilder().build(
        BlockView(ds_prog, ds_blocks[0]), machine, BuildOptions{});
    Schedule ds_sched = originalOrderSchedule(ds_dag);
    DelaySlotResult ds = fillBranchDelaySlot(ds_dag, ds_sched);
    std::printf("  filled: %s\n", ds.filled ? "yes" : "no");
    for (std::uint32_t n : ds_sched.order)
        std::printf("    %s\n", ds_dag.inst(n).toString().c_str());
    std::printf("  (the independent add now occupies the slot a "
                "compiler fills with nop)\n\n");

    // ---- Inherited cross-block latencies ------------------------------
    std::printf("== inherited latencies across blocks ==\n");
    Program gi_prog = parseAssembly(R"(
        fdivd %f0, %f2, %f4
        next:
        faddd %f4, %f6, %f8
        ld [%o0], %l0
        add %l0, 1, %l1
        st %l1, [%o1]
    )");
    auto gi_blocks = partitionBlocks(gi_prog);
    PipelineOptions gi_opts;
    auto b0 = scheduleBlock(BlockView(gi_prog, gi_blocks[0]), machine,
                            gi_opts);
    InheritedLatencies carried =
        computeOutgoingLatencies(b0.dag, b0.sched, machine);
    std::printf("  block 0 leaves %%f4 unready for %d cycles\n",
                carried.ready[Resource::fpReg(4).slot()]);

    Dag b1 = TableForwardBuilder().build(BlockView(gi_prog, gi_blocks[1]),
                                         machine, BuildOptions{});
    runAllStaticPasses(b1);
    applyInheritedLatencies(b1, carried);
    ListScheduler aware(
        algorithmSpec(AlgorithmKind::Krishnamurthy).config, machine);
    Schedule aware_sched = aware.run(b1);
    std::printf("  aware schedule of block 1:\n");
    for (std::uint32_t n : aware_sched.order)
        std::printf("    %s\n", b1.inst(n).toString().c_str());
    std::printf("  (the %%f4 consumer sinks below the independent "
                "loads)\n\n");

    // ---- Optimal branch and bound -------------------------------------
    std::printf("== optimal branch and bound ==\n");
    Program bb_prog = kernelProgram("divide-chain");
    auto bb_blocks = partitionBlocks(bb_prog);
    Dag bb_dag = TableForwardBuilder().build(
        BlockView(bb_prog, bb_blocks[0]), machine, BuildOptions{});
    BnbResult optimal = scheduleOptimal(bb_dag, machine);
    std::printf("  divide-chain kernel: optimal %d cycles (%s, %lld "
                "search nodes)\n",
                optimal.cycles,
                optimal.optimal ? "proven" : "budget-best",
                optimal.nodesExplored);

    PipelineOptions h_opts;
    h_opts.algorithm = AlgorithmKind::ShiehPapachristou;
    auto heur = scheduleBlock(BlockView(bb_prog, bb_blocks[0]), machine,
                              h_opts);
    Dag gt = TableForwardBuilder().build(BlockView(bb_prog, bb_blocks[0]),
                                         machine, BuildOptions{});
    std::printf("  shieh-papachristou heuristic: %d cycles\n",
                simulateSchedule(gt, heur.sched.order, machine).cycles);
    return 0;
}
