/**
 * @file
 * Prepass (pre-register-allocation) scheduling with the register-usage
 * heuristics of Table 1: #registers born, #registers killed, and
 * Warren-style liveness.
 *
 * Demonstrates the classic tension the paper's register-usage category
 * addresses: aggressive latency-hiding schedules lengthen value
 * lifetimes and raise register pressure; a liveness-aware ranking
 * (Warren, Tiemann/GCC) trades a little latency for fewer
 * simultaneously live registers.
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

int
main()
{
    // Eight independent load/use pairs: hoisting all loads first hides
    // latency but makes eight values live at once.
    Program prog = parseAssembly(R"(
        ld [%i0+0],  %l0
        st %l0, [%i1+0]
        ld [%i0+4],  %l1
        st %l1, [%i1+4]
        ld [%i0+8],  %l2
        st %l2, [%i1+8]
        ld [%i0+12], %l3
        st %l3, [%i1+12]
        ld [%i0+16], %l4
        st %l4, [%i1+16]
        ld [%i0+20], %l5
        st %l5, [%i1+20]
        ld [%i0+24], %l6
        st %l6, [%i1+24]
        ld [%i0+28], %l7
        st %l7, [%i1+28]
    )");

    MachineModel machine = sparcstation2();
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));

    BuildOptions gt_opts;
    gt_opts.memPolicy = AliasPolicy::SymbolicExpr;
    Dag gt = TableForwardBuilder().build(block, machine, gt_opts);
    computeRegisterPressure(gt);

    std::printf("per-instruction register pressure annotations:\n");
    const NodeAnnotations &a = gt.ann();
    for (std::uint32_t i = 0; i < gt.size(); ++i) {
        std::printf("  %-18s born %d  killed %d  liveness %+d\n",
                    block.inst(i).toString().c_str(), a.regsBorn[i],
                    a.regsKilled[i], a.liveness[i]);
    }

    struct Contender
    {
        const char *label;
        AlgorithmKind kind;
    };
    const Contender contenders[] = {
        {"krishnamurthy (latency only)", AlgorithmKind::Krishnamurthy},
        {"warren (liveness-aware)", AlgorithmKind::Warren},
        {"tiemann (birthing, backward)", AlgorithmKind::Tiemann},
    };

    std::printf("\n%-32s %8s %10s\n", "scheduler", "cycles", "max live");
    std::printf("%-32s %8d %10d\n", "original order",
                simulateSchedule(gt, originalOrderSchedule(gt).order,
                                 machine)
                    .cycles,
                maxLiveRegisters(gt, originalOrderSchedule(gt).order));

    for (const Contender &c : contenders) {
        PipelineOptions opts;
        opts.build.memPolicy = AliasPolicy::SymbolicExpr;
        opts.algorithm = c.kind;
        BlockScheduleResult result = scheduleBlock(block, machine, opts);
        std::printf("%-32s %8d %10d\n", c.label,
                    simulateSchedule(gt, result.sched.order, machine)
                        .cycles,
                    maxLiveRegisters(gt, result.sched.order));
    }

    // The engine is fully configurable: a prepass-oriented ranking
    // that puts liveness first trades stall cycles for minimal
    // pressure.
    SchedulerConfig pressure_first;
    pressure_first.name = "pressure-first";
    pressure_first.ranking = {
        {Heuristic::Liveness, /*preferLarger=*/true},
        {Heuristic::EarliestExecutionTime, false},
        {Heuristic::MaxDelayToLeaf, true},
    };
    Dag dag = TableForwardBuilder().build(block, machine, gt_opts);
    computeRegisterPressure(dag);
    Schedule s = ListScheduler(pressure_first, machine).run(dag);
    std::printf("%-32s %8d %10d\n", "custom liveness-first prepass",
                simulateSchedule(gt, s.order, machine).cycles,
                maxLiveRegisters(gt, s.order));

    std::printf("\nPrepass scheduling (before register allocation) "
                "wants low 'max live';\npostpass wants low cycles — "
                "Warren's algorithm is designed to run as both\n"
                "(paper Section 3, register usage).\n");
    return 0;
}
