/**
 * @file
 * Quickstart: parse a basic block, build its dependence DAG, run the
 * heuristic passes, schedule it, and show the cycle improvement.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

int
main()
{
    // A load-use heavy block as a compiler might emit it: every load
    // feeds the very next instruction, stalling a pipelined machine.
    Program prog = parseAssembly(R"(
        ld    [%i0+0], %l0
        add   %l0, 1, %l1
        st    %l1, [%i1+0]
        ld    [%i0+4], %l2
        add   %l2, 1, %l3
        st    %l3, [%i1+4]
        lddf  [%i2+0], %f0
        fmuld %f0, %f2, %f4
        stdf  %f4, [%i3+0]
        cmp   %l3, 100
        bl    loop
    )");

    MachineModel machine = sparcstation2();
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));

    // Build the DAG with the table-building forward constructor
    // (Krishnamurthy-like) and schedule with Krishnamurthy's
    // algorithm: earliest execution time first, then FP-unit
    // interlocks, path and delay to leaf, plus a postpass fixup.
    PipelineOptions opts;
    // Distinct incoming pointers: use the paper's expression-as-resource
    // memory model so independent accesses do not serialize.
    opts.build.memPolicy = AliasPolicy::SymbolicExpr;
    opts.builder = BuilderKind::TableForward;
    opts.algorithm = AlgorithmKind::Krishnamurthy;
    BlockScheduleResult result = scheduleBlock(block, machine, opts);

    std::printf("dependence DAG: %u nodes, %zu arcs\n", result.dag.size(),
                result.dag.numArcs());
    for (const Arc &arc : result.dag.arcs()) {
        std::printf("  %2u -> %-2u %-4s delay %d%s\n", arc.from, arc.to,
                    std::string(depKindName(arc.kind)).c_str(), arc.delay,
                    arc.res.valid()
                        ? ("  on " + arc.res.toString()).c_str()
                        : "");
    }

    std::printf("\n%-4s %-28s -> %-4s %s\n", "pos", "original", "pos",
                "scheduled");
    for (std::uint32_t i = 0; i < block.size(); ++i) {
        std::printf("%-4u %-28s -> %-4u %s\n", i,
                    block.inst(i).toString().c_str(),
                    result.sched.order[i],
                    block.inst(result.sched.order[i]).toString().c_str());
    }

    SimResult before = simulateSchedule(
        result.dag, originalOrderSchedule(result.dag).order, machine);
    SimResult after =
        simulateSchedule(result.dag, result.sched.order, machine);
    std::printf("\ncycles: original %d (stalls %d)  ->  scheduled %d "
                "(stalls %d)\n",
                before.cycles, before.stallCycles, after.cycles,
                after.stallCycles);
    return 0;
}
