/**
 * @file
 * The "alternate type" heuristic on a 2-issue superscalar model
 * (paper Section 3, instruction class category): "the instruction
 * scheduler attempts to reorder the instruction stream so that as
 * many instructions as possible can be issued each cycle".
 *
 * The 2-way machine pairs at most one instruction per issue group per
 * cycle; a stream that alternates integer and floating-point work
 * dual-issues, while a stream with all the integer work first cannot.
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

int
main()
{
    // Independent integer and FP strands, laid out strand-by-strand
    // (worst case for a 2-way machine).
    Program prog = parseAssembly(R"(
        add %l0, 1, %l1
        add %l0, 2, %l2
        add %l0, 3, %l3
        add %l0, 4, %l4
        add %l0, 5, %l5
        add %l0, 6, %l6
        fadds %f0, %f1, %f2
        fadds %f0, %f1, %f3
        fadds %f0, %f1, %f4
        fadds %f0, %f1, %f5
        fadds %f0, %f1, %f6
        fadds %f0, %f1, %f7
    )");

    MachineModel machine = superscalar2();
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));
    Dag gt = TableForwardBuilder().build(block, machine, BuildOptions{});

    int original = simulateSchedule(
                       gt, originalOrderSchedule(gt).order, machine)
                       .lastIssue +
                   1;

    // Warren's ranking includes alternate-type at rank 2.
    PipelineOptions opts;
    opts.algorithm = AlgorithmKind::Warren;
    opts.builder = BuilderKind::N2Forward;
    BlockScheduleResult result = scheduleBlock(block, machine, opts);
    int scheduled =
        simulateSchedule(gt, result.sched.order, machine).lastIssue + 1;

    std::printf("scheduled order (issue group alternation):\n");
    for (std::uint32_t n : result.sched.order)
        std::printf("  %s\n", block.inst(n).toString().c_str());

    std::printf("\nissue cycles on the 2-way machine: original order "
                "%d, scheduled %d\n",
                original, scheduled);
    std::printf("(12 instructions, perfect dual-issue = 6 cycles)\n");

    // Contrast with a single-issue machine: alternation buys nothing.
    MachineModel single = sparcstation2();
    int single_orig = simulateSchedule(
                          gt, originalOrderSchedule(gt).order, single)
                          .lastIssue +
                      1;
    int single_sched =
        simulateSchedule(gt, result.sched.order, single).lastIssue + 1;
    std::printf("on the single-issue machine the same orders take %d "
                "and %d cycles.\n",
                single_orig, single_sched);
    return 0;
}
