/**
 * @file
 * Walk through the paper's Figure 1 interactively: why transitive
 * arcs carry timing information, and what each DAG construction
 * algorithm does with the example.
 */

#include <cstdio>

#include "core/sched91.hh"

using namespace sched91;

int
main()
{
    std::printf("Figure 1 of the paper:\n\n"
                "  1: DIVF R1,R2,R3 (R3 = R1/R2, 20 cycles)\n"
                "  2: ADDF R4,R5,R1 (R1 = R4+R5,  4 cycles)\n"
                "  3: ADDF R1,R3,R6 (R6 = R1+R3,  4 cycles)\n\n"
                "In our dialect (R1=%%f0, R2=%%f2, R3=%%f4, R4=%%f6, "
                "R5=%%f8, R6=%%f10):\n\n");

    Program prog = figure1Program();
    for (const auto &inst : prog.insts())
        std::printf("  %u: %s\n", inst.index() + 1,
                    inst.toString().c_str());

    MachineModel machine = figure1Machine();
    auto blocks = partitionBlocks(prog);
    BlockView block(prog, blocks.at(0));

    std::printf("\nArc 1->3 is *transitive* (1 -> 2 -> 3 also "
                "connects them), but the path\ncarries only 1 + 4 = 5 "
                "cycles of delay while the arc carries the divide's\n"
                "full 20-cycle latency.\n\n");

    for (BuilderKind kind : allBuilderKinds()) {
        Dag dag = makeBuilder(kind)->build(block, machine,
                                           BuildOptions{});
        runAllStaticPasses(dag);
        std::printf("%-14s: %zu arcs, divide's max delay to leaf = %d",
                    std::string(builderKindName(kind)).c_str(),
                    dag.numArcs(), dag.ann().maxDelayToLeaf[0]);
        if (dag.suppressedCount() > 0)
            std::printf("  (suppressed %zu transitive arc attempts!)",
                        dag.suppressedCount());
        std::printf("\n");
    }

    std::printf("\nDynamic heuristic check (earliest execution time of "
                "node 3 after nodes 1\nand 2 issue back-to-back):\n");
    for (BuilderKind kind :
         {BuilderKind::TableForward, BuilderKind::N2Landskov}) {
        Dag dag = makeBuilder(kind)->build(block, machine,
                                           BuildOptions{});
        initDynamicState(dag);
        onScheduledForward(dag, 0, 0);
        onScheduledForward(dag, 1, 1);
        std::printf("  %-14s EET(node 3) = %d  (truth: 20)\n",
                    std::string(builderKindName(kind)).c_str(),
                    dag.ann().earliestExecTime[2]);
    }

    std::printf("\nConclusion 3 of the paper: do not prune transitive "
                "arcs; the table-building\nconstructors retain the "
                "important ones for free.\n");
    return 0;
}
