#include "core/backend.hh"

#include "dag/table_forward.hh"
#include "heuristics/register_pressure.hh"
#include "sched/list_scheduler.hh"

namespace sched91
{

namespace
{

/** Schedule a block view, returning the order. */
std::vector<std::uint32_t>
scheduleOrder(const BlockView &block, const MachineModel &machine,
              AlgorithmKind algorithm, BuilderKind builder,
              AliasPolicy policy)
{
    PipelineOptions opts;
    opts.algorithm = algorithm;
    opts.builder = builder;
    opts.build.memPolicy = policy;
    return scheduleBlock(block, machine, opts).sched.order;
}

} // namespace

BackendResult
compileProgram(Program &prog, const MachineModel &machine,
               const BackendOptions &opts)
{
    auto blocks = partitionBlocks(prog);
    BackendResult result;
    result.blocks = blocks.size();

    // Phase 1: emit the rewritten program block by block.
    for (const BasicBlock &bb : blocks) {
        BlockView block(prog, bb);
        std::vector<std::uint32_t> order = scheduleOrder(
            block, machine, opts.prepass, opts.builder, opts.memPolicy);

        std::optional<AllocationResult> allocated;
        if (opts.allocate)
            allocated = allocateBlock(block, order, opts.allocator);

        result.program.addLabel("B" + std::to_string(bb.begin));
        if (allocated) {
            ++result.allocatedBlocks;
            result.spillStores += allocated->spillStores;
            result.spillLoads += allocated->spillLoads;
            for (Instruction &inst : allocated->insts)
                result.program.append(std::move(inst));
        } else {
            // Allocation skipped or infeasible: emit the scheduled
            // order unallocated.
            for (std::uint32_t n : order)
                result.program.append(block.inst(n));
        }
    }
    stampMemGenerations(result.program);

    // Phase 2: optional postpass reschedule over the allocated code,
    // emitting the final program and measuring it.
    auto out_blocks = partitionBlocks(result.program);
    Program final_prog;
    for (const BasicBlock &bb : out_blocks) {
        BlockView block(result.program, bb);
        BuildOptions bopts;
        bopts.memPolicy = opts.memPolicy;
        Dag dag = TableForwardBuilder().build(block, machine, bopts);

        std::vector<std::uint32_t> order;
        if (opts.postpass) {
            PipelineOptions popts;
            popts.algorithm = *opts.postpass;
            popts.builder = opts.builder;
            popts.build.memPolicy = opts.memPolicy;
            order = scheduleBlock(block, machine, popts).sched.order;
        } else {
            order = originalOrderSchedule(dag).order;
        }
        result.cycles += simulateSchedule(dag, order, machine).cycles;

        final_prog.addLabel("B" + std::to_string(bb.begin));
        for (std::uint32_t n : order)
            final_prog.append(block.inst(n));
    }
    stampMemGenerations(final_prog);
    result.program = std::move(final_prog);
    return result;
}

} // namespace sched91
