#include "core/backend.hh"

#include <numeric>
#include <sstream>

#include "dag/table_forward.hh"
#include "heuristics/register_pressure.hh"
#include "obs/events.hh"
#include "sched/list_scheduler.hh"
#include "support/cancellation.hh"

namespace sched91
{

namespace
{

/** The original-order fallback for a block of @p n instructions. */
std::vector<std::uint32_t>
identityOrder(std::size_t n)
{
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), std::uint32_t{0});
    return order;
}

/** Schedule a block view, returning the order. */
std::vector<std::uint32_t>
scheduleOrder(const BlockView &block, const MachineModel &machine,
              AlgorithmKind algorithm, const BackendOptions &bopts,
              BuilderKind builder)
{
    PipelineOptions opts;
    opts.algorithm = algorithm;
    opts.builder = builder;
    opts.build.memPolicy = bopts.memPolicy;
    opts.verify = bopts.verify;
    opts.maxBlockSeconds = bopts.maxBlockSeconds;
    return scheduleBlock(block, machine, opts).sched.order;
}

/** Is this builder in the compare-against-all family (the one the
 * F1/F2 window ladder applies to)? */
bool
n2Family(BuilderKind kind)
{
    return kind == BuilderKind::N2Forward ||
           kind == BuilderKind::N2Backward ||
           kind == BuilderKind::N2Landskov;
}

} // namespace

BackendResult
compileProgram(Program &prog, const MachineModel &machine,
               const BackendOptions &opts)
{
    auto blocks = partitionBlocks(prog);
    BackendResult result;
    result.blocks = blocks.size();

    // Per-block containment (PR 3 semantics, threaded through the
    // backend): a fault in one block's scheduling degrades that block
    // to the order it arrived in; the rest of the program compiles
    // normally.  A CancelledError out of the per-block budget counts
    // as a budget outcome and degrades even with containment off.
    auto containedOrder =
        [&](const BlockView &block, std::size_t b, AlgorithmKind algo,
            const char *stage) -> std::vector<std::uint32_t> {
        BuilderKind builder = opts.builder;
        if (opts.maxBlockInsts > 0 && n2Family(builder) &&
            block.size() >
                static_cast<std::size_t>(opts.maxBlockInsts)) {
            builder = BuilderKind::TableForward;
            ++result.builderFallbacks;
            obs::ev::robustBuilderFallbacks.inc();
            std::ostringstream os;
            os << block.size() << " insts over maxBlockInsts "
               << opts.maxBlockInsts
               << ": n**2 builder fell back to table building";
            result.blockIssues.push_back(ProgramResult::BlockIssue{
                b, "fallback", os.str(), false});
        }
        try {
            return scheduleOrder(block, machine, algo, opts, builder);
        } catch (const CancelledError &e) {
            obs::ev::robustBudgetExceeded.inc();
            obs::ev::cancelBlocksCancelled.inc();
            obs::ev::robustBlocksDegraded.inc();
            ++result.blocksDegraded;
            result.blockIssues.push_back(ProgramResult::BlockIssue{
                b, "budget", e.what(), true});
            return identityOrder(block.size());
        } catch (const std::exception &e) {
            if (!opts.containFaults)
                throw;
            obs::ev::robustBlocksDegraded.inc();
            ++result.blocksDegraded;
            result.blockIssues.push_back(ProgramResult::BlockIssue{
                b, stage, e.what(), true});
            return identityOrder(block.size());
        }
    };

    // Phase 1: emit the rewritten program block by block.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        BlockView block(prog, bb);
        std::vector<std::uint32_t> order =
            containedOrder(block, b, opts.prepass, "sched");

        std::optional<AllocationResult> allocated;
        if (opts.allocate) {
            try {
                allocated = allocateBlock(block, order, opts.allocator);
            } catch (const std::exception &e) {
                if (!opts.containFaults)
                    throw;
                // Allocation fault: pass the block through scheduled
                // but unallocated (the pre-existing infeasible path).
                result.blockIssues.push_back(ProgramResult::BlockIssue{
                    b, "alloc", e.what(), false});
            }
        }

        result.program.addLabel("B" + std::to_string(bb.begin));
        if (allocated) {
            ++result.allocatedBlocks;
            result.spillStores += allocated->spillStores;
            result.spillLoads += allocated->spillLoads;
            for (Instruction &inst : allocated->insts)
                result.program.append(std::move(inst));
        } else {
            // Allocation skipped or infeasible: emit the scheduled
            // order unallocated.
            for (std::uint32_t n : order)
                result.program.append(block.inst(n));
        }
    }
    stampMemGenerations(result.program);

    // Phase 2: optional postpass reschedule over the allocated code,
    // emitting the final program and measuring it.
    auto out_blocks = partitionBlocks(result.program);
    Program final_prog;
    for (std::size_t b = 0; b < out_blocks.size(); ++b) {
        const BasicBlock &bb = out_blocks[b];
        BlockView block(result.program, bb);
        BuildOptions bopts;
        bopts.memPolicy = opts.memPolicy;
        Dag dag = TableForwardBuilder().build(block, machine, bopts);

        std::vector<std::uint32_t> order;
        if (opts.postpass)
            order = containedOrder(block, b, *opts.postpass, "postpass");
        else
            order = originalOrderSchedule(dag).order;
        result.cycles += simulateSchedule(dag, order, machine).cycles;

        final_prog.addLabel("B" + std::to_string(bb.begin));
        for (std::uint32_t n : order)
            final_prog.append(block.inst(n));
    }
    stampMemGenerations(final_prog);
    result.program = std::move(final_prog);
    return result;
}

} // namespace sched91
