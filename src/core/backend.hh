/**
 * @file
 * Whole-program backend flows: prepass scheduling, local register
 * allocation, postpass scheduling — the compilation pipelines the
 * paper's register-usage discussion assumes ("an algorithm like
 * Warren's is designed to be performed both prepass as well as
 * postpass", Section 3).
 *
 * compileProgram() rewrites every basic block: it schedules with the
 * prepass algorithm, allocates block-defined values onto a bounded
 * register pool (inserting spill code), optionally reschedules the
 * allocated block, and emits a new Program.  Blocks the allocator
 * cannot handle (calls, integer pairs, pools smaller than one
 * instruction's operands) pass through scheduled but unallocated, and
 * are reported.
 */

#ifndef SCHED91_CORE_BACKEND_HH
#define SCHED91_CORE_BACKEND_HH

#include <optional>

#include "core/pipeline.hh"
#include "regalloc/local_allocator.hh"

namespace sched91
{

/** Backend flow configuration. */
struct BackendOptions
{
    /** Prepass scheduling algorithm (SimpleForward = latency-driven). */
    AlgorithmKind prepass = AlgorithmKind::Krishnamurthy;

    /** Run register allocation at all. */
    bool allocate = true;

    /** Allocator pools / spill area. */
    AllocatorOptions allocator;

    /** Reschedule each allocated block (postpass); nullopt = skip. */
    std::optional<AlgorithmKind> postpass = AlgorithmKind::Krishnamurthy;

    /** DAG construction / memory model for both scheduling passes. */
    BuilderKind builder = BuilderKind::TableForward;
    AliasPolicy memPolicy = AliasPolicy::BaseOffset;

    // --- Robustness (docs/ROBUSTNESS.md), mirroring PipelineOptions -

    /** Re-check every prepass/postpass schedule against its DAG. */
    bool verify = true;

    /**
     * Per-block fault containment: any exception out of one block's
     * prepass scheduling, allocation, or postpass reschedule —
     * including a verifier rejection or a budget cancellation —
     * degrades that block to its original (respectively allocated)
     * instruction order instead of failing the whole program.  The
     * incident lands in BackendResult::blockIssues.  Off = fail fast.
     */
    bool containFaults = true;

    /** n**2 -> table builder fallback threshold (the paper's F1/F2
     * ladder); 0 disables, no effect on table builders. */
    int maxBlockInsts = 0;

    /** Per-block wall-clock budget in seconds, enforced mid-loop via
     * a cancellation token (support/cancellation.hh); 0 disables. */
    double maxBlockSeconds = 0.0;
};

/** Backend outcome. */
struct BackendResult
{
    Program program;          ///< rewritten program
    std::size_t blocks = 0;
    std::size_t allocatedBlocks = 0; ///< blocks the allocator handled
    int spillStores = 0;
    int spillLoads = 0;

    /** Simulated cycles of the rewritten program (sum over blocks). */
    long long cycles = 0;

    // --- Robustness outcomes ----------------------------------------

    /** Blocks that kept their incoming order after a contained fault
     * (prepass and postpass counted separately). */
    std::size_t blocksDegraded = 0;

    /** Oversized blocks switched from an n**2 builder to table
     * building — the block still scheduled normally. */
    std::size_t builderFallbacks = 0;

    /** Per-block incidents, in processing order.  Stages: "sched" /
     * "budget" / "alloc" (phase 1), "postpass" (phase 2),
     * "fallback". */
    std::vector<ProgramResult::BlockIssue> blockIssues;
};

/**
 * Run the full backend flow over @p prog.  The input program is only
 * mutated by memory-generation stamping.
 */
BackendResult compileProgram(Program &prog, const MachineModel &machine,
                             const BackendOptions &opts = {});

} // namespace sched91

#endif // SCHED91_CORE_BACKEND_HH
