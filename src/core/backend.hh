/**
 * @file
 * Whole-program backend flows: prepass scheduling, local register
 * allocation, postpass scheduling — the compilation pipelines the
 * paper's register-usage discussion assumes ("an algorithm like
 * Warren's is designed to be performed both prepass as well as
 * postpass", Section 3).
 *
 * compileProgram() rewrites every basic block: it schedules with the
 * prepass algorithm, allocates block-defined values onto a bounded
 * register pool (inserting spill code), optionally reschedules the
 * allocated block, and emits a new Program.  Blocks the allocator
 * cannot handle (calls, integer pairs, pools smaller than one
 * instruction's operands) pass through scheduled but unallocated, and
 * are reported.
 */

#ifndef SCHED91_CORE_BACKEND_HH
#define SCHED91_CORE_BACKEND_HH

#include <optional>

#include "core/pipeline.hh"
#include "regalloc/local_allocator.hh"

namespace sched91
{

/** Backend flow configuration. */
struct BackendOptions
{
    /** Prepass scheduling algorithm (SimpleForward = latency-driven). */
    AlgorithmKind prepass = AlgorithmKind::Krishnamurthy;

    /** Run register allocation at all. */
    bool allocate = true;

    /** Allocator pools / spill area. */
    AllocatorOptions allocator;

    /** Reschedule each allocated block (postpass); nullopt = skip. */
    std::optional<AlgorithmKind> postpass = AlgorithmKind::Krishnamurthy;

    /** DAG construction / memory model for both scheduling passes. */
    BuilderKind builder = BuilderKind::TableForward;
    AliasPolicy memPolicy = AliasPolicy::BaseOffset;
};

/** Backend outcome. */
struct BackendResult
{
    Program program;          ///< rewritten program
    std::size_t blocks = 0;
    std::size_t allocatedBlocks = 0; ///< blocks the allocator handled
    int spillStores = 0;
    int spillLoads = 0;

    /** Simulated cycles of the rewritten program (sum over blocks). */
    long long cycles = 0;
};

/**
 * Run the full backend flow over @p prog.  The input program is only
 * mutated by memory-generation stamping.
 */
BackendResult compileProgram(Program &prog, const MachineModel &machine,
                             const BackendOptions &opts = {});

} // namespace sched91

#endif // SCHED91_CORE_BACKEND_HH
