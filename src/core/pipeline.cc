#include "core/pipeline.hh"

#include "dag/table_forward.hh"
#include "heuristics/register_pressure.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "sched/list_scheduler.hh"
#include "support/thread_pool.hh"
#include "support/worker_context.hh"

namespace sched91
{

namespace
{

/** Run the static heuristic passes an algorithm declares it needs. */
void
runNeededPasses(Dag &dag, const SchedulerConfig &config, PassImpl impl)
{
    if (config.needsForwardPass)
        runForwardPass(dag, impl);
    if (config.needsBackwardPass)
        runBackwardPass(dag, impl, config.needsDescendants);
    if (config.needsForwardPass && config.needsBackwardPass)
        computeSlack(dag);
    if (config.needsRegisterPressure)
        computeRegisterPressure(dag);
}

/**
 * Per-block trace emission: snapshots the thread's active counter
 * source (worker shard inside the pipeline, global registry
 * otherwise) around each phase and fires one event with the phase's
 * deltas.  Inactive (and cost-free beyond one branch) unless both a
 * sink is configured and the observability layer is on.
 */
class BlockTracer
{
  public:
    BlockTracer(obs::TraceSink *sink, std::size_t block,
                const BasicBlock &bb)
        : sink_(obs::enabled() ? sink : nullptr), block_(block), bb_(bb)
    {
        if (sink_)
            before_ = obs::activeSnapshot();
    }

    void
    phaseDone(const char *phase, double seconds)
    {
        if (!sink_)
            return;
        obs::TraceEvent ev;
        ev.block = block_;
        ev.begin = bb_.begin;
        ev.size = bb_.size();
        ev.phase = phase;
        ev.seconds = seconds;
        ev.counters = obs::activeDeltaSince(before_);
        sink_->event(ev);
        before_ = obs::activeSnapshot();
    }

  private:
    obs::TraceSink *sink_;
    std::size_t block_;
    const BasicBlock &bb_;
    obs::CounterSet before_;
};

/** Everything one block produces, parked in its own slot until the
 * post-join reduction. */
struct BlockOutput
{
    double buildSeconds = 0.0;
    double heurSeconds = 0.0;
    double schedSeconds = 0.0;
    DagStructure dagStats;
    long long cyclesOriginal = 0;
    long long cyclesScheduled = 0;
    Schedule sched;
    obs::BufferedTraceSink trace; ///< used only when tracing
};

/** Thread-private machinery of one pipeline lane. */
struct WorkerState
{
    WorkerContext ctx;
    /** Cleared per block, so Max gauges become per-block peaks. */
    obs::CounterShard blockShard{obs::CounterRegistry::global()};
    /** Run-lifetime accumulation, flushed to the registry post-join. */
    obs::CounterShard accum{obs::CounterRegistry::global()};
    obs::PhaseProfiler profiler;
};

} // namespace

ProgramResult
runPipeline(Program &prog, const MachineModel &machine,
            const PipelineOptions &opts)
{
    std::vector<BasicBlock> blocks = partitionBlocks(prog, opts.partition);
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);
    ListScheduler scheduler(spec.config, machine);

    ProgramResult result;
    result.numBlocks = blocks.size();
    result.numInsts = prog.size();

    const bool obs_on = obs::enabled();
    const bool tracing = obs_on && opts.trace != nullptr;

    obs::CounterSet run_before;
    if (obs_on)
        run_before = obs::CounterRegistry::global().snapshot();

    unsigned threads = opts.threads != 0
                           ? opts.threads
                           : ThreadPool::hardwareConcurrency();
    if (!blocks.empty() && blocks.size() < threads)
        threads = static_cast<unsigned>(blocks.size());
    if (threads == 0)
        threads = 1;

    std::vector<BlockOutput> outputs(blocks.size());
    std::vector<WorkerState> workers(threads);

    auto processBlock = [&](std::size_t b) {
        const BasicBlock &bb = blocks[b];
        BlockView block(prog, bb);
        BlockOutput &out = outputs[b];
        BlockTracer tracer(tracing ? &out.trace : nullptr, b, bb);

        obs::ScopedPhase build_phase("build");
        Dag dag = builder->build(block, machine, opts.build);
        out.buildSeconds = build_phase.stop();
        tracer.phaseDone("build", build_phase.seconds());

        obs::ScopedPhase heur_phase("heur");
        runNeededPasses(dag, spec.config, opts.passImpl);
        out.heurSeconds = heur_phase.stop();
        tracer.phaseDone("heur", heur_phase.seconds());

        obs::ScopedPhase sched_phase("sched");
        out.sched = scheduler.run(dag);
        out.schedSeconds = sched_phase.stop();
        tracer.phaseDone("sched", sched_phase.seconds());

        out.dagStats.accumulate(dag);

        if (opts.evaluate) {
            obs::ScopedPhase eval_phase("evaluate");
            // Ground truth: a timing-complete DAG.  Table-built DAGs
            // preserve every timing constraint (Section 2), so reuse
            // the scheduler's DAG when it came from a table builder
            // without transitive prevention; otherwise rebuild.
            bool reusable =
                (opts.builder == BuilderKind::TableForward ||
                 opts.builder == BuilderKind::TableBackward) &&
                !opts.build.preventTransitive;
            if (reusable) {
                out.cyclesOriginal =
                    simulateSchedule(dag, originalOrderSchedule(dag).order,
                                     machine)
                        .cycles;
                out.cyclesScheduled =
                    simulateSchedule(dag, out.sched.order, machine).cycles;
            } else {
                BuildOptions gt_opts = opts.build;
                gt_opts.preventTransitive = false;
                gt_opts.maintainReachMaps = false;
                Dag gt = TableForwardBuilder().build(block, machine,
                                                     gt_opts);
                out.cyclesOriginal =
                    simulateSchedule(gt, originalOrderSchedule(gt).order,
                                     machine)
                        .cycles;
                out.cyclesScheduled =
                    simulateSchedule(gt, out.sched.order, machine).cycles;
            }
            eval_phase.stop();
            tracer.phaseDone("evaluate", eval_phase.seconds());
        }
        // The block's DAGs die here — before the next beginBlock()
        // recycles the arena their arc lists live in.
    };

    auto runChunk = [&](unsigned w, std::size_t begin, std::size_t end) {
        WorkerState &ws = workers[w];
        WorkerContext::Scope ctx_scope(ws.ctx);
        if (obs_on) {
            // Even a single-lane run routes through the shard: the
            // per-block clear is what gives Max gauges history-free
            // per-block values, which the byte-identical-output
            // guarantee across thread counts depends on.
            obs::ScopedProfiler prof_scope(ws.profiler);
            obs::ScopedCounterShard shard_scope(ws.blockShard);
            for (std::size_t b = begin; b < end; ++b) {
                ws.blockShard.clear();
                ws.ctx.beginBlock();
                processBlock(b);
                ws.blockShard.flushInto(ws.accum);
            }
        } else {
            for (std::size_t b = begin; b < end; ++b) {
                ws.ctx.beginBlock();
                processBlock(b);
            }
        }
    };

    {
        ThreadPool pool(threads);
        std::size_t chunk =
            blocks.size() / (static_cast<std::size_t>(threads) * 8);
        if (chunk == 0)
            chunk = 1;
        pool.parallelFor(blocks.size(), chunk, runChunk);
    }

    // Deterministic reduction: block order for per-block outputs...
    if (opts.schedules)
        opts.schedules->assign(blocks.size(), Schedule{});
    for (std::size_t b = 0; b < outputs.size(); ++b) {
        BlockOutput &out = outputs[b];
        result.buildSeconds += out.buildSeconds;
        result.heurSeconds += out.heurSeconds;
        result.schedSeconds += out.schedSeconds;
        result.dagStats.merge(out.dagStats);
        result.cyclesOriginal += out.cyclesOriginal;
        result.cyclesScheduled += out.cyclesScheduled;
        if (opts.schedules)
            (*opts.schedules)[b] = std::move(out.sched);
        if (tracing)
            out.trace.replayInto(*opts.trace);
    }

    // ... and worker order for the thread-private shards and phase
    // trees (both merges are kind-aware, so the result is independent
    // of how blocks were distributed over lanes).
    if (obs_on) {
        obs::CounterRegistry &registry = obs::CounterRegistry::global();
        obs::PhaseProfiler &profiler = obs::PhaseProfiler::active();
        obs::CounterShard run_total(registry);
        for (WorkerState &ws : workers) {
            ws.accum.flushInto(run_total);
            profiler.mergeFrom(ws.profiler);
        }
        run_total.flushInto(registry);
        result.counters = registry.deltaSince(run_before);
        // Registry-level subtraction cannot express a per-run peak: a
        // prior run's higher Max value would zero (or understate) this
        // run's.  All in-run counting went through the shards, so the
        // merged shard holds exactly this run's peaks — report those.
        for (std::size_t id = 0; id < registry.size(); ++id)
            if (registry.kind(id) == obs::CounterKind::Max &&
                run_total.value(id) != 0)
                result.counters.set(registry.name(id),
                                    run_total.value(id));
    }

    return result;
}

BlockScheduleResult
scheduleBlock(const BlockView &block, const MachineModel &machine,
              const PipelineOptions &opts)
{
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);

    obs::ScopedPhase build_phase("build");
    Dag dag = builder->build(block, machine, opts.build);
    build_phase.stop();

    obs::ScopedPhase heur_phase("heur");
    runNeededPasses(dag, spec.config, opts.passImpl);
    heur_phase.stop();

    ListScheduler scheduler(spec.config, machine);
    obs::ScopedPhase sched_phase("sched");
    Schedule sched = scheduler.run(dag);
    sched_phase.stop();

    return BlockScheduleResult{std::move(dag), std::move(sched)};
}

} // namespace sched91
