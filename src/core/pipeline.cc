#include "core/pipeline.hh"

#include "dag/table_forward.hh"
#include "heuristics/register_pressure.hh"
#include "sched/list_scheduler.hh"
#include "support/timer.hh"

namespace sched91
{

namespace
{

/** Run the static heuristic passes an algorithm declares it needs. */
void
runNeededPasses(Dag &dag, const SchedulerConfig &config, PassImpl impl)
{
    if (config.needsForwardPass)
        runForwardPass(dag, impl);
    if (config.needsBackwardPass)
        runBackwardPass(dag, impl, config.needsDescendants);
    if (config.needsForwardPass && config.needsBackwardPass)
        computeSlack(dag);
    if (config.needsRegisterPressure)
        computeRegisterPressure(dag);
}

} // namespace

ProgramResult
runPipeline(Program &prog, const MachineModel &machine,
            const PipelineOptions &opts)
{
    std::vector<BasicBlock> blocks = partitionBlocks(prog, opts.partition);
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);
    ListScheduler scheduler(spec.config, machine);

    ProgramResult result;
    result.numBlocks = blocks.size();
    result.numInsts = prog.size();

    for (const BasicBlock &bb : blocks) {
        BlockView block(prog, bb);

        Timer t;
        Dag dag = builder->build(block, machine, opts.build);
        result.buildSeconds += t.seconds();

        t.reset();
        runNeededPasses(dag, spec.config, opts.passImpl);
        result.heurSeconds += t.seconds();

        t.reset();
        Schedule sched = scheduler.run(dag);
        result.schedSeconds += t.seconds();

        result.dagStats.accumulate(dag);

        if (opts.evaluate) {
            // Ground truth: a timing-complete DAG.  Table-built DAGs
            // preserve every timing constraint (Section 2), so reuse
            // the scheduler's DAG when it came from a table builder
            // without transitive prevention; otherwise rebuild.
            bool reusable =
                (opts.builder == BuilderKind::TableForward ||
                 opts.builder == BuilderKind::TableBackward) &&
                !opts.build.preventTransitive;
            if (reusable) {
                result.cyclesOriginal +=
                    simulateSchedule(dag, originalOrderSchedule(dag).order,
                                     machine)
                        .cycles;
                result.cyclesScheduled +=
                    simulateSchedule(dag, sched.order, machine).cycles;
            } else {
                BuildOptions gt_opts = opts.build;
                gt_opts.preventTransitive = false;
                gt_opts.maintainReachMaps = false;
                Dag gt = TableForwardBuilder().build(block, machine,
                                                     gt_opts);
                result.cyclesOriginal +=
                    simulateSchedule(gt, originalOrderSchedule(gt).order,
                                     machine)
                        .cycles;
                result.cyclesScheduled +=
                    simulateSchedule(gt, sched.order, machine).cycles;
            }
        }
    }

    return result;
}

BlockScheduleResult
scheduleBlock(const BlockView &block, const MachineModel &machine,
              const PipelineOptions &opts)
{
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);
    Dag dag = builder->build(block, machine, opts.build);
    runNeededPasses(dag, spec.config, opts.passImpl);
    ListScheduler scheduler(spec.config, machine);
    Schedule sched = scheduler.run(dag);
    return BlockScheduleResult{std::move(dag), std::move(sched)};
}

} // namespace sched91
