#include "core/pipeline.hh"

#include "dag/table_forward.hh"
#include "heuristics/register_pressure.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "sched/list_scheduler.hh"

namespace sched91
{

namespace
{

/** Run the static heuristic passes an algorithm declares it needs. */
void
runNeededPasses(Dag &dag, const SchedulerConfig &config, PassImpl impl)
{
    if (config.needsForwardPass)
        runForwardPass(dag, impl);
    if (config.needsBackwardPass)
        runBackwardPass(dag, impl, config.needsDescendants);
    if (config.needsForwardPass && config.needsBackwardPass)
        computeSlack(dag);
    if (config.needsRegisterPressure)
        computeRegisterPressure(dag);
}

/**
 * Per-block trace emission: snapshots the counter registry around
 * each phase and fires one event with the phase's deltas.  Inactive
 * (and cost-free beyond one branch) unless both a sink is configured
 * and the observability layer is on.
 */
class BlockTracer
{
  public:
    BlockTracer(obs::TraceSink *sink, std::size_t block,
                const BasicBlock &bb)
        : sink_(obs::enabled() ? sink : nullptr), block_(block), bb_(bb)
    {
        if (sink_)
            before_ = obs::CounterRegistry::global().snapshot();
    }

    void
    phaseDone(const char *phase, double seconds)
    {
        if (!sink_)
            return;
        obs::TraceEvent ev;
        ev.block = block_;
        ev.begin = bb_.begin;
        ev.size = bb_.size();
        ev.phase = phase;
        ev.seconds = seconds;
        ev.counters = obs::CounterRegistry::global().deltaSince(before_);
        sink_->event(ev);
        before_ = obs::CounterRegistry::global().snapshot();
    }

  private:
    obs::TraceSink *sink_;
    std::size_t block_;
    const BasicBlock &bb_;
    obs::CounterSet before_;
};

} // namespace

ProgramResult
runPipeline(Program &prog, const MachineModel &machine,
            const PipelineOptions &opts)
{
    std::vector<BasicBlock> blocks = partitionBlocks(prog, opts.partition);
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);
    ListScheduler scheduler(spec.config, machine);

    ProgramResult result;
    result.numBlocks = blocks.size();
    result.numInsts = prog.size();

    obs::CounterSet run_before;
    if (obs::enabled())
        run_before = obs::CounterRegistry::global().snapshot();

    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        BlockView block(prog, bb);
        BlockTracer tracer(opts.trace, b, bb);

        obs::ScopedPhase build_phase("build");
        Dag dag = builder->build(block, machine, opts.build);
        result.buildSeconds += build_phase.stop();
        tracer.phaseDone("build", build_phase.seconds());

        obs::ScopedPhase heur_phase("heur");
        runNeededPasses(dag, spec.config, opts.passImpl);
        result.heurSeconds += heur_phase.stop();
        tracer.phaseDone("heur", heur_phase.seconds());

        obs::ScopedPhase sched_phase("sched");
        Schedule sched = scheduler.run(dag);
        result.schedSeconds += sched_phase.stop();
        tracer.phaseDone("sched", sched_phase.seconds());

        result.dagStats.accumulate(dag);

        if (opts.evaluate) {
            obs::ScopedPhase eval_phase("evaluate");
            // Ground truth: a timing-complete DAG.  Table-built DAGs
            // preserve every timing constraint (Section 2), so reuse
            // the scheduler's DAG when it came from a table builder
            // without transitive prevention; otherwise rebuild.
            bool reusable =
                (opts.builder == BuilderKind::TableForward ||
                 opts.builder == BuilderKind::TableBackward) &&
                !opts.build.preventTransitive;
            if (reusable) {
                result.cyclesOriginal +=
                    simulateSchedule(dag, originalOrderSchedule(dag).order,
                                     machine)
                        .cycles;
                result.cyclesScheduled +=
                    simulateSchedule(dag, sched.order, machine).cycles;
            } else {
                BuildOptions gt_opts = opts.build;
                gt_opts.preventTransitive = false;
                gt_opts.maintainReachMaps = false;
                Dag gt = TableForwardBuilder().build(block, machine,
                                                     gt_opts);
                result.cyclesOriginal +=
                    simulateSchedule(gt, originalOrderSchedule(gt).order,
                                     machine)
                        .cycles;
                result.cyclesScheduled +=
                    simulateSchedule(gt, sched.order, machine).cycles;
            }
            eval_phase.stop();
            tracer.phaseDone("evaluate", eval_phase.seconds());
        }
    }

    if (obs::enabled())
        result.counters =
            obs::CounterRegistry::global().deltaSince(run_before);

    return result;
}

BlockScheduleResult
scheduleBlock(const BlockView &block, const MachineModel &machine,
              const PipelineOptions &opts)
{
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);

    obs::ScopedPhase build_phase("build");
    Dag dag = builder->build(block, machine, opts.build);
    build_phase.stop();

    obs::ScopedPhase heur_phase("heur");
    runNeededPasses(dag, spec.config, opts.passImpl);
    heur_phase.stop();

    ListScheduler scheduler(spec.config, machine);
    obs::ScopedPhase sched_phase("sched");
    Schedule sched = scheduler.run(dag);
    sched_phase.stop();

    return BlockScheduleResult{std::move(dag), std::move(sched)};
}

} // namespace sched91
