#include "core/pipeline.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>

#include "dag/table_forward.hh"
#include "heuristics/heuristic.hh"
#include "heuristics/register_pressure.hh"
#include "obs/events.hh"
#include "obs/flight_recorder.hh"
#include "obs/histogram.hh"
#include "obs/memory.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "sched/list_scheduler.hh"
#include "sched/verifier.hh"
#include "support/cancellation.hh"
#include "support/fault_inject.hh"
#include "support/log.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "support/worker_context.hh"

namespace sched91
{

namespace
{

/** Salt bit separating the arena alloc-fail draw from the boundary
 * alloc-fail draw (attempt salts are small integers, so the high bit
 * can never collide with a real retry salt). */
constexpr std::uint64_t kArenaAllocFailSalt = 1ULL << 63;

/** Run the static heuristic passes an algorithm declares it needs. */
void
runNeededPasses(Dag &dag, const SchedulerConfig &config, PassImpl impl)
{
    if (config.needsForwardPass)
        runForwardPass(dag, impl);
    if (config.needsBackwardPass)
        runBackwardPass(dag, impl, config.needsDescendants);
    if (config.needsForwardPass && config.needsBackwardPass)
        computeSlack(dag);
    if (config.needsRegisterPressure)
        computeRegisterPressure(dag);
}

/**
 * Per-block trace emission: snapshots the thread's active counter
 * source (worker shard inside the pipeline, global registry
 * otherwise) around each phase and fires one event with the phase's
 * deltas.  Inactive (and cost-free beyond one branch) unless both a
 * sink is configured and the observability layer is on.
 */
class BlockTracer
{
  public:
    BlockTracer(obs::TraceSink *sink, std::size_t block,
                const BasicBlock &bb, unsigned worker)
        : sink_(obs::enabled() ? sink : nullptr), block_(block), bb_(bb),
          worker_(worker)
    {
        if (sink_)
            before_ = obs::activeSnapshot();
    }

    void
    phaseDone(const char *phase, double seconds)
    {
        if (!sink_)
            return;
        obs::TraceEvent ev;
        ev.block = block_;
        ev.begin = bb_.begin;
        ev.size = bb_.size();
        ev.phase = phase;
        ev.seconds = seconds;
        ev.worker = worker_;
        ev.counters = obs::activeDeltaSince(before_);
        sink_->event(ev);
        before_ = obs::activeSnapshot();
    }

  private:
    obs::TraceSink *sink_;
    std::size_t block_;
    const BasicBlock &bb_;
    unsigned worker_;
    obs::CounterSet before_;
};

/** Everything one block produces, parked in its own slot until the
 * post-join reduction. */
struct BlockOutput
{
    double buildSeconds = 0.0;
    double heurSeconds = 0.0;
    double schedSeconds = 0.0;
    double verifySeconds = 0.0;
    DagStructure dagStats;
    long long cyclesOriginal = 0;
    long long cyclesScheduled = 0;
    Schedule sched;
    obs::BufferedTraceSink trace; ///< used only when tracing

    /** Decision log, only for the --explain-block target. */
    std::unique_ptr<DecisionTrace> decisions;

    // Robustness outcomes (reduced into ProgramResult post-join).
    bool fallback = false;       ///< n**2 -> table builder switch
    bool degraded = false;       ///< schedule is original order
    bool verifyRejected = false; ///< verifier refused the schedule
    std::string stage;           ///< where the degradation happened
    std::string reason;
};

/** Thrown inside one block's chain to request degradation; never
 * escapes processBlock. */
struct BlockAbort
{
    const char *stage;
    std::string reason;
};

/** Thread-private machinery of one pipeline lane. */
struct WorkerState
{
    WorkerContext ctx;
    /** Cleared per block, so Max gauges become per-block peaks. */
    obs::CounterShard blockShard{obs::CounterRegistry::global()};
    /** Run-lifetime accumulation, flushed to the registry post-join. */
    obs::CounterShard accum{obs::CounterRegistry::global()};
    obs::PhaseProfiler profiler;
    /** Per-block latency/size distributions; merged post-join (bucket
     * addition is associative, so lane assignment cannot show). */
    obs::HistogramSet hists;
    /** Flight-recorder ring, claimed lazily on first chunk. */
    obs::flight::Recorder *flight = nullptr;
    /** Buffered log records, replayed post-join in block order. */
    log::LogBuffer logBuf;
    /** Lane-local top-K outliers; merged post-join. */
    std::unique_ptr<obs::OutlierTracker> outliers;
};

/** Lines of @p block's instructions, for a forensic bundle. */
std::string
blockSourceText(const BlockView &block)
{
    std::string out;
    for (std::uint32_t i = 0; i < block.size(); ++i) {
        out += block.inst(i).toString();
        out += '\n';
    }
    return out;
}

} // namespace

/**
 * Serializes the global counter-registry bracket (start snapshot,
 * post-join flush, delta) across concurrent runPipeline calls — the
 * daemon runs one pipeline per worker.  All per-event counting inside
 * the parallel region goes through thread-installed shards and never
 * touches the registry, so this lock is taken twice per *run*, not
 * per event.  Under concurrency the registry delta attributes
 * overlapping runs' work to whichever run reads it first; per-request
 * counter attribution is therefore approximate in the daemon (the
 * global totals stay exact).  Exposed (core/pipeline.hh) so the
 * daemon's live stats endpoint can snapshot the registry without
 * racing a concurrent post-join flush.
 */
std::mutex &
registryBracketMutex()
{
    static std::mutex mu;
    return mu;
}

ProgramResult
runPipeline(Program &prog, const MachineModel &machine,
            const PipelineOptions &opts)
{
    std::vector<BasicBlock> blocks = partitionBlocks(prog, opts.partition);
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);
    ListScheduler scheduler(spec.config, machine);

    // F1/F2 degradation ladder, rung one: an n**2 builder facing a
    // block beyond the paper's practical window switches to table
    // building (which handled fpppp's 11750-instruction block) before
    // any thought of giving up on scheduling entirely.
    const bool n2_family = opts.builder == BuilderKind::N2Forward ||
                           opts.builder == BuilderKind::N2Backward ||
                           opts.builder == BuilderKind::N2Landskov;
    std::unique_ptr<DagBuilder> fallback_builder;
    if (opts.maxBlockInsts > 0 && n2_family)
        fallback_builder = makeBuilder(BuilderKind::TableForward);

    ProgramResult result;
    result.numBlocks = blocks.size();
    result.numInsts = prog.size();

    const bool obs_on = obs::enabled();
    const bool tracing = obs_on && opts.trace != nullptr;

    obs::CounterSet run_before;
    if (obs_on) {
        std::lock_guard<std::mutex> lock(registryBracketMutex());
        run_before = obs::CounterRegistry::global().snapshot();
    }

    unsigned threads = opts.threads != 0
                           ? opts.threads
                           : ThreadPool::hardwareConcurrency();
    if (!blocks.empty() && blocks.size() < threads)
        threads = static_cast<unsigned>(blocks.size());
    if (threads == 0)
        threads = 1;

    std::vector<BlockOutput> outputs(blocks.size());
    std::vector<WorkerState> workers(threads);

    // Outlier capture rides the counter shards (the score is a counter
    // sum), so it requires the observability layer.
    const bool capture =
        obs_on && opts.captureOutliers > 0 && !blocks.empty();
    if (capture)
        for (WorkerState &ws : workers)
            ws.outliers = std::make_unique<obs::OutlierTracker>(
                static_cast<std::size_t>(opts.captureOutliers));

    // Flight-recorder bracket: the caller's thread owns the first ring
    // (run begin/end, post-join events); lanes claim theirs on first
    // chunk.  Payloads are properties of the input, never of the lane
    // layout, so dumps stay byte-identical across thread counts.
    // When a long-lived host (the daemon) manages the rings, the
    // bracket is skipped entirely: beginRun() would wipe concurrent
    // requests' history, and claim() would leak slots.  record()
    // still flows through whatever recorder the host installed on
    // this thread.
    const bool flight_on = obs::flight::enabled();
    const bool flight_bracket =
        flight_on && !obs::flight::externallyManaged();
    std::optional<obs::flight::ScopedRecorder> flight_scope;
    if (flight_bracket) {
        obs::flight::beginRun();
        obs::flight::setGauge(obs::flight::Gauge::BlocksTotal,
                              blocks.size());
        flight_scope.emplace(obs::flight::claim());
        obs::flight::record(obs::flight::EventKind::RunBegin, "run", {},
                            blocks.size(), prog.size());
    }

    // Whole-run budget bookkeeping: blocks not yet *started*, shared
    // across lanes so each starting block can claim its fair share of
    // whatever wall-clock remains.
    const auto run_start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> blocks_unstarted{blocks.size()};
    auto elapsedSeconds = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - run_start)
            .count();
    };

    auto processBlock = [&](unsigned w, std::size_t b) {
        const BasicBlock &bb = blocks[b];
        BlockView block(prog, bb);
        BlockOutput &out = outputs[b];
        BlockTracer tracer(tracing ? &out.trace : nullptr, b, bb, w);

        // Ladder rung two (last resort): the block keeps its original
        // instruction order — trivially valid, zero claimed speedup.
        auto degrade = [&](const char *stage, std::string reason) {
            obs::flight::record(obs::flight::EventKind::Diag, stage,
                                reason);
            log::info("block ", b, " degraded at ", stage, ": ", reason);
            out.degraded = true;
            out.stage = stage;
            out.reason = std::move(reason);
            out.decisions.reset();
            out.sched = Schedule{};
            out.sched.order.resize(bb.size());
            std::iota(out.sched.order.begin(), out.sched.order.end(),
                      std::uint32_t{0});
            out.dagStats = DagStructure{};
            out.cyclesOriginal = 0;
            out.cyclesScheduled = 0;
            obs::ev::robustBlocksDegraded.inc();
            if (opts.evaluate) {
                // Best effort: cost the order we are emitting.  A
                // block degraded during *build* may not even have a
                // ground-truth DAG, so failure here just leaves the
                // cycle counts at zero.
                try {
                    BuildOptions gt_opts = opts.build;
                    gt_opts.preventTransitive = false;
                    gt_opts.maintainReachMaps = false;
                    // Never under the (possibly fired) block token.
                    gt_opts.cancel = nullptr;
                    Dag gt = TableForwardBuilder().build(block, machine,
                                                         gt_opts);
                    out.cyclesOriginal =
                        simulateSchedule(gt,
                                         originalOrderSchedule(gt).order,
                                         machine)
                            .cycles;
                    out.cyclesScheduled = out.cyclesOriginal;
                } catch (const std::exception &) {
                }
            }
            tracer.phaseDone("degrade", 0.0);
        };

        // Effective per-block budget: the per-block cap, tightened by
        // a fair share of whatever the whole-run budget has left —
        // (maxRunSeconds - elapsed) / blocks-not-yet-started.  Early
        // blocks that finish under their share donate the surplus to
        // later blocks; an exhausted run budget degrades every
        // remaining block immediately, so the run always ends in
        // bounded time with all blocks accounted for.
        double budget = opts.maxBlockSeconds;
        bool from_run_budget = false;
        bool run_exhausted = false;
        if (opts.maxRunSeconds > 0.0) {
            const std::size_t remaining = blocks_unstarted.fetch_sub(
                1, std::memory_order_relaxed); // includes this block
            const double left = opts.maxRunSeconds - elapsedSeconds();
            if (left <= 0.0) {
                run_exhausted = true;
            } else {
                const double share =
                    left / static_cast<double>(remaining ? remaining : 1);
                if (budget <= 0.0 || share < budget) {
                    budget = share;
                    from_run_budget = true;
                }
            }
        }

        double spent = 0.0;
        auto checkBudget = [&](const char *stage) {
            if (budget <= 0.0)
                return;
            if (spent > budget) {
                obs::ev::robustBudgetExceeded.inc();
                if (from_run_budget)
                    obs::ev::cancelRunBudgetExhausted.inc();
                std::ostringstream os;
                os << stage << " phase pushed block past " << budget
                   << "s budget";
                throw BlockAbort{"budget", os.str()};
            }
        };

        // Cooperative mid-loop budget enforcement: one token per
        // block, armed with the effective budget and polled inside
        // the builder and scheduler loops.  The phase-boundary
        // checkBudget() calls remain for the phases that do not poll
        // (heuristics, verification).
        std::optional<CancellationToken> token;
        if (budget > 0.0 && !run_exhausted) {
            token.emplace(budget);
            std::ostringstream os;
            os << "block exceeded " << budget
               << "s budget (cancelled mid-loop)";
            token->setReason(os.str());
        }

        // Deterministic fault-injection key: a pure function of the
        // block *content*, so the same payload fails the same way at
        // every thread count and on every replay.
        std::uint64_t fault_key = 0;
        const bool fault_on = fault::enabled();
        if (fault_on)
            fault_key = fault::fnv1a64(blockSourceText(block));

        const char *stage = "build";
        try {
            // Graceful drain: a fired interrupt token degrades every
            // block that has not yet started (in-flight blocks
            // finish), so SIGINT still produces a complete, truthful
            // stats document.  Checked before the budget rung — a
            // drain is not a budget overrun.
            if (opts.interrupt && opts.interrupt->cancelled()) {
                obs::ev::cancelRunInterrupted.inc();
                obs::flight::record(obs::flight::EventKind::Cancel,
                                    "interrupt", "drain requested");
                throw BlockAbort{
                    "interrupt",
                    "run interrupted: block kept original order"};
            }

            if (run_exhausted) {
                obs::ev::robustBudgetExceeded.inc();
                obs::ev::cancelRunBudgetExhausted.inc();
                std::ostringstream os;
                os << "run budget of " << opts.maxRunSeconds
                   << "s exhausted before block started";
                throw BlockAbort{"budget", os.str()};
            }

            DagBuilder *use_builder = builder.get();
            if (fallback_builder != nullptr &&
                bb.size() >
                    static_cast<std::size_t>(opts.maxBlockInsts)) {
                use_builder = fallback_builder.get();
                out.fallback = true;
                obs::ev::robustBuilderFallbacks.inc();
            }

            BuildOptions build_opts = opts.build;
            if (token)
                build_opts.cancel = &*token;

            // Injection points at the build boundary
            // (support/fault_inject.hh).  The slow-block stall is
            // charged to build time, so it drives the budget/deadline
            // rungs exactly like a genuinely pathological block; the
            // throw points exercise the containment (or, under
            // --strict / the daemon ladder, propagation) paths.
            obs::ScopedPhase build_phase("build");
            if (fault_on) {
                // Signal-grade points first (docs/ROBUSTNESS.md):
                // they take the whole process down — the failure mode
                // they simulate.  Survivable only when this pipeline
                // runs inside a sandbox worker
                // (`sched91 serve --isolate=process`), whose
                // supervisor converts the death into the ladder's
                // degradation rung.
                if (fault::shouldFire(fault::Point::CrashSegv,
                                      fault_key, opts.faultSalt)) {
                    obs::flight::record(obs::flight::EventKind::Diag,
                                        "inject", "crash-segv");
                    std::raise(SIGSEGV);
                }
                if (fault::shouldFire(fault::Point::CrashAbort,
                                      fault_key, opts.faultSalt)) {
                    obs::flight::record(obs::flight::EventKind::Diag,
                                        "inject", "crash-abort");
                    std::abort();
                }
                if (fault::shouldFire(fault::Point::SpinForever,
                                      fault_key, opts.faultSalt)) {
                    obs::flight::record(obs::flight::EventKind::Diag,
                                        "inject", "spin-forever");
                    // A genuinely runaway loop: no cancellation poll,
                    // no sleep — only SIGKILL (watchdog) or RLIMIT_CPU
                    // ends it.
                    for (volatile std::uint64_t spin = 0;;)
                        ++spin;
                }
                // The arena rung of alloc-fail: arm the worker's
                // arena so std::bad_alloc surfaces from inside the
                // builder's own allocations (a different unwind than
                // the boundary throw below).  A distinct salt bit
                // keeps the draw independent of the boundary draw
                // while staying a pure function of (seed, content).
                if (fault::shouldFire(fault::Point::AllocFail,
                                      fault_key,
                                      opts.faultSalt ^
                                          kArenaAllocFailSalt)) {
                    if (Arena *arena = WorkerContext::currentArena()) {
                        obs::flight::record(
                            obs::flight::EventKind::Diag, "inject",
                            "alloc-fail-arena");
                        arena->armAllocFailure();
                    }
                }
                if (fault::shouldFire(fault::Point::SlowBlock,
                                      fault_key, opts.faultSalt)) {
                    obs::flight::record(obs::flight::EventKind::Diag,
                                        "inject", "slow-block");
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            fault::activeConfig().slowBlockMs));
                }
                if (fault::shouldFire(fault::Point::AllocFail,
                                      fault_key, opts.faultSalt)) {
                    obs::flight::record(obs::flight::EventKind::Diag,
                                        "inject", "alloc-fail");
                    throw std::bad_alloc();
                }
                if (fault::shouldFire(fault::Point::BuilderThrow,
                                      fault_key, opts.faultSalt)) {
                    obs::flight::record(obs::flight::EventKind::Diag,
                                        "inject", "builder-throw");
                    fatal("injected fault: builder-throw (key ",
                          fault_key, ")");
                }
            }
            Dag dag = use_builder->build(block, machine, build_opts);
            out.buildSeconds = build_phase.stop();
            tracer.phaseDone("build", build_phase.seconds());
            obs::flight::record(obs::flight::EventKind::PhaseEnd,
                                "build", {}, dag.size(), dag.numArcs());
            spent += build_phase.seconds();
            checkBudget("build");

            stage = "heur";
            obs::ScopedPhase heur_phase("heur");
            runNeededPasses(dag, spec.config, opts.passImpl);
            out.heurSeconds = heur_phase.stop();
            tracer.phaseDone("heur", heur_phase.seconds());
            obs::flight::record(obs::flight::EventKind::PhaseEnd, "heur");
            spent += heur_phase.seconds();
            checkBudget("heur");

            stage = "sched";
            // --explain-block: record this block's full decision log
            // through the explicit winnowing selection path.
            DecisionStats decision_stats;
            DecisionStats *stats_ptr = nullptr;
            if (opts.explainBlock >= 0 &&
                b == static_cast<std::size_t>(opts.explainBlock)) {
                decision_stats.recordLog = true;
                stats_ptr = &decision_stats;
            }
            obs::ScopedPhase sched_phase("sched");
            out.sched =
                scheduler.run(dag, stats_ptr, token ? &*token : nullptr);
            out.schedSeconds = sched_phase.stop();
            tracer.phaseDone("sched", sched_phase.seconds());
            obs::flight::record(obs::flight::EventKind::PhaseEnd,
                                "sched", {}, out.sched.order.size(),
                                static_cast<std::uint64_t>(
                                    out.sched.makespan < 0
                                        ? 0
                                        : out.sched.makespan));
            if (stats_ptr) {
                out.decisions = std::make_unique<DecisionTrace>();
                out.decisions->block = static_cast<int>(b);
                out.decisions->algorithm = spec.config.name;
                for (const RankedHeuristic &rh : spec.config.ranking)
                    out.decisions->rankNames.push_back(
                        heuristicInfo(rh.heuristic).name);
                out.decisions->stats = std::move(decision_stats);
                for (std::uint32_t i = 0; i < block.size(); ++i)
                    out.decisions->insts.push_back(
                        block.inst(i).toString());
            }

            if (opts.verify) {
                stage = "verify";
                obs::ScopedPhase verify_phase("verify");
                VerifyResult vr = verifySchedule(dag, out.sched, machine);
                out.verifySeconds = verify_phase.stop();
                tracer.phaseDone("verify", verify_phase.seconds());
                // An injected rejection takes the real rejection path
                // end to end; it only substitutes the verdict.
                bool inject_reject =
                    fault_on &&
                    fault::shouldFire(fault::Point::VerifierReject,
                                      fault_key, opts.faultSalt);
                obs::flight::record(obs::flight::EventKind::PhaseEnd,
                                    "verify", {},
                                    vr.ok() && !inject_reject ? 1 : 0);
                if (!vr.ok() || inject_reject) {
                    std::string summary =
                        vr.ok() ? "injected fault: verifier-reject"
                                : vr.summary();
                    obs::ev::robustVerifierRejections.inc();
                    out.verifyRejected = true;
                    if (!opts.containFaults)
                        panic("block ", b,
                              ": schedule verification failed: ",
                              summary);
                    throw BlockAbort{"verify", summary};
                }
            }

            out.dagStats.accumulate(dag);

            if (opts.evaluate) {
                stage = "evaluate";
                obs::ScopedPhase eval_phase("evaluate");
                // Ground truth: a timing-complete DAG.  Table-built
                // DAGs preserve every timing constraint (Section 2),
                // so reuse the scheduler's DAG when it came from a
                // table builder without transitive prevention;
                // otherwise rebuild.
                bool reusable =
                    (out.fallback ||
                     opts.builder == BuilderKind::TableForward ||
                     opts.builder == BuilderKind::TableBackward) &&
                    !opts.build.preventTransitive;
                if (reusable) {
                    out.cyclesOriginal =
                        simulateSchedule(dag,
                                         originalOrderSchedule(dag).order,
                                         machine)
                            .cycles;
                    out.cyclesScheduled =
                        simulateSchedule(dag, out.sched.order, machine)
                            .cycles;
                } else {
                    BuildOptions gt_opts = opts.build;
                    gt_opts.preventTransitive = false;
                    gt_opts.maintainReachMaps = false;
                    Dag gt = TableForwardBuilder().build(block, machine,
                                                         gt_opts);
                    out.cyclesOriginal =
                        simulateSchedule(gt,
                                         originalOrderSchedule(gt).order,
                                         machine)
                            .cycles;
                    out.cyclesScheduled =
                        simulateSchedule(gt, out.sched.order, machine)
                            .cycles;
                }
                eval_phase.stop();
                tracer.phaseDone("evaluate", eval_phase.seconds());
                obs::flight::record(
                    obs::flight::EventKind::PhaseEnd, "evaluate", {},
                    static_cast<std::uint64_t>(out.cyclesOriginal),
                    static_cast<std::uint64_t>(out.cyclesScheduled));
            }
        } catch (const BlockAbort &a) {
            degrade(a.stage, a.reason);
        } catch (const CancelledError &e) {
            // Mid-loop budget cancellation is the budget rung of the
            // ladder, honored even under --strict (same as the
            // phase-boundary BlockAbort above): a block that asked
            // for a bounded run and got one is not a fault.
            obs::ev::robustBudgetExceeded.inc();
            obs::ev::cancelBlocksCancelled.inc();
            if (from_run_budget)
                obs::ev::cancelRunBudgetExhausted.inc();
            obs::flight::record(obs::flight::EventKind::Cancel, "budget",
                                e.what());
            degrade("budget", e.what());
        } catch (const std::exception &e) {
            if (!opts.containFaults)
                throw;
            degrade(stage, e.what());
        }
        // The block's DAGs die here — before the next beginBlock()
        // recycles the arena their arc lists live in.
    };

    auto runChunk = [&](unsigned w, std::size_t begin, std::size_t end) {
        WorkerState &ws = workers[w];
        WorkerContext::Scope ctx_scope(ws.ctx);
        // One log buffer and (lazily claimed) flight ring per lane;
        // both key their records by block id, so the post-join merge
        // order is independent of the lane layout.
        log::ScopedLogBuffer log_scope(&ws.logBuf);
        if (flight_bracket && !ws.flight)
            ws.flight = obs::flight::claim();
        std::optional<obs::flight::ScopedRecorder> lane_flight;
        if (flight_bracket)
            lane_flight.emplace(ws.flight);

        auto blockBegin = [&](std::size_t b) {
            ws.logBuf.setBlock(b);
            obs::flight::setBlock(b);
            obs::flight::record(obs::flight::EventKind::BlockBegin,
                                "block", {}, blocks[b].size(),
                                blocks[b].begin);
        };
        auto blockEnd = [&](std::size_t b) {
            obs::flight::record(obs::flight::EventKind::BlockEnd,
                                "block",
                                outputs[b].degraded
                                    ? std::string_view{"degraded"}
                                    : std::string_view{},
                                blocks[b].size());
            if (flight_on)
                obs::flight::addGauge(obs::flight::Gauge::BlocksDone, 1);
        };

        if (obs_on) {
            // Even a single-lane run routes through the shard: the
            // per-block clear is what gives Max gauges history-free
            // per-block values, which the byte-identical-output
            // guarantee across thread counts depends on.
            obs::ScopedProfiler prof_scope(ws.profiler);
            obs::ScopedCounterShard shard_scope(ws.blockShard);
            for (std::size_t b = begin; b < end; ++b) {
                ws.blockShard.clear();
                ws.ctx.beginBlock();
                blockBegin(b);
                try {
                    processBlock(w, b);
                } catch (...) {
                    // Propagating fault (containFaults off): keep the
                    // partial block's counts — the exception path
                    // below flushes the lane accumulators into the
                    // registry.
                    ws.blockShard.flushInto(ws.accum);
                    throw;
                }
                ws.blockShard.flushInto(ws.accum);
                // Per-block distributions, while the block's arena
                // allocations are still accounted (the arena resets
                // at the next beginBlock).
                const BlockOutput &out = outputs[b];
                ws.hists.record("block.insts", blocks[b].size());
                ws.hists.record("block.arena_bytes",
                                ws.ctx.arena().bytesInUse());
                ws.hists.record("lat.build_ns",
                                obs::secondsToNs(out.buildSeconds));
                ws.hists.record("lat.heur_ns",
                                obs::secondsToNs(out.heurSeconds));
                ws.hists.record("lat.sched_ns",
                                obs::secondsToNs(out.schedSeconds));
                ws.hists.record("lat.verify_ns",
                                obs::secondsToNs(out.verifySeconds));

                // Deterministic work score: what the outlier ranking
                // and the CounterSnap flight event report.
                const std::uint64_t score =
                    obs::shardWorkScore(ws.blockShard);
                obs::flight::record(
                    obs::flight::EventKind::CounterSnap, "work", {},
                    score);
                if (ws.outliers && ws.outliers->admits(score, b)) {
                    obs::OutlierRecord rec;
                    rec.block = b;
                    rec.score = score;
                    rec.begin = blocks[b].begin;
                    rec.size = blocks[b].size();
                    rec.dagNodes = out.dagStats.totalNodes;
                    rec.dagArcs = out.dagStats.totalArcs;
                    rec.buildSeconds = out.buildSeconds;
                    rec.heurSeconds = out.heurSeconds;
                    rec.schedSeconds = out.schedSeconds;
                    rec.verifySeconds = out.verifySeconds;
                    rec.counters = ws.blockShard.snapshot().nonzero();
                    rec.stage = out.fallback && !out.degraded
                                    ? "fallback"
                                    : out.stage;
                    rec.reason = out.reason;
                    rec.degraded = out.degraded;
                    rec.fallback = out.fallback;
                    rec.source =
                        blockSourceText(BlockView(prog, blocks[b]));
                    ws.outliers->insert(std::move(rec));
                }
                blockEnd(b);
            }
        } else {
            for (std::size_t b = begin; b < end; ++b) {
                ws.ctx.beginBlock();
                blockBegin(b);
                processBlock(w, b);
                blockEnd(b);
            }
        }
    };

    {
        ThreadPool pool(threads);
        std::size_t chunk =
            blocks.size() / (static_cast<std::size_t>(threads) * 8);
        if (chunk == 0)
            chunk = 1;
        try {
            pool.parallelFor(blocks.size(), chunk, runChunk);
        } catch (...) {
            // A propagating fault (containFaults off) must not lose
            // the events already counted: parallelFor drains every
            // chunk before rethrowing, so the lane accumulators are
            // quiescent — flush them into the registry so a retrying
            // caller (the daemon's ladder) still sees exact global
            // totals, including the injected fault that killed this
            // attempt.
            if (obs_on) {
                std::lock_guard<std::mutex> lock(registryBracketMutex());
                obs::CounterRegistry &registry =
                    obs::CounterRegistry::global();
                for (WorkerState &ws : workers)
                    ws.accum.flushInto(registry);
            }
            throw;
        }
    }

    // Deterministic reduction: block order for per-block outputs...
    if (opts.schedules)
        opts.schedules->assign(blocks.size(), Schedule{});
    for (std::size_t b = 0; b < outputs.size(); ++b) {
        BlockOutput &out = outputs[b];
        result.buildSeconds += out.buildSeconds;
        result.heurSeconds += out.heurSeconds;
        result.schedSeconds += out.schedSeconds;
        result.verifySeconds += out.verifySeconds;
        result.dagStats.merge(out.dagStats);
        result.cyclesOriginal += out.cyclesOriginal;
        result.cyclesScheduled += out.cyclesScheduled;
        if (opts.schedules)
            (*opts.schedules)[b] = std::move(out.sched);
        if (out.decisions)
            result.decisions = std::move(*out.decisions);
        if (tracing)
            out.trace.replayInto(*opts.trace);
        if (out.fallback) {
            ++result.builderFallbacks;
            std::ostringstream os;
            os << blocks[b].size() << " insts over --max-block-insts "
               << opts.maxBlockInsts
               << ": n**2 builder fell back to table building";
            result.blockIssues.push_back(
                ProgramResult::BlockIssue{b, "fallback", os.str(),
                                          false});
        }
        if (out.verifyRejected)
            ++result.verifierRejections;
        if (out.degraded) {
            ++result.blocksDegraded;
            result.blockIssues.push_back(ProgramResult::BlockIssue{
                b, out.stage, out.reason, true});
        }
    }

    // Memory telemetry (obs/memory.hh).  The deterministic gauges are
    // per-block sums/maxima in disguise — summing (or maxing) over
    // workers equals summing over blocks, so they are identical at
    // every thread count; the environmental ones are not and stay out
    // of the counter set.
    for (WorkerState &ws : workers) {
        Arena &arena = ws.ctx.arena();
        result.memory.arenaBytesAllocated += arena.totalBytesAllocated();
        result.memory.arenaHighWaterBytes =
            std::max<std::uint64_t>(result.memory.arenaHighWaterBytes,
                                    arena.highWaterBytes());
        result.memory.arenaReservedBytes += arena.bytesReserved();
        result.memory.arenaChunks += arena.numChunks();
    }
    result.memory.dagArcs = result.dagStats.totalArcs;
    result.memory.dagArcBytes = result.memory.dagArcs * sizeof(Arc);
    result.memory.peakRssBytes = obs::currentPeakRssBytes();

    // ... and worker order for the thread-private shards and phase
    // trees (both merges are kind-aware, so the result is independent
    // of how blocks were distributed over lanes).
    if (obs_on) {
        std::lock_guard<std::mutex> lock(registryBracketMutex());
        obs::CounterRegistry &registry = obs::CounterRegistry::global();
        obs::PhaseProfiler &profiler = obs::PhaseProfiler::active();
        obs::CounterShard run_total(registry);
        for (WorkerState &ws : workers) {
            ws.accum.flushInto(run_total);
            profiler.mergeFrom(ws.profiler);
            result.histograms.merge(ws.hists);
        }
        // Deterministic memory gauges join the run's counters through
        // the merged shard, so the Sum entries land in the registry
        // delta and the Max gauge rides the peak-override below.
        run_total.add(
            registry.getOrAdd(obs::ev::memArenaBytesAllocated.name()),
            result.memory.arenaBytesAllocated);
        run_total.recordMax(
            registry.getOrAdd(obs::ev::memArenaHighWater.name(),
                              obs::CounterKind::Max),
            result.memory.arenaHighWaterBytes);
        run_total.add(registry.getOrAdd(obs::ev::memDagArcBytes.name()),
                      result.memory.dagArcBytes);
        run_total.flushInto(registry);
        result.counters = registry.deltaSince(run_before);
        // Registry-level subtraction cannot express a per-run peak: a
        // prior run's higher Max value would zero (or understate) this
        // run's.  All in-run counting went through the shards, so the
        // merged shard holds exactly this run's peaks — report those.
        for (std::size_t id = 0; id < registry.size(); ++id)
            if (registry.kind(id) == obs::CounterKind::Max &&
                run_total.value(id) != 0)
                result.counters.set(registry.name(id),
                                    run_total.value(id));
    }

    // Lane-local top-K trackers merge into the global top-K: a block
    // in the global top-K is necessarily in its own lane's, so the
    // merged set is independent of the lane layout.
    if (capture) {
        obs::OutlierTracker merged(
            static_cast<std::size_t>(opts.captureOutliers));
        for (WorkerState &ws : workers)
            if (ws.outliers)
                merged.merge(*ws.outliers);
        result.outliers = merged.byBlock();
    }

    // Replay buffered log records through the sink in block order —
    // the only way worker-side diagnostics reach the user, so output
    // can never interleave and never depends on the thread count.
    {
        std::vector<const log::LogBuffer *> log_bufs;
        log_bufs.reserve(workers.size());
        for (WorkerState &ws : workers)
            log_bufs.push_back(&ws.logBuf);
        log::replay(log_bufs);
    }

    if (flight_bracket) {
        obs::flight::setGauge(obs::flight::Gauge::ArenaHighWaterBytes,
                              result.memory.arenaHighWaterBytes);
        obs::flight::setGauge(obs::flight::Gauge::DagArcBytes,
                              result.memory.dagArcBytes);
        obs::flight::setPostRun();
        obs::flight::record(obs::flight::EventKind::RunEnd, "run", {},
                            result.blocksDegraded,
                            result.verifierRejections);
    } else if (flight_on) {
        // Externally managed rings: no gauge/bracket writes, but the
        // host's recorder still gets the run's closing line.
        obs::flight::record(obs::flight::EventKind::RunEnd, "run", {},
                            result.blocksDegraded,
                            result.verifierRejections);
    }

    return result;
}

BlockScheduleResult
scheduleBlock(const BlockView &block, const MachineModel &machine,
              const PipelineOptions &opts)
{
    AlgorithmSpec spec = algorithmSpec(opts.algorithm);
    std::unique_ptr<DagBuilder> builder = makeBuilder(opts.builder);

    // Same mid-loop budget enforcement as runPipeline, but the
    // CancelledError propagates: single-block callers own their
    // fallback policy just as they own verifier rejections.
    std::optional<CancellationToken> token;
    if (opts.maxBlockSeconds > 0.0) {
        token.emplace(opts.maxBlockSeconds);
        std::ostringstream os;
        os << "block exceeded " << opts.maxBlockSeconds
           << "s budget (cancelled mid-loop)";
        token->setReason(os.str());
    }
    BuildOptions build_opts = opts.build;
    if (token)
        build_opts.cancel = &*token;

    obs::ScopedPhase build_phase("build");
    Dag dag = builder->build(block, machine, build_opts);
    build_phase.stop();

    obs::ScopedPhase heur_phase("heur");
    runNeededPasses(dag, spec.config, opts.passImpl);
    heur_phase.stop();

    ListScheduler scheduler(spec.config, machine);
    obs::ScopedPhase sched_phase("sched");
    Schedule sched =
        scheduler.run(dag, nullptr, token ? &*token : nullptr);
    sched_phase.stop();

    if (opts.verify) {
        obs::ScopedPhase verify_phase("verify");
        VerifyResult vr = verifySchedule(dag, sched, machine);
        verify_phase.stop();
        if (!vr.ok()) {
            obs::ev::robustVerifierRejections.inc();
            panic("schedule verification failed: ", vr.summary());
        }
    }

    return BlockScheduleResult{std::move(dag), std::move(sched)};
}

} // namespace sched91
