/**
 * @file
 * Top-level scheduling pipeline: the paper's three-step structure
 * (Section 1) over a whole program.
 *
 *  1. DAG construction for each basic block (Section 2);
 *  2. the intermediate heuristic calculation step, run in the
 *     direction(s) the chosen algorithm actually needs (Section 4);
 *  3. the scheduling pass (Section 5).
 *
 * The pipeline reports per-phase wall-clock time and DAG structural
 * statistics — the quantities of Tables 4 and 5 — and can optionally
 * evaluate schedule quality in cycles with the in-order pipeline
 * simulator against a timing-complete table-built ground-truth DAG.
 */

#ifndef SCHED91_CORE_PIPELINE_HH
#define SCHED91_CORE_PIPELINE_HH

#include <cstdint>

#include "dag/builder.hh"
#include "dag/dag_stats.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "machine/machine_model.hh"
#include "obs/counters.hh"
#include "sched/pipeline_sim.hh"
#include "sched/registry.hh"

namespace sched91
{

namespace obs
{
class TraceSink;
} // namespace obs

/** Pipeline configuration. */
struct PipelineOptions
{
    BuilderKind builder = BuilderKind::TableForward;
    AlgorithmKind algorithm = AlgorithmKind::SimpleForward;
    BuildOptions build;
    PassImpl passImpl = PassImpl::ReverseWalk;
    PartitionOptions partition;

    /**
     * Measure schedule quality: simulate original and scheduled order
     * of every block on the machine model (adds simulation time that
     * is *not* charged to the three scheduling phases).
     */
    bool evaluate = false;

    /**
     * Optional per-block per-phase trace consumer.  Events fire only
     * while the observability layer is enabled (obs::setEnabled).
     */
    obs::TraceSink *trace = nullptr;
};

/** Aggregated outcome of scheduling a whole program. */
struct ProgramResult
{
    std::size_t numBlocks = 0;
    std::size_t numInsts = 0;

    // Phase wall-clock times (summed over blocks).
    double buildSeconds = 0.0;
    double heurSeconds = 0.0;
    double schedSeconds = 0.0;

    double
    totalSeconds() const
    {
        return buildSeconds + heurSeconds + schedSeconds;
    }

    /** Tables 4/5 structural statistics. */
    DagStructure dagStats;

    // Quality (only when PipelineOptions::evaluate).
    long long cyclesOriginal = 0;  ///< sum over blocks, original order
    long long cyclesScheduled = 0; ///< sum over blocks, scheduled order

    /**
     * Event-counter deltas attributable to this run (Table 1's
     * a/f/b/v work, counted).  Empty unless the observability layer
     * was enabled for the run.
     */
    obs::CounterSet counters;
};

/**
 * Run the full pipeline over @p prog.  The program is mutated only by
 * memory-generation stamping (idempotent).
 */
ProgramResult runPipeline(Program &prog, const MachineModel &machine,
                          const PipelineOptions &opts);

/** Single-block result: the annotated DAG and its schedule. */
struct BlockScheduleResult
{
    Dag dag;
    Schedule sched;
};

/**
 * Convenience single-block entry point: build, annotate with the
 * passes the algorithm needs, schedule.
 */
BlockScheduleResult scheduleBlock(const BlockView &block,
                                  const MachineModel &machine,
                                  const PipelineOptions &opts);

} // namespace sched91

#endif // SCHED91_CORE_PIPELINE_HH
