/**
 * @file
 * Top-level scheduling pipeline: the paper's three-step structure
 * (Section 1) over a whole program.
 *
 *  1. DAG construction for each basic block (Section 2);
 *  2. the intermediate heuristic calculation step, run in the
 *     direction(s) the chosen algorithm actually needs (Section 4);
 *  3. the scheduling pass (Section 5).
 *
 * The pipeline reports per-phase wall-clock time and DAG structural
 * statistics — the quantities of Tables 4 and 5 — and can optionally
 * evaluate schedule quality in cycles with the in-order pipeline
 * simulator against a timing-complete table-built ground-truth DAG.
 *
 * Basic blocks are independent (each gets its own DAG, heuristic
 * pass, and schedule), so the pipeline processes them block-parallel
 * on a chunked thread pool.  Every worker owns a WorkerContext (bump
 * arena + scratch buffers), a private counter shard, and a private
 * phase profiler; per-block outputs land in slots indexed by block
 * id and all reductions happen after the join in a fixed order, so
 * schedules, statistics, counters, and trace events are identical for
 * every thread count (see docs/PERFORMANCE.md).
 */

#ifndef SCHED91_CORE_PIPELINE_HH
#define SCHED91_CORE_PIPELINE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dag/builder.hh"
#include "dag/dag_stats.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "machine/machine_model.hh"
#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "obs/memory.hh"
#include "obs/outliers.hh"
#include "sched/list_scheduler.hh"
#include "sched/pipeline_sim.hh"
#include "sched/registry.hh"

namespace sched91
{

namespace obs
{
class TraceSink;
} // namespace obs

class CancellationToken;

/** Pipeline configuration. */
struct PipelineOptions
{
    BuilderKind builder = BuilderKind::TableForward;
    AlgorithmKind algorithm = AlgorithmKind::SimpleForward;
    BuildOptions build;
    PassImpl passImpl = PassImpl::ReverseWalk;
    PartitionOptions partition;

    /**
     * Measure schedule quality: simulate original and scheduled order
     * of every block on the machine model (adds simulation time that
     * is *not* charged to the three scheduling phases).
     */
    bool evaluate = false;

    /**
     * Optional per-block per-phase trace consumer.  Events fire only
     * while the observability layer is enabled (obs::setEnabled).
     * Events are delivered after the parallel region, in block order,
     * from the caller's thread — the sink needs no locking.
     */
    obs::TraceSink *trace = nullptr;

    /**
     * Worker lanes for block-parallel execution: 0 picks the hardware
     * concurrency, 1 runs serial.  Results are deterministic — the
     * same program yields byte-identical schedules, statistics,
     * counters, and traces at every thread count.
     */
    unsigned threads = 0;

    /**
     * When non-null, receives one Schedule per block (indexed by
     * block id) — the per-block output that ProgramResult otherwise
     * aggregates away.
     */
    std::vector<Schedule> *schedules = nullptr;

    // --- Robustness (docs/ROBUSTNESS.md) ----------------------------

    /**
     * Independently re-check every block's schedule against its DAG
     * (sched/verifier.hh).  A rejection counts
     * `robust.verifier_rejections` and degrades the block.  On by
     * default: the check is linear in nodes + arcs.
     */
    bool verify = true;

    /**
     * Per-block fault containment: a FatalError/PanicError (or any
     * std::exception) thrown inside one block's build->heur->sched
     * chain — or a verifier rejection or budget overrun — degrades
     * that block to its original instruction order (counted in
     * `robust.blocks_degraded`, detailed in
     * ProgramResult::blockIssues) instead of killing the run.  Turn
     * off to restore fail-fast propagation (`--strict`).
     */
    bool containFaults = true;

    /**
     * The paper's F1/F2 degradation ladder: blocks larger than this
     * fall back from an n**2 builder to table building (F1 shows the
     * n**2 builders are practical only under a ~300-400 instruction
     * window; F2 shows table building handling an 11750-instruction
     * block with no window).  Counted in `robust.builder_fallbacks`,
     * *not* as a degraded block.  0 disables; no effect on table
     * builders.
     */
    int maxBlockInsts = 0;

    /**
     * Per-block wall-clock budget in seconds.  A CancellationToken
     * armed with this budget is polled inside the DAG-builder and
     * list-scheduler loops (support/cancellation.hh), so even a
     * single pathological n**2 build is cancelled mid-loop; phases
     * that do not poll (heuristics, verification) are still checked
     * at their boundaries.  Overrun degrades the block to original
     * order.  0 disables.  Note that budget outcomes depend on
     * machine load, so runs using this knob trade the byte-identical
     * determinism guarantee for liveness.
     */
    double maxBlockSeconds = 0.0;

    /**
     * Whole-run wall-clock budget in seconds, divided fair-share
     * across the blocks still to run: a block starting at elapsed
     * time t with r blocks remaining gets (maxRunSeconds - t) / r
     * seconds (further capped by maxBlockSeconds when both are set),
     * enforced through the same per-block CancellationToken.  Once
     * the budget is spent entirely, every remaining block degrades
     * immediately to original order.  Either way the run ends in
     * bounded time with every block accounted for.  Blocks cancelled
     * or skipped because of the *run* budget count
     * `cancel.run_budget_exhausted` (on top of the per-block budget
     * counters).  0 disables.  Same determinism trade-off as
     * maxBlockSeconds.
     */
    double maxRunSeconds = 0.0;

    /**
     * Graceful-drain interrupt (SIGINT/SIGTERM): an already-fired
     * external token checked as each block *starts*.  In-flight
     * blocks finish normally; blocks not yet started degrade to
     * original order (counted in `cancel.run_interrupted`) — so the
     * run still ends with every block accounted for and a complete
     * stats document.  Honored even under --strict, like the budget
     * rungs: an interrupted run that was asked to drain is not a
     * fault.  The token outlives the run; null disables.
     */
    const CancellationToken *interrupt = nullptr;

    /**
     * Retry-attempt salt forwarded to the deterministic fault
     * injector (support/fault_inject.hh): decisions are pure
     * functions of (seed, point, block-content-key, faultSalt), so a
     * service ladder re-running a failed payload with salt+1 can see
     * the fault clear — or persist — reproducibly.
     */
    std::uint64_t faultSalt = 0;

    // --- Forensics (docs/FORENSICS.md) ------------------------------

    /**
     * Keep the K most expensive blocks (by deterministic work score:
     * the sum of the block's Sum-kind counter deltas) and fill
     * ProgramResult::outliers with their forensic records.  Requires
     * the observability layer (obs::setEnabled) — the score is made of
     * counters.  0 disables.
     */
    int captureOutliers = 0;

    /**
     * Record the full per-pick decision log for this block id and
     * fill ProgramResult::decisions.  Forces the explicit winnowing
     * selection path for that block (same schedule, slightly
     * different heuristic-evaluation counts).  -1 disables.
     */
    int explainBlock = -1;
};

/** Aggregated outcome of scheduling a whole program. */
struct ProgramResult
{
    std::size_t numBlocks = 0;
    std::size_t numInsts = 0;

    // Phase wall-clock times (summed over blocks).
    double buildSeconds = 0.0;
    double heurSeconds = 0.0;
    double schedSeconds = 0.0;
    double verifySeconds = 0.0;

    double
    totalSeconds() const
    {
        return buildSeconds + heurSeconds + schedSeconds;
    }

    /** Tables 4/5 structural statistics. */
    DagStructure dagStats;

    // Quality (only when PipelineOptions::evaluate).
    long long cyclesOriginal = 0;  ///< sum over blocks, original order
    long long cyclesScheduled = 0; ///< sum over blocks, scheduled order

    /**
     * Event-counter deltas attributable to this run (Table 1's
     * a/f/b/v work, counted).  Empty unless the observability layer
     * was enabled for the run.
     */
    obs::CounterSet counters;

    /**
     * Per-block distributions, merged from the per-worker shards:
     * phase latencies (`lat.build_ns`, `lat.heur_ns`, `lat.sched_ns`,
     * `lat.verify_ns`, nanoseconds per block) and sizes
     * (`block.insts`, `block.arena_bytes`).  Empty unless the
     * observability layer was enabled for the run.
     */
    obs::HistogramSet histograms;

    /** Memory footprint of the run (filled regardless of
     * observability — the quantities are free at run end). */
    obs::MemoryStats memory;

    // --- Robustness outcomes (filled regardless of observability) ---

    /** One per-block incident: a degradation or a builder fallback. */
    struct BlockIssue
    {
        std::size_t block = 0;
        /** Where it happened: "build" | "heur" | "sched" | "verify" |
         * "budget" | "evaluate" | "fallback". */
        std::string stage;
        std::string reason;
        /** False for the "fallback" stage (the block still scheduled
         * normally, just via the table builder). */
        bool degraded = false;
    };

    std::size_t blocksDegraded = 0;     ///< blocks on original order
    std::size_t builderFallbacks = 0;   ///< n**2 -> table switches
    std::size_t verifierRejections = 0; ///< schedules the verifier refused
    std::vector<BlockIssue> blockIssues; ///< block order, possibly empty

    /** Front-end diagnostic counts for the input that produced this
     * run.  The pipeline itself never parses; callers that own the
     * parse (the CLI) fill these so `--stats-json` carries the whole
     * robustness picture, warnings included. */
    std::size_t parseErrors = 0;
    std::size_t parseWarnings = 0;

    // --- Forensics (docs/FORENSICS.md) ------------------------------

    /** Captured outlier blocks in block-id order (empty unless
     * PipelineOptions::captureOutliers). */
    std::vector<obs::OutlierRecord> outliers;

    /** Decision log for PipelineOptions::explainBlock (empty() unless
     * requested and the block scheduled normally). */
    DecisionTrace decisions;
};

/**
 * Run the full pipeline over @p prog.  The program is mutated only by
 * memory-generation stamping (idempotent).
 */
ProgramResult runPipeline(Program &prog, const MachineModel &machine,
                          const PipelineOptions &opts);

/**
 * Mutex serializing global counter-registry brackets (start snapshot,
 * post-join flush) across concurrent runPipeline calls.  External
 * hosts that snapshot the registry while pipelines may be running —
 * the daemon's live `stats` endpoint — take the same lock so they
 * never read a half-flushed reduction.
 */
std::mutex &registryBracketMutex();

/** Single-block result: the annotated DAG and its schedule. */
struct BlockScheduleResult
{
    Dag dag;
    Schedule sched;
};

/**
 * Convenience single-block entry point: build, annotate with the
 * passes the algorithm needs, schedule.  When PipelineOptions::verify
 * is set (the default) the schedule is re-checked against the DAG and
 * a rejection throws PanicError — single-block callers own their
 * fallback policy (the CLI degrades to original order per block).
 * Likewise PipelineOptions::maxBlockSeconds arms a per-call
 * cancellation token whose CancelledError propagates to the caller.
 */
BlockScheduleResult scheduleBlock(const BlockView &block,
                                  const MachineModel &machine,
                                  const PipelineOptions &opts);

} // namespace sched91

#endif // SCHED91_CORE_PIPELINE_HH
