/**
 * @file
 * Umbrella header for the sched91 library — a reproduction of
 * Smotherman, Krishnamurthy, Aravind & Hunnicutt, "Efficient DAG
 * Construction and Heuristic Calculation for Instruction Scheduling",
 * MICRO-24, 1991.
 *
 * Typical use:
 *
 *     #include "core/sched91.hh"
 *     using namespace sched91;
 *
 *     Program prog = parseAssembly(text);
 *     MachineModel machine = sparcstation2();
 *     PipelineOptions opts;
 *     opts.builder = BuilderKind::TableForward;
 *     opts.algorithm = AlgorithmKind::Krishnamurthy;
 *     ProgramResult result = runPipeline(prog, machine, opts);
 */

#ifndef SCHED91_CORE_SCHED91_HH
#define SCHED91_CORE_SCHED91_HH

#include "core/backend.hh"
#include "core/pipeline.hh"
#include "dag/builder.hh"
#include "dag/dag.hh"
#include "dag/dag_stats.hh"
#include "dag/memdep.hh"
#include "dag/n2_forward.hh"
#include "dag/n2_landskov.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "heuristics/dynamic.hh"
#include "heuristics/heuristic.hh"
#include "heuristics/register_pressure.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "ir/program.hh"
#include "machine/function_unit.hh"
#include "machine/machine_model.hh"
#include "machine/presets.hh"
#include "obs/counters.hh"
#include "obs/emitter.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "regalloc/local_allocator.hh"
#include "sched/algorithms/algorithms.hh"
#include "sched/branch_and_bound.hh"
#include "sched/delay_slot.hh"
#include "sched/fixup.hh"
#include "sched/global_info.hh"
#include "sched/list_scheduler.hh"
#include "sched/pipeline_sim.hh"
#include "sched/registry.hh"
#include "sched/report.hh"
#include "sched/reservation.hh"
#include "sched/schedule.hh"
#include "sched/simple_forward.hh"
#include "sched/timeline.hh"
#include "sim/executor.hh"
#include "workload/generator.hh"
#include "workload/kernels.hh"
#include "workload/profiles.hh"

#endif // SCHED91_CORE_SCHED91_HH
