#include "dag/builder.hh"

#include "dag/n2_forward.hh"
#include "dag/n2_landskov.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "obs/events.hh"
#include "support/logging.hh"
#include "support/worker_context.hh"

namespace sched91
{

Dag
DagBuilder::build(const BlockView &block, const MachineModel &machine,
                  const BuildOptions &opts) const
{
    // Inside a pipeline worker the arc lists draw from the worker's
    // block-lifetime arena; standalone callers get heap allocation.
    Dag dag(block, WorkerContext::currentArena());
    dag.setLevelOrigin(isForward() ? Dag::LevelOrigin::Roots
                                   : Dag::LevelOrigin::Leaves);

    if (opts.maintainReachMaps || opts.preventTransitive) {
        dag.enableReachMaps(isForward() ? ReachMode::Ancestors
                                        : ReachMode::Descendants);
        dag.setPreventTransitive(opts.preventTransitive);
    }

    // Node-time ('a') annotations that need the machine model.
    NodeAnnotations &ann = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        const Instruction &inst = dag.inst(i);
        ann.execTime[i] = machine.latency(inst.cls());
        ann.altType[i] = static_cast<int>(inst.group());
    }

    addArcs(dag, block, machine, opts);

    // Anchor a block-ending control transfer below all true leaves so
    // it is scheduled last.
    if (opts.anchorBranch && dag.size() > 1) {
        std::uint32_t last = dag.size() - 1;
        const Instruction &tail = dag.inst(last);
        if (isControlTransfer(tail.cls()) ||
            tail.cls() == InstClass::WindowOp) {
            dag.beginArcGroup(last);
            ArcIdxVec leaves = dag.leaves();
            bool added = false;
            for (std::uint32_t leaf : leaves) {
                if (leaf != last &&
                    dag.addArc(leaf, last, DepKind::CTRL, 1) ==
                        Dag::AddArcResult::Added) {
                    added = true;
                }
            }
            if (added && !isForward()) {
                // Late arc insertion invalidates the leaf-origin
                // levels of the leaves' ancestors.
                dag.recomputeLevels();
            }
            if (added && dag.reachMode() == ReachMode::Descendants) {
                // Every node reaches some leaf, and all leaves now
                // reach the branch: patch the maintained maps exactly.
                for (std::uint32_t i = 0; i < dag.size(); ++i)
                    if (i != last)
                        dag.reachMapMutable(i).set(last);
            }
        }
    }

    return dag;
}

PairMasks::PairMasks(const Dag &dag)
    : def_(ArenaAllocator<Words>(dag.arena())),
      use_(ArenaAllocator<Words>(dag.arena())),
      mem_(ArenaAllocator<std::uint8_t>(dag.arena()))
{
    static_assert(Resource::kNumSlots <= 128,
                  "pair masks assume two words of resource slots");
    std::uint32_t n = dag.size();
    def_.assign(n, Words{});
    use_.assign(n, Words{});
    mem_.assign(n, 0);
    auto set_bit = [](Words &w, int slot) {
        if (slot < 64)
            w.lo |= std::uint64_t{1} << slot;
        else
            w.hi |= std::uint64_t{1} << (slot - 64);
    };
    for (std::uint32_t i = 0; i < n; ++i) {
        const Instruction &inst = dag.inst(i);
        for (Resource r : inst.defs())
            set_bit(def_[i], r.slot());
        for (Resource r : inst.uses())
            set_bit(use_[i], r.slot());
        if (inst.mem().has_value())
            mem_[i] |= 1;
        if (inst.isStore())
            mem_[i] |= 2;
    }
}

void
addPairwiseArcs(Dag &dag, std::uint32_t i, std::uint32_t j,
                const DelayCalc &delays, const MemDisambiguator &mem)
{
    const Instruction &earlier = dag.inst(i);
    const Instruction &later = dag.inst(j);

    // Register-like resources.
    for (Resource r : later.uses())
        if (earlier.definesResource(r))
            dag.addArc(i, j, DepKind::RAW, delays.raw(i, j, r), r);
    for (Resource r : later.defs()) {
        if (earlier.usesResource(r))
            dag.addArc(i, j, DepKind::WAR, delays.war(), r);
        if (earlier.definesResource(r))
            dag.addArc(i, j, DepKind::WAW, delays.waw(i, j), r);
    }

    // Memory: store-store is WAW, store-load RAW, load-store WAR.
    if (earlier.mem().has_value() && later.mem().has_value()) {
        bool e_store = earlier.isStore();
        bool l_store = later.isStore();
        if (e_store || l_store) {
            AliasResult rel = mem.alias(*earlier.mem(), *later.mem());
            if (rel != AliasResult::NoAlias) {
                if (e_store && l_store)
                    dag.addArc(i, j, DepKind::WAW, delays.waw(i, j));
                else if (e_store)
                    dag.addArc(i, j, DepKind::RAW,
                               delays.raw(i, j, Resource()));
                else
                    dag.addArc(i, j, DepKind::WAR, delays.war());
            }
        }
    }
}

std::unique_ptr<DagBuilder>
makeBuilder(BuilderKind kind)
{
    switch (kind) {
      case BuilderKind::N2Forward:
        return std::make_unique<N2ForwardBuilder>();
      case BuilderKind::N2Backward:
        return std::make_unique<N2BackwardBuilder>();
      case BuilderKind::N2Landskov:
        return std::make_unique<N2LandskovBuilder>();
      case BuilderKind::TableForward:
        return std::make_unique<TableForwardBuilder>();
      case BuilderKind::TableBackward:
        return std::make_unique<TableBackwardBuilder>();
    }
    panic("bad builder kind");
}

std::vector<BuilderKind>
allBuilderKinds()
{
    return {BuilderKind::N2Forward, BuilderKind::N2Backward,
            BuilderKind::N2Landskov, BuilderKind::TableForward,
            BuilderKind::TableBackward};
}

std::string_view
builderKindName(BuilderKind kind)
{
    switch (kind) {
      case BuilderKind::N2Forward: return "n**2 fwd";
      case BuilderKind::N2Backward: return "n**2 bwd";
      case BuilderKind::N2Landskov: return "n**2 landskov";
      case BuilderKind::TableForward: return "table fwd";
      case BuilderKind::TableBackward: return "table bwd";
    }
    return "?";
}

} // namespace sched91
