#include "dag/builder.hh"

#include "dag/n2_forward.hh"
#include "dag/n2_landskov.hh"
#include "dag/table_backward.hh"
#include "dag/table_forward.hh"
#include "obs/events.hh"
#include "support/logging.hh"
#include "support/worker_context.hh"

namespace sched91
{

Dag
DagBuilder::build(const BlockView &block, const MachineModel &machine,
                  const BuildOptions &opts) const
{
    // Inside a pipeline worker the arc lists draw from the worker's
    // block-lifetime arena; standalone callers get heap allocation.
    Dag dag(block, WorkerContext::currentArena());
    dag.setLevelOrigin(isForward() ? Dag::LevelOrigin::Roots
                                   : Dag::LevelOrigin::Leaves);

    if (opts.maintainReachMaps || opts.preventTransitive) {
        dag.enableReachMaps(isForward() ? ReachMode::Ancestors
                                        : ReachMode::Descendants);
        dag.setPreventTransitive(opts.preventTransitive);
    }

    // Node-time ('a') annotations that need the machine model.
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        NodeAnnotations &ann = dag.node(i).ann;
        const Instruction &inst = *dag.node(i).inst;
        ann.execTime = machine.latency(inst.cls());
        ann.altType = static_cast<int>(inst.group());
    }

    addArcs(dag, block, machine, opts);

    // Anchor a block-ending control transfer below all true leaves so
    // it is scheduled last.
    if (opts.anchorBranch && dag.size() > 1) {
        std::uint32_t last = dag.size() - 1;
        const Instruction &tail = *dag.node(last).inst;
        if (isControlTransfer(tail.cls()) ||
            tail.cls() == InstClass::WindowOp) {
            dag.beginArcGroup(last);
            std::vector<std::uint32_t> leaves = dag.leaves();
            bool added = false;
            for (std::uint32_t leaf : leaves) {
                if (leaf != last &&
                    dag.addArc(leaf, last, DepKind::CTRL, 1) ==
                        Dag::AddArcResult::Added) {
                    added = true;
                }
            }
            if (added && !isForward()) {
                // Late arc insertion invalidates the leaf-origin
                // levels of the leaves' ancestors.
                dag.recomputeLevels();
            }
            if (added && dag.reachMode() == ReachMode::Descendants) {
                // Every node reaches some leaf, and all leaves now
                // reach the branch: patch the maintained maps exactly.
                for (std::uint32_t i = 0; i < dag.size(); ++i)
                    if (i != last)
                        dag.reachMapMutable(i).set(last);
            }
        }
    }

    return dag;
}

void
addPairwiseArcs(Dag &dag, std::uint32_t i, std::uint32_t j,
                const MachineModel &machine, const MemDisambiguator &mem)
{
    obs::ev::dagPairwiseCompares.inc();
    const Instruction &earlier = *dag.node(i).inst;
    const Instruction &later = *dag.node(j).inst;

    // Register-like resources.
    for (Resource r : later.uses())
        if (earlier.definesResource(r))
            dag.addArc(i, j, DepKind::RAW,
                       machine.depDelay(earlier, later, DepKind::RAW, r), r);
    for (Resource r : later.defs()) {
        if (earlier.usesResource(r))
            dag.addArc(i, j, DepKind::WAR,
                       machine.depDelay(earlier, later, DepKind::WAR, r), r);
        if (earlier.definesResource(r))
            dag.addArc(i, j, DepKind::WAW,
                       machine.depDelay(earlier, later, DepKind::WAW, r), r);
    }

    // Memory.
    if (earlier.mem().has_value() && later.mem().has_value()) {
        bool e_store = earlier.isStore();
        bool l_store = later.isStore();
        if (e_store || l_store) {
            AliasResult rel = mem.alias(*earlier.mem(), *later.mem());
            if (rel != AliasResult::NoAlias) {
                DepKind kind = e_store
                                   ? (l_store ? DepKind::WAW : DepKind::RAW)
                                   : DepKind::WAR;
                dag.addArc(i, j, kind,
                           machine.depDelay(earlier, later, kind,
                                            Resource()));
            }
        }
    }
}

std::unique_ptr<DagBuilder>
makeBuilder(BuilderKind kind)
{
    switch (kind) {
      case BuilderKind::N2Forward:
        return std::make_unique<N2ForwardBuilder>();
      case BuilderKind::N2Backward:
        return std::make_unique<N2BackwardBuilder>();
      case BuilderKind::N2Landskov:
        return std::make_unique<N2LandskovBuilder>();
      case BuilderKind::TableForward:
        return std::make_unique<TableForwardBuilder>();
      case BuilderKind::TableBackward:
        return std::make_unique<TableBackwardBuilder>();
    }
    panic("bad builder kind");
}

std::vector<BuilderKind>
allBuilderKinds()
{
    return {BuilderKind::N2Forward, BuilderKind::N2Backward,
            BuilderKind::N2Landskov, BuilderKind::TableForward,
            BuilderKind::TableBackward};
}

std::string_view
builderKindName(BuilderKind kind)
{
    switch (kind) {
      case BuilderKind::N2Forward: return "n**2 fwd";
      case BuilderKind::N2Backward: return "n**2 bwd";
      case BuilderKind::N2Landskov: return "n**2 landskov";
      case BuilderKind::TableForward: return "table fwd";
      case BuilderKind::TableBackward: return "table bwd";
    }
    return "?";
}

} // namespace sched91
