/**
 * @file
 * DAG builder interface and shared construction plumbing.
 *
 * Four builders implement the algorithms compared in the paper:
 *
 *  - N2ForwardBuilder      — compare-against-all, forward (Warren-like)
 *  - N2LandskovBuilder     — compare-against-all with transitive-arc
 *                            pruning (Landskov et al.), the variant
 *                            Section 2 recommends against
 *  - TableForwardBuilder   — table building, forward (Krishnamurthy-like)
 *  - TableBackwardBuilder  — table building, backward (Section 2
 *                            pseudocode, with optional reachability-map
 *                            transitive prevention)
 */

#ifndef SCHED91_DAG_BUILDER_HH
#define SCHED91_DAG_BUILDER_HH

#include <memory>
#include <string_view>
#include <vector>

#include "dag/dag.hh"
#include "dag/memdep.hh"
#include "machine/machine_model.hh"
#include "support/cancellation.hh"

namespace sched91
{

/** Options shared by all DAG builders. */
struct BuildOptions
{
    /** Memory disambiguation aggressiveness. */
    AliasPolicy memPolicy = AliasPolicy::BaseOffset;

    /**
     * Maintain reachability bit maps during construction (needed for
     * the O(1) #descendants heuristic and for transitive prevention).
     */
    bool maintainReachMaps = false;

    /**
     * Suppress transitive arcs.  Implies reach maps.  This reproduces
     * the Landskov-style pruning for the Figure 1 experiment; note the
     * paper's conclusion 3 recommends *against* it.
     */
    bool preventTransitive = false;

    /**
     * Add control arcs from every true leaf to a block-ending control
     * transfer "to ensure that the branch is the last node to be
     * scheduled" (Section 2).
     */
    bool anchorBranch = true;

    /**
     * Cooperative cancellation: when non-null, the builders poll this
     * token inside their arc-insertion loops and abandon the build
     * with CancelledError once it fires.  The pipeline arms one per
     * block from --max-block-seconds so a pathological n**2 build is
     * bounded mid-loop, not just at the next phase boundary.  The
     * token must outlive the build() call; not owned.
     */
    const CancellationToken *cancel = nullptr;
};

/** Abstract DAG construction algorithm. */
class DagBuilder
{
  public:
    virtual ~DagBuilder() = default;

    /** Algorithm name for tables ("n**2 fwd", "table fwd", ...). */
    virtual std::string_view name() const = 0;

    /** Construction pass direction. */
    virtual bool isForward() const = 0;

    /** Build the dependence DAG for one basic block. */
    Dag build(const BlockView &block, const MachineModel &machine,
              const BuildOptions &opts = {}) const;

  protected:
    /** Algorithm-specific arc insertion over a prepared DAG. */
    virtual void addArcs(Dag &dag, const BlockView &block,
                         const MachineModel &machine,
                         const BuildOptions &opts) const = 0;
};

/** Known builder kinds for registries and benches. */
enum class BuilderKind : std::uint8_t {
    N2Forward,
    N2Backward,
    N2Landskov,
    TableForward,
    TableBackward,
};

/** Instantiate a builder by kind. */
std::unique_ptr<DagBuilder> makeBuilder(BuilderKind kind);

/** All builder kinds, for parameterized tests. */
std::vector<BuilderKind> allBuilderKinds();

/** Display name of a builder kind. */
std::string_view builderKindName(BuilderKind kind);

/**
 * Precomputed dependence-arc delay calculator for one block.
 *
 * The builders' inner loops resolve every arc kind at the call site,
 * so delay lookup needs no per-element branch on kind: WAR and CTRL
 * delays are constants, WAW folds to a latency difference, and RAW —
 * on machine models without per-operand quirks (pair skew, asymmetric
 * bypass, store bypass) — is just the parent's precomputed latency.
 * Quirky models fall back to MachineModel::depDelay so delays stay
 * exactly equal to the unoptimized path.
 *
 * Requires the DAG's execTime annotations to be filled (DagBuilder::
 * build() does this before calling addArcs()).
 */
class DelayCalc
{
  public:
    DelayCalc(const MachineModel &machine, const Dag &dag)
        : machine_(machine), dag_(dag), exec_(dag.ann().execTime.data()),
          warDelay_(machine.warDelay > 1 ? machine.warDelay : 1),
          uniformRaw_(!machine.pairSkew && !machine.asymmetricBypass &&
                      machine.storeBypassSaving == 0)
    {
    }

    int
    raw(std::uint32_t from, std::uint32_t to, Resource res) const
    {
        if (uniformRaw_)
            return exec_[from] > 1 ? exec_[from] : 1;
        return machine_.depDelay(dag_.inst(from), dag_.inst(to),
                                 DepKind::RAW, res);
    }

    int war() const { return warDelay_; }

    int
    waw(std::uint32_t from, std::uint32_t to) const
    {
        int d = exec_[from] - exec_[to] + 1;
        return d > 1 ? d : 1;
    }

  private:
    const MachineModel &machine_;
    const Dag &dag_;
    const int *exec_;
    int warDelay_;
    bool uniformRaw_;
};

/**
 * Two-word def/use resource masks per node, the n² builders' cheap
 * pair filter: most instruction pairs share no resource and no memory
 * relation, so three word-ANDs decide "no interaction" without
 * touching the per-operand loops or the disambiguator.
 */
class PairMasks
{
  public:
    explicit PairMasks(const Dag &dag);

    /** May (i earlier, j later) produce any dependence arc? */
    bool
    mayInteract(std::uint32_t i, std::uint32_t j) const
    {
        const Words &di = def_[i];
        const Words &ui = use_[i];
        const Words &dj = def_[j];
        const Words &uj = use_[j];
        std::uint64_t reg = (di.lo & (uj.lo | dj.lo)) | (ui.lo & dj.lo) |
                            (di.hi & (uj.hi | dj.hi)) | (ui.hi & dj.hi);
        bool mem_pair = (mem_[i] & mem_[j] & 1) != 0 &&
                        ((mem_[i] | mem_[j]) & 2) != 0;
        return reg != 0 || mem_pair;
    }

  private:
    struct Words
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    ArenaVector<Words> def_;
    ArenaVector<Words> use_;
    ArenaVector<std::uint8_t> mem_; ///< bit 0: has mem op, bit 1: store
};

/**
 * Add every pairwise dependence arc between earlier instruction @p i
 * and later instruction @p j.  Shared by the compare-against-all
 * builders and by the ground-truth DAG used in validation.  The
 * per-pair compare counter is incremented by the callers' loops.
 */
void addPairwiseArcs(Dag &dag, std::uint32_t i, std::uint32_t j,
                     const DelayCalc &delays, const MemDisambiguator &mem);

} // namespace sched91

#endif // SCHED91_DAG_BUILDER_HH
