#include "dag/dag.hh"

#include <algorithm>

#include "obs/events.hh"
#include "support/logging.hh"

namespace sched91
{

Dag::Dag(const BlockView &block, Arena *arena)
    : block_(block), dupStamp_(ArenaAllocator<std::uint32_t>(arena)),
      dupArc_(ArenaAllocator<std::uint32_t>(arena))
{
    std::uint32_t n = block.size();
    nodes_.resize(n);
    dupStamp_.assign(n, 0);
    dupArc_.assign(n, 0);
    ArenaAllocator<std::uint32_t> alloc(arena);
    for (std::uint32_t i = 0; i < n; ++i) {
        nodes_[i].inst = &block.inst(i);
        if (arena) {
            // Move-assignment propagates the arena allocator into the
            // default-constructed (heap-allocator) node vectors.
            nodes_[i].succArcs = ArcIdxVec(alloc);
            nodes_[i].predArcs = ArcIdxVec(alloc);
        }
    }
}

void
Dag::enableReachMaps(ReachMode mode)
{
    SCHED91_ASSERT(arcs_.empty(), "reach maps must precede arcs");
    reachMode_ = mode;
    if (mode == ReachMode::None) {
        reach_.clear();
        return;
    }
    reach_.assign(nodes_.size(), Bitmap(nodes_.size()));
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        reach_[i].set(i); // "each node's map ... can reach itself"
}

void
Dag::setPreventTransitive(bool prevent)
{
    if (prevent)
        SCHED91_ASSERT(reachMode_ != ReachMode::None,
                       "transitive prevention requires reach maps");
    preventTransitive_ = prevent;
}

void
Dag::beginArcGroup(std::uint32_t node)
{
    groupNode_ = node;
    ++epoch_;
}

std::uint32_t
Dag::findArc(std::uint32_t from, std::uint32_t to) const
{
    for (std::uint32_t a : nodes_[from].succArcs)
        if (arcs_[a].to == to)
            return a;
    return ~std::uint32_t{0};
}

Dag::AddArcResult
Dag::addArc(std::uint32_t from, std::uint32_t to, DepKind kind, int delay,
            Resource res)
{
    SCHED91_ASSERT(from < nodes_.size() && to < nodes_.size());
    SCHED91_ASSERT(from != to, "self arc");
    levelListsValid_ = false;

    // Duplicate detection: O(1) when one endpoint is the current arc
    // group's node, linear scan of the successor list otherwise.
    std::uint32_t existing = ~std::uint32_t{0};
    bool keyed = from == groupNode_ || to == groupNode_;
    std::uint32_t other = from == groupNode_ ? to : from;
    if (keyed) {
        if (dupStamp_[other] == epoch_)
            existing = dupArc_[other];
    } else {
        existing = findArc(from, to);
    }

    if (existing != ~std::uint32_t{0}) {
        Arc &arc = arcs_[existing];
        SCHED91_ASSERT(arc.from == from && arc.to == to);
        // Keep the maximum delay so no timing constraint is lost; a RAW
        // classification wins for reporting purposes.
        if (delay > arc.delay) {
            arc.delay = delay;
            arc.kind = kind;
            arc.res = res;
        } else if (kind == DepKind::RAW && arc.kind != DepKind::RAW &&
                   delay == arc.delay) {
            arc.kind = kind;
            arc.res = res;
        }
        ++duplicates_;
        obs::ev::dagArcsDuplicate.inc();
        return AddArcResult::Duplicate;
    }

    // Transitive-arc prevention (the Landskov-style behaviour).
    if (preventTransitive_) {
        bool reachable = reachMode_ == ReachMode::Descendants
                             ? reach_[from].test(to)
                             : reach_[to].test(from);
        if (reachable) {
            ++suppressed_;
            obs::ev::dagArcsSuppressed.inc();
            return AddArcResult::Suppressed;
        }
    }

    obs::ev::dagArcsAdded.inc();
    std::uint32_t id = static_cast<std::uint32_t>(arcs_.size());
    arcs_.push_back(Arc{from, to, kind, delay, res});
    nodes_[from].succArcs.push_back(id);
    nodes_[to].predArcs.push_back(id);
    ++nodes_[from].numChildren;
    ++nodes_[to].numParents;

    if (keyed) {
        dupStamp_[other] = epoch_;
        dupArc_[other] = id;
    }

    // 'a'-class heuristic bookkeeping (Table 1, legend "a").
    NodeAnnotations &fa = nodes_[from].ann;
    NodeAnnotations &ta = nodes_[to].ann;
    fa.sumDelaysToChildren += delay;
    fa.maxDelayToChild = std::max(fa.maxDelayToChild, delay);
    ta.sumDelaysFromParents += delay;
    ta.maxDelayFromParents = std::max(ta.maxDelayFromParents, delay);
    if (delay > 1)
        fa.interlockWithChild = true;

    // Level maintenance.
    if (levelOrigin_ == LevelOrigin::Roots)
        nodes_[to].level = std::max(nodes_[to].level, nodes_[from].level + 1);
    else
        nodes_[from].level =
            std::max(nodes_[from].level, nodes_[to].level + 1);

    // Reachability maps.
    if (reachMode_ == ReachMode::Descendants)
        reach_[from].orWith(reach_[to]);
    else if (reachMode_ == ReachMode::Ancestors)
        reach_[to].orWith(reach_[from]);

    return AddArcResult::Added;
}

void
Dag::recomputeLevels()
{
    levelListsValid_ = false;
    for (auto &node : nodes_)
        node.level = 0;
    if (levelOrigin_ == LevelOrigin::Roots) {
        for (std::uint32_t i = 0; i < nodes_.size(); ++i)
            for (std::uint32_t a : nodes_[i].succArcs) {
                DagNode &to = nodes_[arcs_[a].to];
                to.level = std::max(to.level, nodes_[i].level + 1);
            }
    } else {
        for (std::uint32_t i = size(); i-- > 0;)
            for (std::uint32_t a : nodes_[i].succArcs)
                nodes_[i].level = std::max(
                    nodes_[i].level, nodes_[arcs_[a].to].level + 1);
    }
}

std::vector<std::uint32_t>
Dag::roots() const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].numParents == 0)
            out.push_back(i);
    return out;
}

std::vector<std::uint32_t>
Dag::leaves() const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].numChildren == 0)
            out.push_back(i);
    return out;
}

const std::vector<std::vector<std::uint32_t>> &
Dag::levelLists() const
{
    if (!levelListsValid_) {
        levelLists_.clear();
        int max_level = 0;
        for (const auto &n : nodes_)
            max_level = std::max(max_level, n.level);
        levelLists_.resize(static_cast<std::size_t>(max_level) + 1);
        for (std::uint32_t i = 0; i < nodes_.size(); ++i)
            levelLists_[nodes_[i].level].push_back(i);
        levelListsValid_ = true;
    }
    return levelLists_;
}

std::vector<Bitmap>
Dag::computeDescendantMaps() const
{
    std::vector<Bitmap> desc(nodes_.size(), Bitmap(nodes_.size()));
    for (std::uint32_t i = size(); i-- > 0;) {
        desc[i].set(i);
        for (std::uint32_t a : nodes_[i].succArcs)
            desc[i].orWith(desc[arcs_[a].to]);
    }
    return desc;
}

std::size_t
Dag::countForestTrees() const
{
    // Union-find over undirected connectivity.
    std::vector<std::uint32_t> parent(nodes_.size());
    for (std::uint32_t i = 0; i < parent.size(); ++i)
        parent[i] = i;
    auto find = [&parent](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (const Arc &arc : arcs_)
        parent[find(arc.from)] = find(arc.to);
    std::size_t trees = 0;
    for (std::uint32_t i = 0; i < parent.size(); ++i)
        if (find(i) == i)
            ++trees;
    return trees;
}

std::size_t
Dag::countTransitiveArcs() const
{
    std::vector<Bitmap> desc = computeDescendantMaps();
    std::size_t count = 0;
    for (const auto &node : nodes_) {
        for (std::uint32_t a : node.succArcs) {
            std::uint32_t b = arcs_[a].to;
            for (std::uint32_t a2 : node.succArcs) {
                std::uint32_t c = arcs_[a2].to;
                if (c != b && desc[c].test(b)) {
                    ++count;
                    break;
                }
            }
        }
    }
    return count;
}

} // namespace sched91
