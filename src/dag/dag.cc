#include "dag/dag.hh"

#include <algorithm>

#include "obs/events.hh"
#include "support/logging.hh"

namespace sched91
{

NodeAnnotations::NodeAnnotations(Arena *arena)
    : execTime(ArenaAllocator<int>(arena)),
      interlockWithChild(ArenaAllocator<std::uint8_t>(arena)),
      sumDelaysToChildren(ArenaAllocator<int>(arena)),
      maxDelayToChild(ArenaAllocator<int>(arena)),
      sumDelaysFromParents(ArenaAllocator<int>(arena)),
      maxDelayFromParents(ArenaAllocator<int>(arena)),
      altType(ArenaAllocator<int>(arena)),
      regsBorn(ArenaAllocator<int>(arena)),
      regsKilled(ArenaAllocator<int>(arena)),
      liveness(ArenaAllocator<int>(arena)),
      maxPathFromRoot(ArenaAllocator<int>(arena)),
      maxDelayFromRoot(ArenaAllocator<int>(arena)),
      earliestStart(ArenaAllocator<int>(arena)),
      maxPathToLeaf(ArenaAllocator<int>(arena)),
      maxDelayToLeaf(ArenaAllocator<int>(arena)),
      latestStart(ArenaAllocator<int>(arena)),
      numDescendants(ArenaAllocator<int>(arena)),
      sumExecOfDescendants(ArenaAllocator<long long>(arena)),
      slack(ArenaAllocator<int>(arena)),
      inheritedEet(ArenaAllocator<int>(arena)),
      earliestExecTime(ArenaAllocator<int>(arena)),
      unscheduledParents(ArenaAllocator<int>(arena)),
      unscheduledChildren(ArenaAllocator<int>(arena)),
      priorityBoost(ArenaAllocator<double>(arena)),
      scheduled(ArenaAllocator<std::uint8_t>(arena))
{
}

void
NodeAnnotations::resize(std::uint32_t n)
{
    execTime.assign(n, 0);
    interlockWithChild.assign(n, 0);
    sumDelaysToChildren.assign(n, 0);
    maxDelayToChild.assign(n, 0);
    sumDelaysFromParents.assign(n, 0);
    maxDelayFromParents.assign(n, 0);
    altType.assign(n, 0);
    regsBorn.assign(n, 0);
    regsKilled.assign(n, 0);
    liveness.assign(n, 0);
    maxPathFromRoot.assign(n, 0);
    maxDelayFromRoot.assign(n, 0);
    earliestStart.assign(n, 0);
    maxPathToLeaf.assign(n, 0);
    maxDelayToLeaf.assign(n, 0);
    latestStart.assign(n, 0);
    numDescendants.assign(n, 0);
    sumExecOfDescendants.assign(n, 0);
    slack.assign(n, 0);
    inheritedEet.assign(n, 0);
    earliestExecTime.assign(n, 0);
    unscheduledParents.assign(n, 0);
    unscheduledChildren.assign(n, 0);
    priorityBoost.assign(n, 0.0);
    scheduled.assign(n, 0);
}

Dag::Dag(const BlockView &block, Arena *arena)
    : block_(block), arena_(arena),
      inst_(ArenaAllocator<const Instruction *>(arena)),
      level_(ArenaAllocator<int>(arena)),
      numChildren_(ArenaAllocator<int>(arena)),
      numParents_(ArenaAllocator<int>(arena)),
      arcs_(ArenaAllocator<Arc>(arena)), ann_(arena), reach_(arena),
      dupStamp_(ArenaAllocator<std::uint32_t>(arena)),
      dupArc_(ArenaAllocator<std::uint32_t>(arena)),
      succOff_(ArenaAllocator<std::uint32_t>(arena)),
      predOff_(ArenaAllocator<std::uint32_t>(arena)),
      succArc_(ArenaAllocator<std::uint32_t>(arena)),
      predArc_(ArenaAllocator<std::uint32_t>(arena)),
      succTo_(ArenaAllocator<std::uint32_t>(arena)),
      predFrom_(ArenaAllocator<std::uint32_t>(arena)),
      succDelay_(ArenaAllocator<std::int32_t>(arena)),
      predDelay_(ArenaAllocator<std::int32_t>(arena)),
      predKind_(ArenaAllocator<DepKind>(arena)), levelLists_(arena)
{
    std::uint32_t n = block.size();
    numNodes_ = n;
    inst_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        inst_[i] = &block.inst(i);
    level_.assign(n, 0);
    numChildren_.assign(n, 0);
    numParents_.assign(n, 0);
    ann_.resize(n);
    dupStamp_.assign(n, 0);
    dupArc_.assign(n, 0);
}

void
Dag::enableReachMaps(ReachMode mode)
{
    SCHED91_ASSERT(arcs_.empty(), "reach maps must precede arcs");
    reachMode_ = mode;
    if (mode == ReachMode::None) {
        reach_.reset(0, 0);
        return;
    }
    reach_.reset(numNodes_, numNodes_);
    for (std::uint32_t i = 0; i < numNodes_; ++i)
        reach_.row(i).set(i); // "each node's map ... can reach itself"
}

void
Dag::setPreventTransitive(bool prevent)
{
    if (prevent)
        SCHED91_ASSERT(reachMode_ != ReachMode::None,
                       "transitive prevention requires reach maps");
    preventTransitive_ = prevent;
}

void
Dag::beginArcGroup(std::uint32_t node)
{
    groupNode_ = node;
    ++epoch_;
}

std::uint32_t
Dag::findArc(std::uint32_t from, std::uint32_t to) const
{
    // Only reached by ungrouped addArc calls (manual DAG assembly);
    // builders always key duplicate detection on the arc group.
    for (std::uint32_t a = 0; a < arcs_.size(); ++a)
        if (arcs_[a].from == from && arcs_[a].to == to)
            return a;
    return ~std::uint32_t{0};
}

Dag::AddArcResult
Dag::addArc(std::uint32_t from, std::uint32_t to, DepKind kind, int delay,
            Resource res)
{
    SCHED91_ASSERT(from < numNodes_ && to < numNodes_);
    SCHED91_ASSERT(from != to, "self arc");
    levelListsValid_ = false;
    csrValid_ = false;

    // Duplicate detection: O(1) when one endpoint is the current arc
    // group's node, linear scan of the arc array otherwise.
    std::uint32_t existing = ~std::uint32_t{0};
    bool keyed = from == groupNode_ || to == groupNode_;
    std::uint32_t other = from == groupNode_ ? to : from;
    if (keyed) {
        if (dupStamp_[other] == epoch_)
            existing = dupArc_[other];
    } else {
        existing = findArc(from, to);
    }

    if (existing != ~std::uint32_t{0}) {
        Arc &arc = arcs_[existing];
        SCHED91_ASSERT(arc.from == from && arc.to == to);
        // Keep the maximum delay so no timing constraint is lost; a RAW
        // classification wins for reporting purposes.
        if (delay > arc.delay) {
            arc.delay = delay;
            arc.kind = kind;
            arc.res = res;
        } else if (kind == DepKind::RAW && arc.kind != DepKind::RAW &&
                   delay == arc.delay) {
            arc.kind = kind;
            arc.res = res;
        }
        ++duplicates_;
        obs::ev::dagArcsDuplicate.inc();
        return AddArcResult::Duplicate;
    }

    // Transitive-arc prevention (the Landskov-style behaviour).
    if (preventTransitive_) {
        bool reachable = reachMode_ == ReachMode::Descendants
                             ? reach_.row(from).test(to)
                             : reach_.row(to).test(from);
        if (reachable) {
            ++suppressed_;
            obs::ev::dagArcsSuppressed.inc();
            return AddArcResult::Suppressed;
        }
    }

    obs::ev::dagArcsAdded.inc();
    std::uint32_t id = static_cast<std::uint32_t>(arcs_.size());
    arcs_.push_back(Arc{from, to, kind, delay, res});
    ++numChildren_[from];
    ++numParents_[to];

    if (keyed) {
        dupStamp_[other] = epoch_;
        dupArc_[other] = id;
    }

    // 'a'-class heuristic bookkeeping (Table 1, legend "a").
    ann_.sumDelaysToChildren[from] += delay;
    ann_.maxDelayToChild[from] =
        std::max(ann_.maxDelayToChild[from], delay);
    ann_.sumDelaysFromParents[to] += delay;
    ann_.maxDelayFromParents[to] =
        std::max(ann_.maxDelayFromParents[to], delay);
    if (delay > 1)
        ann_.interlockWithChild[from] = 1;

    // Level maintenance.
    if (levelOrigin_ == LevelOrigin::Roots)
        level_[to] = std::max(level_[to], level_[from] + 1);
    else
        level_[from] = std::max(level_[from], level_[to] + 1);

    // Reachability maps: word-granular OR within the slab.
    if (reachMode_ == ReachMode::Descendants)
        reach_.orRows(from, to);
    else if (reachMode_ == ReachMode::Ancestors)
        reach_.orRows(to, from);

    return AddArcResult::Added;
}

void
Dag::ensureCsr() const
{
    if (!csrValid_)
        buildCsr();
}

void
Dag::buildCsr() const
{
    const std::uint32_t n = numNodes_;
    const std::uint32_t e = static_cast<std::uint32_t>(arcs_.size());

    succOff_.assign(n + 1, 0);
    predOff_.assign(n + 1, 0);
    for (const Arc &arc : arcs_) {
        ++succOff_[arc.from + 1];
        ++predOff_[arc.to + 1];
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        succOff_[i + 1] += succOff_[i];
        predOff_[i + 1] += predOff_[i];
    }

    succArc_.resize(e);
    predArc_.resize(e);
    succTo_.resize(e);
    predFrom_.resize(e);
    succDelay_.resize(e);
    predDelay_.resize(e);
    predKind_.resize(e);

    // Fill in ascending arc-id order: per-node lists come out in
    // insertion order, matching the old per-node push_back lists
    // exactly (schedule tie-breaking depends on this order).
    std::vector<std::uint32_t> scur(n), pcur(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        scur[i] = succOff_[i];
        pcur[i] = predOff_[i];
    }
    for (std::uint32_t a = 0; a < e; ++a) {
        const Arc &arc = arcs_[a];
        std::uint32_t s = scur[arc.from]++;
        succArc_[s] = a;
        succTo_[s] = arc.to;
        succDelay_[s] = arc.delay;
        std::uint32_t p = pcur[arc.to]++;
        predArc_[p] = a;
        predFrom_[p] = arc.from;
        predDelay_[p] = arc.delay;
        predKind_[p] = arc.kind;
    }
    csrValid_ = true;
}

void
Dag::recomputeLevels()
{
    levelListsValid_ = false;
    ensureCsr();
    std::fill(level_.begin(), level_.end(), 0);
    if (levelOrigin_ == LevelOrigin::Roots) {
        for (std::uint32_t i = 0; i < numNodes_; ++i) {
            int base = level_[i] + 1;
            for (std::uint32_t to : succTo(i))
                level_[to] = std::max(level_[to], base);
        }
    } else {
        for (std::uint32_t i = numNodes_; i-- > 0;) {
            int lvl = level_[i];
            for (std::uint32_t to : succTo(i))
                lvl = std::max(lvl, level_[to] + 1);
            level_[i] = lvl;
        }
    }
}

ArcIdxVec
Dag::roots() const
{
    ArcIdxVec out((ArenaAllocator<std::uint32_t>(arena_)));
    for (std::uint32_t i = 0; i < numNodes_; ++i)
        if (numParents_[i] == 0)
            out.push_back(i);
    return out;
}

ArcIdxVec
Dag::leaves() const
{
    ArcIdxVec out((ArenaAllocator<std::uint32_t>(arena_)));
    for (std::uint32_t i = 0; i < numNodes_; ++i)
        if (numChildren_[i] == 0)
            out.push_back(i);
    return out;
}

const LevelLists &
Dag::levelLists() const
{
    if (!levelListsValid_) {
        int max_level = 0;
        for (std::uint32_t i = 0; i < numNodes_; ++i)
            max_level = std::max(max_level, level_[i]);
        std::uint32_t levels =
            numNodes_ == 0 ? 0 : static_cast<std::uint32_t>(max_level) + 1;

        // Counting pass, then fill in ascending node order so each
        // level's span preserves the old push_back order.
        levelLists_.off_.assign(levels + 1, 0);
        for (std::uint32_t i = 0; i < numNodes_; ++i)
            ++levelLists_.off_[static_cast<std::uint32_t>(level_[i]) + 1];
        for (std::uint32_t l = 0; l < levels; ++l)
            levelLists_.off_[l + 1] += levelLists_.off_[l];
        levelLists_.nodes_.resize(numNodes_);
        std::vector<std::uint32_t> cur(levelLists_.off_.begin(),
                                       levelLists_.off_.end());
        for (std::uint32_t i = 0; i < numNodes_; ++i)
            levelLists_.nodes_[cur[static_cast<std::uint32_t>(
                level_[i])]++] = i;
        levelListsValid_ = true;
    }
    return levelLists_;
}

BitMatrix
Dag::computeDescendantMaps() const
{
    ensureCsr();
    BitMatrix desc(arena_);
    desc.reset(numNodes_, numNodes_);
    for (std::uint32_t i = numNodes_; i-- > 0;) {
        BitRow row = desc.row(i);
        row.set(i);
        for (std::uint32_t to : succTo(i))
            desc.orRows(i, to);
    }
    return desc;
}

std::size_t
Dag::countForestTrees() const
{
    // Union-find over undirected connectivity.
    std::vector<std::uint32_t> parent(numNodes_);
    for (std::uint32_t i = 0; i < parent.size(); ++i)
        parent[i] = i;
    auto find = [&parent](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (const Arc &arc : arcs_)
        parent[find(arc.from)] = find(arc.to);
    std::size_t trees = 0;
    for (std::uint32_t i = 0; i < parent.size(); ++i)
        if (find(i) == i)
            ++trees;
    return trees;
}

std::size_t
Dag::countTransitiveArcs() const
{
    BitMatrix desc = computeDescendantMaps();
    std::size_t count = 0;
    for (std::uint32_t i = 0; i < numNodes_; ++i) {
        std::span<const std::uint32_t> children = succTo(i);
        for (std::uint32_t b : children) {
            for (std::uint32_t c : children) {
                if (c != b && desc.row(c).test(b)) {
                    ++count;
                    break;
                }
            }
        }
    }
    return count;
}

} // namespace sched91
