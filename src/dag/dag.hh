/**
 * @file
 * The dependence DAG: nodes, typed weighted arcs, and the add_arc
 * bookkeeping the paper attributes to construction time.
 *
 * Node ids equal instruction positions within the basic block, so
 * program order is always a topological order (every builder adds arcs
 * from earlier to later instructions, whichever direction it scans).
 *
 * add_arc maintains the "a"-class heuristics of Table 1 (those
 * "determined when an instruction node or dependency arc is added"):
 * #children, #parents, phi-delays to children / from parents, and the
 * interlock-with-child flag.  It can also maintain reachability bit
 * maps — used either to *prevent* transitive arcs (the Landskov-style
 * behaviour the paper recommends against) or merely to enable the O(1)
 * #descendants population count of Section 3.
 */

#ifndef SCHED91_DAG_DAG_HH
#define SCHED91_DAG_DAG_HH

#include <cstdint>
#include <vector>

#include "ir/basic_block.hh"
#include "ir/instruction.hh"
#include "ir/program.hh"
#include "machine/machine_model.hh"
#include "support/arena.hh"
#include "support/bitmap.hh"

namespace sched91
{

/**
 * Arc-index list.  Per-node arc lists are the DAG's dominant source of
 * small allocations, so they can draw from a worker's block-lifetime
 * Arena; with no arena attached the allocator is plain heap and the
 * type behaves exactly like std::vector<uint32_t>.
 */
using ArcIdxVec = ArenaVector<std::uint32_t>;

/** Read-only view of one basic block's instructions. */
class BlockView
{
  public:
    BlockView(const Program &prog, BasicBlock bb) : prog_(&prog), bb_(bb) {}

    std::uint32_t size() const { return bb_.size(); }

    /** Instruction @p i of the block (0-based). */
    const Instruction &
    inst(std::uint32_t i) const
    {
        return (*prog_)[bb_.begin + i];
    }

    const Program &program() const { return *prog_; }
    const BasicBlock &block() const { return bb_; }

  private:
    const Program *prog_;
    BasicBlock bb_;
};

/** A dependence arc. */
struct Arc
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    DepKind kind = DepKind::RAW;
    std::int32_t delay = 1;
    Resource res;  ///< invalid for memory and control arcs
};

/**
 * Per-node heuristic annotations (all 26 heuristics of Table 1 draw on
 * these slots).  The 'a' fields are filled during DAG construction,
 * the 'f'/'b' fields by the intermediate heuristic pass, and the
 * dynamic fields evolve during scheduling.
 */
struct NodeAnnotations
{
    // --- 'a': determined when the node / arc is added ---------------
    int execTime = 0;             ///< operation latency
    bool interlockWithChild = false;
    int sumDelaysToChildren = 0;  ///< phi=sum delays to children
    int maxDelayToChild = 0;      ///< phi=max delays to children
    int sumDelaysFromParents = 0; ///< phi=sum delays from parents
    int maxDelayFromParents = 0;  ///< phi=max delays from parents
    int altType = 0;              ///< issue group (alternate type)
    int regsBorn = 0;
    int regsKilled = 0;
    int liveness = 0;             ///< Warren-style kills - births

    // --- 'f': forward heuristic pass ---------------------------------
    int maxPathFromRoot = 0;
    int maxDelayFromRoot = 0;
    int earliestStart = 0;        ///< EST (node-latency based, [12])

    // --- 'b': backward heuristic pass ---------------------------------
    int maxPathToLeaf = 0;
    int maxDelayToLeaf = 0;
    int latestStart = 0;          ///< LST (node-latency based, [12])
    int numDescendants = 0;
    long long sumExecOfDescendants = 0;

    // --- derived -------------------------------------------------------
    int slack = 0;                ///< LST - EST

    // --- 'v': dynamic scheduling state ---------------------------------
    int inheritedEet = 0;         ///< cross-block latency floor
    int earliestExecTime = 0;
    int unscheduledParents = 0;
    int unscheduledChildren = 0;
    double priorityBoost = 0.0;   ///< Tiemann birthing adjustment
    bool scheduled = false;
};

/** One DAG node. */
struct DagNode
{
    const Instruction *inst = nullptr; ///< null only for dummy nodes
    ArcIdxVec succArcs; ///< indices into Dag::arcs()
    ArcIdxVec predArcs;
    int numChildren = 0;  ///< unique child count (deduped arcs)
    int numParents = 0;
    int level = 0;
    NodeAnnotations ann;
};

/** Reachability-map maintenance mode. */
enum class ReachMode : std::uint8_t {
    None,         ///< no maps
    Descendants,  ///< map[i] = nodes reachable from i (backward builds)
    Ancestors,    ///< map[i] = nodes reaching i (forward builds)
};

/** The dependence DAG for one basic block. */
class Dag
{
  public:
    /** Outcome of an addArc() attempt. */
    enum class AddArcResult : std::uint8_t {
        Added,
        Duplicate,   ///< (from,to) arc existed; delay maximized
        Suppressed,  ///< dropped by transitive-arc prevention
    };

    /**
     * Create one node per block instruction, in program order.  With
     * a non-null @p arena the per-node arc lists and duplicate-
     * detection scratch allocate from it, tying the DAG's lifetime to
     * the arena's reset cycle (the pipeline resets per block).
     */
    explicit Dag(const BlockView &block, Arena *arena = nullptr);

    /** Enable reachability maps (call before any addArc). */
    void enableReachMaps(ReachMode mode);

    /**
     * When true, an arc whose endpoints are already connected through
     * intermediate nodes is suppressed (requires reach maps).  This is
     * the transitive-arc-avoidance behaviour of Landskov et al. that
     * Section 2 argues loses important timing information.
     */
    void setPreventTransitive(bool prevent);

    /** Level numbering origin: roots (forward) or leaves (backward). */
    enum class LevelOrigin : std::uint8_t { Roots, Leaves };
    void setLevelOrigin(LevelOrigin origin) { levelOrigin_ = origin; }
    LevelOrigin levelOrigin() const { return levelOrigin_; }

    /**
     * Recompute all node levels from scratch (one sweep in program
     * order, which is topological).  Needed after arcs are inserted
     * out of construction order — e.g. the branch-anchoring control
     * arcs added at the end of a backward build, which would otherwise
     * leave ancestors' leaf-origin levels stale.
     */
    void recomputeLevels();

    /**
     * Hint that subsequent addArc calls all involve @p node as one
     * endpoint; enables O(1) duplicate detection.
     */
    void beginArcGroup(std::uint32_t node);

    /** Add (or merge) a dependence arc from @p from to @p to. */
    AddArcResult addArc(std::uint32_t from, std::uint32_t to, DepKind kind,
                        int delay, Resource res = Resource());

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    DagNode &node(std::uint32_t i) { return nodes_[i]; }
    const DagNode &node(std::uint32_t i) const { return nodes_[i]; }

    const std::vector<DagNode> &nodes() const { return nodes_; }
    std::vector<DagNode> &nodes() { return nodes_; }

    const Arc &arc(std::uint32_t i) const { return arcs_[i]; }
    const std::vector<Arc> &arcs() const { return arcs_; }

    /** Unique arcs added (excludes duplicates and suppressed arcs). */
    std::size_t numArcs() const { return arcs_.size(); }

    /** Duplicate (from,to) attempts merged into existing arcs. */
    std::size_t duplicateCount() const { return duplicates_; }

    /** Arcs dropped by transitive prevention. */
    std::size_t suppressedCount() const { return suppressed_; }

    /** Nodes with no parents. */
    std::vector<std::uint32_t> roots() const;

    /** Nodes with no children. */
    std::vector<std::uint32_t> leaves() const;

    /** Reachability map of a node (requires enableReachMaps). */
    const Bitmap &reachMap(std::uint32_t i) const { return reach_[i]; }

    /** Mutable reachability map (builders' late fix-ups only). */
    Bitmap &reachMapMutable(std::uint32_t i) { return reach_[i]; }

    ReachMode reachMode() const { return reachMode_; }

    /**
     * Node lists bucketed by level (Section 4's level algorithm data
     * structure), built on demand.
     */
    const std::vector<std::vector<std::uint32_t>> &levelLists() const;

    /**
     * Compute descendant bitmaps by a reverse-topological sweep
     * (program order is topological).  Used for #descendants when the
     * builder did not maintain maps, and by countTransitiveArcs().
     */
    std::vector<Bitmap> computeDescendantMaps() const;

    /**
     * Count arcs that are transitive, i.e. whose endpoints are also
     * connected through at least one intermediate node.
     */
    std::size_t countTransitiveArcs() const;

    /**
     * Number of weakly connected components — the paper's Section 2:
     * "A basic block may result in a collection of one or more DAGs,
     * called a *forest*."  Construction algorithms that want a single
     * candidate-list entry point join them under a dummy root; this
     * library instead seeds the candidate list with every root.
     */
    std::size_t countForestTrees() const;

    const BlockView &block() const { return block_; }

  private:
    BlockView block_;
    std::vector<DagNode> nodes_;
    std::vector<Arc> arcs_;

    ReachMode reachMode_ = ReachMode::None;
    bool preventTransitive_ = false;
    LevelOrigin levelOrigin_ = LevelOrigin::Roots;
    std::vector<Bitmap> reach_;

    std::size_t duplicates_ = 0;
    std::size_t suppressed_ = 0;

    // O(1) duplicate detection within one arc group.
    std::uint32_t groupNode_ = ~std::uint32_t{0};
    std::uint32_t epoch_ = 0;
    ArcIdxVec dupStamp_;
    ArcIdxVec dupArc_;

    mutable std::vector<std::vector<std::uint32_t>> levelLists_;
    mutable bool levelListsValid_ = false;

    /** Find an existing (from,to) arc; returns arc id or ~0. */
    std::uint32_t findArc(std::uint32_t from, std::uint32_t to) const;
};

} // namespace sched91

#endif // SCHED91_DAG_DAG_HH
