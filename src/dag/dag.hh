/**
 * @file
 * The dependence DAG: nodes, typed weighted arcs, and the add_arc
 * bookkeeping the paper attributes to construction time.
 *
 * Node ids equal instruction positions within the basic block, so
 * program order is always a topological order (every builder adds arcs
 * from earlier to later instructions, whichever direction it scans).
 *
 * add_arc maintains the "a"-class heuristics of Table 1 (those
 * "determined when an instruction node or dependency arc is added"):
 * #children, #parents, phi-delays to children / from parents, and the
 * interlock-with-child flag.  It can also maintain reachability bit
 * maps — used either to *prevent* transitive arcs (the Landskov-style
 * behaviour the paper recommends against) or merely to enable the O(1)
 * #descendants population count of Section 3.
 *
 * Storage is data-oriented:
 *
 *  - Topology and annotations are struct-of-arrays: one dense array
 *    per field (NodeAnnotations holds one ArenaVector per Table 1
 *    slot), so the static passes and the scheduler's dynamic-update
 *    loops stream over contiguous ints instead of striding 100+-byte
 *    node records.
 *  - Adjacency is CSR (compressed sparse row): builders only append to
 *    the flat arc array; the per-node [begin,end) ranges plus flat
 *    arc-id slabs are finalized lazily by one counting pass the first
 *    time adjacency is queried.  Filling in ascending arc-id order
 *    reproduces exactly the per-node insertion order the old
 *    linked-list representation had, so schedules are byte-identical.
 *  - Reachability maps are one words × nodes BitMatrix slab with
 *    word-granular OR-merge on arc insertion.
 */

#ifndef SCHED91_DAG_DAG_HH
#define SCHED91_DAG_DAG_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ir/basic_block.hh"
#include "ir/instruction.hh"
#include "ir/program.hh"
#include "machine/machine_model.hh"
#include "support/arena.hh"
#include "support/bitmap.hh"

namespace sched91
{

/**
 * Arc-index list.  Arena-backed where a worker context is installed;
 * with no arena attached the allocator is plain heap and the type
 * behaves exactly like std::vector<uint32_t>.
 */
using ArcIdxVec = ArenaVector<std::uint32_t>;

/** Read-only view of one basic block's instructions. */
class BlockView
{
  public:
    BlockView(const Program &prog, BasicBlock bb) : prog_(&prog), bb_(bb) {}

    std::uint32_t size() const { return bb_.size(); }

    /** Instruction @p i of the block (0-based). */
    const Instruction &
    inst(std::uint32_t i) const
    {
        return (*prog_)[bb_.begin + i];
    }

    const Program &program() const { return *prog_; }
    const BasicBlock &block() const { return bb_; }

  private:
    const Program *prog_;
    BasicBlock bb_;
};

/** A dependence arc. */
struct Arc
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    DepKind kind = DepKind::RAW;
    std::int32_t delay = 1;
    Resource res;  ///< invalid for memory and control arcs
};

/**
 * Per-node heuristic annotation slots (all 26 heuristics of Table 1
 * draw on these), stored struct-of-arrays: each field is a dense
 * array indexed by node id.  The 'a' fields are filled during DAG
 * construction, the 'f'/'b' fields by the intermediate heuristic
 * pass, and the dynamic fields evolve during scheduling.
 */
struct NodeAnnotations
{
    explicit NodeAnnotations(Arena *arena = nullptr);

    /** Size every array to @p n zero-filled entries. */
    void resize(std::uint32_t n);

    // --- 'a': determined when the node / arc is added ---------------
    ArenaVector<int> execTime;             ///< operation latency
    ArenaVector<std::uint8_t> interlockWithChild;
    ArenaVector<int> sumDelaysToChildren;  ///< phi=sum delays to children
    ArenaVector<int> maxDelayToChild;      ///< phi=max delays to children
    ArenaVector<int> sumDelaysFromParents; ///< phi=sum delays from parents
    ArenaVector<int> maxDelayFromParents;  ///< phi=max delays from parents
    ArenaVector<int> altType;              ///< issue group (alternate type)
    ArenaVector<int> regsBorn;
    ArenaVector<int> regsKilled;
    ArenaVector<int> liveness;             ///< Warren-style kills - births

    // --- 'f': forward heuristic pass ---------------------------------
    ArenaVector<int> maxPathFromRoot;
    ArenaVector<int> maxDelayFromRoot;
    ArenaVector<int> earliestStart;        ///< EST (node-latency, [12])

    // --- 'b': backward heuristic pass ---------------------------------
    ArenaVector<int> maxPathToLeaf;
    ArenaVector<int> maxDelayToLeaf;
    ArenaVector<int> latestStart;          ///< LST (node-latency, [12])
    ArenaVector<int> numDescendants;
    ArenaVector<long long> sumExecOfDescendants;

    // --- derived -------------------------------------------------------
    ArenaVector<int> slack;                ///< LST - EST

    // --- 'v': dynamic scheduling state ---------------------------------
    ArenaVector<int> inheritedEet;         ///< cross-block latency floor
    ArenaVector<int> earliestExecTime;
    ArenaVector<int> unscheduledParents;
    ArenaVector<int> unscheduledChildren;
    ArenaVector<double> priorityBoost;     ///< Tiemann birthing adjustment
    ArenaVector<std::uint8_t> scheduled;
};

/** Reachability-map maintenance mode. */
enum class ReachMode : std::uint8_t {
    None,         ///< no maps
    Descendants,  ///< map[i] = nodes reachable from i (backward builds)
    Ancestors,    ///< map[i] = nodes reaching i (forward builds)
};

/**
 * Node lists bucketed by level (Section 4's level algorithm data
 * structure), flattened into one node slab plus per-level offsets.
 */
class LevelLists
{
  public:
    explicit LevelLists(Arena *arena = nullptr)
        : off_(ArenaAllocator<std::uint32_t>(arena)),
          nodes_(ArenaAllocator<std::uint32_t>(arena))
    {
    }

    /** Number of levels. */
    std::size_t
    size() const
    {
        return off_.empty() ? 0 : off_.size() - 1;
    }

    /** Nodes on level @p l, ascending node id. */
    std::span<const std::uint32_t>
    operator[](std::size_t l) const
    {
        return {nodes_.data() + off_[l], nodes_.data() + off_[l + 1]};
    }

  private:
    friend class Dag;
    ArenaVector<std::uint32_t> off_;   ///< size() + 1 offsets
    ArenaVector<std::uint32_t> nodes_; ///< all nodes, level-major
};

/** The dependence DAG for one basic block. */
class Dag
{
  public:
    /** Outcome of an addArc() attempt. */
    enum class AddArcResult : std::uint8_t {
        Added,
        Duplicate,   ///< (from,to) arc existed; delay maximized
        Suppressed,  ///< dropped by transitive-arc prevention
    };

    /**
     * Create one node per block instruction, in program order.  With
     * a non-null @p arena every internal array (annotations, CSR
     * slabs, reach maps, scratch) allocates from it, tying the DAG's
     * lifetime to the arena's reset cycle (the pipeline resets per
     * block).
     */
    explicit Dag(const BlockView &block, Arena *arena = nullptr);

    /** Enable reachability maps (call before any addArc). */
    void enableReachMaps(ReachMode mode);

    /**
     * When true, an arc whose endpoints are already connected through
     * intermediate nodes is suppressed (requires reach maps).  This is
     * the transitive-arc-avoidance behaviour of Landskov et al. that
     * Section 2 argues loses important timing information.
     */
    void setPreventTransitive(bool prevent);

    /** Level numbering origin: roots (forward) or leaves (backward). */
    enum class LevelOrigin : std::uint8_t { Roots, Leaves };
    void setLevelOrigin(LevelOrigin origin) { levelOrigin_ = origin; }
    LevelOrigin levelOrigin() const { return levelOrigin_; }

    /**
     * Recompute all node levels from scratch (one sweep in program
     * order, which is topological).  Needed after arcs are inserted
     * out of construction order — e.g. the branch-anchoring control
     * arcs added at the end of a backward build, which would otherwise
     * leave ancestors' leaf-origin levels stale.
     */
    void recomputeLevels();

    /**
     * Hint that subsequent addArc calls all involve @p node as one
     * endpoint; enables O(1) duplicate detection.
     */
    void beginArcGroup(std::uint32_t node);

    /** Add (or merge) a dependence arc from @p from to @p to. */
    AddArcResult addArc(std::uint32_t from, std::uint32_t to, DepKind kind,
                        int delay, Resource res = Resource());

    std::uint32_t size() const { return numNodes_; }

    // --- topology (struct-of-arrays) ---------------------------------

    const Instruction &inst(std::uint32_t i) const { return *inst_[i]; }
    const Instruction *instPtr(std::uint32_t i) const { return inst_[i]; }

    int level(std::uint32_t i) const { return level_[i]; }
    int numChildren(std::uint32_t i) const { return numChildren_[i]; }
    int numParents(std::uint32_t i) const { return numParents_[i]; }

    /** Heuristic annotation arrays (index by node id). */
    NodeAnnotations &ann() { return ann_; }
    const NodeAnnotations &ann() const { return ann_; }

    // --- CSR adjacency (finalized lazily; see ensureCsr) --------------

    /** Arc ids leaving @p i, in insertion order (ascending arc id). */
    std::span<const std::uint32_t>
    succs(std::uint32_t i) const
    {
        ensureCsr();
        return {succArc_.data() + succOff_[i],
                succArc_.data() + succOff_[i + 1]};
    }

    /** Arc ids entering @p i, in insertion order (ascending arc id). */
    std::span<const std::uint32_t>
    preds(std::uint32_t i) const
    {
        ensureCsr();
        return {predArc_.data() + predOff_[i],
                predArc_.data() + predOff_[i + 1]};
    }

    /** Successor node ids, parallel to succs(i). */
    std::span<const std::uint32_t>
    succTo(std::uint32_t i) const
    {
        ensureCsr();
        return {succTo_.data() + succOff_[i],
                succTo_.data() + succOff_[i + 1]};
    }

    /** Successor arc delays, parallel to succs(i). */
    std::span<const std::int32_t>
    succDelay(std::uint32_t i) const
    {
        ensureCsr();
        return {succDelay_.data() + succOff_[i],
                succDelay_.data() + succOff_[i + 1]};
    }

    /** Predecessor node ids, parallel to preds(i). */
    std::span<const std::uint32_t>
    predFrom(std::uint32_t i) const
    {
        ensureCsr();
        return {predFrom_.data() + predOff_[i],
                predFrom_.data() + predOff_[i + 1]};
    }

    /** Predecessor arc delays, parallel to preds(i). */
    std::span<const std::int32_t>
    predDelay(std::uint32_t i) const
    {
        ensureCsr();
        return {predDelay_.data() + predOff_[i],
                predDelay_.data() + predOff_[i + 1]};
    }

    /** Predecessor arc kinds, parallel to preds(i). */
    std::span<const DepKind>
    predKind(std::uint32_t i) const
    {
        ensureCsr();
        return {predKind_.data() + predOff_[i],
                predKind_.data() + predOff_[i + 1]};
    }

    const Arc &arc(std::uint32_t i) const { return arcs_[i]; }

    std::span<const Arc> arcs() const { return {arcs_.data(), arcs_.size()}; }

    /** Unique arcs added (excludes duplicates and suppressed arcs). */
    std::size_t numArcs() const { return arcs_.size(); }

    /** Duplicate (from,to) attempts merged into existing arcs. */
    std::size_t duplicateCount() const { return duplicates_; }

    /** Arcs dropped by transitive prevention. */
    std::size_t suppressedCount() const { return suppressed_; }

    /** Nodes with no parents (arena-backed where available). */
    ArcIdxVec roots() const;

    /** Nodes with no children (arena-backed where available). */
    ArcIdxVec leaves() const;

    /** Reachability map of a node (requires enableReachMaps). */
    ConstBitRow reachMap(std::uint32_t i) const { return reach_.row(i); }

    /** Mutable reachability map (builders' late fix-ups only). */
    BitRow reachMapMutable(std::uint32_t i) { return reach_.row(i); }

    ReachMode reachMode() const { return reachMode_; }

    /** Per-level node lists, built on demand. */
    const LevelLists &levelLists() const;

    /**
     * Compute descendant bitmaps by a reverse-topological sweep
     * (program order is topological).  Used for #descendants when the
     * builder did not maintain maps, and by countTransitiveArcs().
     */
    BitMatrix computeDescendantMaps() const;

    /**
     * Count arcs that are transitive, i.e. whose endpoints are also
     * connected through at least one intermediate node.
     */
    std::size_t countTransitiveArcs() const;

    /**
     * Number of weakly connected components — the paper's Section 2:
     * "A basic block may result in a collection of one or more DAGs,
     * called a *forest*."  Construction algorithms that want a single
     * candidate-list entry point join them under a dummy root; this
     * library instead seeds the candidate list with every root.
     */
    std::size_t countForestTrees() const;

    const BlockView &block() const { return block_; }

    /** Arena the DAG allocates from (null = heap). */
    Arena *arena() const { return arena_; }

  private:
    BlockView block_;
    Arena *arena_ = nullptr;
    std::uint32_t numNodes_ = 0;

    // Topology, struct-of-arrays.
    ArenaVector<const Instruction *> inst_;
    ArenaVector<int> level_;
    ArenaVector<int> numChildren_;
    ArenaVector<int> numParents_;
    ArenaVector<Arc> arcs_;
    NodeAnnotations ann_;

    ReachMode reachMode_ = ReachMode::None;
    bool preventTransitive_ = false;
    LevelOrigin levelOrigin_ = LevelOrigin::Roots;
    BitMatrix reach_;

    std::size_t duplicates_ = 0;
    std::size_t suppressed_ = 0;

    // O(1) duplicate detection within one arc group.
    std::uint32_t groupNode_ = ~std::uint32_t{0};
    std::uint32_t epoch_ = 0;
    ArcIdxVec dupStamp_;
    ArcIdxVec dupArc_;

    // CSR adjacency, rebuilt lazily after arc insertion.  In the
    // pipeline every builder appends all arcs first and adjacency is
    // queried afterwards, so the counting pass runs exactly once per
    // block.  The companion to/delay/kind slabs let hot loops stream
    // without touching the (wider) Arc records.
    mutable bool csrValid_ = false;
    mutable ArenaVector<std::uint32_t> succOff_;  ///< n + 1 offsets
    mutable ArenaVector<std::uint32_t> predOff_;
    mutable ArenaVector<std::uint32_t> succArc_;  ///< arc ids
    mutable ArenaVector<std::uint32_t> predArc_;
    mutable ArenaVector<std::uint32_t> succTo_;
    mutable ArenaVector<std::uint32_t> predFrom_;
    mutable ArenaVector<std::int32_t> succDelay_;
    mutable ArenaVector<std::int32_t> predDelay_;
    mutable ArenaVector<DepKind> predKind_;

    mutable LevelLists levelLists_;
    mutable bool levelListsValid_ = false;

    /** Counting-pass CSR finalization (no-op when already valid). */
    void ensureCsr() const;
    void buildCsr() const;

    /** Find an existing (from,to) arc; returns arc id or ~0. */
    std::uint32_t findArc(std::uint32_t from, std::uint32_t to) const;
};

} // namespace sched91

#endif // SCHED91_DAG_DAG_HH
