#include "dag/dag_stats.hh"

namespace sched91
{

void
DagStructure::accumulate(const Dag &dag)
{
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        childrenPerInst.add(dag.numChildren(i));
    arcsPerBlock.add(static_cast<double>(dag.numArcs()));
    treesPerBlock.add(static_cast<double>(dag.countForestTrees()));
    totalArcs += dag.numArcs();
    totalNodes += dag.size();
    ++totalBlocks;
    duplicateArcAttempts += dag.duplicateCount();
    suppressedArcs += dag.suppressedCount();
}

void
DagStructure::merge(const DagStructure &other)
{
    childrenPerInst.merge(other.childrenPerInst);
    arcsPerBlock.merge(other.arcsPerBlock);
    treesPerBlock.merge(other.treesPerBlock);
    totalArcs += other.totalArcs;
    totalNodes += other.totalNodes;
    totalBlocks += other.totalBlocks;
    duplicateArcAttempts += other.duplicateArcAttempts;
    suppressedArcs += other.suppressedArcs;
}

} // namespace sched91
