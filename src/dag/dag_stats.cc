#include "dag/dag_stats.hh"

namespace sched91
{

void
DagStructure::accumulate(const Dag &dag)
{
    for (const auto &node : dag.nodes())
        childrenPerInst.add(node.numChildren);
    arcsPerBlock.add(static_cast<double>(dag.numArcs()));
    treesPerBlock.add(static_cast<double>(dag.countForestTrees()));
    totalArcs += dag.numArcs();
    totalNodes += dag.size();
    ++totalBlocks;
    duplicateArcAttempts += dag.duplicateCount();
    suppressedArcs += dag.suppressedCount();
}

void
DagStructure::merge(const DagStructure &other)
{
    childrenPerInst.merge(other.childrenPerInst);
    arcsPerBlock.merge(other.arcsPerBlock);
    treesPerBlock.merge(other.treesPerBlock);
    totalArcs += other.totalArcs;
    totalNodes += other.totalNodes;
    totalBlocks += other.totalBlocks;
    duplicateArcAttempts += other.duplicateArcAttempts;
    suppressedArcs += other.suppressedArcs;
}

} // namespace sched91
