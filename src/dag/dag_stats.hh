/**
 * @file
 * DAG structural statistics for Tables 4 and 5: children per
 * instruction and arcs per basic block (max and average), plus
 * transitive-arc accounting for the ablation benches.
 */

#ifndef SCHED91_DAG_DAG_STATS_HH
#define SCHED91_DAG_DAG_STATS_HH

#include <cstdint>

#include "dag/dag.hh"
#include "support/stats.hh"

namespace sched91
{

/** Accumulated structural data over the DAGs of a whole program. */
struct DagStructure
{
    MinMaxAvg childrenPerInst; ///< one sample per node
    MinMaxAvg arcsPerBlock;    ///< one sample per block
    MinMaxAvg treesPerBlock;   ///< forest size (Section 2)
    std::size_t totalArcs = 0;
    std::size_t totalNodes = 0;
    std::size_t totalBlocks = 0;
    std::size_t duplicateArcAttempts = 0;
    std::size_t suppressedArcs = 0;

    /** Fold one block's DAG into the statistics. */
    void accumulate(const Dag &dag);

    /** Merge another accumulation. */
    void merge(const DagStructure &other);
};

} // namespace sched91

#endif // SCHED91_DAG_DAG_STATS_HH
