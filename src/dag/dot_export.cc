#include "dag/dot_export.hh"

#include <sstream>

namespace sched91
{

namespace
{

/** Escape double quotes for DOT string literals. */
std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

const char *
arcStyle(DepKind kind)
{
    switch (kind) {
      case DepKind::RAW: return "solid";
      case DepKind::WAR: return "dashed";
      case DepKind::WAW: return "dotted";
      case DepKind::CTRL: return "solid";
    }
    return "solid";
}

} // namespace

std::string
toDot(const Dag &dag, const DotOptions &opts)
{
    std::ostringstream os;
    os << "digraph " << opts.graphName << " {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n"
       << "  rankdir=TB;\n";

    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        os << "  n" << i << " [label=\"" << i << ": "
           << escape(dag.inst(i).toString());
        if (opts.showHeuristics) {
            os << "\\nd2l=" << dag.ann().maxDelayToLeaf[i]
               << " est=" << dag.ann().earliestStart[i]
               << " slk=" << dag.ann().slack[i];
        }
        os << "\"];\n";
    }

    for (const Arc &arc : dag.arcs()) {
        os << "  n" << arc.from << " -> n" << arc.to << " [style="
           << arcStyle(arc.kind);
        if (arc.kind == DepKind::CTRL)
            os << ", color=gray";
        if (opts.showDelays)
            os << ", label=\"" << depKindName(arc.kind) << " "
               << arc.delay << "\"";
        os << "];\n";
    }

    os << "}\n";
    return os.str();
}

} // namespace sched91
