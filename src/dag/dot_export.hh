/**
 * @file
 * Graphviz (DOT) rendering of dependence DAGs, for inspection and
 * documentation.  Arc styles encode the dependence kind: solid for
 * RAW, dashed for WAR, dotted for WAW, gray for control anchors; arc
 * labels carry the delay, node labels the instruction and optionally
 * selected heuristic values.
 */

#ifndef SCHED91_DAG_DOT_EXPORT_HH
#define SCHED91_DAG_DOT_EXPORT_HH

#include <string>

#include "dag/dag.hh"

namespace sched91
{

/** DOT rendering options. */
struct DotOptions
{
    bool showDelays = true;       ///< label arcs with their delay
    bool showHeuristics = false;  ///< annotate nodes with delay-to-leaf
    const char *graphName = "dag";
};

/** Render @p dag as a DOT digraph. */
std::string toDot(const Dag &dag, const DotOptions &opts = {});

} // namespace sched91

#endif // SCHED91_DAG_DOT_EXPORT_HH
