#include "dag/memdep.hh"

#include "obs/events.hh"

namespace sched91
{

std::string_view
aliasPolicyName(AliasPolicy policy)
{
    switch (policy) {
      case AliasPolicy::SerializeAll: return "serialize-all";
      case AliasPolicy::BaseOffset: return "base-offset";
      case AliasPolicy::StorageClassed: return "storage-classed";
      case AliasPolicy::SymbolicExpr: return "symbolic-expr";
    }
    return "?";
}

AliasResult
MemDisambiguator::alias(const MemOperand &a, const MemOperand &b) const
{
    obs::ev::dagAliasQueries.inc();
    if (policy_ == AliasPolicy::SerializeAll)
        return AliasResult::MustAlias;

    // Identical expression with identical base/index generations is the
    // same location.
    bool same_shape = a.base == b.base && a.index == b.index &&
                      a.symbol == b.symbol;
    bool same_gens = a.baseGen == b.baseGen && a.indexGen == b.indexGen;
    if (same_shape && same_gens && a.offset == b.offset)
        return AliasResult::MustAlias;

    // Storage-class separation (Warren): stack vs static never overlap.
    if (policy_ == AliasPolicy::StorageClassed) {
        StorageClass ca = a.storageClass();
        StorageClass cb = b.storageClass();
        if (ca != cb && ca != StorageClass::Unknown &&
            cb != StorageClass::Unknown) {
            return AliasResult::NoAlias;
        }
    }

    // Expression-as-resource model: references through *different*
    // base registers or symbols are distinct resources outright
    // (generation stamps are per-register counters — they are only
    // comparable between references sharing a base).  Same-shape
    // references continue to the shared logic below, which demands
    // matching generations before proving anything.
    if (policy_ == AliasPolicy::SymbolicExpr && a.index < 0 &&
        b.index < 0 && !same_shape) {
        return AliasResult::NoAlias;
    }

    // Same-base different-offset reasoning, valid only when neither
    // reference has an index register and the base generations match.
    if (same_shape && same_gens && a.index < 0) {
        std::int64_t a_end = a.offset + a.width;
        std::int64_t b_end = b.offset + b.width;
        if (a.offset >= b_end || b.offset >= a_end)
            return AliasResult::NoAlias;
        return AliasResult::MayAlias; // partial overlap
    }

    // Two distinct symbols with no registers are distinct objects.
    if (a.base < 0 && a.index < 0 && b.base < 0 && b.index < 0 &&
        !a.symbol.empty() && !b.symbol.empty() && a.symbol != b.symbol) {
        return AliasResult::NoAlias;
    }

    return AliasResult::MayAlias;
}

} // namespace sched91
