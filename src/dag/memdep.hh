/**
 * @file
 * Memory dependence disambiguation (paper Section 2).
 *
 * "The DAG construction algorithm may have to treat memory as a single
 * resource, which leads to serialization of all loads and stores"
 * (AliasPolicy::SerializeAll).  "If two memory references use the same
 * base register but different offsets, they cannot refer to the same
 * location" (AliasPolicy::BaseOffset) — guarded here by base-register
 * generation stamps, since the observation only holds while the base
 * register is unchanged.  "Warren noted that storage classes (e.g.,
 * heap vs. stack) typically do not overlap" (AliasPolicy::StorageClassed
 * additionally separates %sp/%fp-based from symbol-based references).
 */

#ifndef SCHED91_DAG_MEMDEP_HH
#define SCHED91_DAG_MEMDEP_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "ir/operand.hh"

namespace sched91
{

/** Disambiguation aggressiveness, weakest to strongest. */
enum class AliasPolicy : std::uint8_t {
    SerializeAll,   ///< memory is one resource
    BaseOffset,     ///< same base reg + disjoint offsets are independent
    StorageClassed, ///< BaseOffset + stack/static class separation
    /**
     * Each unique symbolic address expression is its own resource —
     * the model the paper's tooling used (Table 3 counts "unique
     * memory expressions" exactly because each one gets a
     * definition-entry/use-list pair).  Distinct stable expressions
     * are treated as independent; references whose base registers
     * were redefined (generation mismatch) or that use index
     * registers stay conservative.  Not sound for arbitrary code (two
     * different base registers may hold the same address) but
     * faithful to the 1991 implementations and to compiler output
     * where distinct expressions name distinct locations.
     */
    SymbolicExpr,
};

std::string_view aliasPolicyName(AliasPolicy policy);

/** Three-valued alias verdict. */
enum class AliasResult : std::uint8_t {
    NoAlias,   ///< provably different locations
    MayAlias,  ///< cannot tell; serialize conservatively
    MustAlias, ///< provably the same location
};

/** Stateless alias oracle over parsed memory operands. */
class MemDisambiguator
{
  public:
    explicit MemDisambiguator(AliasPolicy policy) : policy_(policy) {}

    AliasPolicy policy() const { return policy_; }

    /** Alias verdict for two references within one basic block. */
    AliasResult alias(const MemOperand &a, const MemOperand &b) const;

  private:
    AliasPolicy policy_;
};

/**
 * Per-expression definition/use table entry used by the table-building
 * DAG constructors: "a record of the last definition of a resource and
 * the set of current uses" (Section 2), extended to memory expressions.
 * Node ids are block-relative.
 */
struct MemEntry
{
    MemOperand ref;                 ///< representative reference
    std::int64_t def = -1;          ///< node of the governing store
    std::vector<std::uint32_t> uses;///< loads since/until that store
};

} // namespace sched91

#endif // SCHED91_DAG_MEMDEP_HH
