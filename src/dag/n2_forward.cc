#include "dag/n2_forward.hh"

#include "obs/events.hh"

namespace sched91
{

void
N2ForwardBuilder::addArcs(Dag &dag, const BlockView &block,
                          const MachineModel &machine,
                          const BuildOptions &opts) const
{
    MemDisambiguator mem(opts.memPolicy);
    DelayCalc delays(machine, dag);
    PairMasks masks(dag);
    std::uint32_t n = block.size();
    for (std::uint32_t j = 1; j < n; ++j) {
        dag.beginArcGroup(j);
        for (std::uint32_t i = 0; i < j; ++i) {
            if (opts.cancel)
                opts.cancel->poll();
            obs::ev::dagPairwiseCompares.inc();
            if (masks.mayInteract(i, j))
                addPairwiseArcs(dag, i, j, delays, mem);
        }
    }
}

void
N2BackwardBuilder::addArcs(Dag &dag, const BlockView &block,
                           const MachineModel &machine,
                           const BuildOptions &opts) const
{
    MemDisambiguator mem(opts.memPolicy);
    DelayCalc delays(machine, dag);
    PairMasks masks(dag);
    for (std::uint32_t i = block.size(); i-- > 0;) {
        dag.beginArcGroup(i);
        for (std::uint32_t j = i + 1; j < block.size(); ++j) {
            if (opts.cancel)
                opts.cancel->poll();
            obs::ev::dagPairwiseCompares.inc();
            if (masks.mayInteract(i, j))
                addPairwiseArcs(dag, i, j, delays, mem);
        }
    }
}

} // namespace sched91
