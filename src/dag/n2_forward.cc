#include "dag/n2_forward.hh"

namespace sched91
{

void
N2ForwardBuilder::addArcs(Dag &dag, const BlockView &block,
                          const MachineModel &machine,
                          const BuildOptions &opts) const
{
    MemDisambiguator mem(opts.memPolicy);
    std::uint32_t n = block.size();
    for (std::uint32_t j = 1; j < n; ++j) {
        dag.beginArcGroup(j);
        for (std::uint32_t i = 0; i < j; ++i) {
            if (opts.cancel)
                opts.cancel->poll();
            addPairwiseArcs(dag, i, j, machine, mem);
        }
    }
}

void
N2BackwardBuilder::addArcs(Dag &dag, const BlockView &block,
                           const MachineModel &machine,
                           const BuildOptions &opts) const
{
    MemDisambiguator mem(opts.memPolicy);
    for (std::uint32_t i = block.size(); i-- > 0;) {
        dag.beginArcGroup(i);
        for (std::uint32_t j = i + 1; j < block.size(); ++j) {
            if (opts.cancel)
                opts.cancel->poll();
            addPairwiseArcs(dag, i, j, machine, mem);
        }
    }
}

} // namespace sched91
