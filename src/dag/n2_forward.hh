/**
 * @file
 * Compare-against-all (n**2) forward DAG construction (Warren-like).
 *
 * "Compare-against-all is an O(n**2) approach in which the new node is
 * compared against all previous nodes" (Section 2).  This builder
 * retains every dependence arc, including the "huge number" of
 * transitive arcs the paper measures in Table 4.
 */

#ifndef SCHED91_DAG_N2_FORWARD_HH
#define SCHED91_DAG_N2_FORWARD_HH

#include "dag/builder.hh"

namespace sched91
{

/** Warren-like n**2 forward builder. */
class N2ForwardBuilder : public DagBuilder
{
  public:
    std::string_view name() const override { return "n**2 fwd"; }
    bool isForward() const override { return true; }

  protected:
    void addArcs(Dag &dag, const BlockView &block,
                 const MachineModel &machine,
                 const BuildOptions &opts) const override;
};

/**
 * Backward-scan compare-against-all builder.  "Gibbons and Muchnick
 * used backward-pass DAG construction to handle condition code
 * dependencies in a special way" (Section 5); the arc set is identical
 * to the forward n**2 build, but the pass direction (and hence level
 * numbering and reach-map orientation) is reversed.
 */
class N2BackwardBuilder : public DagBuilder
{
  public:
    std::string_view name() const override { return "n**2 bwd"; }
    bool isForward() const override { return false; }

  protected:
    void addArcs(Dag &dag, const BlockView &block,
                 const MachineModel &machine,
                 const BuildOptions &opts) const override;
};

} // namespace sched91

#endif // SCHED91_DAG_N2_FORWARD_HH
