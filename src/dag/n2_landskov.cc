#include "dag/n2_landskov.hh"

#include "obs/events.hh"

namespace sched91
{

void
N2LandskovBuilder::addArcs(Dag &dag, const BlockView &block,
                           const MachineModel &machine,
                           const BuildOptions &opts) const
{
    // Pruning requires ancestor maps regardless of the caller's
    // options; the builder *is* the transitive-avoidance variant.
    if (dag.reachMode() == ReachMode::None)
        dag.enableReachMaps(ReachMode::Ancestors);
    dag.setPreventTransitive(true);

    MemDisambiguator mem(opts.memPolicy);
    DelayCalc delays(machine, dag);
    PairMasks masks(dag);
    std::uint32_t n = block.size();
    for (std::uint32_t j = 1; j < n; ++j) {
        dag.beginArcGroup(j);
        // Most recent first ("examines leaves first"): arcs through an
        // intermediate node are established before the older direct
        // dependence is examined, so the ancestor test prunes it.
        for (std::uint32_t i = j; i-- > 0;) {
            if (opts.cancel)
                opts.cancel->poll();
            obs::ev::dagPairwiseCompares.inc();
            if (masks.mayInteract(i, j))
                addPairwiseArcs(dag, i, j, delays, mem);
        }
    }
}

} // namespace sched91
