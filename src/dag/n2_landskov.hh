/**
 * @file
 * n**2 forward construction with transitive-arc pruning.
 *
 * "The algorithm presented by Landskov, et al., is a modification of
 * the n**2 forward algorithm; it examines leaves first and prunes away
 * any ancestors whenever a dependency is observed" (Section 2).  This
 * builder scans previous nodes from most recent to oldest and uses
 * ancestor reachability maps to suppress any arc whose source is
 * already an ancestor of the new node — producing a DAG with *no*
 * transitive arcs.
 *
 * The paper's conclusion 3 recommends against this: transitive arcs
 * such as the RAW arc of Figure 1 carry timing information (a 20-cycle
 * divide latency) that the remaining WAR-then-RAW path (1 + 4 cycles)
 * does not, so timing heuristics computed on this DAG are wrong.
 */

#ifndef SCHED91_DAG_N2_LANDSKOV_HH
#define SCHED91_DAG_N2_LANDSKOV_HH

#include "dag/builder.hh"

namespace sched91
{

/** Landskov-style transitive-arc-free n**2 builder. */
class N2LandskovBuilder : public DagBuilder
{
  public:
    std::string_view name() const override { return "n**2 landskov"; }
    bool isForward() const override { return true; }

  protected:
    void addArcs(Dag &dag, const BlockView &block,
                 const MachineModel &machine,
                 const BuildOptions &opts) const override;
};

} // namespace sched91

#endif // SCHED91_DAG_N2_LANDSKOV_HH
