#include "dag/table_backward.hh"

#include <array>

#include "obs/events.hh"
#include "support/worker_context.hh"

namespace sched91
{

namespace
{

/** Definition entry + use list for one register-like resource slot. */
struct SlotEntry
{
    std::int64_t def = -1;
    ArcIdxVec uses;
};

} // namespace

void
TableBackwardBuilder::addArcs(Dag &dag, const BlockView &block,
                              const MachineModel &machine,
                              const BuildOptions &opts) const
{
    MemDisambiguator disamb(opts.memPolicy);
    DelayCalc delays(machine, dag);
    std::array<SlotEntry, Resource::kNumSlots> table{};
    if (Arena *arena = WorkerContext::currentArena()) {
        // Per-slot use lists join the worker arena's block lifetime.
        ArenaAllocator<std::uint32_t> alloc(arena);
        for (SlotEntry &e : table)
            e.uses = ArcIdxVec(alloc);
    }
    std::vector<MemEntry> mem_entries;

    // Definition-table and memory-entry probes, accumulated locally
    // and flushed once per block (Table 5's unit of work).
    std::uint64_t probes = 0;

    for (std::uint32_t j = block.size(); j-- > 0;) {
        if (opts.cancel)
            opts.cancel->poll();
        const Instruction &inst = block.inst(j);
        dag.beginArcGroup(j);

        // --- resources defined (processed before uses) ---------------
        for (Resource r : inst.defs()) {
            ++probes;
            SlotEntry &e = table[r.slot()];
            if (e.def >= 0 && e.uses.empty()) {
                std::uint32_t d = static_cast<std::uint32_t>(e.def);
                dag.addArc(j, d, DepKind::WAW, delays.waw(j, d), r);
            }
            for (std::uint32_t u : e.uses)
                dag.addArc(j, u, DepKind::RAW, delays.raw(j, u, r), r);
            e.uses.clear();
            e.def = j;
        }

        if (inst.isStore() && inst.mem().has_value()) {
            const MemOperand &ref = *inst.mem();
            bool claimed = false;
            for (MemEntry &e : mem_entries) {
                ++probes;
                AliasResult rel = disamb.alias(ref, e.ref);
                if (rel == AliasResult::NoAlias)
                    continue;
                if (e.def >= 0 && e.uses.empty()) {
                    std::uint32_t d = static_cast<std::uint32_t>(e.def);
                    dag.addArc(j, d, DepKind::WAW, delays.waw(j, d));
                }
                for (std::uint32_t u : e.uses)
                    dag.addArc(j, u, DepKind::RAW,
                               delays.raw(j, u, Resource()));
                if (rel == AliasResult::MustAlias) {
                    e.uses.clear();
                    e.def = j;
                    claimed = true;
                }
            }
            if (!claimed)
                mem_entries.push_back(MemEntry{ref, j, {}});
        }

        // --- resources used -------------------------------------------
        for (Resource r : inst.uses()) {
            ++probes;
            SlotEntry &e = table[r.slot()];
            if (e.def >= 0 && e.def != j) {
                std::uint32_t d = static_cast<std::uint32_t>(e.def);
                dag.addArc(j, d, DepKind::WAR, delays.war(), r);
            }
            e.uses.push_back(j);
        }

        if (inst.isLoad() && inst.mem().has_value()) {
            const MemOperand &ref = *inst.mem();
            bool claimed = false;
            for (MemEntry &e : mem_entries) {
                ++probes;
                AliasResult rel = disamb.alias(ref, e.ref);
                if (rel == AliasResult::NoAlias)
                    continue;
                if (e.def >= 0 && e.def != static_cast<std::int64_t>(j)) {
                    std::uint32_t d = static_cast<std::uint32_t>(e.def);
                    dag.addArc(j, d, DepKind::WAR, delays.war());
                }
                if (rel == AliasResult::MustAlias) {
                    e.uses.push_back(j);
                    claimed = true;
                }
            }
            if (!claimed)
                mem_entries.push_back(MemEntry{ref, -1, {j}});
        }
    }

    obs::ev::dagTableProbes.inc(probes);
}

} // namespace sched91
