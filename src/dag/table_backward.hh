/**
 * @file
 * Table-building backward DAG construction (Section 2 pseudocode).
 *
 * Processing instructions from last to first, with each instruction's
 * *definitions* processed before its *uses* [7]:
 *
 *     /" process resources defined "/
 *     if (resource[definition_entry] not empty and
 *         resource[uselist] is empty )
 *         add_arc(WAW, newnode, resource[definition_entry]);
 *     foreach (uselist_entry in resource[uselist] in ascending order)
 *         add_arc(RAW, newnode, uselist_entry);  delete entry;
 *     insert newnode as resource[definition_entry];
 *     /" process resources used "/
 *     if (resource[definition_entry] not empty)
 *         add_arc(WAR, newnode, resource[definition_entry]);
 *     add newnode as a uselist_entry into resource[uselist];
 *
 * Because the backward build sees each node's descendants completely
 * before any parent, descendant reachability maps can be maintained
 * exactly, enabling both the O(1) #descendants heuristic and — when
 * BuildOptions::preventTransitive is set — the reachability-bit-map
 * transitive-arc prevention the paper describes (and measures the
 * downside of in Figure 1).
 */

#ifndef SCHED91_DAG_TABLE_BACKWARD_HH
#define SCHED91_DAG_TABLE_BACKWARD_HH

#include "dag/builder.hh"

namespace sched91
{

/** Backward-pass table-building builder. */
class TableBackwardBuilder : public DagBuilder
{
  public:
    std::string_view name() const override { return "table bwd"; }
    bool isForward() const override { return false; }

  protected:
    void addArcs(Dag &dag, const BlockView &block,
                 const MachineModel &machine,
                 const BuildOptions &opts) const override;
};

} // namespace sched91

#endif // SCHED91_DAG_TABLE_BACKWARD_HH
