#include "dag/table_forward.hh"

#include <array>

#include "obs/events.hh"
#include "support/worker_context.hh"

namespace sched91
{

namespace
{

/** Definition entry + use list for one register-like resource slot. */
struct SlotEntry
{
    std::int64_t def = -1;
    ArcIdxVec uses;
};

} // namespace

void
TableForwardBuilder::addArcs(Dag &dag, const BlockView &block,
                             const MachineModel &machine,
                             const BuildOptions &opts) const
{
    MemDisambiguator disamb(opts.memPolicy);
    DelayCalc delays(machine, dag);
    std::array<SlotEntry, Resource::kNumSlots> table{};
    if (Arena *arena = WorkerContext::currentArena()) {
        // Per-slot use lists join the worker arena's block lifetime.
        ArenaAllocator<std::uint32_t> alloc(arena);
        for (SlotEntry &e : table)
            e.uses = ArcIdxVec(alloc);
    }
    std::vector<MemEntry> mem_entries;

    // Definition-table and memory-entry probes, accumulated locally
    // and flushed once per block (Table 5's unit of work).
    std::uint64_t probes = 0;

    std::uint32_t n = block.size();
    for (std::uint32_t j = 0; j < n; ++j) {
        // One poll per instruction bounds the overrun to a single
        // row's table work (the rows are O(ops + live mem exprs)).
        if (opts.cancel)
            opts.cancel->poll();
        const Instruction &inst = block.inst(j);
        dag.beginArcGroup(j);

        // --- resources used (processed before definitions) ----------
        for (Resource r : inst.uses()) {
            ++probes;
            SlotEntry &e = table[r.slot()];
            if (e.def >= 0) {
                std::uint32_t d = static_cast<std::uint32_t>(e.def);
                dag.addArc(d, j, DepKind::RAW, delays.raw(d, j, r), r);
            }
            e.uses.push_back(j);
        }

        if (inst.isLoad() && inst.mem().has_value()) {
            const MemOperand &ref = *inst.mem();
            bool claimed = false;
            for (MemEntry &e : mem_entries) {
                ++probes;
                AliasResult rel = disamb.alias(ref, e.ref);
                if (rel == AliasResult::NoAlias)
                    continue;
                if (e.def >= 0) {
                    std::uint32_t d = static_cast<std::uint32_t>(e.def);
                    dag.addArc(d, j, DepKind::RAW,
                               delays.raw(d, j, Resource()));
                }
                if (rel == AliasResult::MustAlias) {
                    e.uses.push_back(j);
                    claimed = true;
                }
            }
            if (!claimed)
                mem_entries.push_back(MemEntry{ref, -1, {j}});
        }

        // --- resources defined ---------------------------------------
        for (Resource r : inst.defs()) {
            ++probes;
            SlotEntry &e = table[r.slot()];
            if (!e.uses.empty()) {
                for (std::uint32_t u : e.uses)
                    if (u != j)
                        dag.addArc(u, j, DepKind::WAR, delays.war(), r);
                e.uses.clear();
            } else if (e.def >= 0) {
                std::uint32_t d = static_cast<std::uint32_t>(e.def);
                dag.addArc(d, j, DepKind::WAW, delays.waw(d, j), r);
            }
            e.def = j;
        }

        if (inst.isStore() && inst.mem().has_value()) {
            const MemOperand &ref = *inst.mem();
            bool claimed = false;
            for (MemEntry &e : mem_entries) {
                ++probes;
                AliasResult rel = disamb.alias(ref, e.ref);
                if (rel == AliasResult::NoAlias)
                    continue;
                if (!e.uses.empty()) {
                    for (std::uint32_t u : e.uses)
                        if (u != j)
                            dag.addArc(u, j, DepKind::WAR, delays.war());
                } else if (e.def >= 0) {
                    std::uint32_t d = static_cast<std::uint32_t>(e.def);
                    dag.addArc(d, j, DepKind::WAW, delays.waw(d, j));
                }
                if (rel == AliasResult::MustAlias) {
                    e.def = j;
                    e.uses.clear();
                    claimed = true;
                }
            }
            if (!claimed)
                mem_entries.push_back(MemEntry{ref, j, {}});
        }
    }

    obs::ev::dagTableProbes.inc(probes);
}

} // namespace sched91
