/**
 * @file
 * Table-building forward DAG construction (Krishnamurthy-like).
 *
 * "Table building is an approach that keeps a record of the last
 * definition of a resource and the set of current uses" (Section 2).
 * The forward version processes each instruction's resource *uses*
 * before its *definitions* [7,8]:
 *
 *   - use of r:   RAW arc from the recorded definition; join use list
 *   - def of r:   WAR arcs from every recorded use (then clear them);
 *                 a WAW arc from the recorded definition only when no
 *                 uses intervened (otherwise the RAW + WAR chain covers
 *                 the write ordering); become the recorded definition
 *
 * Memory references extend the same table discipline to one entry per
 * distinct symbolic address expression, with a MayAlias verdict adding
 * ordering arcs without claiming the entry (see dag/memdep.hh).
 *
 * Table building omits most transitive arcs but — crucially for the
 * paper's Figure 1 — retains transitive arcs like a long-latency RAW
 * that parallels a WAR-then-RAW path, because the definition entry for
 * the divide's result register survives the WAR processing.
 */

#ifndef SCHED91_DAG_TABLE_FORWARD_HH
#define SCHED91_DAG_TABLE_FORWARD_HH

#include "dag/builder.hh"

namespace sched91
{

/** Krishnamurthy-like table-building forward builder. */
class TableForwardBuilder : public DagBuilder
{
  public:
    std::string_view name() const override { return "table fwd"; }
    bool isForward() const override { return true; }

  protected:
    void addArcs(Dag &dag, const BlockView &block,
                 const MachineModel &machine,
                 const BuildOptions &opts) const override;
};

} // namespace sched91

#endif // SCHED91_DAG_TABLE_FORWARD_HH
