#include "fuzz/differential.hh"

#include <array>
#include <chrono>
#include <sstream>
#include <vector>

#include "heuristics/register_pressure.hh"
#include "heuristics/static_passes.hh"
#include "ir/basic_block.hh"
#include "ir/parser.hh"
#include "obs/events.hh"
#include "sched/list_scheduler.hh"
#include "sched/registry.hh"
#include "sched/verifier.hh"

namespace sched91::fuzz
{

namespace
{

constexpr std::array<BuilderKind, 3> kBuilders = {
    BuilderKind::N2Forward,
    BuilderKind::TableForward,
    BuilderKind::TableBackward,
};

/**
 * All-pairs longest accumulated delay over the dependence relation:
 * dist[i][j] is the maximum sum of arc delays over paths i -> j, or
 * -1 when j is unreachable from i.  Arcs always point forward in
 * program order, so one ascending sweep per source is a topological
 * DP.  This is the builder-invariant: raw arc sets differ (transitive
 * arcs), the closure with delays must not.
 */
std::vector<std::vector<int>>
closureDelays(const Dag &dag)
{
    const std::uint32_t n = dag.size();
    std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
    for (std::uint32_t i = 0; i < n; ++i) {
        dist[i][i] = 0;
        for (std::uint32_t j = i + 1; j < n; ++j) {
            int best = -1;
            std::span<const std::uint32_t> from = dag.predFrom(j);
            std::span<const std::int32_t> delay = dag.predDelay(j);
            for (std::size_t k = 0; k < from.size(); ++k) {
                if (from[k] < i || dist[i][from[k]] < 0)
                    continue;
                best = std::max(best, dist[i][from[k]] + delay[k]);
            }
            dist[i][j] = best;
        }
        dist[i][i] = -1; // self-reachability is not part of the relation
    }
    return dist;
}

/** Transitive reduction derived from a closure: the (i,j) pairs that
 * are connected but not through any intermediate node. */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
transitiveReduction(const std::vector<std::vector<int>> &dist)
{
    const std::size_t n = dist.size();
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arcs;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (dist[i][j] < 0)
                continue;
            bool indirect = false;
            for (std::size_t k = i + 1; k < j && !indirect; ++k)
                indirect = dist[i][k] >= 0 && dist[k][j] >= 0;
            if (!indirect)
                arcs.emplace_back(static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j));
        }
    }
    return arcs;
}

/** The path-class static heuristics that must be builder-invariant.
 * (The 'a'-class sums over arc multisets — sumDelaysToChildren and
 * friends — legitimately differ when a builder keeps transitive
 * arcs, so they are deliberately absent.) */
struct HeurRow
{
    int earliestStart, maxPathFromRoot, maxDelayFromRoot;
    int latestStart, maxPathToLeaf, maxDelayToLeaf;
    int slack, numDescendants;
    long long sumExecOfDescendants;

    bool
    operator==(const HeurRow &o) const
    {
        return earliestStart == o.earliestStart &&
               maxPathFromRoot == o.maxPathFromRoot &&
               maxDelayFromRoot == o.maxDelayFromRoot &&
               latestStart == o.latestStart &&
               maxPathToLeaf == o.maxPathToLeaf &&
               maxDelayToLeaf == o.maxDelayToLeaf && slack == o.slack &&
               numDescendants == o.numDescendants &&
               sumExecOfDescendants == o.sumExecOfDescendants;
    }
};

std::vector<HeurRow>
snapshotHeuristics(const Dag &dag)
{
    std::vector<HeurRow> rows;
    rows.reserve(dag.size());
    const NodeAnnotations &a = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        rows.push_back(HeurRow{a.earliestStart[i], a.maxPathFromRoot[i],
                               a.maxDelayFromRoot[i], a.latestStart[i],
                               a.maxPathToLeaf[i], a.maxDelayToLeaf[i],
                               a.slack[i], a.numDescendants[i],
                               a.sumExecOfDescendants[i]});
    }
    return rows;
}

std::string
builderLabel(BuilderKind kind)
{
    return std::string(makeBuilder(kind)->name());
}

/** Format "block B, builder X vs Y: what [node N]". */
std::string
mismatch(std::size_t block, BuilderKind a, BuilderKind b,
         const std::string &what)
{
    std::ostringstream os;
    os << "block " << block << ": " << builderLabel(a) << " vs "
       << builderLabel(b) << ": " << what;
    return os.str();
}

} // namespace

OracleReport
checkProgram(Program &prog, const MachineModel &machine,
             const OracleOptions &opts)
{
    OracleReport report;
    obs::ev::fuzzOracleRuns.inc();
    auto fail = [&](std::string why) {
        report.ok = false;
        report.failure = std::move(why);
        obs::ev::fuzzOracleFailures.inc();
    };

    try {
        stampMemGenerations(prog);
        auto blocks = partitionBlocks(prog);
        for (std::size_t b = 0; b < blocks.size() && report.ok; ++b) {
            BlockView block(prog, blocks[b]);
            if (block.size() == 0)
                continue;

            BuildOptions bopts;
            bopts.memPolicy = opts.memPolicy;
            std::vector<Dag> dags;
            dags.reserve(kBuilders.size());
            for (BuilderKind kind : kBuilders)
                dags.push_back(
                    makeBuilder(kind)->build(block, machine, bopts));

            // Property 1: identical closure (longest delays), hence
            // identical transitive reduction.
            auto dist0 = closureDelays(dags[0]);
            auto reduced0 = transitiveReduction(dist0);
            for (std::size_t k = 1; k < dags.size(); ++k) {
                auto dist = closureDelays(dags[k]);
                if (dist != dist0) {
                    // Locate the first differing pair for the report.
                    std::string what = "closure delay mismatch";
                    for (std::size_t i = 0; i < dist.size(); ++i)
                        for (std::size_t j = 0; j < dist.size(); ++j)
                            if (dist[i][j] != dist0[i][j]) {
                                std::ostringstream os;
                                os << "closure delay (" << i << " -> "
                                   << j << "): " << dist0[i][j]
                                   << " vs " << dist[i][j];
                                what = os.str();
                                i = j = dist.size();
                            }
                    fail(mismatch(b, kBuilders[0], kBuilders[k], what));
                    break;
                }
                if (transitiveReduction(dist) != reduced0) {
                    fail(mismatch(b, kBuilders[0], kBuilders[k],
                                  "transitive reduction mismatch"));
                    break;
                }
            }
            if (!report.ok)
                break;

            // Property 1b: alias-policy refinement.  Along the chain
            // SerializeAll -> BaseOffset -> StorageClassed each step
            // only removes memory dependences, so the coarser
            // policy's closure must contain the finer one's: every
            // pair the fine policy connects, the coarse policy
            // connects with at least as large an accumulated delay.
            if (opts.checkAliasRefinement) {
                static constexpr AliasPolicy kChain[] = {
                    AliasPolicy::SerializeAll,
                    AliasPolicy::BaseOffset,
                    AliasPolicy::StorageClassed,
                };
                std::vector<std::vector<std::vector<int>>> closures;
                for (AliasPolicy policy : kChain) {
                    BuildOptions copts;
                    copts.memPolicy = policy;
                    Dag d = makeBuilder(BuilderKind::TableForward)
                                ->build(block, machine, copts);
                    closures.push_back(closureDelays(d));
                }
                for (std::size_t k = 1;
                     k < std::size(kChain) && report.ok; ++k) {
                    const auto &coarse = closures[k - 1];
                    const auto &fine = closures[k];
                    for (std::size_t i = 0;
                         i < fine.size() && report.ok; ++i) {
                        for (std::size_t j = 0; j < fine.size(); ++j) {
                            if (fine[i][j] < 0 ||
                                coarse[i][j] >= fine[i][j])
                                continue;
                            std::ostringstream os;
                            os << "block " << b
                               << ": alias refinement violated, "
                               << aliasPolicyName(kChain[k - 1])
                               << " closure does not contain "
                               << aliasPolicyName(kChain[k]) << ": ("
                               << i << " -> " << j << ") delay "
                               << coarse[i][j] << " < " << fine[i][j];
                            fail(os.str());
                            break;
                        }
                    }
                }
            }
            if (!report.ok)
                break;

            // Property 2: path-class heuristics agree across builders
            // and across both pass implementations.
            if (opts.checkHeuristics) {
                for (Dag &dag : dags) {
                    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
                    computeRegisterPressure(dag);
                }
                auto rows0 = snapshotHeuristics(dags[0]);
                for (std::size_t k = 1; k < dags.size(); ++k) {
                    if (snapshotHeuristics(dags[k]) != rows0) {
                        fail(mismatch(b, kBuilders[0], kBuilders[k],
                                      "static heuristic mismatch"));
                        break;
                    }
                }
                if (report.ok) {
                    runAllStaticPasses(dags[0], PassImpl::LevelLists,
                                       true);
                    if (snapshotHeuristics(dags[0]) != rows0)
                        fail(mismatch(
                            b, kBuilders[0], kBuilders[0],
                            "ReverseWalk vs LevelLists heuristic "
                            "mismatch"));
                }
            } else {
                // Schedulers still need their inputs annotated.
                for (Dag &dag : dags) {
                    runAllStaticPasses(dag, PassImpl::ReverseWalk, true);
                    computeRegisterPressure(dag);
                }
            }
            if (!report.ok)
                break;

            // Property 3: every algorithm x builder schedule passes
            // the independent verifier.
            if (opts.checkSchedulers) {
                for (AlgorithmKind algo : allAlgorithms()) {
                    AlgorithmSpec spec = algorithmSpec(algo);
                    ListScheduler scheduler(spec.config, machine);
                    for (std::size_t k = 0; k < dags.size(); ++k) {
                        Schedule sched = scheduler.run(dags[k]);
                        ++report.schedulesChecked;
                        VerifyResult v =
                            verifySchedule(dags[k], sched, machine);
                        if (!v.ok()) {
                            std::ostringstream os;
                            os << "block " << b << ": "
                               << algorithmName(algo) << " over "
                               << builderLabel(kBuilders[k])
                               << ": verifier rejected: "
                               << v.summary();
                            fail(os.str());
                            break;
                        }
                    }
                    if (!report.ok)
                        break;
                }
            }
            ++report.blocksChecked;
        }
    } catch (const std::exception &e) {
        fail(std::string("exception escaped the pipeline: ") + e.what());
    }
    return report;
}

OracleReport
checkSource(const std::string &source, const MachineModel &machine,
            const OracleOptions &opts)
{
    DiagnosticEngine::Options dopts;
    dopts.maxErrors = 0; // unlimited: corrupted inputs are the point
    DiagnosticEngine diags(dopts);
    Program prog = parseAssembly(source, diags, "<fuzz>");
    return checkProgram(prog, machine, opts);
}

std::string
minimizeLines(const std::string &source,
              const std::function<bool(const std::string &)> &stillFails,
              int maxChecks, double maxSeconds)
{
    std::vector<std::string> lines;
    {
        std::istringstream in(source);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }

    auto join = [](const std::vector<std::string> &ls) {
        std::string out;
        for (const std::string &l : ls) {
            out += l;
            out += '\n';
        }
        return out;
    };

    const auto start = std::chrono::steady_clock::now();
    auto expired = [&] {
        if (maxSeconds <= 0.0)
            return false;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() >= maxSeconds;
    };

    int checks = 0;
    auto failsOn = [&](const std::vector<std::string> &ls) {
        ++checks;
        obs::ev::fuzzReducerSteps.inc();
        return stillFails(join(ls));
    };

    // ddmin-lite: drop windows of shrinking size while the predicate
    // keeps holding.  Both the check budget and the wall-clock cap
    // stop the search, never the result: `lines` always holds the
    // smallest reproducer confirmed so far.
    for (std::size_t chunk = std::max<std::size_t>(lines.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool any = true;
        while (any && checks < maxChecks && !expired()) {
            any = false;
            for (std::size_t i = 0;
                 i + 1 <= lines.size() && lines.size() > 1 &&
                 checks < maxChecks && !expired();) {
                std::vector<std::string> candidate;
                candidate.reserve(lines.size());
                for (std::size_t j = 0; j < lines.size(); ++j)
                    if (j < i || j >= i + chunk)
                        candidate.push_back(lines[j]);
                // Never try the empty candidate: an empty source is
                // vacuously ok, and the reproducer must stay runnable.
                if (!candidate.empty() &&
                    candidate.size() < lines.size() &&
                    failsOn(candidate)) {
                    lines = std::move(candidate);
                    any = true;
                } else {
                    ++i;
                }
            }
        }
        if (chunk == 1)
            break;
    }
    return join(lines);
}

std::string
minimizeOperands(const std::string &source,
                 const std::function<bool(const std::string &)> &stillFails,
                 int maxChecks, double maxSeconds)
{
    std::vector<std::string> lines;
    {
        std::istringstream in(source);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }

    auto join = [](const std::vector<std::string> &ls) {
        std::string out;
        for (const std::string &l : ls) {
            out += l;
            out += '\n';
        }
        return out;
    };

    int checks = 0;
    auto failsOn = [&](const std::vector<std::string> &ls) {
        ++checks;
        obs::ev::fuzzReducerSteps.inc();
        return stillFails(join(ls));
    };

    const auto start = std::chrono::steady_clock::now();
    auto expired = [&] {
        if (maxSeconds <= 0.0)
            return false;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() >= maxSeconds;
    };

    // Truncate one line at its last comma (dropping the trailing
    // operand), to a per-line fixpoint, sweeping until a whole pass
    // changes nothing.
    bool any = true;
    while (any && checks < maxChecks && !expired()) {
        any = false;
        for (std::size_t i = 0; i < lines.size() && checks < maxChecks;
             ++i) {
            for (;;) {
                std::size_t comma = lines[i].rfind(',');
                if (comma == std::string::npos ||
                    checks >= maxChecks || expired())
                    break;
                std::string truncated = lines[i].substr(0, comma);
                while (!truncated.empty() &&
                       (truncated.back() == ' ' ||
                        truncated.back() == '\t'))
                    truncated.pop_back();
                std::vector<std::string> candidate = lines;
                candidate[i] = truncated;
                if (failsOn(candidate)) {
                    lines[i] = std::move(truncated);
                    any = true;
                } else {
                    break;
                }
            }
        }
    }
    return join(lines);
}

std::string
minimizeSource(const std::string &source, const MachineModel &machine,
               const OracleOptions &opts, double maxSeconds)
{
    auto fails = [&](const std::string &candidate) {
        return !checkSource(candidate, machine, opts).ok;
    };
    if (maxSeconds <= 0.0)
        return minimizeOperands(minimizeLines(source, fails), fails);

    // One budget across both passes: whatever the line pass leaves
    // unspent goes to the operand pass.
    const auto start = std::chrono::steady_clock::now();
    std::string reduced = minimizeLines(source, fails, 512, maxSeconds);
    const double spent =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double left = maxSeconds - spent;
    if (left <= 0.0)
        return reduced;
    return minimizeOperands(reduced, fails, 256, left);
}

} // namespace sched91::fuzz
