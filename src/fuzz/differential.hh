/**
 * @file
 * Differential correctness oracle (docs/FUZZING.md).
 *
 * The paper's central claim is that its table-driven DAG construction
 * computes the *same dependence information* as the classical n**2
 * comparison while doing asymptotically less work.  The oracle turns
 * that claim into an executable property over arbitrary programs:
 *
 *  1. the three builders (n**2 forward, table forward, table
 *     backward) must agree on the transitive *closure* of the
 *     dependence relation with longest accumulated delays — the raw
 *     arc sets legitimately differ (the n**2 builder keeps transitive
 *     arcs the table builders never insert), but the closure, and
 *     therefore the transitive reduction derived from it, must match;
 *  2. the path-class static heuristics (EST/LST, path and delay
 *     heights, slack, descendant counts) must agree node-for-node
 *     across builders and across both pass implementations;
 *  3. every registered scheduling algorithm, run over every builder's
 *     DAG, must emit a schedule the independent verifier accepts.
 *
 * checkSource() parses leniently first, so corrupted inputs exercise
 * diagnostics and the surviving instructions still get checked.
 * minimizeLines() is a delta-debugging reducer for shrinking a
 * failing source to a near-minimal reproducer.
 */

#ifndef SCHED91_FUZZ_DIFFERENTIAL_HH
#define SCHED91_FUZZ_DIFFERENTIAL_HH

#include <functional>
#include <string>

#include "dag/builder.hh"
#include "ir/program.hh"
#include "machine/machine_model.hh"

namespace sched91::fuzz
{

/** What the oracle checks. */
struct OracleOptions
{
    AliasPolicy memPolicy = AliasPolicy::BaseOffset;

    /** Run every algorithm x builder schedule through the verifier. */
    bool checkSchedulers = true;

    /** Compare path-class heuristics across builders and PassImpls. */
    bool checkHeuristics = true;

    /**
     * Check alias-policy refinement: along the chain
     * SerializeAll -> BaseOffset -> StorageClassed each policy only
     * *removes* memory dependences, so the coarser policy's transitive
     * closure must contain the finer one's — every connected pair
     * stays connected, with at least as large an accumulated delay.
     * A violation means a policy invented a dependence (or dropped a
     * delay) instead of merely refining.
     */
    bool checkAliasRefinement = true;
};

/** Oracle outcome: ok == all properties held on all blocks. */
struct OracleReport
{
    bool ok = true;

    /** First property violation, human-readable; empty when ok. */
    std::string failure;

    std::size_t blocksChecked = 0;
    std::size_t schedulesChecked = 0;
};

/**
 * Check the differential properties over every basic block of
 * @p prog.  Mutates the program only by memory-generation stamping.
 * Never throws: an exception escaping any stage is itself an oracle
 * failure and is reported in OracleReport::failure.
 */
OracleReport checkProgram(Program &prog, const MachineModel &machine,
                          const OracleOptions &opts = {});

/**
 * Parse @p source leniently (unlimited diagnostics, malformed lines
 * skipped) and run checkProgram on whatever survived.
 */
OracleReport checkSource(const std::string &source,
                         const MachineModel &machine,
                         const OracleOptions &opts = {});

/**
 * Delta-debugging line reducer: repeatedly drop line windows of
 * shrinking size while @p stillFails keeps returning true, bounded by
 * @p maxChecks predicate evaluations.  Returns the reduced source.
 * Counts each predicate call in `fuzz.reducer_steps`.
 *
 * @p maxSeconds > 0 adds a wall-clock cap measured from entry: once
 * it expires the reducer stops trying candidates and returns the best
 * reduction found so far (the current survivor is always a valid
 * reproducer — candidates are only adopted when they still fail).
 */
std::string
minimizeLines(const std::string &source,
              const std::function<bool(const std::string &)> &stillFails,
              int maxChecks = 512, double maxSeconds = 0.0);

/**
 * Within-line operand reducer: for each surviving line, repeatedly
 * drop the last comma-separated operand while @p stillFails keeps
 * returning true, to a fixpoint or @p maxChecks predicate calls.
 * Run after minimizeLines() — whole-line removal shrinks much faster;
 * this pass then trims the lines that must stay.  Counts predicate
 * calls in `fuzz.reducer_steps`.  @p maxSeconds as in minimizeLines.
 */
std::string minimizeOperands(
    const std::string &source,
    const std::function<bool(const std::string &)> &stillFails,
    int maxChecks = 256, double maxSeconds = 0.0);

/**
 * Reducer preconfigured with the oracle as predicate: shrink
 * @p source while it still fails checkSource() — whole lines first,
 * then trailing operands within the surviving lines.  @p maxSeconds
 * > 0 caps total wall-clock across both passes, returning the best
 * reduction found when it expires.
 */
std::string minimizeSource(const std::string &source,
                           const MachineModel &machine,
                           const OracleOptions &opts = {},
                           double maxSeconds = 0.0);

} // namespace sched91::fuzz

#endif // SCHED91_FUZZ_DIFFERENTIAL_HH
