/**
 * @file
 * Standalone driver for the fuzz targets when the toolchain has no
 * -fsanitize=fuzzer runtime (the stock GCC container).  Implements
 * enough of the libFuzzer command line for tools/run_fuzz.sh to pass
 * the same flags in both modes:
 *
 *   fuzz_target [options] [seed-file-or-dir ...]
 *     -max_total_time=N   keep mutating the seed corpus for N seconds
 *     -runs=N             at most N executions (default unbounded)
 *     (other -flags are accepted and ignored)
 *
 * With no time budget it replays the seeds once and exits — the
 * regression-replay mode CI uses for crash corpora.  Mutations are
 * deterministic (seeded splitmix64), so a failure found by the driver
 * reproduces by rerunning the same command.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace
{

namespace fs = std::filesystem;

std::vector<std::uint8_t>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

/** splitmix64; local so the driver has no library dependencies. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** One byte-level mutation: flip, overwrite, insert, or erase. */
void
mutate(std::vector<std::uint8_t> &data, std::uint64_t &state)
{
    switch (nextRand(state) % 4) {
    case 0:
        if (!data.empty())
            data[nextRand(state) % data.size()] ^=
                static_cast<std::uint8_t>(1u << (nextRand(state) % 8));
        break;
    case 1:
        if (!data.empty())
            data[nextRand(state) % data.size()] =
                static_cast<std::uint8_t>(nextRand(state));
        break;
    case 2:
        data.insert(data.begin() +
                        static_cast<std::ptrdiff_t>(
                            nextRand(state) % (data.size() + 1)),
                    static_cast<std::uint8_t>(nextRand(state)));
        break;
    default:
        if (!data.empty())
            data.erase(data.begin() +
                       static_cast<std::ptrdiff_t>(nextRand(state) %
                                                   data.size()));
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    long max_seconds = 0;
    long max_runs = -1;
    std::vector<fs::path> seed_paths;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "-max_total_time=", 16) == 0)
            max_seconds = std::atol(arg + 16);
        else if (std::strncmp(arg, "-runs=", 6) == 0)
            max_runs = std::atol(arg + 6);
        else if (arg[0] == '-')
            continue; // unknown libFuzzer flag: ignore
        else
            seed_paths.emplace_back(arg);
    }

    // Collect the seed corpus (files listed directly plus directory
    // contents, sorted for determinism).
    std::vector<std::vector<std::uint8_t>> corpus;
    std::vector<fs::path> files;
    for (const fs::path &p : seed_paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto &entry : fs::directory_iterator(p, ec))
                if (entry.is_regular_file())
                    files.push_back(entry.path());
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files)
        corpus.push_back(readFile(f));
    if (corpus.empty())
        corpus.push_back({}); // always at least the empty input

    long runs = 0;
    // Pass 1: replay every seed verbatim.
    for (const auto &seed : corpus) {
        LLVMFuzzerTestOneInput(seed.data(), seed.size());
        ++runs;
    }

    // Pass 2: deterministic mutation loop under the time budget.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(max_seconds);
    std::uint64_t state = 0x5eed'0000'cafe'f00dULL;
    while (max_seconds > 0 &&
           std::chrono::steady_clock::now() < deadline &&
           (max_runs < 0 || runs < max_runs)) {
        std::vector<std::uint8_t> input =
            corpus[nextRand(state) % corpus.size()];
        std::uint64_t stacked = 1 + nextRand(state) % 8;
        for (std::uint64_t m = 0; m < stacked; ++m)
            mutate(input, state);
        LLVMFuzzerTestOneInput(input.data(), input.size());
        ++runs;
    }

    std::printf("driver: %ld runs, %zu seed inputs, clean exit\n", runs,
                corpus.size());
    return 0;
}
