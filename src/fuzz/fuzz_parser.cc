/**
 * @file
 * libFuzzer target: raw bytes -> lenient assembly parser.
 *
 * The property under test: the parser never crashes, never corrupts
 * memory, and the only exception it is allowed to surface in lenient
 * mode is the documented error-cap FatalError.  Seed with
 * tests/corpus/malformed/.  Builds either with -fsanitize=fuzzer or
 * against fuzz/driver_main.cc (see src/fuzz/CMakeLists.txt and
 * docs/FUZZING.md).
 */

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "ir/parser.hh"
#include "support/diagnostics.hh"
#include "support/logging.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string_view text(reinterpret_cast<const char *>(data), size);
    sched91::DiagnosticEngine diags; // lenient, default error cap
    try {
        sched91::Program prog =
            sched91::parseAssembly(text, diags, "<fuzz>");
        (void)prog;
    } catch (const sched91::FatalError &) {
        // Error-cap overflow on garbage input: documented behaviour.
    }
    return 0;
}
