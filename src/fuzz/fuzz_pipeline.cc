/**
 * @file
 * libFuzzer target: bytes -> generator parameters -> differential
 * oracle.
 *
 * The fuzzer explores the *parameter space* of the random program
 * generator rather than raw text (fuzz_parser covers that): every
 * input maps to a syntactically plausible — possibly corrupted —
 * program, which the oracle then pushes through all three DAG
 * builders, both heuristic pass implementations, and every scheduling
 * algorithm, asserting the differential properties of
 * fuzz/differential.hh.  Any violation aborts, which libFuzzer (or
 * the standalone driver) reports as a finding.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "fuzz/differential.hh"
#include "fuzz/program_gen.hh"
#include "machine/machine_model.hh"
#include "support/log.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace sched91;

    fuzz::GenParams params = fuzz::paramsFromBytes(data, size);
    // Keep a single iteration bounded: the oracle is O(blocks *
    // size**3) in the worst case (closure comparison).
    params.maxBlockSize = std::min(params.maxBlockSize, 48);
    std::string source = fuzz::generateSource(params);

    static const MachineModel machine;
    fuzz::OracleReport report = fuzz::checkSource(source, machine);
    if (!report.ok) {
        log::error("sched91 differential oracle failure: ",
                   report.failure, "\n--- generated program ---\n",
                   source);
        std::abort();
    }
    return 0;
}
