#include "fuzz/program_gen.hh"

#include <algorithm>
#include <array>
#include <string_view>
#include <vector>

#include "obs/events.hh"
#include "support/prng.hh"

namespace sched91::fuzz
{

namespace
{

// Register name pools.  The integer pool deliberately avoids %sp/%fp
// (14/30) so generated code never looks like stack traffic unless a
// memory expression asks for it, and avoids %g0 as a destination.
constexpr std::array<std::string_view, 20> kIntRegs = {
    "%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%l0", "%l1", "%l2",
    "%l3", "%l4", "%l5", "%l6", "%l7", "%i0", "%i1", "%i2", "%i3",
    "%g1", "%g2",
};

constexpr std::array<std::string_view, 16> kFpRegs = {
    "%f0", "%f1", "%f2",  "%f3",  "%f4",  "%f5",  "%f6",  "%f7",
    "%f8", "%f9", "%f10", "%f11", "%f12", "%f13", "%f14", "%f15",
};

constexpr std::array<std::string_view, 8> kAlu3 = {
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
};

constexpr std::array<std::string_view, 6> kFp3 = {
    "fadds", "fsubs", "fmuls", "fadds", "fsubs", "fdivs",
};

constexpr std::array<std::string_view, 4> kFp2 = {
    "fmovs", "fnegs", "fabss", "fsqrts",
};

constexpr std::array<std::string_view, 4> kLoads = {"ld", "ld", "ldub",
                                                    "ldsh"};
constexpr std::array<std::string_view, 4> kStores = {"st", "st", "stb",
                                                     "sth"};

constexpr std::array<std::string_view, 8> kCondBranches = {
    "be", "bne", "bg", "ble", "bge", "bl", "bgu", "bcc",
};

double
clamp01(double v)
{
    return std::clamp(v, 0.0, 1.0);
}

int
clampInt(int v, int lo, int hi)
{
    return std::clamp(v, lo, hi);
}

/** A pre-drawn pool of memory address expressions (as operand text). */
std::vector<std::string>
drawMemPool(Prng &rng, const GenParams &p)
{
    std::vector<std::string> pool;
    pool.reserve(static_cast<std::size_t>(p.memExprPool));
    for (int i = 0; i < p.memExprPool; ++i) {
        if (rng.chance(p.symbolMix)) {
            pool.push_back("[var" + std::to_string(rng.below(8)) + "]");
            continue;
        }
        std::string base(
            kIntRegs[rng.below(std::min<std::uint64_t>(4, p.intRegPool))]);
        std::string expr = "[" + base;
        switch (rng.below(3)) {
        case 0: // register + offset
            expr += " + " + std::to_string(4 * rng.below(16));
            break;
        case 1: // register + register
            expr += " + " + std::string(kIntRegs[rng.below(p.intRegPool)]);
            break;
        default: // bare register
            break;
        }
        expr += "]";
        pool.push_back(std::move(expr));
    }
    return pool;
}

/** One immediate operand, occasionally out of simm13 range. */
std::string
drawImm(Prng &rng, const GenParams &p)
{
    if (rng.chance(p.bigImmMix))
        return std::to_string(rng.range(4096, 1 << 20) *
                              (rng.chance(0.5) ? 1 : -1));
    return std::to_string(rng.range(-64, 4095));
}

/** Corrupt @p line in place with one random syntax mutation. */
void
corruptLine(Prng &rng, std::string &line)
{
    obs::ev::fuzzCorruptedLines.inc();
    switch (rng.below(8)) {
    case 0: // delete a character
        if (!line.empty())
            line.erase(rng.below(line.size()), 1);
        break;
    case 1: // duplicate a character
        if (!line.empty()) {
            std::size_t i = rng.below(line.size());
            line.insert(i, 1, line[i]);
        }
        break;
    case 2: { // mangle the mnemonic
        std::size_t sp = line.find_first_of(" \t");
        line.insert(sp == std::string::npos ? line.size() : sp, "q");
        break;
    }
    case 3: // truncate
        if (!line.empty())
            line.resize(rng.below(line.size()));
        break;
    case 4: { // bracket/comma damage
        std::size_t i = line.find_first_of("],");
        if (i != std::string::npos)
            line.erase(i, 1);
        else if (!line.empty())
            line.erase(line.size() - 1, 1);
        break;
    }
    case 5: { // invalid register
        std::size_t i = line.find('%');
        if (i != std::string::npos && i + 2 < line.size()) {
            line[i + 1] = 'q';
            line[i + 2] = '7';
        }
        break;
    }
    case 6: // extra operand
        line += ", %o0";
        break;
    default: // replace with garbage
        line = "@#$ !! " + std::to_string(rng.below(1000));
        break;
    }
}

} // namespace

GenParams
sanitizeParams(GenParams p)
{
    p.numBlocks = clampInt(p.numBlocks, 1, 16);
    p.maxBlockSize = clampInt(p.maxBlockSize, 1, 256);
    p.fpMix = clamp01(p.fpMix);
    p.memMix = std::clamp(p.memMix, 0.0, 0.9);
    p.storeBias = clamp01(p.storeBias);
    p.branchProb = clamp01(p.branchProb);
    p.intRegPool =
        clampInt(p.intRegPool, 1, static_cast<int>(kIntRegs.size()));
    p.fpRegPool =
        clampInt(p.fpRegPool, 1, static_cast<int>(kFpRegs.size()));
    p.memExprPool = clampInt(p.memExprPool, 1, 32);
    p.symbolMix = clamp01(p.symbolMix);
    p.bigImmMix = clamp01(p.bigImmMix);
    p.corruption = clamp01(p.corruption);
    return p;
}

GenParams
paramsFromBytes(const std::uint8_t *data, std::size_t size)
{
    GenParams p;
    auto byte = [&](std::size_t i) -> std::uint8_t {
        return i < size ? data[i] : 0;
    };
    // Bytes 0..7: seed (little-endian, zero padded).
    std::uint64_t seed = 0;
    for (std::size_t i = 0; i < 8 && i < size; ++i)
        seed |= static_cast<std::uint64_t>(data[i]) << (8 * i);
    p.seed = seed ^ 0x5eed'5eed'5eed'5eedULL;
    if (size > 8)
        p.numBlocks = 1 + byte(8) % 4;
    if (size > 9)
        p.maxBlockSize = 1 + byte(9) % 48;
    if (size > 10)
        p.fpMix = (byte(10) % 101) / 100.0 * 0.6;
    if (size > 11)
        p.memMix = (byte(11) % 101) / 100.0 * 0.6;
    if (size > 12)
        p.branchProb = (byte(12) % 101) / 100.0;
    if (size > 13)
        p.intRegPool = 1 + byte(13) % 16;
    if (size > 14)
        p.fpRegPool = 1 + byte(14) % 12;
    if (size > 15)
        p.memExprPool = 1 + byte(15) % 12;
    if (size > 16)
        p.symbolMix = (byte(16) % 101) / 100.0 * 0.5;
    if (size > 17)
        p.storeBias = 0.2 + (byte(17) % 61) / 100.0;
    if (size > 18)
        p.corruption = (byte(18) % 101) / 100.0 * 0.3;
    if (size > 19)
        p.bigImmMix = (byte(19) % 101) / 100.0 * 0.2;
    if (size > 20)
        p.allowCalls = (byte(20) & 1) != 0;
    return sanitizeParams(p);
}

std::string
generateSource(const GenParams &params)
{
    const GenParams p = sanitizeParams(params);
    Prng rng(p.seed);
    obs::ev::fuzzProgramsGenerated.inc();

    auto intReg = [&] { return kIntRegs[rng.below(p.intRegPool)]; };
    auto fpReg = [&] { return kFpRegs[rng.below(p.fpRegPool)]; };

    std::vector<std::string> mem_pool = drawMemPool(rng, p);
    std::vector<std::string> lines;

    for (int b = 0; b < p.numBlocks; ++b) {
        lines.push_back("L" + std::to_string(b) + ":");
        int n = static_cast<int>(rng.below(p.maxBlockSize)) + 1;
        for (int i = 0; i < n; ++i) {
            std::string line = "    ";
            double r = rng.uniform();
            if (r < p.memMix) {
                const std::string &addr =
                    mem_pool[rng.below(mem_pool.size())];
                if (rng.chance(p.storeBias)) {
                    line += std::string(kStores[rng.below(4)]) + " " +
                            std::string(intReg()) + ", " + addr;
                } else {
                    line += std::string(kLoads[rng.below(4)]) + " " +
                            addr + ", " + std::string(intReg());
                }
            } else if (r < p.memMix + (1.0 - p.memMix) * p.fpMix) {
                if (rng.chance(0.25)) {
                    line += std::string(kFp2[rng.below(4)]) + " " +
                            std::string(fpReg()) + ", " +
                            std::string(fpReg());
                } else {
                    line += std::string(kFp3[rng.below(6)]) + " " +
                            std::string(fpReg()) + ", " +
                            std::string(fpReg()) + ", " +
                            std::string(fpReg());
                }
            } else if (rng.chance(0.08)) {
                line += "sethi %hi(var" +
                        std::to_string(rng.below(8)) + "), " +
                        std::string(intReg());
            } else if (rng.chance(0.06)) {
                line += "mov " + drawImm(rng, p) + ", " +
                        std::string(intReg());
            } else {
                line += std::string(kAlu3[rng.below(8)]) + " " +
                        std::string(intReg()) + ", ";
                if (rng.chance(0.4))
                    line += drawImm(rng, p);
                else
                    line += std::string(intReg());
                line += ", " + std::string(intReg());
            }
            lines.push_back(std::move(line));
        }

        // Block tail: conditional branch, call, or fallthrough.
        if (rng.chance(p.branchProb)) {
            std::string cmp = "    cmp " + std::string(intReg()) + ", ";
            cmp += rng.chance(0.5) ? drawImm(rng, p)
                                   : std::string(intReg());
            lines.push_back(std::move(cmp));
            lines.push_back(
                "    " + std::string(kCondBranches[rng.below(8)]) + " L" +
                std::to_string(rng.below(p.numBlocks)));
        } else if (p.allowCalls && rng.chance(0.3)) {
            lines.push_back("    call fn" + std::to_string(rng.below(4)));
        }
    }

    // Corruption is a separate post-pass over the emitted lines so the
    // clean program for a given seed is a prefix-stable function of the
    // structural knobs alone.
    if (p.corruption > 0.0) {
        for (std::string &line : lines)
            if (rng.chance(p.corruption))
                corruptLine(rng, line);
    }

    std::string out;
    for (const std::string &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace sched91::fuzz
