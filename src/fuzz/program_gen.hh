/**
 * @file
 * Seeded random SPARC program generator for the adversarial
 * correctness harness (docs/FUZZING.md).
 *
 * generateSource() emits assembly *text*, not a Program: the point is
 * to exercise the whole front half of the pipeline — lexing, operand
 * parsing, diagnostics — exactly as a user input would, and to allow
 * controlled syntax corruption that a pre-built IR could not express.
 * Every knob is clamped by sanitizeParams(), so any byte soup mapped
 * through paramsFromBytes() yields a well-defined (and deterministic)
 * program: same params -> byte-identical source on every platform.
 */

#ifndef SCHED91_FUZZ_PROGRAM_GEN_HH
#define SCHED91_FUZZ_PROGRAM_GEN_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace sched91::fuzz
{

/** Tunable shape of a generated program.  All fields are clamped by
 * sanitizeParams(); the comments give the accepted range. */
struct GenParams
{
    /** PRNG seed; the sole source of randomness. */
    std::uint64_t seed = 1;

    /** Basic blocks to emit. [1, 16] */
    int numBlocks = 2;

    /** Upper bound on instructions per block (the actual size is
     * drawn per block in [1, maxBlockSize]). [1, 256] */
    int maxBlockSize = 24;

    /** Fraction of non-memory slots that are floating point. [0, 1] */
    double fpMix = 0.25;

    /** Fraction of slots that are loads/stores. [0, 0.9] */
    double memMix = 0.35;

    /** Of the memory slots, the fraction that are stores (stores are
     * what creates WAR/WAW memory arcs). [0, 1] */
    double storeBias = 0.4;

    /** Probability a block ends in cmp + conditional branch. [0, 1] */
    double branchProb = 0.6;

    /** Integer registers drawn from (smaller = more pressure and
     * denser register dependences). [1, 20] */
    int intRegPool = 8;

    /** FP registers drawn from. [1, 16] */
    int fpRegPool = 8;

    /** Distinct memory address expressions: a small pool forces
     * aliasing, a large one spreads references out. [1, 32] */
    int memExprPool = 4;

    /** Fraction of memory expressions that are symbol-based rather
     * than register-based. [0, 1] */
    double symbolMix = 0.25;

    /** Probability an immediate operand lands outside the signed
     * 13-bit range (exercises the parser warning channel). [0, 1] */
    double bigImmMix = 0.0;

    /** Per-line probability of a syntax-corruption mutation (char
     * deletion/duplication, bogus mnemonic, truncation, bracket
     * damage, invalid register, extra operand, garbage). [0, 1] */
    double corruption = 0.0;

    /** Allow call instructions in block tails. */
    bool allowCalls = true;
};

/** Clamp every field into its documented range. */
GenParams sanitizeParams(GenParams p);

/**
 * Derive (sanitized) parameters from a raw byte string — the
 * fuzz_pipeline entry point's mapping from fuzzer input to program
 * shape.  Missing bytes fall back to field defaults; the mapping is a
 * pure function of the bytes.
 */
GenParams paramsFromBytes(const std::uint8_t *data, std::size_t size);

/**
 * Generate one program as assembly text.  Deterministic in @p params
 * (which is sanitized internally).  Counts
 * `fuzz.programs_generated` and `fuzz.corrupted_lines`.
 */
std::string generateSource(const GenParams &params);

} // namespace sched91::fuzz

#endif // SCHED91_FUZZ_PROGRAM_GEN_HH
