#include "heuristics/dynamic.hh"

#include <algorithm>

#include "obs/events.hh"

namespace sched91
{

void
initDynamicState(Dag &dag)
{
    for (auto &node : dag.nodes()) {
        NodeAnnotations &a = node.ann;
        a.earliestExecTime = a.inheritedEet;
        a.unscheduledParents = node.numParents;
        a.unscheduledChildren = node.numChildren;
        a.priorityBoost = 0.0;
        a.scheduled = false;
    }
}

int
numSingleParentChildren(const Dag &dag, std::uint32_t n)
{
    int count = 0;
    for (std::uint32_t arc_id : dag.node(n).succArcs)
        if (dag.node(dag.arc(arc_id).to).ann.unscheduledParents == 1)
            ++count;
    return count;
}

int
sumDelaysToSingleParentChildren(const Dag &dag, std::uint32_t n)
{
    int sum = 0;
    for (std::uint32_t arc_id : dag.node(n).succArcs) {
        const Arc &arc = dag.arc(arc_id);
        if (dag.node(arc.to).ann.unscheduledParents == 1)
            sum += arc.delay;
    }
    return sum;
}

int
numUncoveredChildren(const Dag &dag, std::uint32_t n)
{
    int count = 0;
    for (std::uint32_t arc_id : dag.node(n).succArcs) {
        const Arc &arc = dag.arc(arc_id);
        if (arc.delay == 1 &&
            dag.node(arc.to).ann.unscheduledParents == 1) {
            ++count;
        }
    }
    return count;
}

bool
interlocksWithPrevious(const Dag &dag, std::uint32_t candidate,
                       std::int64_t last_scheduled)
{
    if (last_scheduled < 0)
        return false;
    for (std::uint32_t arc_id : dag.node(candidate).predArcs) {
        const Arc &arc = dag.arc(arc_id);
        if (arc.from == static_cast<std::uint32_t>(last_scheduled) &&
            arc.delay > 1) {
            return true;
        }
    }
    return false;
}

void
onScheduledForward(Dag &dag, std::uint32_t n, int issue_time)
{
    DagNode &node = dag.node(n);
    node.ann.scheduled = true;
    obs::ev::schedDepUpdates.inc(node.succArcs.size());
    for (std::uint32_t arc_id : node.succArcs) {
        const Arc &arc = dag.arc(arc_id);
        NodeAnnotations &c = dag.node(arc.to).ann;
        --c.unscheduledParents;
        c.earliestExecTime =
            std::max(c.earliestExecTime, issue_time + arc.delay);
    }
}

void
onScheduledBackward(Dag &dag, std::uint32_t n, bool birthing,
                    double birthing_boost)
{
    DagNode &node = dag.node(n);
    node.ann.scheduled = true;
    obs::ev::schedDepUpdates.inc(node.predArcs.size());
    for (std::uint32_t arc_id : node.predArcs) {
        const Arc &arc = dag.arc(arc_id);
        NodeAnnotations &p = dag.node(arc.from).ann;
        --p.unscheduledChildren;
        if (birthing && arc.kind == DepKind::RAW)
            p.priorityBoost += birthing_boost;
    }
}

} // namespace sched91
