#include "heuristics/dynamic.hh"

#include <algorithm>

#include "obs/events.hh"

namespace sched91
{

void
initDynamicState(Dag &dag)
{
    NodeAnnotations &a = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        a.earliestExecTime[i] = a.inheritedEet[i];
        a.unscheduledParents[i] = dag.numParents(i);
        a.unscheduledChildren[i] = dag.numChildren(i);
        a.priorityBoost[i] = 0.0;
        a.scheduled[i] = 0;
    }
}

int
numSingleParentChildren(const Dag &dag, std::uint32_t n)
{
    const int *unsched_parents = dag.ann().unscheduledParents.data();
    int count = 0;
    for (std::uint32_t c : dag.succTo(n))
        count += unsched_parents[c] == 1;
    return count;
}

int
sumDelaysToSingleParentChildren(const Dag &dag, std::uint32_t n)
{
    const int *unsched_parents = dag.ann().unscheduledParents.data();
    std::span<const std::uint32_t> to = dag.succTo(n);
    std::span<const std::int32_t> delay = dag.succDelay(n);
    int sum = 0;
    for (std::size_t k = 0; k < to.size(); ++k)
        if (unsched_parents[to[k]] == 1)
            sum += delay[k];
    return sum;
}

int
numUncoveredChildren(const Dag &dag, std::uint32_t n)
{
    const int *unsched_parents = dag.ann().unscheduledParents.data();
    std::span<const std::uint32_t> to = dag.succTo(n);
    std::span<const std::int32_t> delay = dag.succDelay(n);
    int count = 0;
    for (std::size_t k = 0; k < to.size(); ++k)
        count += delay[k] == 1 && unsched_parents[to[k]] == 1;
    return count;
}

bool
interlocksWithPrevious(const Dag &dag, std::uint32_t candidate,
                       std::int64_t last_scheduled)
{
    if (last_scheduled < 0)
        return false;
    std::span<const std::uint32_t> from = dag.predFrom(candidate);
    std::span<const std::int32_t> delay = dag.predDelay(candidate);
    for (std::size_t k = 0; k < from.size(); ++k) {
        if (from[k] == static_cast<std::uint32_t>(last_scheduled) &&
            delay[k] > 1) {
            return true;
        }
    }
    return false;
}

void
onScheduledForward(Dag &dag, std::uint32_t n, int issue_time)
{
    NodeAnnotations &a = dag.ann();
    a.scheduled[n] = 1;
    std::span<const std::uint32_t> to = dag.succTo(n);
    std::span<const std::int32_t> delay = dag.succDelay(n);
    obs::ev::schedDepUpdates.inc(to.size());
    int *unsched_parents = a.unscheduledParents.data();
    int *eet = a.earliestExecTime.data();
    for (std::size_t k = 0; k < to.size(); ++k) {
        std::uint32_t c = to[k];
        --unsched_parents[c];
        eet[c] = std::max(eet[c], issue_time + delay[k]);
    }
}

void
onScheduledBackward(Dag &dag, std::uint32_t n, bool birthing,
                    double birthing_boost)
{
    NodeAnnotations &a = dag.ann();
    a.scheduled[n] = 1;
    std::span<const std::uint32_t> from = dag.predFrom(n);
    std::span<const DepKind> kind = dag.predKind(n);
    obs::ev::schedDepUpdates.inc(from.size());
    int *unsched_children = a.unscheduledChildren.data();
    double *boost = a.priorityBoost.data();
    for (std::size_t k = 0; k < from.size(); ++k) {
        std::uint32_t p = from[k];
        --unsched_children[p];
        if (birthing && kind[k] == DepKind::RAW)
            boost[p] += birthing_boost;
    }
}

} // namespace sched91
