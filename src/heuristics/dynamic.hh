/**
 * @file
 * Dynamic ("v") heuristics: values that "can only be calculated by
 * node visitation during scheduling" (Table 1 legend).
 *
 * The per-node scheduling state (unscheduled parent/child counters,
 * earliest execution time, Tiemann priority boost) lives in
 * NodeAnnotations; this module provides its initialization, the update
 * rules applied when a node is scheduled, and the candidate-time
 * evaluations (#single-parent children, #uncovered children,
 * interlock-with-previous, ...).
 */

#ifndef SCHED91_HEURISTICS_DYNAMIC_HH
#define SCHED91_HEURISTICS_DYNAMIC_HH

#include <cstdint>

#include "dag/dag.hh"
#include "machine/machine_model.hh"

namespace sched91
{

/** Reset all dynamic scheduling state of a DAG. */
void initDynamicState(Dag &dag);

/**
 * #single-parent children: children whose only *unscheduled* parent is
 * the candidate (paper Section 3 pseudocode).
 */
int numSingleParentChildren(const Dag &dag, std::uint32_t n);

/** Sum of arc delays to the single-parent children. */
int sumDelaysToSingleParentChildren(const Dag &dag, std::uint32_t n);

/**
 * #uncovered children: children that would join the candidate list
 * immediately if @p n were scheduled — single unscheduled parent *and*
 * an arc delay of one (Warren [16]).
 */
int numUncoveredChildren(const Dag &dag, std::uint32_t n);

/**
 * Interlock-with-previous predicate: true when @p candidate has a
 * dependence arc of delay > 1 from @p last_scheduled, i.e. it could
 * not execute in the cycle after it (Gibbons & Muchnick).  False when
 * nothing has been scheduled yet (@p last_scheduled < 0).
 */
bool interlocksWithPrevious(const Dag &dag, std::uint32_t candidate,
                            std::int64_t last_scheduled);

/**
 * Forward-scheduling update: mark @p n scheduled at @p issue_time,
 * decrement children's unscheduled-parent counters, and push their
 * earliest execution times to max(previous, issue_time + arc delay).
 */
void onScheduledForward(Dag &dag, std::uint32_t n, int issue_time);

/**
 * Backward-scheduling update: mark @p n scheduled and decrement the
 * parents' unscheduled-children counters.  When @p birthing is set,
 * each RAW parent's priority is adjusted upward (Tiemann's birthing-
 * instruction heuristic: shorten the live range by scheduling the
 * producer next).
 */
void onScheduledBackward(Dag &dag, std::uint32_t n, bool birthing,
                         double birthing_boost = 1.0);

} // namespace sched91

#endif // SCHED91_HEURISTICS_DYNAMIC_HH
