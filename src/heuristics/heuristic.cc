#include "heuristics/heuristic.hh"

#include <array>

#include "support/logging.hh"

namespace sched91
{

namespace
{

using H = Heuristic;
using C = HeuristicCategory;
using P = CalcPass;

// Table 1, row by row.  The boolean columns are: timing-based, pass,
// transitive-arc sensitivity ("**").
constexpr std::array<HeuristicInfo, kNumHeuristics> kTable = {{
    {H::InterlockWithPrevious, "interlock with previous inst.",
     C::StallBehavior, false, P::Visitation, false},
    {H::EarliestExecutionTime, "earliest execution time",
     C::StallBehavior, true, P::Visitation, true},
    {H::InterlockWithChild, "interlock with child",
     C::StallBehavior, false, P::AddArc, true},
    {H::ExecutionTime, "execution time",
     C::StallBehavior, true, P::AddArc, false},

    {H::AlternateType, "alternate type",
     C::InstructionClass, false, P::Visitation, false},
    {H::FpuBusyTimes, "busy times for flt. pt. function units",
     C::InstructionClass, true, P::Visitation, false},

    {H::MaxPathToLeaf, "max path length to a leaf",
     C::CriticalPath, false, P::Backward, false},
    {H::MaxDelayToLeaf, "max total delay to a leaf",
     C::CriticalPath, true, P::Backward, false},
    {H::MaxPathFromRoot, "max path length from root",
     C::CriticalPath, false, P::Forward, false},
    {H::MaxDelayFromRoot, "max total delay from root",
     C::CriticalPath, true, P::Forward, false},
    {H::EarliestStartTime, "earliest start time (EST)",
     C::CriticalPath, true, P::Forward, true},
    {H::LatestStartTime, "latest start time (LST)",
     C::CriticalPath, true, P::Backward, true},
    {H::Slack, "slack (= LST-EST)",
     C::CriticalPath, true, P::ForwardBackward, true},

    {H::NumChildren, "#children",
     C::Uncovering, false, P::AddArc, true},
    {H::DelaysToChildren, "phi delays to children",
     C::Uncovering, true, P::AddArc, true},
    {H::NumSingleParentChildren, "#single-parent children",
     C::Uncovering, false, P::Visitation, false},
    {H::SumDelaysToSingleParentChildren,
     "sum of delays to single-parent children",
     C::Uncovering, true, P::Visitation, false},
    {H::NumUncoveredChildren, "#uncovered children",
     C::Uncovering, false, P::Visitation, false},

    {H::NumParents, "#parents",
     C::Structural, false, P::AddArc, true},
    {H::DelaysFromParents, "phi delays from parents",
     C::Structural, true, P::AddArc, true},
    {H::NumDescendants, "#descendants",
     C::Structural, false, P::Backward, false},
    {H::SumExecTimesOfDescendants,
     "sum of execution times of descendants",
     C::Structural, true, P::Backward, false},

    {H::RegistersBorn, "#registers born",
     C::RegisterUsage, false, P::AddArc, false},
    {H::RegistersKilled, "#registers killed",
     C::RegisterUsage, false, P::AddArc, false},
    {H::Liveness, "liveness",
     C::RegisterUsage, false, P::AddArc, false},
    {H::BirthingInstruction, "birthing instruction",
     C::RegisterUsage, false, P::AddArc, false},
}};

} // namespace

const HeuristicInfo &
heuristicInfo(Heuristic h)
{
    const auto &info = kTable[static_cast<std::size_t>(h)];
    SCHED91_ASSERT(info.heuristic == h, "table order mismatch");
    return info;
}

std::span<const HeuristicInfo>
allHeuristics()
{
    return kTable;
}

std::string_view
heuristicCategoryName(HeuristicCategory cat)
{
    switch (cat) {
      case HeuristicCategory::StallBehavior: return "stall behavior";
      case HeuristicCategory::InstructionClass: return "inst. class";
      case HeuristicCategory::CriticalPath: return "critical path";
      case HeuristicCategory::Uncovering: return "uncovering";
      case HeuristicCategory::Structural: return "structural";
      case HeuristicCategory::RegisterUsage: return "register usage";
    }
    return "?";
}

std::string_view
calcPassName(CalcPass pass)
{
    switch (pass) {
      case CalcPass::AddArc: return "a";
      case CalcPass::Forward: return "f";
      case CalcPass::Backward: return "b";
      case CalcPass::ForwardBackward: return "f+b";
      case CalcPass::Visitation: return "v";
    }
    return "?";
}

long long
staticValue(const Dag &dag, std::uint32_t n, Heuristic h)
{
    const NodeAnnotations &a = dag.ann();
    switch (h) {
      case Heuristic::InterlockWithPrevious: return 0;
      case Heuristic::EarliestExecutionTime: return a.earliestExecTime[n];
      case Heuristic::InterlockWithChild: return a.interlockWithChild[n];
      case Heuristic::ExecutionTime: return a.execTime[n];
      case Heuristic::AlternateType: return a.altType[n];
      case Heuristic::FpuBusyTimes: return 0;
      case Heuristic::MaxPathToLeaf: return a.maxPathToLeaf[n];
      case Heuristic::MaxDelayToLeaf: return a.maxDelayToLeaf[n];
      case Heuristic::MaxPathFromRoot: return a.maxPathFromRoot[n];
      case Heuristic::MaxDelayFromRoot: return a.maxDelayFromRoot[n];
      case Heuristic::EarliestStartTime: return a.earliestStart[n];
      case Heuristic::LatestStartTime: return a.latestStart[n];
      case Heuristic::Slack: return a.slack[n];
      case Heuristic::NumChildren: return dag.numChildren(n);
      case Heuristic::DelaysToChildren: return a.sumDelaysToChildren[n];
      case Heuristic::NumSingleParentChildren: return 0;
      case Heuristic::SumDelaysToSingleParentChildren: return 0;
      case Heuristic::NumUncoveredChildren: return 0;
      case Heuristic::NumParents: return dag.numParents(n);
      case Heuristic::DelaysFromParents: return a.sumDelaysFromParents[n];
      case Heuristic::NumDescendants: return a.numDescendants[n];
      case Heuristic::SumExecTimesOfDescendants:
        return a.sumExecOfDescendants[n];
      case Heuristic::RegistersBorn: return a.regsBorn[n];
      case Heuristic::RegistersKilled: return a.regsKilled[n];
      case Heuristic::Liveness: return a.liveness[n];
      case Heuristic::BirthingInstruction:
        return static_cast<long long>(a.priorityBoost[n]);
      default:
        return 0;
    }
}

long long
staticValueMax(const Dag &dag, std::uint32_t n, Heuristic h)
{
    switch (h) {
      case Heuristic::DelaysToChildren:
        return dag.ann().maxDelayToChild[n];
      case Heuristic::DelaysFromParents:
        return dag.ann().maxDelayFromParents[n];
      default:
        return staticValue(dag, n, h);
    }
}

} // namespace sched91
