/**
 * @file
 * The 26 instruction scheduling heuristics surveyed in Table 1 of the
 * paper, as a programmatic metadata table: category, relationship- vs
 * timing-based, calculation pass ("a" = at add-arc/add-node time,
 * "f" = forward pass, "b" = backward pass, "f+b" = both, "v" = node
 * visitation during scheduling), and whether the table marks the
 * heuristic's calculation as affected by transitive arcs ("**").
 */

#ifndef SCHED91_HEURISTICS_HEURISTIC_HH
#define SCHED91_HEURISTICS_HEURISTIC_HH

#include <cstdint>
#include <span>
#include <string_view>

#include "dag/dag.hh"

namespace sched91
{

/** All heuristics of Table 1, in table order. */
enum class Heuristic : std::uint8_t {
    // stall behavior
    InterlockWithPrevious,
    EarliestExecutionTime,
    InterlockWithChild,
    ExecutionTime,
    // instruction class
    AlternateType,
    FpuBusyTimes,
    // critical path
    MaxPathToLeaf,
    MaxDelayToLeaf,
    MaxPathFromRoot,
    MaxDelayFromRoot,
    EarliestStartTime,
    LatestStartTime,
    Slack,
    // uncovering
    NumChildren,
    DelaysToChildren,            ///< phi(sum or max) delays to children
    NumSingleParentChildren,
    SumDelaysToSingleParentChildren,
    NumUncoveredChildren,
    // structural
    NumParents,
    DelaysFromParents,           ///< phi(sum or max) delays from parents
    NumDescendants,
    SumExecTimesOfDescendants,
    // register usage
    RegistersBorn,
    RegistersKilled,
    Liveness,
    BirthingInstruction,
    kNumHeuristics,
};

constexpr int kNumHeuristics = static_cast<int>(Heuristic::kNumHeuristics);

/** Table 1's six broad categories. */
enum class HeuristicCategory : std::uint8_t {
    StallBehavior,
    InstructionClass,
    CriticalPath,
    Uncovering,
    Structural,
    RegisterUsage,
};

/** How / when a heuristic can be calculated (Table 1 legend). */
enum class CalcPass : std::uint8_t {
    AddArc,          ///< "a": during DAG construction
    Forward,         ///< "f": forward pass over the block
    Backward,        ///< "b": backward pass over the block
    ForwardBackward, ///< "f+b": both passes (slack)
    Visitation,      ///< "v": node visitation during scheduling
};

/** Static description of one heuristic (one Table 1 row entry). */
struct HeuristicInfo
{
    Heuristic heuristic;
    const char *name;
    HeuristicCategory category;
    bool timingBased;          ///< timing column vs relationship column
    CalcPass pass;
    bool transitiveSensitive;  ///< "**" in Table 1
};

/** Metadata for one heuristic. */
const HeuristicInfo &heuristicInfo(Heuristic h);

/** The full table, in Table 1 order. */
std::span<const HeuristicInfo> allHeuristics();

/** Category display name. */
std::string_view heuristicCategoryName(HeuristicCategory cat);

/** Pass legend letter ("a", "f", "b", "f+b", "v"). */
std::string_view calcPassName(CalcPass pass);

/**
 * Value of a *static* heuristic from node @p n's annotation slots, as
 * filled by DAG construction and the static passes.  Dynamic ("v")
 * heuristics are evaluated by the scheduler (see heuristics/
 * dynamic.hh); querying one here returns the value of its
 * scheduling-state slot when meaningful (e.g. EarliestExecutionTime)
 * and 0 otherwise.
 *
 * For the phi heuristics this returns the sum form; staticValueMax()
 * returns the max form.
 */
long long staticValue(const Dag &dag, std::uint32_t n, Heuristic h);

/** phi = max variant for DelaysToChildren / DelaysFromParents. */
long long staticValueMax(const Dag &dag, std::uint32_t n, Heuristic h);

} // namespace sched91

#endif // SCHED91_HEURISTICS_HEURISTIC_HH
