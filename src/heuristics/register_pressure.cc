#include "heuristics/register_pressure.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "support/logging.hh"

namespace sched91
{

namespace
{

/** Allocatable registers only (int + FP); CCs etc. are not allocated. */
bool
allocatable(Resource r)
{
    return r.kind() == Resource::Kind::IntReg ||
           r.kind() == Resource::Kind::FpReg;
}

constexpr int kNoNode = -1;

/** One live value: its defining node (or none for live-in) and users. */
struct Chain
{
    int def = kNoNode;
    std::vector<std::uint32_t> uses;
};

/** Extract def-use chains per register slot from block program order. */
std::vector<Chain>
extractChains(const Dag &dag)
{
    std::vector<Chain> chains;
    std::array<int, Resource::kNumSlots> open{};
    open.fill(kNoNode);

    auto open_chain = [&](int slot, int def_node) {
        chains.push_back(Chain{def_node, {}});
        open[slot] = static_cast<int>(chains.size()) - 1;
    };

    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        const Instruction &inst = dag.inst(i);
        for (Resource r : inst.uses()) {
            if (!allocatable(r))
                continue;
            int slot = r.slot();
            if (open[slot] == kNoNode)
                open_chain(slot, kNoNode); // live-in value
            chains[open[slot]].uses.push_back(i);
        }
        for (Resource r : inst.defs()) {
            if (!allocatable(r))
                continue;
            open_chain(r.slot(), static_cast<int>(i));
        }
    }
    return chains;
}

} // namespace

void
computeRegisterPressure(Dag &dag)
{
    NodeAnnotations &ann = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        ann.regsBorn[i] = 0;
        ann.regsKilled[i] = 0;
    }

    for (const Chain &chain : extractChains(dag)) {
        if (chain.def != kNoNode)
            ++ann.regsBorn[static_cast<std::uint32_t>(chain.def)];
        if (!chain.uses.empty()) {
            // Program order makes the final entry the last use.
            ++ann.regsKilled[chain.uses.back()];
        }
    }

    for (std::uint32_t i = 0; i < dag.size(); ++i)
        ann.liveness[i] = ann.regsKilled[i] - ann.regsBorn[i];
}

int
maxLiveRegisters(const Dag &dag, const std::vector<std::uint32_t> &order)
{
    SCHED91_ASSERT(order.size() == dag.size(), "order/DAG size mismatch");
    std::vector<int> pos(dag.size());
    for (std::uint32_t p = 0; p < order.size(); ++p)
        pos[order[p]] = static_cast<int>(p);

    std::vector<int> delta(dag.size() + 1, 0);
    for (const Chain &chain : extractChains(dag)) {
        int start = chain.def == kNoNode ? 0 : pos[chain.def];
        int end = start;
        for (std::uint32_t u : chain.uses)
            end = std::max(end, pos[u]);
        ++delta[start];
        --delta[end + 1];
    }

    int live = 0;
    int max_live = 0;
    for (int d : delta) {
        live += d;
        max_live = std::max(max_live, live);
    }
    return max_live;
}

int
estimateSpilledValues(const Dag &dag,
                      const std::vector<std::uint32_t> &order,
                      int num_regs)
{
    SCHED91_ASSERT(order.size() == dag.size(), "order/DAG size mismatch");
    SCHED91_ASSERT(num_regs > 0);
    std::vector<int> pos(dag.size());
    for (std::uint32_t p = 0; p < order.size(); ++p)
        pos[order[p]] = static_cast<int>(p);

    struct Interval
    {
        int start;
        int end;
    };
    std::vector<Interval> intervals;
    for (const Chain &chain : extractChains(dag)) {
        int start = chain.def == kNoNode ? 0 : pos[chain.def];
        int end = start;
        for (std::uint32_t u : chain.uses)
            end = std::max(end, pos[u]);
        intervals.push_back(Interval{start, end});
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });

    // Belady-style eviction: keep the active set's ends in a heap;
    // when a new interval overflows the register file, evict the
    // furthest-ending active interval.
    std::vector<int> active_ends; // max-heap
    int spills = 0;
    for (const Interval &iv : intervals) {
        // Expire intervals that ended before this start.
        std::erase_if(active_ends,
                      [&iv](int end) { return end < iv.start; });
        std::make_heap(active_ends.begin(), active_ends.end());
        active_ends.push_back(iv.end);
        std::push_heap(active_ends.begin(), active_ends.end());
        if (static_cast<int>(active_ends.size()) > num_regs) {
            std::pop_heap(active_ends.begin(), active_ends.end());
            active_ends.pop_back(); // furthest end spills
            ++spills;
        }
    }
    return spills;
}

} // namespace sched91
