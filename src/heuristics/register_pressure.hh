/**
 * @file
 * Register-usage heuristics: #registers born, #registers killed, and
 * Warren-style liveness, for pre-register-allocation ("prepass")
 * scheduling (paper Section 3, register usage category).
 *
 * A definition of an allocatable register (integer or FP) *births* a
 * value; the last use of a value within the block (before its next
 * redefinition or the block end) *kills* it.  The liveness measure is
 * kills - births: scheduling an instruction with positive liveness
 * reduces the number of simultaneously live registers.
 */

#ifndef SCHED91_HEURISTICS_REGISTER_PRESSURE_HH
#define SCHED91_HEURISTICS_REGISTER_PRESSURE_HH

#include "dag/dag.hh"

namespace sched91
{

/**
 * Fill regsBorn / regsKilled / liveness annotations for every node of
 * @p dag from a linear scan of its block.
 */
void computeRegisterPressure(Dag &dag);

/**
 * Maximum number of simultaneously live allocatable registers when the
 * block executes in the order given by @p order (block-relative node
 * ids).  Values live at block entry or exit are counted while live
 * inside the block.  Used to evaluate prepass scheduling quality.
 */
int maxLiveRegisters(const Dag &dag,
                     const std::vector<std::uint32_t> &order);

/**
 * Estimate how many values a local register allocator with
 * @p num_regs allocatable registers would have to spill under the
 * given order: live intervals are derived from the block's def-use
 * chains, and whenever more than @p num_regs intervals overlap, the
 * interval with the furthest end is evicted (Belady-style).  Each
 * eviction approximates one spill store plus its reloads.
 *
 * This is the cost side of the paper's register-usage heuristics: a
 * prepass schedule that stretches lifetimes to hide latency pays here
 * (paper Section 3, register usage category; Goodman & Hsu [5],
 * Bradlee et al. [2]).
 */
int estimateSpilledValues(const Dag &dag,
                          const std::vector<std::uint32_t> &order,
                          int num_regs);

} // namespace sched91

#endif // SCHED91_HEURISTICS_REGISTER_PRESSURE_HH
