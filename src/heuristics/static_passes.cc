#include "heuristics/static_passes.hh"

#include <algorithm>
#include <limits>

#include "obs/events.hh"
#include "obs/phase.hh"
#include "support/logging.hh"

namespace sched91
{

namespace
{

/**
 * Visit nodes in topological order (parents before children) using the
 * selected mechanism.  Program order is always topological because
 * every builder adds arcs from earlier to later instructions.
 */
template <typename F>
void
forEachTopo(const Dag &dag, PassImpl impl, F &&fn)
{
    if (impl == PassImpl::ReverseWalk) {
        for (std::uint32_t i = 0; i < dag.size(); ++i)
            fn(i);
        return;
    }
    const LevelLists &lists = dag.levelLists();
    if (dag.levelOrigin() == Dag::LevelOrigin::Roots) {
        for (std::size_t l = 0; l < lists.size(); ++l)
            for (std::uint32_t n : lists[l])
                fn(n);
    } else {
        for (std::size_t l = lists.size(); l-- > 0;)
            for (std::uint32_t n : lists[l])
                fn(n);
    }
}

/** Visit nodes in reverse topological order (children first). */
template <typename F>
void
forEachReverseTopo(const Dag &dag, PassImpl impl, F &&fn)
{
    if (impl == PassImpl::ReverseWalk) {
        for (std::uint32_t i = dag.size(); i-- > 0;)
            fn(i);
        return;
    }
    const LevelLists &lists = dag.levelLists();
    if (dag.levelOrigin() == Dag::LevelOrigin::Roots) {
        for (std::size_t l = lists.size(); l-- > 0;)
            for (std::uint32_t n : lists[l])
                fn(n);
    } else {
        for (std::size_t l = 0; l < lists.size(); ++l)
            for (std::uint32_t n : lists[l])
                fn(n);
    }
}

} // namespace

std::string_view
passImplName(PassImpl impl)
{
    return impl == PassImpl::ReverseWalk ? "reverse-walk" : "level-lists";
}

void
runForwardPass(Dag &dag, PassImpl impl)
{
    obs::ScopedPhase phase("heur-fwd");
    obs::ev::heurForwardVisits.inc(dag.size());

    // Hoist the annotation columns: the pass streams over dense int
    // arrays, indexed only by the CSR predecessor slabs.
    NodeAnnotations &ann = dag.ann();
    int *max_path = ann.maxPathFromRoot.data();
    int *max_delay = ann.maxDelayFromRoot.data();
    int *est = ann.earliestStart.data();
    const int *exec = ann.execTime.data();

    forEachTopo(dag, impl, [&](std::uint32_t i) {
        std::span<const std::uint32_t> from = dag.predFrom(i);
        std::span<const std::int32_t> delay = dag.predDelay(i);
        int mp = 0;
        int md = 0;
        int start = 0;
        for (std::size_t k = 0; k < from.size(); ++k) {
            std::uint32_t p = from[k];
            mp = std::max(mp, max_path[p] + 1);
            md = std::max(md, max_delay[p] + delay[k]);
            start = std::max(start, est[p] + exec[p]);
        }
        max_path[i] = mp;
        max_delay[i] = md;
        est[i] = start;
    });
}

void
runBackwardPass(Dag &dag, PassImpl impl, bool compute_descendants)
{
    obs::ScopedPhase phase("heur-bwd");
    obs::ev::heurBackwardVisits.inc(dag.size());

    // Descendant maps: reuse the builder's when it maintained
    // descendant-mode maps (backward table building), else compute them
    // with one sweep.
    BitMatrix local_maps;
    bool use_local = false;
    if (compute_descendants && dag.reachMode() != ReachMode::Descendants) {
        obs::ev::heurDescendantSweeps.inc();
        local_maps = dag.computeDescendantMaps();
        use_local = true;
    }

    NodeAnnotations &ann = dag.ann();
    int *max_path = ann.maxPathToLeaf.data();
    int *max_delay = ann.maxDelayToLeaf.data();
    int *lst = ann.latestStart.data();
    const int *est = ann.earliestStart.data();
    const int *exec = ann.execTime.data();

    // Block finish time: the EST the paper's block-terminating dummy
    // node would receive (max over leaves of EST + latency).  LST of a
    // leaf is then finish - latency, i.e. dummy-node semantics without
    // materializing the dummy.
    int finish = 0;
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        if (dag.numChildren(i) == 0)
            finish = std::max(finish, est[i] + exec[i]);

    forEachReverseTopo(dag, impl, [&](std::uint32_t i) {
        std::span<const std::uint32_t> to = dag.succTo(i);
        std::span<const std::int32_t> delay = dag.succDelay(i);
        int mp = 0;
        int md = 0;
        bool leaf = to.empty();
        int min_child_lst = std::numeric_limits<int>::max();
        for (std::size_t k = 0; k < to.size(); ++k) {
            std::uint32_t c = to[k];
            mp = std::max(mp, max_path[c] + 1);
            md = std::max(md, max_delay[c] + delay[k]);
            min_child_lst = std::min(min_child_lst, lst[c]);
        }
        max_path[i] = mp;
        max_delay[i] = md;
        // LST(leaf) derives from the dummy node's EST; otherwise min
        // over children minus own latency ([12]).
        lst[i] = leaf ? finish - exec[i] : min_child_lst - exec[i];

        if (compute_descendants) {
            ConstBitRow map =
                use_local ? local_maps.row(i) : dag.reachMap(i);
            ann.numDescendants[i] = static_cast<int>(map.count()) - 1;
            long long sum = 0;
            map.forEachSet([&](std::size_t bit) {
                if (bit != i)
                    sum += exec[bit];
            });
            ann.sumExecOfDescendants[i] = sum;
        }
    });
}

void
computeSlack(Dag &dag)
{
    obs::ev::heurSlackComputes.inc(dag.size());
    NodeAnnotations &ann = dag.ann();
    const int *lst = ann.latestStart.data();
    const int *est = ann.earliestStart.data();
    int *slack = ann.slack.data();
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        slack[i] = lst[i] - est[i];
}

void
runAllStaticPasses(Dag &dag, PassImpl impl, bool compute_descendants)
{
    runForwardPass(dag, impl);
    runBackwardPass(dag, impl, compute_descendants);
    computeSlack(dag);
}

} // namespace sched91
