#include "heuristics/static_passes.hh"

#include <algorithm>
#include <limits>

#include "obs/events.hh"
#include "obs/phase.hh"
#include "support/logging.hh"

namespace sched91
{

namespace
{

/**
 * Visit nodes in topological order (parents before children) using the
 * selected mechanism.  Program order is always topological because
 * every builder adds arcs from earlier to later instructions.
 */
template <typename F>
void
forEachTopo(const Dag &dag, PassImpl impl, F &&fn)
{
    if (impl == PassImpl::ReverseWalk) {
        for (std::uint32_t i = 0; i < dag.size(); ++i)
            fn(i);
        return;
    }
    const auto &lists = dag.levelLists();
    if (dag.levelOrigin() == Dag::LevelOrigin::Roots) {
        for (const auto &level : lists)
            for (std::uint32_t n : level)
                fn(n);
    } else {
        for (auto it = lists.rbegin(); it != lists.rend(); ++it)
            for (std::uint32_t n : *it)
                fn(n);
    }
}

/** Visit nodes in reverse topological order (children first). */
template <typename F>
void
forEachReverseTopo(const Dag &dag, PassImpl impl, F &&fn)
{
    if (impl == PassImpl::ReverseWalk) {
        for (std::uint32_t i = dag.size(); i-- > 0;)
            fn(i);
        return;
    }
    const auto &lists = dag.levelLists();
    if (dag.levelOrigin() == Dag::LevelOrigin::Roots) {
        for (auto it = lists.rbegin(); it != lists.rend(); ++it)
            for (std::uint32_t n : *it)
                fn(n);
    } else {
        for (const auto &level : lists)
            for (std::uint32_t n : level)
                fn(n);
    }
}

} // namespace

std::string_view
passImplName(PassImpl impl)
{
    return impl == PassImpl::ReverseWalk ? "reverse-walk" : "level-lists";
}

void
runForwardPass(Dag &dag, PassImpl impl)
{
    obs::ScopedPhase phase("heur-fwd");
    obs::ev::heurForwardVisits.inc(dag.size());
    forEachTopo(dag, impl, [&dag](std::uint32_t i) {
        DagNode &node = dag.node(i);
        NodeAnnotations &a = node.ann;
        a.maxPathFromRoot = 0;
        a.maxDelayFromRoot = 0;
        a.earliestStart = 0;
        for (std::uint32_t arc_id : node.predArcs) {
            const Arc &arc = dag.arc(arc_id);
            const NodeAnnotations &p = dag.node(arc.from).ann;
            a.maxPathFromRoot =
                std::max(a.maxPathFromRoot, p.maxPathFromRoot + 1);
            a.maxDelayFromRoot = std::max(a.maxDelayFromRoot,
                                          p.maxDelayFromRoot + arc.delay);
            a.earliestStart =
                std::max(a.earliestStart, p.earliestStart + p.execTime);
        }
    });
}

void
runBackwardPass(Dag &dag, PassImpl impl, bool compute_descendants)
{
    obs::ScopedPhase phase("heur-bwd");
    obs::ev::heurBackwardVisits.inc(dag.size());

    // Descendant maps: reuse the builder's when it maintained
    // descendant-mode maps (backward table building), else compute them
    // with one sweep.
    std::vector<Bitmap> local_maps;
    const std::vector<Bitmap> *maps = nullptr;
    if (compute_descendants) {
        if (dag.reachMode() == ReachMode::Descendants) {
            // Builder-maintained; accessed per node below.
        } else {
            obs::ev::heurDescendantSweeps.inc();
            local_maps = dag.computeDescendantMaps();
            maps = &local_maps;
        }
    }

    // Block finish time: the EST the paper's block-terminating dummy
    // node would receive (max over leaves of EST + latency).  LST of a
    // leaf is then finish - latency, i.e. dummy-node semantics without
    // materializing the dummy.
    int finish = 0;
    for (const auto &node : dag.nodes())
        if (node.succArcs.empty())
            finish = std::max(finish,
                              node.ann.earliestStart + node.ann.execTime);

    forEachReverseTopo(dag, impl, [&](std::uint32_t i) {
        DagNode &node = dag.node(i);
        NodeAnnotations &a = node.ann;
        a.maxPathToLeaf = 0;
        a.maxDelayToLeaf = 0;
        bool leaf = node.succArcs.empty();
        int min_child_lst = std::numeric_limits<int>::max();
        for (std::uint32_t arc_id : node.succArcs) {
            const Arc &arc = dag.arc(arc_id);
            const NodeAnnotations &c = dag.node(arc.to).ann;
            a.maxPathToLeaf = std::max(a.maxPathToLeaf, c.maxPathToLeaf + 1);
            a.maxDelayToLeaf =
                std::max(a.maxDelayToLeaf, c.maxDelayToLeaf + arc.delay);
            min_child_lst = std::min(min_child_lst, c.latestStart);
        }
        // LST(leaf) derives from the dummy node's EST; otherwise min
        // over children minus own latency ([12]).
        a.latestStart =
            leaf ? finish - a.execTime : min_child_lst - a.execTime;

        if (compute_descendants) {
            const Bitmap &map =
                maps ? (*maps)[i] : dag.reachMap(i);
            a.numDescendants = static_cast<int>(map.count()) - 1;
            long long sum = 0;
            map.forEachSet([&](std::size_t bit) {
                if (bit != i)
                    sum += dag.node(static_cast<std::uint32_t>(bit))
                               .ann.execTime;
            });
            a.sumExecOfDescendants = sum;
        }
    });
}

void
computeSlack(Dag &dag)
{
    obs::ev::heurSlackComputes.inc(dag.size());
    for (auto &node : dag.nodes())
        node.ann.slack = node.ann.latestStart - node.ann.earliestStart;
}

void
runAllStaticPasses(Dag &dag, PassImpl impl, bool compute_descendants)
{
    runForwardPass(dag, impl);
    runBackwardPass(dag, impl, compute_descendants);
    computeSlack(dag);
}

} // namespace sched91
