/**
 * @file
 * The intermediate heuristic calculation step (Section 4).
 *
 * "An intermediate heuristic calculation step may be required as a
 * pass over the DAG to provide any remaining static heuristics left
 * undetermined after DAG construction."  The paper compares two
 * implementations:
 *
 *  - a *level algorithm*: nodes bucketed into per-level linked lists
 *    during construction, outer loop from max level to min;
 *  - a *reverse walk of a linked list of the instructions* — any
 *    reverse topological sort works, and program order is topological,
 *    so reversing the instruction list suffices.
 *
 * Conclusion 4 of the paper: the level algorithm is "no better" — both
 * are provided here so bench_heuristic_pass can measure that claim.
 */

#ifndef SCHED91_HEURISTICS_STATIC_PASSES_HH
#define SCHED91_HEURISTICS_STATIC_PASSES_HH

#include <string_view>

#include "dag/dag.hh"

namespace sched91
{

/** Traversal mechanism for the intermediate pass. */
enum class PassImpl : std::uint8_t {
    ReverseWalk, ///< walk the instruction list (program order)
    LevelLists,  ///< Section 4 level algorithm
};

std::string_view passImplName(PassImpl impl);

/**
 * Forward pass: computes maxPathFromRoot, maxDelayFromRoot and the
 * earliest start time (EST, Schlansker-style: EST(n) = max over parents
 * p of EST(p) + latency(p), roots at 0).
 */
void runForwardPass(Dag &dag, PassImpl impl = PassImpl::ReverseWalk);

/**
 * Backward pass: computes maxPathToLeaf, maxDelayToLeaf and the latest
 * start time (LST(leaf) = EST(leaf); LST(n) = min over children c of
 * LST(c) minus latency(n)).  LST is only meaningful after
 * runForwardPass().
 *
 * When @p compute_descendants is set, also fills numDescendants and
 * sumExecOfDescendants using reachability bit maps: the builder's maps
 * when it maintained descendant maps, otherwise maps computed here by
 * one reverse-topological sweep ("#descendants is then merely the
 * population count on the reachability bit map ... minus one").
 */
void runBackwardPass(Dag &dag, PassImpl impl = PassImpl::ReverseWalk,
                     bool compute_descendants = false);

/** slack = LST - EST; requires both passes. */
void computeSlack(Dag &dag);

/** Run forward + backward passes and slack. */
void runAllStaticPasses(Dag &dag, PassImpl impl = PassImpl::ReverseWalk,
                        bool compute_descendants = false);

} // namespace sched91

#endif // SCHED91_HEURISTICS_STATIC_PASSES_HH
