#include "ir/basic_block.hh"

#include <array>
#include <unordered_set>

#include "obs/events.hh"

namespace sched91
{

void
stampMemGenerations(Program &prog)
{
    std::array<std::uint32_t, Resource::kNumIntRegs> gen{};
    for (auto &inst : prog.insts()) {
        if (inst.mem().has_value()) {
            MemOperand &m = *inst.mem();
            m.baseGen = m.base >= 0 ? gen[m.base] : 0;
            m.indexGen = m.index >= 0 ? gen[m.index] : 0;
        }
        for (Resource r : inst.defs())
            if (r.kind() == Resource::Kind::IntReg)
                ++gen[r.index()];
    }
}

std::vector<BasicBlock>
partitionBlocks(Program &prog, const PartitionOptions &opts)
{
    stampMemGenerations(prog);

    std::vector<BasicBlock> blocks;
    const auto &insts = prog.insts();
    std::uint32_t n = static_cast<std::uint32_t>(insts.size());
    std::uint32_t begin = 0;

    auto close = [&](std::uint32_t end) {
        if (end > begin)
            blocks.push_back(BasicBlock{begin, end});
        begin = end;
    };

    for (std::uint32_t i = 0; i < n; ++i) {
        // A label opens a new block at this instruction.
        if (i > begin && prog.hasLabelAt(i))
            close(i);

        const Instruction &inst = insts[i];
        bool ends = false;
        InstClass cls = inst.cls();
        if (cls == InstClass::Branch || cls == InstClass::WindowOp)
            ends = true;
        else if (cls == InstClass::Call)
            ends = opts.callsEndBlocks;

        if (ends) {
            close(i + 1);
            continue;
        }

        // Instruction window: force a split at the size cap.
        if (opts.window > 0 &&
            i + 1 - begin >= static_cast<std::uint32_t>(opts.window)) {
            obs::ev::dagWindowFlushes.inc();
            close(i + 1);
        }
    }
    close(n);
    return blocks;
}

ProgramStructure
measureStructure(const Program &prog, const std::vector<BasicBlock> &blocks)
{
    ProgramStructure s;
    s.numBlocks = blocks.size();
    s.numInsts = prog.size();

    std::unordered_set<std::uint32_t> exprs;
    for (const auto &bb : blocks) {
        s.instsPerBlock.add(bb.size());
        exprs.clear();
        for (std::uint32_t i = bb.begin; i < bb.end; ++i) {
            const auto &mem = prog[i].mem();
            if (mem.has_value())
                exprs.insert(mem->exprId);
        }
        s.memExprsPerBlock.add(static_cast<double>(exprs.size()));
    }
    return s;
}

} // namespace sched91
