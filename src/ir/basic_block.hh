/**
 * @file
 * Basic block partitioning.
 *
 * Per Section 2 of the paper: branches and procedure calls end basic
 * blocks, and "register window alteration instructions (SAVE and
 * RESTORE) mark the end of a basic block, since register identifiers
 * name different physical resources on different sides".  Per the
 * Table 3 note, "a delay slot instruction, including that for an
 * annulling branch, is included in the counts for the basic block
 * following the branch" — so a block ends *at* its control transfer
 * and the delay-slot instruction opens the next block.
 *
 * The paper's fpppp-1000/2000/4000 variants cap the maximum block size
 * with an instruction window; the same mechanism is exposed here via
 * PartitionOptions::window.
 */

#ifndef SCHED91_IR_BASIC_BLOCK_HH
#define SCHED91_IR_BASIC_BLOCK_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"
#include "support/stats.hh"

namespace sched91
{

/** A half-open range [begin, end) of program instructions. */
struct BasicBlock
{
    std::uint32_t begin = 0;
    std::uint32_t end = 0;

    std::uint32_t size() const { return end - begin; }
};

/** Options controlling basic block formation. */
struct PartitionOptions
{
    /** Maximum block size; 0 means unlimited (no instruction window). */
    int window = 0;

    /** Whether calls terminate blocks (paper default: yes). */
    bool callsEndBlocks = true;
};

/**
 * Stamp every memory operand with the generation (definition count) of
 * its base and index registers at the point of the reference.  The
 * memory disambiguator only proves independence of two same-base
 * references when their base generations match, i.e. when the base
 * register provably held the same value.  Idempotent.
 */
void stampMemGenerations(Program &prog);

/**
 * Partition @p prog into basic blocks (stamps memory generations as a
 * side effect).  Blocks are returned in program order and cover every
 * instruction exactly once.
 */
std::vector<BasicBlock> partitionBlocks(Program &prog,
                                        const PartitionOptions &opts = {});

/** Structural data reported in Table 3. */
struct ProgramStructure
{
    std::size_t numBlocks = 0;
    std::size_t numInsts = 0;
    MinMaxAvg instsPerBlock;
    MinMaxAvg memExprsPerBlock;
};

/** Measure Table-3 style structural statistics. */
ProgramStructure measureStructure(const Program &prog,
                                  const std::vector<BasicBlock> &blocks);

} // namespace sched91

#endif // SCHED91_IR_BASIC_BLOCK_HH
