#include "ir/instruction.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sched91
{

int
Instruction::usePosition(Resource r) const
{
    for (std::size_t i = 0; i < uses_.size(); ++i)
        if (uses_[i] == r)
            return usePositions_[i];
    return -1;
}

int
Instruction::defPairHalf(Resource r) const
{
    for (std::size_t i = 0; i < defs_.size(); ++i)
        if (defs_[i] == r)
            return defPairHalves_[i];
    return -1;
}

bool
Instruction::definesResource(Resource r) const
{
    return std::find(defs_.begin(), defs_.end(), r) != defs_.end();
}

bool
Instruction::usesResource(Resource r) const
{
    return std::find(uses_.begin(), uses_.end(), r) != uses_.end();
}

std::string
Instruction::toString() const
{
    if (!text_.empty())
        return text_;

    const OpcodeInfo &info = opcodeInfo(op_);
    std::string out(info.mnemonic);
    if (annul_)
        out += ",a";

    // First register at a given source position (pairs render as the
    // even register only).
    auto src = [this](int pos) -> std::string {
        for (std::size_t i = 0; i < uses_.size(); ++i)
            if (usePositions_[i] == pos)
                return uses_[i].toString();
        return "%g0";
    };
    auto dst = [this]() -> std::string {
        return defs_.empty() ? "%g0" : defs_.front().toString();
    };
    auto src_or_imm = [&](int pos) -> std::string {
        return usesImm_ ? std::to_string(imm_) : src(pos);
    };

    switch (info.sig) {
      case OperandSig::Alu3:
        out += " " + src(0) + ", " + src_or_imm(1) + ", " + dst();
        break;
      case OperandSig::Cmp2:
        out += " " + src(0) + ", " + src_or_imm(1);
        break;
      case OperandSig::Mov2:
        out += " " + src_or_imm(0) + ", " + dst();
        break;
      case OperandSig::Sethi2:
        out += " " + std::to_string(imm_) + ", " + dst();
        break;
      case OperandSig::LoadOp:
        out += " " + (mem_ ? mem_->toString() : "[%g0]") + ", " + dst();
        break;
      case OperandSig::StoreOp:
        out += " " + src(0) + ", " + (mem_ ? mem_->toString() : "[%g0]");
        break;
      case OperandSig::Fp3:
        out += " " + src(0) + ", " + src(1) + ", " + dst();
        break;
      case OperandSig::Fp2:
        out += " " + src(0) + ", " + dst();
        break;
      case OperandSig::Fcmp2:
        out += " " + src(0) + ", " + src(1);
        break;
      case OperandSig::BranchOp:
      case OperandSig::CallOp:
        out += " " + (target_.empty() ? std::string(".L0") : target_);
        break;
      case OperandSig::JmplOp:
        out += " " + src(0) + ", " + dst();
        break;
      case OperandSig::None:
        // Three-operand restore carries ALU-style operands.
        if (op_ == Opcode::Restore && !defs_.empty())
            out += " " + src(0) + ", " + src_or_imm(1) + ", " + dst();
        break;
    }
    return out;
}

namespace
{

/** Does a Fp2 opcode read a double-precision source? */
bool
fp2SrcDouble(Opcode op)
{
    switch (op) {
      case Opcode::Fsqrtd:
      case Opcode::Fdtoi:
      case Opcode::Fdtos:
        return true;
      default:
        return false;
    }
}

/** Does a Fp2 opcode write a double-precision destination? */
bool
fp2DstDouble(Opcode op)
{
    switch (op) {
      case Opcode::Fsqrtd:
      case Opcode::Fitod:
      case Opcode::Fstod:
        return true;
      default:
        return false;
    }
}

/** Add a possibly-paired FP use at source position @p pos. */
void
addFpUse(Instruction &inst, Resource r, bool dbl, int pos)
{
    inst.addUse(r, pos);
    if (dbl && r.kind() == Resource::Kind::FpReg)
        inst.addUse(Resource::fpReg(r.index() + 1), pos);
}

/** Add a possibly-paired def; the second register is pair half 1. */
void
addPairDef(Instruction &inst, Resource r, bool dbl)
{
    inst.addDef(r, 0);
    if (dbl) {
        if (r.kind() == Resource::Kind::FpReg)
            inst.addDef(Resource::fpReg(r.index() + 1), 1);
        else if (r.kind() == Resource::Kind::IntReg)
            inst.addDef(Resource::intReg(r.index() + 1), 1);
    }
}

} // namespace

Instruction
makeInstruction(Opcode op, Resource rs1, Resource rs2, Resource rd,
                std::optional<MemOperand> mem, std::int64_t imm)
{
    Instruction inst(op);
    const OpcodeInfo &info = opcodeInfo(op);
    inst.setImm(imm);

    switch (info.sig) {
      case OperandSig::Alu3:
        inst.addUse(rs1, 0);
        if (rs2.valid())
            inst.addUse(rs2, 1);
        else
            inst.setUsesImm(true);
        inst.addDef(rd);
        if (op == Opcode::Addcc || op == Opcode::Subcc)
            inst.addDef(Resource::icc());
        if (op == Opcode::Smul)
            inst.addDef(Resource::y());
        if (op == Opcode::Sdiv)
            inst.addUse(Resource::y(), 2);
        if (op == Opcode::Save || op == Opcode::Restore) {
            inst.addUse(Resource::callState(), 2);
            inst.addDef(Resource::callState());
        }
        break;

      case OperandSig::Cmp2:
        inst.addUse(rs1, 0);
        if (rs2.valid())
            inst.addUse(rs2, 1);
        else
            inst.setUsesImm(true);
        inst.addDef(Resource::icc());
        break;

      case OperandSig::Mov2:
        if (rs1.valid())
            inst.addUse(rs1, 0);
        else
            inst.setUsesImm(true);
        inst.addDef(rd);
        break;

      case OperandSig::Sethi2:
        inst.setUsesImm(true);
        inst.addDef(rd);
        break;

      case OperandSig::LoadOp:
        SCHED91_ASSERT(mem.has_value(), "load without memory operand");
        if (mem->base >= 0)
            inst.addUse(Resource::intReg(mem->base), 0);
        if (mem->index >= 0)
            inst.addUse(Resource::intReg(mem->index), 0);
        addPairDef(inst, rd, info.isDouble);
        break;

      case OperandSig::StoreOp:
        SCHED91_ASSERT(mem.has_value(), "store without memory operand");
        inst.addUse(rs1, 0);
        if (info.isDouble) {
            if (rs1.kind() == Resource::Kind::FpReg)
                inst.addUse(Resource::fpReg(rs1.index() + 1), 0);
            else if (rs1.kind() == Resource::Kind::IntReg)
                inst.addUse(Resource::intReg(rs1.index() + 1), 0);
        }
        if (mem->base >= 0)
            inst.addUse(Resource::intReg(mem->base), 1);
        if (mem->index >= 0)
            inst.addUse(Resource::intReg(mem->index), 1);
        break;

      case OperandSig::Fp3:
        addFpUse(inst, rs1, info.isDouble, 0);
        addFpUse(inst, rs2, info.isDouble, 1);
        addPairDef(inst, rd, info.isDouble);
        break;

      case OperandSig::Fp2:
        addFpUse(inst, rs1, fp2SrcDouble(op), 0);
        addPairDef(inst, rd, fp2DstDouble(op));
        break;

      case OperandSig::Fcmp2:
        addFpUse(inst, rs1, info.isDouble, 0);
        addFpUse(inst, rs2, info.isDouble, 1);
        inst.addDef(Resource::fcc());
        break;

      case OperandSig::BranchOp:
        if (op == Opcode::Ba || op == Opcode::Bn) {
            // unconditional: no condition-code use
        } else if (info.isFloat) {
            inst.addUse(Resource::fcc(), 0);
        } else if (op == Opcode::Ret) {
            inst.addUse(Resource::intReg(31), 0); // %i7
        } else if (op == Opcode::Retl) {
            inst.addUse(Resource::intReg(15), 0); // %o7
        } else {
            inst.addUse(Resource::icc(), 0);
        }
        break;

      case OperandSig::CallOp:
        // Outgoing argument registers %o0-%o5 and the stack pointer are
        // live into a call; %o7 receives the return address and the
        // call clobbers the caller-saved %o registers.
        for (int i = 8; i <= 13; ++i)
            inst.addUse(Resource::intReg(i), 0);
        inst.addUse(Resource::intReg(14), 0); // %sp
        inst.addUse(Resource::callState(), 0);
        for (int i = 8; i <= 13; ++i)
            inst.addDef(Resource::intReg(i));
        inst.addDef(Resource::intReg(15)); // %o7
        inst.addDef(Resource::callState());
        break;

      case OperandSig::JmplOp:
        inst.addUse(rs1, 0);
        inst.addDef(rd);
        break;

      case OperandSig::None:
        if (op == Opcode::Ret)
            inst.addUse(Resource::intReg(31), 0); // %i7
        if (op == Opcode::Retl)
            inst.addUse(Resource::intReg(15), 0); // %o7
        if (op == Opcode::Restore) {
            inst.addUse(Resource::callState(), 0);
            inst.addDef(Resource::callState());
        }
        break;

      default:
        break;
    }

    if (mem.has_value())
        inst.mem() = std::move(mem);
    return inst;
}

Instruction
renameRegisters(const Instruction &inst,
                const std::function<Resource(Resource)> &rename_use,
                const std::function<Resource(Resource)> &rename_def)
{
    const OpcodeInfo &info = opcodeInfo(inst.op());

    // First register at a given source-operand position (pairs are
    // represented by their even register).
    auto src = [&inst](int pos) -> Resource {
        const auto &uses = inst.uses();
        const auto &positions = inst.usePositions();
        for (std::size_t i = 0; i < uses.size(); ++i)
            if (positions[i] == pos)
                return uses[i];
        return Resource();
    };
    auto ren_u = [&rename_use](Resource r) {
        return r.valid() ? rename_use(r) : r;
    };
    auto ren_d = [&rename_def](Resource r) {
        return r.valid() ? rename_def(r) : r;
    };

    Resource rs1, rs2, rd;
    std::optional<MemOperand> mem = inst.mem();
    if (mem.has_value()) {
        if (mem->base >= 0)
            mem->base = ren_u(Resource::intReg(mem->base)).index();
        if (mem->index >= 0)
            mem->index = ren_u(Resource::intReg(mem->index)).index();
    }

    switch (info.sig) {
      case OperandSig::Alu3:
      case OperandSig::Cmp2:
      case OperandSig::Fp3:
      case OperandSig::Fcmp2:
        rs1 = ren_u(src(0));
        if (!inst.usesImm())
            rs2 = ren_u(src(1));
        rd = inst.defs().empty() ? Resource()
                                 : ren_d(inst.defs().front());
        break;
      case OperandSig::Mov2:
      case OperandSig::Fp2:
      case OperandSig::JmplOp:
        rs1 = ren_u(src(0));
        rd = inst.defs().empty() ? Resource()
                                 : ren_d(inst.defs().front());
        break;
      case OperandSig::Sethi2:
        rd = inst.defs().empty() ? Resource()
                                 : ren_d(inst.defs().front());
        break;
      case OperandSig::LoadOp:
        rd = inst.defs().empty() ? Resource()
                                 : ren_d(inst.defs().front());
        break;
      case OperandSig::StoreOp:
        rs1 = ren_u(src(0));
        break;
      case OperandSig::BranchOp:
      case OperandSig::CallOp:
      case OperandSig::None:
        // No renamable explicit register operands (implicit resources
        // like %icc / %o7 are not allocatable).
        break;
    }

    Instruction out = makeInstruction(inst.op(), rs1, rs2, rd,
                                      std::move(mem), inst.imm());
    out.setUsesImm(inst.usesImm());
    out.setTarget(inst.target());
    out.setAnnul(inst.annul());
    out.setIndex(inst.index());
    return out;
}

} // namespace sched91
