/**
 * @file
 * Instruction representation: opcode plus resource definitions/uses.
 *
 * An instruction records, in operand order, the register-like resources
 * it uses and defines (Section 2 of the paper: dependencies are
 * determined on "general registers, special purpose registers ... and
 * memory locations").  Use order matters because asymmetric
 * bypass/forwarding paths (the paper's IBM RS/6000 example) give
 * different RAW delays to a value consumed as the first vs second
 * source operand.  Definition order matters for double-word register
 * pairs, whose two halves can become available on different cycles.
 */

#ifndef SCHED91_IR_INSTRUCTION_HH
#define SCHED91_IR_INSTRUCTION_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/opcode.hh"
#include "ir/operand.hh"
#include "ir/resource.hh"

namespace sched91
{

/** One assembly instruction. */
class Instruction
{
  public:
    Instruction() = default;

    explicit Instruction(Opcode op) : op_(op) {}

    Opcode op() const { return op_; }
    InstClass cls() const { return instClass(op_); }
    IssueGroup group() const { return issueGroup(cls()); }

    /** Position of this instruction within its Program. */
    std::uint32_t index() const { return index_; }
    void setIndex(std::uint32_t idx) { index_ = idx; }

    /** Register-like resources read, in source-operand order. */
    const std::vector<Resource> &uses() const { return uses_; }

    /** Register-like resources written, pair-first order. */
    const std::vector<Resource> &defs() const { return defs_; }

    /**
     * Source operand position (0-based) of each entry of uses(); a
     * double-precision operand contributes two uses with the same
     * position.  Drives the asymmetric-bypass delay adjustment.
     */
    const std::vector<std::uint8_t> &usePositions() const
    {
        return usePositions_;
    }

    /**
     * Pair half (0 = even/first, 1 = odd/second) of each entry of
     * defs().  The odd half of a double-word load can become available
     * a cycle later (paper Section 2).
     */
    const std::vector<std::uint8_t> &defPairHalves() const
    {
        return defPairHalves_;
    }

    /** Memory operand, if the instruction accesses memory. */
    const std::optional<MemOperand> &mem() const { return mem_; }
    std::optional<MemOperand> &mem() { return mem_; }

    /** True when the instruction reads memory. */
    bool isLoad() const { return isLoadClass(cls()); }

    /** True when the instruction writes memory. */
    bool isStore() const { return isStoreClass(cls()); }

    /** True for control transfers / window ops that end a basic block. */
    bool
    endsBlock() const
    {
        return isControlTransfer(cls()) || cls() == InstClass::WindowOp;
    }

    /** Annulling branch (",a" suffix). */
    bool annul() const { return annul_; }
    void setAnnul(bool a) { annul_ = a; }

    /** Immediate operand value (0 when absent). */
    std::int64_t imm() const { return imm_; }
    void setImm(std::int64_t v) { imm_ = v; }

    /** True when the second ALU source is the immediate. */
    bool usesImm() const { return usesImm_; }
    void setUsesImm(bool b) { usesImm_ = b; }

    /** Branch / call target label (empty when absent). */
    const std::string &target() const { return target_; }
    void setTarget(std::string t) { target_ = std::move(t); }

    /** Record a use at source-operand position @p pos (%g0 dropped). */
    void
    addUse(Resource r, int pos = 0)
    {
        if (r.valid() && !r.isZeroReg()) {
            uses_.push_back(r);
            usePositions_.push_back(static_cast<std::uint8_t>(pos));
        }
    }

    /** Record a definition; @p half selects the register-pair half. */
    void
    addDef(Resource r, int half = 0)
    {
        if (r.valid() && !r.isZeroReg()) {
            defs_.push_back(r);
            defPairHalves_.push_back(static_cast<std::uint8_t>(half));
        }
    }

    /** Source-operand position at which @p r is used, or -1. */
    int usePosition(Resource r) const;

    /** Pair half in which @p r is defined, or -1 when not defined. */
    int defPairHalf(Resource r) const;

    /** True when the instruction defines @p r. */
    bool definesResource(Resource r) const;

    /** True when the instruction uses @p r. */
    bool usesResource(Resource r) const;

    /** Assembly text as parsed or synthesized. */
    const std::string &text() const { return text_; }
    void setText(std::string t) { text_ = std::move(t); }

    /** Render the instruction as assembly. */
    std::string toString() const;

  private:
    Opcode op_ = Opcode::Invalid;
    std::uint32_t index_ = 0;
    std::vector<Resource> uses_;
    std::vector<Resource> defs_;
    std::vector<std::uint8_t> usePositions_;
    std::vector<std::uint8_t> defPairHalves_;
    std::optional<MemOperand> mem_;
    std::int64_t imm_ = 0;
    bool usesImm_ = false;
    bool annul_ = false;
    std::string target_;
    std::string text_;
};

/**
 * Build an instruction's def/use sets from its opcode and operand
 * resources.  Used by both the parser and the synthetic generators so
 * the dependence semantics live in exactly one place.
 *
 * @param op      opcode
 * @param rs1,rs2 source registers (invalid when absent)
 * @param rd      destination register (invalid when absent)
 * @param mem     memory operand when the opcode accesses memory
 * @param imm     immediate value (used when rs2 invalid for ALU ops)
 */
Instruction makeInstruction(Opcode op, Resource rs1, Resource rs2,
                            Resource rd,
                            std::optional<MemOperand> mem = std::nullopt,
                            std::int64_t imm = 0);

/**
 * Rebuild @p inst with its register operands replaced: source
 * operands (including memory base/index registers) go through
 * @p rename_use and destination operands through @p rename_def — two
 * maps because an instruction that reads and writes the same register
 * (add %l0, 1, %l0) refers to two different *values* after
 * allocation.  Register pairs are renamed through their even (first)
 * register; the functions must map even registers to even registers
 * for double-precision operands.  Used by the local register
 * allocator.
 */
Instruction renameRegisters(
    const Instruction &inst,
    const std::function<Resource(Resource)> &rename_use,
    const std::function<Resource(Resource)> &rename_def);

} // namespace sched91

#endif // SCHED91_IR_INSTRUCTION_HH
