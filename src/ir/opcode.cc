#include "ir/opcode.hh"

#include <array>
#include <unordered_map>

#include "support/logging.hh"

namespace sched91
{

namespace
{

constexpr std::array<OpcodeInfo,
                     static_cast<std::size_t>(Opcode::kNumOpcodes)>
buildTable()
{
    std::array<OpcodeInfo, static_cast<std::size_t>(Opcode::kNumOpcodes)> t{};
    auto def = [&t](Opcode op, const char *mn, InstClass cls, OperandSig sig,
                    bool is_double = false, bool is_float = false) {
        t[static_cast<std::size_t>(op)] =
            OpcodeInfo{op, mn, cls, sig, is_double, is_float};
    };

    def(Opcode::Invalid, "<invalid>", InstClass::Nop, OperandSig::None);

    def(Opcode::Add, "add", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Sub, "sub", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::And, "and", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Or, "or", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Xor, "xor", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Sll, "sll", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Srl, "srl", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Sra, "sra", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Addcc, "addcc", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Subcc, "subcc", InstClass::IntAlu, OperandSig::Alu3);
    def(Opcode::Cmp, "cmp", InstClass::IntAlu, OperandSig::Cmp2);
    def(Opcode::Mov, "mov", InstClass::IntAlu, OperandSig::Mov2);
    def(Opcode::Sethi, "sethi", InstClass::IntAlu, OperandSig::Sethi2);
    def(Opcode::Smul, "smul", InstClass::IntMul, OperandSig::Alu3);
    def(Opcode::Sdiv, "sdiv", InstClass::IntDiv, OperandSig::Alu3);

    def(Opcode::Ld, "ld", InstClass::Load, OperandSig::LoadOp);
    def(Opcode::Ldd, "ldd", InstClass::LoadDouble, OperandSig::LoadOp, true);
    def(Opcode::Ldub, "ldub", InstClass::Load, OperandSig::LoadOp);
    def(Opcode::Lduh, "lduh", InstClass::Load, OperandSig::LoadOp);
    def(Opcode::Ldsb, "ldsb", InstClass::Load, OperandSig::LoadOp);
    def(Opcode::Ldsh, "ldsh", InstClass::Load, OperandSig::LoadOp);
    def(Opcode::St, "st", InstClass::Store, OperandSig::StoreOp);
    def(Opcode::Std, "std", InstClass::StoreDouble, OperandSig::StoreOp,
        true);
    def(Opcode::Stb, "stb", InstClass::Store, OperandSig::StoreOp);
    def(Opcode::Sth, "sth", InstClass::Store, OperandSig::StoreOp);
    def(Opcode::Ldx, "ldx", InstClass::Load, OperandSig::LoadOp);
    def(Opcode::Stx, "stx", InstClass::Store, OperandSig::StoreOp);
    def(Opcode::Ldf, "ldf", InstClass::Load, OperandSig::LoadOp, false,
        true);
    def(Opcode::Lddf, "lddf", InstClass::LoadDouble, OperandSig::LoadOp,
        true, true);
    def(Opcode::Stf, "stf", InstClass::Store, OperandSig::StoreOp, false,
        true);
    def(Opcode::Stdf, "stdf", InstClass::StoreDouble, OperandSig::StoreOp,
        true, true);

    def(Opcode::Fadds, "fadds", InstClass::FpAdd, OperandSig::Fp3, false,
        true);
    def(Opcode::Faddd, "faddd", InstClass::FpAdd, OperandSig::Fp3, true,
        true);
    def(Opcode::Fsubs, "fsubs", InstClass::FpAdd, OperandSig::Fp3, false,
        true);
    def(Opcode::Fsubd, "fsubd", InstClass::FpAdd, OperandSig::Fp3, true,
        true);
    def(Opcode::Fmuls, "fmuls", InstClass::FpMul, OperandSig::Fp3, false,
        true);
    def(Opcode::Fmuld, "fmuld", InstClass::FpMul, OperandSig::Fp3, true,
        true);
    def(Opcode::Fdivs, "fdivs", InstClass::FpDiv, OperandSig::Fp3, false,
        true);
    def(Opcode::Fdivd, "fdivd", InstClass::FpDiv, OperandSig::Fp3, true,
        true);
    def(Opcode::Fsqrts, "fsqrts", InstClass::FpSqrt, OperandSig::Fp2, false,
        true);
    def(Opcode::Fsqrtd, "fsqrtd", InstClass::FpSqrt, OperandSig::Fp2, true,
        true);
    def(Opcode::Fmovs, "fmovs", InstClass::FpMove, OperandSig::Fp2, false,
        true);
    def(Opcode::Fnegs, "fnegs", InstClass::FpMove, OperandSig::Fp2, false,
        true);
    def(Opcode::Fabss, "fabss", InstClass::FpMove, OperandSig::Fp2, false,
        true);
    def(Opcode::Fcmps, "fcmps", InstClass::FpCmp, OperandSig::Fcmp2, false,
        true);
    def(Opcode::Fcmpd, "fcmpd", InstClass::FpCmp, OperandSig::Fcmp2, true,
        true);
    def(Opcode::Fitos, "fitos", InstClass::FpAdd, OperandSig::Fp2, false,
        true);
    def(Opcode::Fitod, "fitod", InstClass::FpAdd, OperandSig::Fp2, false,
        true);
    def(Opcode::Fstoi, "fstoi", InstClass::FpAdd, OperandSig::Fp2, false,
        true);
    def(Opcode::Fdtoi, "fdtoi", InstClass::FpAdd, OperandSig::Fp2, false,
        true);
    def(Opcode::Fstod, "fstod", InstClass::FpAdd, OperandSig::Fp2, false,
        true);
    def(Opcode::Fdtos, "fdtos", InstClass::FpAdd, OperandSig::Fp2, false,
        true);

    def(Opcode::Ba, "ba", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bn, "bn", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Be, "be", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bne, "bne", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bg, "bg", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Ble, "ble", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bge, "bge", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bl, "bl", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bgu, "bgu", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bleu, "bleu", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bcc, "bcc", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Bcs, "bcs", InstClass::Branch, OperandSig::BranchOp);
    def(Opcode::Fba, "fba", InstClass::Branch, OperandSig::BranchOp, false,
        true);
    def(Opcode::Fbe, "fbe", InstClass::Branch, OperandSig::BranchOp, false,
        true);
    def(Opcode::Fbne, "fbne", InstClass::Branch, OperandSig::BranchOp,
        false, true);
    def(Opcode::Fbg, "fbg", InstClass::Branch, OperandSig::BranchOp, false,
        true);
    def(Opcode::Fbl, "fbl", InstClass::Branch, OperandSig::BranchOp, false,
        true);
    def(Opcode::Fbge, "fbge", InstClass::Branch, OperandSig::BranchOp,
        false, true);
    def(Opcode::Fble, "fble", InstClass::Branch, OperandSig::BranchOp,
        false, true);

    def(Opcode::Call, "call", InstClass::Call, OperandSig::CallOp);
    def(Opcode::Jmpl, "jmpl", InstClass::Call, OperandSig::JmplOp);
    def(Opcode::Ret, "ret", InstClass::Branch, OperandSig::None);
    def(Opcode::Retl, "retl", InstClass::Branch, OperandSig::None);

    def(Opcode::Save, "save", InstClass::WindowOp, OperandSig::Alu3);
    def(Opcode::Restore, "restore", InstClass::WindowOp, OperandSig::None);

    def(Opcode::Nop, "nop", InstClass::Nop, OperandSig::None);
    return t;
}

const auto kOpcodeTable = buildTable();

const std::unordered_map<std::string_view, Opcode> &
mnemonicMap()
{
    static const std::unordered_map<std::string_view, Opcode> map = [] {
        std::unordered_map<std::string_view, Opcode> m;
        for (const auto &info : kOpcodeTable)
            if (info.op != Opcode::Invalid)
                m.emplace(info.mnemonic, info.op);
        return m;
    }();
    return map;
}

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    return kOpcodeTable[static_cast<std::size_t>(op)];
}

Opcode
opcodeFromMnemonic(std::string_view mnemonic)
{
    auto it = mnemonicMap().find(mnemonic);
    return it == mnemonicMap().end() ? Opcode::Invalid : it->second;
}

std::string_view
opcodeName(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

InstClass
instClass(Opcode op)
{
    return opcodeInfo(op).cls;
}

std::string_view
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu: return "int-alu";
      case InstClass::IntMul: return "int-mul";
      case InstClass::IntDiv: return "int-div";
      case InstClass::Load: return "load";
      case InstClass::LoadDouble: return "load-d";
      case InstClass::Store: return "store";
      case InstClass::StoreDouble: return "store-d";
      case InstClass::Branch: return "branch";
      case InstClass::Call: return "call";
      case InstClass::WindowOp: return "window";
      case InstClass::FpAdd: return "fp-add";
      case InstClass::FpMul: return "fp-mul";
      case InstClass::FpDiv: return "fp-div";
      case InstClass::FpSqrt: return "fp-sqrt";
      case InstClass::FpCmp: return "fp-cmp";
      case InstClass::FpMove: return "fp-move";
      case InstClass::Nop: return "nop";
      default: return "?";
    }
}

IssueGroup
issueGroup(InstClass cls)
{
    switch (cls) {
      case InstClass::Load:
      case InstClass::LoadDouble:
      case InstClass::Store:
      case InstClass::StoreDouble:
        return IssueGroup::Memory;
      case InstClass::FpAdd:
      case InstClass::FpMul:
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
      case InstClass::FpCmp:
      case InstClass::FpMove:
        return IssueGroup::FloatingPoint;
      case InstClass::Branch:
      case InstClass::Call:
        return IssueGroup::Control;
      default:
        return IssueGroup::Integer;
    }
}

bool
isControlTransfer(InstClass cls)
{
    return cls == InstClass::Branch || cls == InstClass::Call;
}

bool
isMemoryClass(InstClass cls)
{
    return isLoadClass(cls) || isStoreClass(cls);
}

bool
isLoadClass(InstClass cls)
{
    return cls == InstClass::Load || cls == InstClass::LoadDouble;
}

bool
isStoreClass(InstClass cls)
{
    return cls == InstClass::Store || cls == InstClass::StoreDouble;
}

bool
isFpClass(InstClass cls)
{
    switch (cls) {
      case InstClass::FpAdd:
      case InstClass::FpMul:
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
      case InstClass::FpCmp:
      case InstClass::FpMove:
        return true;
      default:
        return false;
    }
}

} // namespace sched91
