/**
 * @file
 * Opcode and instruction-class definitions for the SPARC-like dialect.
 *
 * Instruction classes drive latency lookup (machine/machine_model.hh),
 * function-unit assignment, and the "alternate type" superscalar
 * heuristic of Table 1.
 */

#ifndef SCHED91_IR_OPCODE_HH
#define SCHED91_IR_OPCODE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace sched91
{

/** Concrete SPARC-like opcodes understood by the parser and executor. */
enum class Opcode : std::uint8_t {
    Invalid,
    // integer ALU
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Addcc, Subcc, Cmp,
    Mov, Sethi, Smul, Sdiv,
    // memory
    Ld, Ldd, Ldub, Lduh, Ldsb, Ldsh, St, Std, Stb, Sth,
    Ldx, Stx,  ///< 64-bit single-register forms (SPARC v9 style)
    Ldf, Lddf, Stf, Stdf,
    // floating point
    Fadds, Faddd, Fsubs, Fsubd, Fmuls, Fmuld, Fdivs, Fdivd,
    Fsqrts, Fsqrtd, Fmovs, Fnegs, Fabss, Fcmps, Fcmpd,
    Fitos, Fitod, Fstoi, Fdtoi, Fstod, Fdtos,
    // control transfer
    Ba, Bn, Be, Bne, Bg, Ble, Bge, Bl, Bgu, Bleu, Bcc, Bcs,
    Fba, Fbe, Fbne, Fbg, Fbl, Fbge, Fble,
    Call, Jmpl, Ret, Retl,
    // register window
    Save, Restore,
    Nop,
    kNumOpcodes,
};

/** Broad instruction classes; one latency / function unit per class. */
enum class InstClass : std::uint8_t {
    IntAlu,    ///< add/sub/logic/shift/sethi/mov
    IntMul,
    IntDiv,
    Load,      ///< integer and FP loads (single word)
    LoadDouble,///< double-word loads (register pairs)
    Store,
    StoreDouble,
    Branch,
    Call,
    WindowOp,  ///< save / restore
    FpAdd,     ///< FP add/sub/convert/compare-free arithmetic
    FpMul,
    FpDiv,
    FpSqrt,
    FpCmp,
    FpMove,
    Nop,
    kNumClasses,
};

/**
 * Issue groups used for the "alternate type" heuristic and the 2-issue
 * superscalar model: a 2-way machine can pair one Int/Control-group
 * instruction with one Memory/FP-group instruction per cycle.
 */
enum class IssueGroup : std::uint8_t {
    Integer,
    Memory,
    FloatingPoint,
    Control,
};

/** Operand-list shapes recognized by the parser. */
enum class OperandSig : std::uint8_t {
    None,       ///< nop, ret, retl
    Alu3,       ///< op rs1, rs2_or_imm, rd
    Cmp2,       ///< cmp rs1, rs2_or_imm
    Mov2,       ///< mov rs_or_imm, rd
    Sethi2,     ///< sethi imm, rd
    LoadOp,     ///< ld [addr], rd
    StoreOp,    ///< st rs, [addr]
    Fp3,        ///< fop rs1, rs2, rd
    Fp2,        ///< fop rs, rd
    Fcmp2,      ///< fcmp rs1, rs2
    BranchOp,   ///< b<cc> label
    CallOp,     ///< call label
    JmplOp,     ///< jmpl addr, rd
};

/** Static per-opcode properties. */
struct OpcodeInfo
{
    Opcode op = Opcode::Invalid;
    const char *mnemonic = "";
    InstClass cls = InstClass::Nop;
    OperandSig sig = OperandSig::None;
    bool isDouble = false;  ///< operates on even/odd register pairs
    bool isFloat = false;   ///< register operands are FP registers
};

/** Lookup static info for an opcode. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Lookup an opcode by mnemonic (",a" annul suffixes stripped first). */
Opcode opcodeFromMnemonic(std::string_view mnemonic);

/** Mnemonic for an opcode. */
std::string_view opcodeName(Opcode op);

/** Instruction class of an opcode. */
InstClass instClass(Opcode op);

/** Human-readable class name (for tables). */
std::string_view instClassName(InstClass cls);

/** Issue group of an instruction class. */
IssueGroup issueGroup(InstClass cls);

/** True for control-transfer classes (Branch, Call). */
bool isControlTransfer(InstClass cls);

/** True when the class accesses memory. */
bool isMemoryClass(InstClass cls);

/** True when the class is a load. */
bool isLoadClass(InstClass cls);

/** True when the class is a store. */
bool isStoreClass(InstClass cls);

/** True for the floating-point arithmetic classes. */
bool isFpClass(InstClass cls);

} // namespace sched91

#endif // SCHED91_IR_OPCODE_HH
