#include "ir/operand.hh"

#include <cctype>
#include <cstdlib>

#include "support/string_util.hh"

namespace sched91
{

namespace
{

/** Is this token a register name? */
bool
isRegisterToken(std::string_view t)
{
    return !t.empty() && t[0] == '%' && parseRegister(t).valid();
}

/** Parse a plain integer (decimal or 0x hex), optionally signed. */
std::optional<std::int64_t>
parsePlainInt(std::string_view t)
{
    if (t.empty())
        return std::nullopt;
    std::string s(t);
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size())
        return std::nullopt;
    return v;
}

} // namespace

StorageClass
MemOperand::storageClass() const
{
    if (base < 0 && !symbol.empty())
        return StorageClass::Static;
    if (base == 14 || base == 30) // %sp, %fp
        return StorageClass::Stack;
    return StorageClass::Unknown;
}

std::string
MemOperand::exprKey() const
{
    std::string key;
    if (!symbol.empty())
        key += symbol;
    if (base >= 0) {
        if (!key.empty())
            key += '+';
        key += Resource::intReg(base).toString();
    }
    if (index >= 0) {
        key += '+';
        key += Resource::intReg(index).toString();
    }
    if (offset != 0 || key.empty()) {
        if (offset >= 0 && !key.empty())
            key += '+';
        key += std::to_string(offset);
    }
    return key;
}

std::string
MemOperand::toString() const
{
    return "[" + exprKey() + "]";
}

std::optional<MemOperand>
MemOperand::parse(std::string_view text, std::uint8_t width)
{
    std::string_view t = trim(text);
    if (t.size() < 3 || t.front() != '[' || t.back() != ']')
        return std::nullopt;
    t = trim(t.substr(1, t.size() - 2));
    if (t.empty())
        return std::nullopt;

    MemOperand out;
    out.width = width;

    // Split on top-level + and - (keeping the sign with the piece).
    std::vector<std::string> pieces;
    std::size_t start = 0;
    for (std::size_t i = 1; i <= t.size(); ++i) {
        if (i == t.size() || ((t[i] == '+' || t[i] == '-') &&
                              t[i - 1] != '(')) {
            pieces.emplace_back(trim(t.substr(start, i - start)));
            if (i < t.size() && t[i] == '-')
                start = i; // keep the minus sign
            else
                start = i + 1;
        }
    }

    for (std::string_view piece : pieces) {
        bool negative = false;
        if (piece.empty())
            return std::nullopt; // dangling operator: "[%g1 +]"
        if (piece[0] == '-' && piece.size() > 1 &&
            !std::isdigit(static_cast<unsigned char>(piece[1]))) {
            return std::nullopt; // -%reg makes no sense
        }
        if (startsWith(piece, "%lo(") && piece.back() == ')') {
            // %lo(sym) contributes the symbol.
            out.symbol = std::string(piece.substr(4, piece.size() - 5));
            continue;
        }
        if (isRegisterToken(piece)) {
            Resource r = parseRegister(piece);
            if (r.kind() != Resource::Kind::IntReg)
                return std::nullopt;
            if (out.base < 0)
                out.base = r.index();
            else if (out.index < 0)
                out.index = r.index();
            else
                return std::nullopt;
            continue;
        }
        if (piece[0] == '%') {
            // Register-like token that is not a known register (and
            // not %lo(...)): "[%q5 + 4]" is a typo, not a symbol.
            return std::nullopt;
        }
        if (auto v = parsePlainInt(piece)) {
            out.offset += negative ? -*v : *v;
            continue;
        }
        // Bare symbol.
        if (!out.symbol.empty())
            return std::nullopt;
        out.symbol = std::string(piece);
    }

    if (out.base < 0 && out.symbol.empty())
        return std::nullopt;
    return out;
}

std::uint32_t
MemExprTable::intern(const MemOperand &op)
{
    std::string key = op.exprKey();
    auto [it, inserted] =
        ids_.emplace(key, static_cast<std::uint32_t>(keys_.size()));
    if (inserted)
        keys_.push_back(std::move(key));
    return it->second;
}

std::optional<std::int64_t>
parseImmediate(std::string_view text)
{
    std::string_view t = trim(text);
    if (t.empty() || t[0] == '%') {
        if (startsWith(t, "%hi(") && t.back() == ')')
            return static_cast<std::int64_t>(
                symbolHash(t.substr(4, t.size() - 5)) >> 10 << 10);
        if (startsWith(t, "%lo(") && t.back() == ')')
            return static_cast<std::int64_t>(
                symbolHash(t.substr(4, t.size() - 5)) & 0x3ff);
        return std::nullopt;
    }
    return parsePlainInt(t);
}

std::uint64_t
symbolHash(std::string_view name)
{
    // FNV-1a folded into a dedicated 64 GiB address range, 16-byte
    // aligned: disjoint from the executor's per-register regions and
    // from the stack range, so symbol-based references can never
    // collide with register-based ones at runtime (keeps the
    // disambiguation policies sound under the functional executor).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return 0x2000'0000'0000ULL | ((h & 0xffff'ffffULL) << 4);
}

} // namespace sched91
