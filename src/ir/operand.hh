/**
 * @file
 * Memory operands and symbolic memory expressions.
 *
 * Table 3 of the paper counts "unique memory expressions ... the number
 * of different symbolic memory address expressions found in the SPARC
 * assembly language code".  A MemOperand records the parsed address
 * expression (base register, optional index register or constant
 * offset, optional symbol); MemExprTable interns normalized expressions
 * so the DAG builders and statistics can refer to them by id.
 *
 * Because "two memory references [that] use the same base register but
 * different offsets cannot refer to the same location" only holds while
 * the base register value is unchanged, each memory reference also
 * carries a generation stamp of its base register at the point of the
 * reference (filled in by BasicBlockView preparation); the memory
 * disambiguator refuses to prove independence across generations.
 */

#ifndef SCHED91_IR_OPERAND_HH
#define SCHED91_IR_OPERAND_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/resource.hh"

namespace sched91
{

/** Storage class of a memory expression (paper Section 2, Warren). */
enum class StorageClass : std::uint8_t {
    Unknown,  ///< register-based with an unclassified base
    Stack,    ///< %sp / %fp based
    Static,   ///< symbol based (data segment)
};

/** A parsed memory address expression. */
struct MemOperand
{
    static constexpr std::uint32_t kNoExpr = ~std::uint32_t{0};

    int base = -1;          ///< int register index of base, or -1
    int index = -1;         ///< int register index of index reg, or -1
    std::int64_t offset = 0;///< constant displacement
    std::string symbol;     ///< symbolic address ("sym"), may be empty
    std::uint8_t width = 4; ///< access width in bytes

    std::uint32_t exprId = kNoExpr; ///< interned expression id
    std::uint32_t baseGen = 0;      ///< base-reg generation at this ref
    std::uint32_t indexGen = 0;     ///< index-reg generation at this ref

    /** Storage class inferred from the address shape. */
    StorageClass storageClass() const;

    /** Normalized key used for interning ("%o0+8", "sym+4", ...). */
    std::string exprKey() const;

    /** Assembly rendering ("[%o0+8]"). */
    std::string toString() const;

    /**
     * Parse "[...]" address syntax.  Returns std::nullopt on malformed
     * input.  Accepted shapes: [%r], [%r+imm], [%r-imm], [%r1+%r2],
     * [sym], [sym+imm], [%lo(sym)+%r].
     */
    static std::optional<MemOperand> parse(std::string_view text,
                                           std::uint8_t width);
};

/** Interner mapping normalized memory expression keys to dense ids. */
class MemExprTable
{
  public:
    /** Intern @p op's expression key; returns the id. */
    std::uint32_t intern(const MemOperand &op);

    /** Number of distinct expressions seen. */
    std::size_t size() const { return keys_.size(); }

    /** Key string for an id. */
    const std::string &key(std::uint32_t id) const { return keys_[id]; }

  private:
    std::unordered_map<std::string, std::uint32_t> ids_;
    std::vector<std::string> keys_;
};

/**
 * Parse an immediate operand: decimal, hex (0x...), %hi(sym) or
 * %lo(sym).  Symbols hash to a deterministic value so the functional
 * executor produces stable addresses.  Returns std::nullopt when the
 * text is not an immediate.
 */
std::optional<std::int64_t> parseImmediate(std::string_view text);

/** Deterministic 64-bit hash of a symbol name (for executor addresses). */
std::uint64_t symbolHash(std::string_view name);

} // namespace sched91

#endif // SCHED91_IR_OPERAND_HH
