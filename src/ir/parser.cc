#include "ir/parser.hh"

#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/string_util.hh"

namespace sched91
{

namespace
{

/** Access width in bytes for a memory opcode. */
std::uint8_t
memWidth(Opcode op)
{
    switch (op) {
      case Opcode::Ldub:
      case Opcode::Ldsb:
      case Opcode::Stb:
        return 1;
      case Opcode::Lduh:
      case Opcode::Ldsh:
      case Opcode::Sth:
        return 2;
      case Opcode::Ldd:
      case Opcode::Lddf:
      case Opcode::Std:
      case Opcode::Stdf:
      case Opcode::Ldx:
      case Opcode::Stx:
        return 8;
      default:
        return 4;
    }
}

/** Remap int-form memory mnemonics to the FP form for %f operands. */
Opcode
remapFpMemory(Opcode op, Resource reg)
{
    if (reg.kind() != Resource::Kind::FpReg)
        return op;
    switch (op) {
      case Opcode::Ld:
        return Opcode::Ldf;
      case Opcode::Ldd:
        return Opcode::Lddf;
      case Opcode::St:
        return Opcode::Stf;
      case Opcode::Std:
        return Opcode::Stdf;
      default:
        return op;
    }
}

/** Strip trailing comment introduced by '!' or '#'. */
std::string_view
stripComment(std::string_view line)
{
    std::size_t pos = line.find_first_of("!#");
    return pos == std::string_view::npos ? line : line.substr(0, pos);
}

Resource
requireReg(std::string_view tok, std::string_view line)
{
    Resource r = parseRegister(tok);
    if (!r.valid() && tok != "%g0")
        fatal("expected register, got '", tok, "' in: ", line);
    return r;
}

} // namespace

Program
parseAssembly(std::string_view text)
{
    Program prog;

    std::size_t pos = 0;
    int lineno = 0;
    while (pos <= text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            nl = text.size();
        std::string_view raw = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineno;

        std::string_view line = trim(stripComment(raw));
        if (line.empty())
            continue;

        // Labels (possibly several on one conceptual position).
        if (line.back() == ':') {
            prog.addLabel(std::string(line.substr(0, line.size() - 1)));
            continue;
        }

        // Ignore non-label assembler directives.
        if (line[0] == '.' && line.find(':') == std::string_view::npos)
            continue;

        // Split mnemonic from operand list.
        std::size_t sp = line.find_first_of(" \t");
        std::string mnemonic = toLower(
            sp == std::string_view::npos ? line : line.substr(0, sp));
        std::string_view rest =
            sp == std::string_view::npos ? "" : trim(line.substr(sp));

        bool annul = false;
        if (mnemonic.size() > 2 &&
            mnemonic.substr(mnemonic.size() - 2) == ",a") {
            annul = true;
            mnemonic.resize(mnemonic.size() - 2);
        }

        Opcode op = opcodeFromMnemonic(mnemonic);
        if (op == Opcode::Invalid)
            fatal("line ", lineno, ": unknown mnemonic '", mnemonic, "'");

        const OpcodeInfo &info = opcodeInfo(op);
        std::vector<std::string> ops = splitOperands(rest);

        auto need = [&](std::size_t n) {
            if (ops.size() != n)
                fatal("line ", lineno, ": '", mnemonic, "' expects ", n,
                      " operands, got ", ops.size());
        };

        Instruction inst;
        switch (info.sig) {
          case OperandSig::Alu3: {
            need(3);
            Resource rs1 = requireReg(ops[0], line);
            Resource rs2;
            std::int64_t imm = 0;
            if (auto v = parseImmediate(ops[1]))
                imm = *v;
            else
                rs2 = requireReg(ops[1], line);
            Resource rd = requireReg(ops[2], line);
            inst = makeInstruction(op, rs1, rs2, rd, std::nullopt, imm);
            break;
          }
          case OperandSig::Cmp2: {
            need(2);
            Resource rs1 = requireReg(ops[0], line);
            Resource rs2;
            std::int64_t imm = 0;
            if (auto v = parseImmediate(ops[1]))
                imm = *v;
            else
                rs2 = requireReg(ops[1], line);
            inst = makeInstruction(op, rs1, rs2, Resource(), std::nullopt,
                                   imm);
            break;
          }
          case OperandSig::Mov2: {
            need(2);
            Resource rs1;
            std::int64_t imm = 0;
            if (auto v = parseImmediate(ops[0]))
                imm = *v;
            else
                rs1 = requireReg(ops[0], line);
            Resource rd = requireReg(ops[1], line);
            inst = makeInstruction(op, rs1, Resource(), rd, std::nullopt,
                                   imm);
            break;
          }
          case OperandSig::Sethi2: {
            need(2);
            auto v = parseImmediate(ops[0]);
            if (!v)
                fatal("line ", lineno, ": bad sethi immediate '", ops[0],
                      "'");
            Resource rd = requireReg(ops[1], line);
            inst = makeInstruction(op, Resource(), Resource(), rd,
                                   std::nullopt, *v);
            break;
          }
          case OperandSig::LoadOp: {
            need(2);
            Resource rd = requireReg(ops[1], line);
            Opcode real_op = remapFpMemory(op, rd);
            auto mem = MemOperand::parse(ops[0], memWidth(real_op));
            if (!mem)
                fatal("line ", lineno, ": bad address '", ops[0], "'");
            inst = makeInstruction(real_op, Resource(), Resource(), rd,
                                   std::move(mem));
            break;
          }
          case OperandSig::StoreOp: {
            need(2);
            Resource rs = requireReg(ops[0], line);
            Opcode real_op = remapFpMemory(op, rs);
            auto mem = MemOperand::parse(ops[1], memWidth(real_op));
            if (!mem)
                fatal("line ", lineno, ": bad address '", ops[1], "'");
            inst = makeInstruction(real_op, rs, Resource(), Resource(),
                                   std::move(mem));
            break;
          }
          case OperandSig::Fp3: {
            need(3);
            inst = makeInstruction(op, requireReg(ops[0], line),
                                   requireReg(ops[1], line),
                                   requireReg(ops[2], line));
            break;
          }
          case OperandSig::Fp2: {
            need(2);
            inst = makeInstruction(op, requireReg(ops[0], line),
                                   Resource(), requireReg(ops[1], line));
            break;
          }
          case OperandSig::Fcmp2: {
            need(2);
            inst = makeInstruction(op, requireReg(ops[0], line),
                                   requireReg(ops[1], line), Resource());
            break;
          }
          case OperandSig::BranchOp: {
            need(1);
            inst = makeInstruction(op, Resource(), Resource(), Resource());
            inst.setTarget(ops[0]);
            inst.setAnnul(annul);
            break;
          }
          case OperandSig::CallOp: {
            need(1);
            inst = makeInstruction(op, Resource(), Resource(), Resource());
            inst.setTarget(ops[0]);
            break;
          }
          case OperandSig::JmplOp: {
            need(2);
            Resource rs1 = requireReg(ops[0], line);
            Resource rd = requireReg(ops[1], line);
            inst = makeInstruction(op, rs1, Resource(), rd);
            break;
          }
          case OperandSig::None: {
            if (op == Opcode::Restore && ops.size() == 3) {
                // restore %rs1, %rs2_or_imm, %rd form
                Resource rs1 = requireReg(ops[0], line);
                Resource rs2;
                std::int64_t imm = 0;
                if (auto v = parseImmediate(ops[1]))
                    imm = *v;
                else
                    rs2 = requireReg(ops[1], line);
                Resource rd = requireReg(ops[2], line);
                inst = Instruction(Opcode::Restore);
                inst.addUse(rs1, 0);
                if (rs2.valid())
                    inst.addUse(rs2, 1);
                else
                    inst.setUsesImm(true);
                inst.setImm(imm);
                inst.addDef(rd);
                inst.addUse(Resource::callState(), 2);
                inst.addDef(Resource::callState());
            } else {
                need(0);
                inst = makeInstruction(op, Resource(), Resource(),
                                       Resource());
            }
            break;
          }
          default:
            fatal("line ", lineno, ": unhandled signature");
        }

        inst.setText(std::string(line));
        prog.append(std::move(inst));
    }

    return prog;
}

} // namespace sched91
