#include "ir/parser.hh"

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/events.hh"
#include "support/log.hh"
#include "support/logging.hh"
#include "support/string_util.hh"

namespace sched91
{

namespace
{

/** Access width in bytes for a memory opcode. */
std::uint8_t
memWidth(Opcode op)
{
    switch (op) {
      case Opcode::Ldub:
      case Opcode::Ldsb:
      case Opcode::Stb:
        return 1;
      case Opcode::Lduh:
      case Opcode::Ldsh:
      case Opcode::Sth:
        return 2;
      case Opcode::Ldd:
      case Opcode::Lddf:
      case Opcode::Std:
      case Opcode::Stdf:
      case Opcode::Ldx:
      case Opcode::Stx:
        return 8;
      default:
        return 4;
    }
}

/** Remap int-form memory mnemonics to the FP form for %f operands. */
Opcode
remapFpMemory(Opcode op, Resource reg)
{
    if (reg.kind() != Resource::Kind::FpReg)
        return op;
    switch (op) {
      case Opcode::Ld:
        return Opcode::Ldf;
      case Opcode::Ldd:
        return Opcode::Lddf;
      case Opcode::St:
        return Opcode::Stf;
      case Opcode::Std:
        return Opcode::Stdf;
      default:
        return op;
    }
}

/** Strip trailing comment introduced by '!' or '#'. */
std::string_view
stripComment(std::string_view line)
{
    std::size_t pos = line.find_first_of("!#");
    return pos == std::string_view::npos ? line : line.substr(0, pos);
}

/**
 * Per-line parse failure, caught by the line loop and converted into
 * one Diag.  Never escapes parseAssembly.
 */
struct LineError
{
    int col = 0; ///< 1-based column; 0 = whole line
    std::string message;
};

template <typename... Args>
[[noreturn]] void
lineError(int col, const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw LineError{col, os.str()};
}

/** 1-based column of @p tok within the raw source line (0 = unknown). */
int
columnOf(std::string_view raw, std::string_view tok)
{
    if (tok.empty())
        return 0;
    std::size_t pos = raw.find(tok);
    return pos == std::string_view::npos ? 0
                                         : static_cast<int>(pos) + 1;
}

Resource
requireReg(std::string_view tok, std::string_view raw)
{
    Resource r = parseRegister(tok);
    if (!r.valid() && tok != "%g0")
        lineError(columnOf(raw, tok), "expected register, got '", tok,
                  "'");
    return r;
}

/** SPARC simm13: the signed 13-bit immediate field of ALU-style ops. */
constexpr std::int64_t kSimm13Min = -4096;
constexpr std::int64_t kSimm13Max = 4095;

/**
 * Parseable-but-suspicious findings on one line, handed back to the
 * caller as Severity::Warning diagnostics.  Same shape as LineError
 * but collected, not thrown.
 */
using LineWarnings = std::vector<LineError>;

/**
 * Warn when a *literal* immediate token exceeds the 13-bit signed
 * field.  %hi()/%lo() relocations synthesize values by design and
 * sethi's field is 22 bits wide, so only plain numeric tokens in
 * simm13 positions qualify.
 */
void
warnSimm13(LineWarnings *warnings, std::string_view tok,
           std::string_view raw, std::int64_t value)
{
    if (!warnings || tok.empty() || tok[0] == '%')
        return;
    if (value < kSimm13Min || value > kSimm13Max) {
        std::ostringstream os;
        os << "immediate " << value
           << " outside the signed 13-bit range [-4096, 4095]";
        warnings->push_back(LineError{columnOf(raw, tok), os.str()});
    }
}

/** Same check for the accumulated literal offset of a memory operand. */
void
warnMemOffset(LineWarnings *warnings, std::string_view tok,
              std::string_view raw, const MemOperand &mem)
{
    if (!warnings)
        return;
    if (mem.offset < kSimm13Min || mem.offset > kSimm13Max) {
        std::ostringstream os;
        os << "memory offset " << mem.offset
           << " outside the signed 13-bit range [-4096, 4095]";
        warnings->push_back(LineError{columnOf(raw, tok), os.str()});
    }
}

/**
 * Parse one non-empty, non-label, non-directive source line into an
 * Instruction.  Throws LineError on any malformed piece; the caller
 * owns recovery policy.  Suspicious-but-parseable findings are
 * appended to @p warnings (when non-null) instead of thrown.
 */
Instruction
parseInstructionLine(std::string_view line, std::string_view raw,
                     LineWarnings *warnings = nullptr)
{
    // Split mnemonic from operand list.
    std::size_t sp = line.find_first_of(" \t");
    std::string mnemonic =
        toLower(sp == std::string_view::npos ? line : line.substr(0, sp));
    std::string_view rest =
        sp == std::string_view::npos ? "" : trim(line.substr(sp));

    bool annul = false;
    if (mnemonic.size() > 2 &&
        mnemonic.substr(mnemonic.size() - 2) == ",a") {
        annul = true;
        mnemonic.resize(mnemonic.size() - 2);
    }

    Opcode op = opcodeFromMnemonic(mnemonic);
    if (op == Opcode::Invalid)
        lineError(columnOf(raw, line.substr(0, mnemonic.size())),
                  "unknown mnemonic '", mnemonic, "'");

    const OpcodeInfo &info = opcodeInfo(op);
    std::vector<std::string> ops = splitOperands(rest);

    auto need = [&](std::size_t n) {
        if (ops.size() != n)
            lineError(columnOf(raw, rest), "'", mnemonic, "' expects ",
                      n, " operands, got ", ops.size());
    };

    Instruction inst;
    switch (info.sig) {
      case OperandSig::Alu3: {
        need(3);
        Resource rs1 = requireReg(ops[0], raw);
        Resource rs2;
        std::int64_t imm = 0;
        if (auto v = parseImmediate(ops[1])) {
            imm = *v;
            warnSimm13(warnings, ops[1], raw, imm);
        } else {
            rs2 = requireReg(ops[1], raw);
        }
        Resource rd = requireReg(ops[2], raw);
        inst = makeInstruction(op, rs1, rs2, rd, std::nullopt, imm);
        break;
      }
      case OperandSig::Cmp2: {
        need(2);
        Resource rs1 = requireReg(ops[0], raw);
        Resource rs2;
        std::int64_t imm = 0;
        if (auto v = parseImmediate(ops[1])) {
            imm = *v;
            warnSimm13(warnings, ops[1], raw, imm);
        } else {
            rs2 = requireReg(ops[1], raw);
        }
        inst = makeInstruction(op, rs1, rs2, Resource(), std::nullopt,
                               imm);
        break;
      }
      case OperandSig::Mov2: {
        need(2);
        Resource rs1;
        std::int64_t imm = 0;
        if (auto v = parseImmediate(ops[0])) {
            imm = *v;
            warnSimm13(warnings, ops[0], raw, imm);
        } else {
            rs1 = requireReg(ops[0], raw);
        }
        Resource rd = requireReg(ops[1], raw);
        inst = makeInstruction(op, rs1, Resource(), rd, std::nullopt,
                               imm);
        break;
      }
      case OperandSig::Sethi2: {
        need(2);
        auto v = parseImmediate(ops[0]);
        if (!v)
            lineError(columnOf(raw, ops[0]), "bad sethi immediate '",
                      ops[0], "'");
        Resource rd = requireReg(ops[1], raw);
        inst = makeInstruction(op, Resource(), Resource(), rd,
                               std::nullopt, *v);
        break;
      }
      case OperandSig::LoadOp: {
        need(2);
        Resource rd = requireReg(ops[1], raw);
        Opcode real_op = remapFpMemory(op, rd);
        auto mem = MemOperand::parse(ops[0], memWidth(real_op));
        if (!mem)
            lineError(columnOf(raw, ops[0]), "bad address '", ops[0],
                      "'");
        warnMemOffset(warnings, ops[0], raw, *mem);
        inst = makeInstruction(real_op, Resource(), Resource(), rd,
                               std::move(mem));
        break;
      }
      case OperandSig::StoreOp: {
        need(2);
        Resource rs = requireReg(ops[0], raw);
        Opcode real_op = remapFpMemory(op, rs);
        auto mem = MemOperand::parse(ops[1], memWidth(real_op));
        if (!mem)
            lineError(columnOf(raw, ops[1]), "bad address '", ops[1],
                      "'");
        warnMemOffset(warnings, ops[1], raw, *mem);
        inst = makeInstruction(real_op, rs, Resource(), Resource(),
                               std::move(mem));
        break;
      }
      case OperandSig::Fp3: {
        need(3);
        inst = makeInstruction(op, requireReg(ops[0], raw),
                               requireReg(ops[1], raw),
                               requireReg(ops[2], raw));
        break;
      }
      case OperandSig::Fp2: {
        need(2);
        inst = makeInstruction(op, requireReg(ops[0], raw), Resource(),
                               requireReg(ops[1], raw));
        break;
      }
      case OperandSig::Fcmp2: {
        need(2);
        inst = makeInstruction(op, requireReg(ops[0], raw),
                               requireReg(ops[1], raw), Resource());
        break;
      }
      case OperandSig::BranchOp: {
        need(1);
        inst = makeInstruction(op, Resource(), Resource(), Resource());
        inst.setTarget(ops[0]);
        inst.setAnnul(annul);
        break;
      }
      case OperandSig::CallOp: {
        need(1);
        inst = makeInstruction(op, Resource(), Resource(), Resource());
        inst.setTarget(ops[0]);
        break;
      }
      case OperandSig::JmplOp: {
        need(2);
        Resource rs1 = requireReg(ops[0], raw);
        Resource rd = requireReg(ops[1], raw);
        inst = makeInstruction(op, rs1, Resource(), rd);
        break;
      }
      case OperandSig::None: {
        if (op == Opcode::Restore && ops.size() == 3) {
            // restore %rs1, %rs2_or_imm, %rd form
            Resource rs1 = requireReg(ops[0], raw);
            Resource rs2;
            std::int64_t imm = 0;
            if (auto v = parseImmediate(ops[1]))
                imm = *v;
            else
                rs2 = requireReg(ops[1], raw);
            Resource rd = requireReg(ops[2], raw);
            inst = Instruction(Opcode::Restore);
            inst.addUse(rs1, 0);
            if (rs2.valid())
                inst.addUse(rs2, 1);
            else
                inst.setUsesImm(true);
            inst.setImm(imm);
            inst.addDef(rd);
            inst.addUse(Resource::callState(), 2);
            inst.addDef(Resource::callState());
        } else {
            need(0);
            inst = makeInstruction(op, Resource(), Resource(),
                                   Resource());
        }
        break;
      }
      default:
        lineError(0, "unhandled signature for '", mnemonic, "'");
    }

    inst.setText(std::string(line));
    return inst;
}

} // namespace

Program
parseAssembly(std::string_view text, DiagnosticEngine &diags,
              std::string_view filename)
{
    Program prog;

    std::size_t pos = 0;
    int lineno = 0;
    std::set<std::string, std::less<>> seen_labels;
    while (pos <= text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            nl = text.size();
        std::string_view raw = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineno;

        std::string_view line = trim(stripComment(raw));
        if (line.empty())
            continue;

        // Labels (possibly several on one conceptual position).
        if (line.back() == ':') {
            std::string label(line.substr(0, line.size() - 1));
            if (!seen_labels.insert(label).second) {
                // Parseable but almost certainly a mistake: a branch
                // to this label is ambiguous.
                obs::ev::robustParseWarnings.inc();
                diags.warning(filename, lineno, 1,
                              "label '" + label +
                                  "' defined more than once");
            }
            prog.addLabel(std::move(label));
            continue;
        }

        // Ignore non-label assembler directives.
        if (line[0] == '.' && line.find(':') == std::string_view::npos)
            continue;

        try {
            LineWarnings warnings;
            prog.append(parseInstructionLine(line, raw, &warnings));
            for (const LineError &w : warnings) {
                obs::ev::robustParseWarnings.inc();
                diags.warning(filename, lineno, w.col, w.message);
            }
        } catch (const LineError &e) {
            // Lenient recovery: drop this instruction, keep parsing.
            // (A strict engine throws out of report() instead.)
            obs::ev::robustParseErrors.inc();
            log::debug("parser: recovered from malformed line ", lineno,
                       " of ", filename);
            diags.error(filename, lineno, e.col, e.message);
        }
    }

    return prog;
}

Program
parseAssembly(std::string_view text)
{
    DiagnosticEngine::Options opts;
    opts.strict = true;
    DiagnosticEngine diags(opts);
    return parseAssembly(text, diags);
}

} // namespace sched91
