/**
 * @file
 * Parser for the SPARC-like assembly dialect.
 *
 * Accepted syntax per line:
 *
 *     label:                     ! labels (also .Lnn:)
 *         ld   [%o0+4], %g1      ! comments with '!' or '#'
 *         add  %g1, %g2, %g3
 *         cmp  %g3, 10
 *         bne,a .L2              ! ,a marks an annulling branch
 *         nop
 *         fmuld %f0, %f2, %f4
 *         st   %g3, [stack_sym+8]
 *
 * Assembler directives (lines starting with '.') other than labels are
 * ignored, mirroring how the paper's tooling consumed "cc -O4 -S"
 * output.
 *
 * Error handling: every malformed line produces one source-located
 * Diag (support/diagnostics.hh).  Under a lenient engine (the
 * default) the parser skips the bad instruction and keeps going, so
 * one typo cannot kill a whole-program run; under a strict engine the
 * first error throws FatalError.  Each recovered error is counted in
 * `robust.parse_errors`.
 */

#ifndef SCHED91_IR_PARSER_HH
#define SCHED91_IR_PARSER_HH

#include <string_view>

#include "ir/program.hh"
#include "support/diagnostics.hh"

namespace sched91
{

/**
 * Parse assembly text into a Program, reporting malformed lines to
 * @p diags (tagged with @p filename).  With a lenient engine the
 * malformed instructions are skipped and everything parseable is
 * returned; a strict engine makes the first error throw FatalError.
 */
Program parseAssembly(std::string_view text, DiagnosticEngine &diags,
                      std::string_view filename = "<input>");

/**
 * Fail-fast convenience overload: parse with a private strict engine.
 *
 * @throws FatalError on the first malformed instruction.
 */
Program parseAssembly(std::string_view text);

} // namespace sched91

#endif // SCHED91_IR_PARSER_HH
