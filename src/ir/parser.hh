/**
 * @file
 * Parser for the SPARC-like assembly dialect.
 *
 * Accepted syntax per line:
 *
 *     label:                     ! labels (also .Lnn:)
 *         ld   [%o0+4], %g1      ! comments with '!' or '#'
 *         add  %g1, %g2, %g3
 *         cmp  %g3, 10
 *         bne,a .L2              ! ,a marks an annulling branch
 *         nop
 *         fmuld %f0, %f2, %f4
 *         st   %g3, [stack_sym+8]
 *
 * Assembler directives (lines starting with '.') other than labels are
 * ignored, mirroring how the paper's tooling consumed "cc -O4 -S"
 * output.
 */

#ifndef SCHED91_IR_PARSER_HH
#define SCHED91_IR_PARSER_HH

#include <string_view>

#include "ir/program.hh"

namespace sched91
{

/**
 * Parse assembly text into a Program.
 *
 * @throws FatalError on malformed instructions.
 */
Program parseAssembly(std::string_view text);

} // namespace sched91

#endif // SCHED91_IR_PARSER_HH
