#include "ir/program.hh"

#include <sstream>

namespace sched91
{

Instruction &
Program::append(Instruction inst)
{
    inst.setIndex(static_cast<std::uint32_t>(insts_.size()));
    if (inst.mem().has_value())
        inst.mem()->exprId = memExprs_.intern(*inst.mem());
    insts_.push_back(std::move(inst));
    if (labelAt_.size() < insts_.size())
        labelAt_.resize(insts_.size(), false);
    return insts_.back();
}

void
Program::addLabel(const std::string &name)
{
    auto idx = static_cast<std::uint32_t>(insts_.size());
    labels_.emplace(name, idx);
    if (labelAt_.size() <= idx)
        labelAt_.resize(idx + 1, false);
    labelAt_[idx] = true;
}

std::int64_t
Program::labelTarget(const std::string &name) const
{
    auto it = labels_.find(name);
    return it == labels_.end() ? -1 : it->second;
}

bool
Program::hasLabelAt(std::uint32_t idx) const
{
    return idx < labelAt_.size() && labelAt_[idx];
}

std::string
Program::toString() const
{
    // Invert the label map so labels render under their own names.
    std::unordered_map<std::uint32_t, std::vector<std::string>> names;
    for (const auto &[name, idx] : labels_)
        names[idx].push_back(name);

    std::ostringstream os;
    for (const auto &inst : insts_) {
        auto it = names.find(inst.index());
        if (it != names.end())
            for (const auto &name : it->second)
                os << name << ":\n";
        os << "    " << inst.toString() << "\n";
    }
    return os.str();
}

} // namespace sched91
