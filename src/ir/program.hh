/**
 * @file
 * A Program is an ordered list of instructions plus label positions and
 * the interned memory-expression table.
 */

#ifndef SCHED91_IR_PROGRAM_HH
#define SCHED91_IR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/instruction.hh"
#include "ir/operand.hh"

namespace sched91
{

/** An assembly program: instructions, labels, memory expressions. */
class Program
{
  public:
    /** Append an instruction; assigns its index and interns memory. */
    Instruction &append(Instruction inst);

    /** Attach a label to the next appended instruction position. */
    void addLabel(const std::string &name);

    const std::vector<Instruction> &insts() const { return insts_; }
    std::vector<Instruction> &insts() { return insts_; }

    std::size_t size() const { return insts_.size(); }

    const Instruction &operator[](std::size_t i) const { return insts_[i]; }

    /** Instruction index a label points at, or -1 when unknown. */
    std::int64_t labelTarget(const std::string &name) const;

    /** True when instruction @p idx carries a label. */
    bool hasLabelAt(std::uint32_t idx) const;

    /** Interned memory expressions across the whole program. */
    const MemExprTable &memExprs() const { return memExprs_; }

    /** Render the program as assembly text. */
    std::string toString() const;

  private:
    std::vector<Instruction> insts_;
    std::unordered_map<std::string, std::uint32_t> labels_;
    std::vector<bool> labelAt_;
    MemExprTable memExprs_;
};

} // namespace sched91

#endif // SCHED91_IR_PROGRAM_HH
