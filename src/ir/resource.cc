#include "ir/resource.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace sched91
{

Resource
Resource::fromSlot(int slot)
{
    if (slot < 0 || slot >= kNumSlots)
        return Resource();
    if (slot < kNumIntRegs)
        return intReg(slot);
    if (slot < kNumIntRegs + kNumFpRegs)
        return fpReg(slot - kNumIntRegs);
    switch (slot - kNumIntRegs - kNumFpRegs) {
      case 0:
        return icc();
      case 1:
        return fcc();
      case 2:
        return y();
      default:
        return callState();
    }
}

std::string
Resource::toString() const
{
    static const char *int_banks = "goli";
    switch (kind_) {
      case Kind::IntReg:
        return std::string("%") + int_banks[index_ / 8] +
               std::to_string(index_ % 8);
      case Kind::FpReg:
        return "%f" + std::to_string(static_cast<int>(index_));
      case Kind::IntCC:
        return "%icc";
      case Kind::FpCC:
        return "%fcc";
      case Kind::YReg:
        return "%y";
      case Kind::CallState:
        return "%call";
      default:
        return "%invalid";
    }
}

Resource
parseRegister(std::string_view name)
{
    if (name.size() < 2 || name[0] != '%')
        return Resource();
    std::string_view body = name.substr(1);

    if (body == "sp")
        return Resource::intReg(14); // %o6
    if (body == "fp")
        return Resource::intReg(30); // %i6
    if (body == "y")
        return Resource::y();
    if (body == "icc")
        return Resource::icc();
    if (body == "fcc")
        return Resource::fcc();

    char bank = body[0];
    std::string_view digits = body.substr(1);
    if (digits.empty() || digits.size() > 2)
        return Resource();
    for (char c : digits)
        if (c < '0' || c > '9')
            return Resource();
    int n = std::atoi(std::string(digits).c_str());

    switch (bank) {
      case 'g':
        return n < 8 ? Resource::intReg(n) : Resource();
      case 'o':
        return n < 8 ? Resource::intReg(8 + n) : Resource();
      case 'l':
        return n < 8 ? Resource::intReg(16 + n) : Resource();
      case 'i':
        return n < 8 ? Resource::intReg(24 + n) : Resource();
      case 'r':
        return n < 32 ? Resource::intReg(n) : Resource();
      case 'f':
        return n < 32 ? Resource::fpReg(n) : Resource();
      default:
        return Resource();
    }
}

} // namespace sched91
