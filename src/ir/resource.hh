/**
 * @file
 * Register-like resources on which data dependencies are computed.
 *
 * The paper (Section 2) determines dependencies over "general registers,
 * special purpose registers (e.g., condition codes), and memory
 * locations".  This type models the register-like resources of a
 * SPARC-flavored machine: 32 integer registers (%g/%o/%l/%i banks), 32
 * single-precision FP registers (doubles occupy even/odd pairs), the
 * integer and FP condition codes, the %y register, and a pseudo
 * "call state" resource used to serialize instructions against calls
 * and register-window operations.  Memory locations are handled
 * separately via symbolic memory expressions (see ir/operand.hh and
 * dag/memdep.hh).
 */

#ifndef SCHED91_IR_RESOURCE_HH
#define SCHED91_IR_RESOURCE_HH

#include <cstdint>
#include <string>

namespace sched91
{

/** A register-like resource with a dense "slot" numbering for tables. */
class Resource
{
  public:
    static constexpr int kNumIntRegs = 32;
    static constexpr int kNumFpRegs = 32;

    enum class Kind : std::uint8_t {
        Invalid,
        IntReg,     ///< %g0-%g7, %o0-%o7, %l0-%l7, %i0-%i7
        FpReg,      ///< %f0-%f31 (single precision slots)
        IntCC,      ///< integer condition codes (icc)
        FpCC,       ///< floating-point condition codes (fcc)
        YReg,       ///< %y multiply/divide register
        CallState,  ///< pseudo resource serializing calls / save / restore
    };

    /** Total number of dense slots, for sizing definition/use tables. */
    static constexpr int kNumSlots = kNumIntRegs + kNumFpRegs + 4;

    constexpr Resource() = default;

    constexpr
    Resource(Kind kind, std::uint8_t index) : kind_(kind), index_(index)
    {
    }

    static constexpr Resource
    intReg(int i)
    {
        return Resource(Kind::IntReg, static_cast<std::uint8_t>(i));
    }

    static constexpr Resource
    fpReg(int i)
    {
        return Resource(Kind::FpReg, static_cast<std::uint8_t>(i));
    }

    static constexpr Resource icc() { return Resource(Kind::IntCC, 0); }
    static constexpr Resource fcc() { return Resource(Kind::FpCC, 0); }
    static constexpr Resource y() { return Resource(Kind::YReg, 0); }

    static constexpr Resource
    callState()
    {
        return Resource(Kind::CallState, 0);
    }

    constexpr Kind kind() const { return kind_; }
    constexpr int index() const { return index_; }
    constexpr bool valid() const { return kind_ != Kind::Invalid; }

    /** True for %g0, whose defs and uses carry no dependencies. */
    constexpr bool
    isZeroReg() const
    {
        return kind_ == Kind::IntReg && index_ == 0;
    }

    /**
     * Dense slot index in [0, kNumSlots) used by the table-building DAG
     * construction algorithms for their definition-entry / use-list
     * tables.  Invalid resources have no slot.
     */
    constexpr int
    slot() const
    {
        switch (kind_) {
          case Kind::IntReg:
            return index_;
          case Kind::FpReg:
            return kNumIntRegs + index_;
          case Kind::IntCC:
            return kNumIntRegs + kNumFpRegs;
          case Kind::FpCC:
            return kNumIntRegs + kNumFpRegs + 1;
          case Kind::YReg:
            return kNumIntRegs + kNumFpRegs + 2;
          case Kind::CallState:
            return kNumIntRegs + kNumFpRegs + 3;
          default:
            return -1;
        }
    }

    /** Inverse of slot(). */
    static Resource fromSlot(int slot);

    /** Assembly-style name ("%o3", "%f10", "%icc", ...). */
    std::string toString() const;

    bool operator==(const Resource &other) const = default;

  private:
    Kind kind_ = Kind::Invalid;
    std::uint8_t index_ = 0;
};

/**
 * Parse a register name ("%g1", "%sp", "%fp", "%f12", "%y", ...) into a
 * Resource.  Returns an invalid Resource when @p name is not a register.
 */
Resource parseRegister(std::string_view name);

} // namespace sched91

#endif // SCHED91_IR_RESOURCE_HH
