#include "machine/function_unit.hh"

#include <algorithm>

namespace sched91
{

FuState::FuState(const MachineModel &machine) : machine_(&machine)
{
    for (int k = 0; k < kNumFuKinds; ++k) {
        busyUntil_[k].assign(
            std::max(1, machine.fuDesc(static_cast<FuKind>(k)).count), 0);
    }
}

void
FuState::reset()
{
    for (auto &pool : busyUntil_)
        std::fill(pool.begin(), pool.end(), 0);
}

int
FuState::earliestFree(FuKind kind, int now) const
{
    const auto &pool = busyUntil_[static_cast<std::size_t>(kind)];
    int best = pool.front();
    for (int t : pool)
        best = std::min(best, t);
    return std::max(now, best);
}

void
FuState::occupy(InstClass cls, int start)
{
    FuKind kind = machine_->fuFor(cls);
    auto &pool = busyUntil_[static_cast<std::size_t>(kind)];
    auto it = std::min_element(pool.begin(), pool.end());
    *it = start + machine_->fuBusyCycles(cls);
}

int
FuState::maxBusyUntil(FuKind kind) const
{
    const auto &pool = busyUntil_[static_cast<std::size_t>(kind)];
    return *std::max_element(pool.begin(), pool.end());
}

} // namespace sched91
