/**
 * @file
 * Function-unit occupancy tracking (resource reservation).
 *
 * Supports the "busy times for floating point function units" dynamic
 * heuristic of Table 1 and the structural-hazard component of the
 * pipeline simulator: non-pipelined units (FP divide/sqrt, integer
 * multiply/divide) stay busy for their full latency.
 */

#ifndef SCHED91_MACHINE_FUNCTION_UNIT_HH
#define SCHED91_MACHINE_FUNCTION_UNIT_HH

#include <array>
#include <vector>

#include "machine/machine_model.hh"

namespace sched91
{

/** Busy-until times for every function-unit pool of a machine. */
class FuState
{
  public:
    explicit FuState(const MachineModel &machine);

    /** Forget all occupancy. */
    void reset();

    /**
     * Earliest cycle >= @p now at which some unit of @p kind can accept
     * a new operation.
     */
    int earliestFree(FuKind kind, int now) const;

    /**
     * Record that an operation of class @p cls starts at @p start,
     * occupying its unit for the machine-defined busy time.  Picks the
     * unit in the pool that frees soonest.
     */
    void occupy(InstClass cls, int start);

    /** Busy-until time of the most-loaded unit of @p kind. */
    int maxBusyUntil(FuKind kind) const;

  private:
    /** Non-owning; FuState stays copyable for search-state snapshots. */
    const MachineModel *machine_;
    /** busyUntil_[kind] holds one entry per unit in the pool. */
    std::array<std::vector<int>, static_cast<std::size_t>(
                                     FuKind::kNumFuKinds)> busyUntil_;
};

} // namespace sched91

#endif // SCHED91_MACHINE_FUNCTION_UNIT_HH
