#include "machine/machine_model.hh"

#include <algorithm>

namespace sched91
{

std::string_view
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::RAW: return "RAW";
      case DepKind::WAR: return "WAR";
      case DepKind::WAW: return "WAW";
      case DepKind::CTRL: return "CTRL";
    }
    return "?";
}

MachineModel::MachineModel()
{
    // Conservative defaults; presets override.
    latency_.fill(1);
    fus_[static_cast<std::size_t>(FuKind::IntAlu)] = {"int-alu", 1, true};
    fus_[static_cast<std::size_t>(FuKind::IntMulDiv)] =
        {"int-muldiv", 1, false};
    fus_[static_cast<std::size_t>(FuKind::MemPort)] = {"mem-port", 1, true};
    fus_[static_cast<std::size_t>(FuKind::BranchUnit)] = {"branch", 1, true};
    fus_[static_cast<std::size_t>(FuKind::FpAdd)] = {"fp-add", 1, true};
    fus_[static_cast<std::size_t>(FuKind::FpMul)] = {"fp-mul", 1, true};
    fus_[static_cast<std::size_t>(FuKind::FpDivSqrt)] =
        {"fp-divsqrt", 1, false};
}

int
MachineModel::depDelay(const Instruction &parent, const Instruction &child,
                       DepKind kind, Resource res) const
{
    switch (kind) {
      case DepKind::RAW: {
        int delay = latency(parent.cls());
        if (pairSkew && res.valid() && parent.defPairHalf(res) == 1)
            ++delay;
        if (asymmetricBypass && res.valid() && isFpClass(child.cls()) &&
            child.usePosition(res) == 1) {
            ++delay;
        }
        if (storeBypassSaving > 0 && child.isStore() && res.valid() &&
            child.usePosition(res) == 0) {
            delay -= storeBypassSaving;
        }
        return std::max(1, delay);
      }
      case DepKind::WAR:
        return std::max(1, warDelay);
      case DepKind::WAW:
        return std::max(1, latency(parent.cls()) - latency(child.cls()) + 1);
      case DepKind::CTRL:
        return 1;
    }
    return 1;
}

FuKind
MachineModel::fuFor(InstClass cls) const
{
    switch (cls) {
      case InstClass::IntMul:
      case InstClass::IntDiv:
        return FuKind::IntMulDiv;
      case InstClass::Load:
      case InstClass::LoadDouble:
      case InstClass::Store:
      case InstClass::StoreDouble:
        return FuKind::MemPort;
      case InstClass::Branch:
      case InstClass::Call:
        return FuKind::BranchUnit;
      case InstClass::FpAdd:
      case InstClass::FpCmp:
      case InstClass::FpMove:
        return FuKind::FpAdd;
      case InstClass::FpMul:
        return FuKind::FpMul;
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
        return FuKind::FpDivSqrt;
      default:
        return FuKind::IntAlu;
    }
}

} // namespace sched91
