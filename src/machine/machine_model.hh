/**
 * @file
 * Machine timing model: operation latencies and dependence-arc delays.
 *
 * Section 2 of the paper: "arcs in the DAG are typically weighted
 * according to operation latency; however, these latencies can differ
 * according to the dependency type":
 *
 *  - WAR delays can be shorter than RAW delays (the parent reads the
 *    resource in an early pipe stage) — modeled by MachineModel::warDelay.
 *  - Different RAW delays from the same parent to different children:
 *      * double-word loads deliver the two registers of the pair one
 *        cycle apart (MachineModel::pairSkew);
 *      * a RAW delay to an arithmetic consumer may exceed the delay to
 *        a store of the same value (storeBypassSaving);
 *      * asymmetric bypass paths (IBM RS/6000) give a different delay
 *        when the value is consumed as the second source operand
 *        (asymmetricBypass).
 */

#ifndef SCHED91_MACHINE_MACHINE_MODEL_HH
#define SCHED91_MACHINE_MACHINE_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "ir/instruction.hh"
#include "ir/opcode.hh"

namespace sched91
{

/** Data-dependence kinds plus the control arc used to anchor branches. */
enum class DepKind : std::uint8_t { RAW, WAR, WAW, CTRL };

/** Short name ("RAW", ...). */
std::string_view depKindName(DepKind kind);

/** Function unit kinds for structural-hazard modeling. */
enum class FuKind : std::uint8_t {
    IntAlu,
    IntMulDiv,
    MemPort,
    BranchUnit,
    FpAdd,
    FpMul,
    FpDivSqrt,
    kNumFuKinds,
};

constexpr int kNumFuKinds = static_cast<int>(FuKind::kNumFuKinds);

/** Descriptor for one function-unit pool. */
struct FuDesc
{
    const char *name = "";
    int count = 1;          ///< number of identical units
    bool pipelined = true;  ///< false: unit busy for the whole latency
};

/** Timing and structural model of the target machine. */
class MachineModel
{
  public:
    MachineModel();

    /** Model name for table headers. */
    std::string name = "generic";

    /** Per-class operation latency (execution time heuristic). */
    int
    latency(InstClass cls) const
    {
        return latency_[static_cast<std::size_t>(cls)];
    }

    /** Set the latency of a class. */
    void
    setLatency(InstClass cls, int cycles)
    {
        latency_[static_cast<std::size_t>(cls)] = cycles;
    }

    /** Latency of an instruction. */
    int latency(const Instruction &inst) const { return latency(inst.cls()); }

    /** Delay on a WAR arc (paper Figure 1 uses 1 cycle). */
    int warDelay = 1;

    /** Second half of a double-word load arrives one cycle later. */
    bool pairSkew = false;

    /** RS/6000-style +1 RAW delay to a second-position source operand. */
    bool asymmetricBypass = false;

    /** Cycles saved on a RAW delay into a store's data operand. */
    int storeBypassSaving = 0;

    /** Instructions issued per cycle (1, or 2 for the superscalar model). */
    int issueWidth = 1;

    /**
     * Delay for a dependence arc of kind @p kind on resource @p res
     * from @p parent to @p child.  Memory dependences pass an invalid
     * resource.  Always at least 1.
     */
    int depDelay(const Instruction &parent, const Instruction &child,
                 DepKind kind, Resource res) const;

    /** Function unit executing a given class. */
    FuKind fuFor(InstClass cls) const;

    /** Descriptor of a function-unit pool. */
    const FuDesc &
    fuDesc(FuKind kind) const
    {
        return fus_[static_cast<std::size_t>(kind)];
    }

    /** Mutable descriptor (for presets). */
    FuDesc &
    fuDesc(FuKind kind)
    {
        return fus_[static_cast<std::size_t>(kind)];
    }

    /** Cycles a function unit stays busy after accepting @p cls. */
    int
    fuBusyCycles(InstClass cls) const
    {
        return fuDesc(fuFor(cls)).pipelined ? 1 : latency(cls);
    }

  private:
    std::array<int, static_cast<std::size_t>(InstClass::kNumClasses)>
        latency_{};
    std::array<FuDesc, static_cast<std::size_t>(FuKind::kNumFuKinds)> fus_{};
};

} // namespace sched91

#endif // SCHED91_MACHINE_MACHINE_MODEL_HH
