#include "machine/presets.hh"

#include "support/logging.hh"

namespace sched91
{

namespace
{

/** Shared latency table for the SPARC-class presets. */
void
applySparcLatencies(MachineModel &m)
{
    m.setLatency(InstClass::IntAlu, 1);
    m.setLatency(InstClass::IntMul, 5);
    m.setLatency(InstClass::IntDiv, 20);
    m.setLatency(InstClass::Load, 2);
    m.setLatency(InstClass::LoadDouble, 3);
    m.setLatency(InstClass::Store, 3);
    m.setLatency(InstClass::StoreDouble, 3);
    m.setLatency(InstClass::Branch, 1);
    m.setLatency(InstClass::Call, 1);
    m.setLatency(InstClass::WindowOp, 1);
    m.setLatency(InstClass::FpAdd, 4);   // Figure 1: ADDF = 4 cycles
    m.setLatency(InstClass::FpMul, 6);
    m.setLatency(InstClass::FpDiv, 20);  // Figure 1: DIVF = 20 cycles
    m.setLatency(InstClass::FpSqrt, 25);
    m.setLatency(InstClass::FpCmp, 2);
    m.setLatency(InstClass::FpMove, 1);
    m.setLatency(InstClass::Nop, 1);
    m.warDelay = 1;                      // Figure 1: WAR delay = 1 cycle
}

} // namespace

MachineModel
sparcstation2()
{
    MachineModel m;
    m.name = "sparcstation2";
    applySparcLatencies(m);
    return m;
}

MachineModel
figure1Machine()
{
    MachineModel m = sparcstation2();
    m.name = "figure1";
    return m;
}

MachineModel
rs6000Like()
{
    MachineModel m = sparcstation2();
    m.name = "rs6000like";
    m.asymmetricBypass = true;
    m.storeBypassSaving = 1;
    m.pairSkew = true;
    return m;
}

MachineModel
superscalar2()
{
    MachineModel m = sparcstation2();
    m.name = "superscalar2";
    m.issueWidth = 2;
    m.fuDesc(FuKind::IntAlu).count = 2;
    return m;
}

std::vector<MachineModel>
allPresets()
{
    return {sparcstation2(), rs6000Like(), superscalar2()};
}

MachineModel
presetByName(std::string_view name)
{
    for (auto &m : allPresets())
        if (m.name == name)
            return m;
    if (name == "figure1")
        return figure1Machine();
    fatal("unknown machine preset '", name, "'");
}

} // namespace sched91
