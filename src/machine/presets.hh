/**
 * @file
 * Machine model presets.
 *
 * figure1Machine() reproduces the latencies of the paper's Figure 1
 * (DIVF 20 cycles, ADDF 4 cycles, WAR delay 1) on top of a plausible
 * SPARCstation-2-class pipeline; rs6000Like() enables the asymmetric
 * bypass, store bypass, and register-pair-skew effects discussed in
 * Section 2; superscalar2() is a 2-issue model for the alternate-type
 * heuristic.
 */

#ifndef SCHED91_MACHINE_PRESETS_HH
#define SCHED91_MACHINE_PRESETS_HH

#include <string_view>
#include <vector>

#include "machine/machine_model.hh"

namespace sched91
{

/** SPARCstation-2-class single-issue pipeline; Figure 1 latencies. */
MachineModel sparcstation2();

/** Alias of sparcstation2() named for the Figure 1 experiment. */
MachineModel figure1Machine();

/** RS/6000-like model: asymmetric bypass, store bypass, pair skew. */
MachineModel rs6000Like();

/** Two-issue superscalar variant of the SPARC model. */
MachineModel superscalar2();

/** All presets, for parameterized tests. */
std::vector<MachineModel> allPresets();

/** Look a preset up by name; throws FatalError when unknown. */
MachineModel presetByName(std::string_view name);

} // namespace sched91

#endif // SCHED91_MACHINE_PRESETS_HH
