#include "obs/chrome_trace.hh"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "obs/json.hh"

namespace sched91::obs
{

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    events_.push_back(ev);
}

void
ChromeTraceSink::close()
{
    if (closed_)
        return;
    closed_ = true;

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    // Synthetic per-lane clocks in microseconds: events arrive in
    // block order, so stacking them end to end per lane reconstructs
    // each lane's share of the run.
    std::map<unsigned, double> clocks;
    for (const TraceEvent &ev : events_) {
        const unsigned tid = zeroTimes_ ? 0 : ev.worker;
        const double dur = zeroTimes_ ? 0.0 : ev.seconds * 1e6;
        double &clock = clocks[tid];
        w.beginObject()
            .key("name").value(ev.phase)
            .key("cat").value("block")
            .key("ph").value("X")
            .key("ts").value(clock)
            .key("dur").value(dur)
            .key("pid").value(std::uint64_t{0})
            .key("tid").value(static_cast<std::uint64_t>(tid));
        w.key("args").beginObject()
            .key("block").value(static_cast<std::uint64_t>(ev.block))
            .key("begin").value(ev.begin)
            .key("insts").value(ev.size)
            .endObject();
        w.endObject();
        clock += dur;
    }
    w.endArray().endObject();
    *out_ << w.take() << '\n';
}

// --- Service span log ------------------------------------------------

void
ServiceTraceLog::record(ServiceSpan span)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    spans_.push_back(std::move(span));
}

std::size_t
ServiceTraceLog::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::uint64_t
ServiceTraceLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::string
ServiceTraceLog::chromeJson(bool zeroTimes) const
{
    std::vector<ServiceSpan> spans;
    {
        std::lock_guard<std::mutex> lock(mu_);
        spans = spans_;
    }
    // Group each request's tree together, outermost span first.
    std::stable_sort(
        spans.begin(), spans.end(),
        [](const ServiceSpan &a, const ServiceSpan &b) {
            return std::tie(a.traceId, a.startNs, a.worker) <
                   std::tie(b.traceId, b.startNs, b.worker);
        });

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    for (const ServiceSpan &s : spans) {
        const double ts =
            zeroTimes ? 0.0 : static_cast<double>(s.startNs) / 1e3;
        const double dur =
            zeroTimes ? 0.0 : static_cast<double>(s.durNs) / 1e3;
        w.beginObject()
            .key("name").value(s.name)
            .key("cat").value("svc")
            .key("ph").value("X")
            .key("ts").value(ts)
            .key("dur").value(dur)
            .key("pid").value(std::uint64_t{0})
            .key("tid").value(
                static_cast<std::uint64_t>(zeroTimes ? 0 : s.lane));
        w.key("args").beginObject();
        w.key("trace_id").value(s.traceId);
        if (s.rung >= 0)
            w.key("rung").value(s.rung);
        if (!s.note.empty())
            w.key("note").value(s.note);
        if (s.worker)
            w.key("worker").value(true);
        w.endObject();
        w.endObject();
    }
    w.endArray().endObject();
    return w.take();
}

std::uint64_t
RequestTrace::nowNs() const
{
    const auto now = std::chrono::steady_clock::now();
    if (now <= epoch)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             epoch)
            .count());
}

void
RequestTrace::span(std::string_view name, int rung,
                   std::uint64_t startNs, std::uint64_t endNs,
                   std::string_view note, bool worker) const
{
    if (!log)
        return;
    ServiceSpan s;
    s.traceId = traceId;
    s.name = std::string(name);
    s.note = std::string(note);
    s.lane = lane;
    s.rung = rung;
    s.startNs = startNs;
    s.durNs = endNs > startNs ? endNs - startNs : 0;
    s.worker = worker;
    log->record(std::move(s));
}

} // namespace sched91::obs
