#include "obs/chrome_trace.hh"

#include <map>

#include "obs/json.hh"

namespace sched91::obs
{

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    events_.push_back(ev);
}

void
ChromeTraceSink::close()
{
    if (closed_)
        return;
    closed_ = true;

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    // Synthetic per-lane clocks in microseconds: events arrive in
    // block order, so stacking them end to end per lane reconstructs
    // each lane's share of the run.
    std::map<unsigned, double> clocks;
    for (const TraceEvent &ev : events_) {
        const unsigned tid = zeroTimes_ ? 0 : ev.worker;
        const double dur = zeroTimes_ ? 0.0 : ev.seconds * 1e6;
        double &clock = clocks[tid];
        w.beginObject()
            .key("name").value(ev.phase)
            .key("cat").value("block")
            .key("ph").value("X")
            .key("ts").value(clock)
            .key("dur").value(dur)
            .key("pid").value(std::uint64_t{0})
            .key("tid").value(static_cast<std::uint64_t>(tid));
        w.key("args").beginObject()
            .key("block").value(static_cast<std::uint64_t>(ev.block))
            .key("begin").value(ev.begin)
            .key("insts").value(ev.size)
            .endObject();
        w.endObject();
        clock += dur;
    }
    w.endArray().endObject();
    *out_ << w.take() << '\n';
}

} // namespace sched91::obs
