/**
 * @file
 * Chrome Trace Event Format sink: serializes the pipeline's per-block
 * phase events as a JSON document loadable in `about://tracing`,
 * Perfetto, or speedscope — one `ph:"X"` complete event per phase,
 * `pid` = run, `tid` = worker lane, args carrying block id and size.
 *
 * Format reference: the "Trace Event Format" document (JSON Object
 * Format variant: `{"traceEvents": [...]}`).
 *
 * The pipeline delivers events post-join in block order (via
 * BufferedTraceSink replay), not in wall-clock order, so the sink
 * synthesizes timestamps: each lane carries a cumulative clock and an
 * event occupies [clock, clock + duration) on its lane.  The visual
 * result is a compact per-lane timeline of where the run's time went
 * — the paper's Tables 4/5 phase asymmetry, one box per phase.
 *
 * With zero_times the lane is forced to 0 and durations to 0 (lane
 * assignment and wall-clock both vary run to run), making the whole
 * document byte-comparable across runs and thread counts — the same
 * contract JSONL traces honor under `--zero-times`.
 */

#ifndef SCHED91_OBS_CHROME_TRACE_HH
#define SCHED91_OBS_CHROME_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hh"

namespace sched91::obs
{

/** Buffers trace events and writes one Trace Event Format JSON
 * document on close() (or destruction). */
class ChromeTraceSink final : public TraceSink
{
  public:
    /** @p out must outlive the sink. */
    explicit ChromeTraceSink(std::ostream &out, bool zero_times = false)
        : out_(&out), zeroTimes_(zero_times)
    {
    }

    ~ChromeTraceSink() override { close(); }

    void event(const TraceEvent &ev) override;

    /** Write the buffered document.  Idempotent; called by the
     * destructor if the owner did not. */
    void close();

    std::size_t eventsBuffered() const { return events_.size(); }

  private:
    std::ostream *out_;
    bool zeroTimes_;
    bool closed_ = false;
    std::vector<TraceEvent> events_;
};

/**
 * One span of a service request's trace tree (`sched91 serve`).
 * Parent spans (request, queue wait, ladder rungs, worker respawns)
 * are measured in the daemon; worker spans (the per-phase timings a
 * sandbox worker reports back in its response envelope) are stitched
 * in under the rung that dispatched them, so one request renders as
 * one connected tree whether it ran in-process or crossed — or died
 * at — the sandbox-worker boundary.
 */
struct ServiceSpan
{
    std::string traceId; ///< request trace id (daemon-assigned)
    std::string name;    ///< request|queue|rung|respawn|parse|...
    std::string note;    ///< outcome detail ("ok", "crash: ...")
    unsigned lane = 0;   ///< daemon worker lane
    int rung = -1;       ///< ladder attempt, -1 for request-level
    std::uint64_t startNs = 0; ///< relative to the daemon epoch
    std::uint64_t durNs = 0;
    bool worker = false; ///< measured inside a sandbox worker
};

/**
 * Thread-safe bounded append log of service spans.  Lanes record as
 * requests complete; `trace-dump` (or the drain path) renders the
 * whole log as one Chrome Trace Event Format document at any time.
 * When full, further spans are counted as dropped rather than
 * evicting history — the log is a flight record, not a ring.
 */
class ServiceTraceLog
{
  public:
    explicit ServiceTraceLog(std::size_t capacity = 16384)
        : capacity_(capacity)
    {
    }

    void record(ServiceSpan span);

    std::size_t size() const;
    std::uint64_t dropped() const;

    /**
     * All spans, sorted by (trace id, start, worker flag), as one
     * Chrome Trace Event Format document: `ph:"X"` complete events,
     * tid = lane, trace id / rung / note under args.  Under
     * @p zeroTimes all timestamps, durations, and lanes are zeroed
     * (byte-comparable across runs).
     */
    std::string chromeJson(bool zeroTimes = false) const;

  private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    std::vector<ServiceSpan> spans_;
};

/**
 * Per-request recording context handed down the service call chain
 * (daemon lane -> engine ladder / supervisor dispatch).  Null @ref
 * log (or a null context pointer) disables recording; callers only
 * ever invoke span() and nowNs(), which are no-op safe.
 */
struct RequestTrace
{
    ServiceTraceLog *log = nullptr;
    std::string traceId;
    unsigned lane = 0;
    /** The daemon's start instant; every span is relative to it. */
    std::chrono::steady_clock::time_point epoch{};

    /** Nanoseconds since the epoch (0 before it). */
    std::uint64_t nowNs() const;

    /** Record [startNs, endNs) as one span; no-op without a log. */
    void span(std::string_view name, int rung, std::uint64_t startNs,
              std::uint64_t endNs, std::string_view note = {},
              bool worker = false) const;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_CHROME_TRACE_HH
