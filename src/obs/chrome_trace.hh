/**
 * @file
 * Chrome Trace Event Format sink: serializes the pipeline's per-block
 * phase events as a JSON document loadable in `about://tracing`,
 * Perfetto, or speedscope — one `ph:"X"` complete event per phase,
 * `pid` = run, `tid` = worker lane, args carrying block id and size.
 *
 * Format reference: the "Trace Event Format" document (JSON Object
 * Format variant: `{"traceEvents": [...]}`).
 *
 * The pipeline delivers events post-join in block order (via
 * BufferedTraceSink replay), not in wall-clock order, so the sink
 * synthesizes timestamps: each lane carries a cumulative clock and an
 * event occupies [clock, clock + duration) on its lane.  The visual
 * result is a compact per-lane timeline of where the run's time went
 * — the paper's Tables 4/5 phase asymmetry, one box per phase.
 *
 * With zero_times the lane is forced to 0 and durations to 0 (lane
 * assignment and wall-clock both vary run to run), making the whole
 * document byte-comparable across runs and thread counts — the same
 * contract JSONL traces honor under `--zero-times`.
 */

#ifndef SCHED91_OBS_CHROME_TRACE_HH
#define SCHED91_OBS_CHROME_TRACE_HH

#include <ostream>
#include <vector>

#include "obs/trace.hh"

namespace sched91::obs
{

/** Buffers trace events and writes one Trace Event Format JSON
 * document on close() (or destruction). */
class ChromeTraceSink final : public TraceSink
{
  public:
    /** @p out must outlive the sink. */
    explicit ChromeTraceSink(std::ostream &out, bool zero_times = false)
        : out_(&out), zeroTimes_(zero_times)
    {
    }

    ~ChromeTraceSink() override { close(); }

    void event(const TraceEvent &ev) override;

    /** Write the buffered document.  Idempotent; called by the
     * destructor if the owner did not. */
    void close();

    std::size_t eventsBuffered() const { return events_.size(); }

  private:
    std::ostream *out_;
    bool zeroTimes_;
    bool closed_ = false;
    std::vector<TraceEvent> events_;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_CHROME_TRACE_HH
