#include "obs/counters.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sched91::obs
{

void
setEnabled(bool on)
{
    detail::g_enabled = on;
}

// --- CounterSet ------------------------------------------------------

std::vector<CounterSet::Item>::iterator
CounterSet::lowerBound(std::string_view name)
{
    return std::lower_bound(items_.begin(), items_.end(), name,
                            [](const Item &item, std::string_view key) {
                                return item.first < key;
                            });
}

std::vector<CounterSet::Item>::const_iterator
CounterSet::lowerBound(std::string_view name) const
{
    return std::lower_bound(items_.begin(), items_.end(), name,
                            [](const Item &item, std::string_view key) {
                                return item.first < key;
                            });
}

void
CounterSet::set(std::string name, std::uint64_t value)
{
    auto it = lowerBound(name);
    if (it != items_.end() && it->first == name)
        it->second = value;
    else
        items_.insert(it, Item{std::move(name), value});
}

std::uint64_t
CounterSet::value(std::string_view name) const
{
    auto it = lowerBound(name);
    return it != items_.end() && it->first == name ? it->second : 0;
}

bool
CounterSet::contains(std::string_view name) const
{
    auto it = lowerBound(name);
    return it != items_.end() && it->first == name;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const Item &item : other.items_) {
        auto it = lowerBound(item.first);
        if (it != items_.end() && it->first == item.first)
            it->second += item.second;
        else
            items_.insert(it, item);
    }
}

CounterSet
CounterSet::nonzero() const
{
    CounterSet out;
    for (const Item &item : items_)
        if (item.second != 0)
            out.items_.push_back(item);
    return out;
}

// --- CounterRegistry -------------------------------------------------

CounterRegistry &
CounterRegistry::global()
{
    static CounterRegistry instance;
    return instance;
}

std::size_t
CounterRegistry::add(std::string_view name)
{
    if (index_.find(name) != index_.end())
        panic("duplicate counter '", std::string(name), "'");
    std::size_t id = names_.size();
    names_.emplace_back(name);
    slots_.push_back(0);
    index_.emplace(names_.back(), id);
    return id;
}

std::size_t
CounterRegistry::getOrAdd(std::string_view name)
{
    auto it = index_.find(name);
    return it != index_.end() ? it->second : add(name);
}

std::size_t
CounterRegistry::find(std::string_view name) const
{
    auto it = index_.find(name);
    return it != index_.end() ? it->second : npos;
}

std::uint64_t
CounterRegistry::valueByName(std::string_view name) const
{
    std::size_t id = find(name);
    return id == npos ? 0 : slots_[id];
}

void
CounterRegistry::resetAll()
{
    std::fill(slots_.begin(), slots_.end(), 0);
}

CounterSet
CounterRegistry::snapshot() const
{
    CounterSet out;
    for (std::size_t id = 0; id < names_.size(); ++id)
        out.set(names_[id], slots_[id]);
    return out;
}

CounterSet
CounterRegistry::deltaSince(const CounterSet &before) const
{
    CounterSet out;
    for (std::size_t id = 0; id < names_.size(); ++id)
        out.set(names_[id], slots_[id] - before.value(names_[id]));
    return out;
}

} // namespace sched91::obs
