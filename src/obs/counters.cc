#include "obs/counters.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sched91::obs
{

void
setEnabled(bool on)
{
    detail::g_enabled = on;
}

// --- CounterSet ------------------------------------------------------

std::vector<CounterSet::Item>::iterator
CounterSet::lowerBound(std::string_view name)
{
    return std::lower_bound(items_.begin(), items_.end(), name,
                            [](const Item &item, std::string_view key) {
                                return item.first < key;
                            });
}

std::vector<CounterSet::Item>::const_iterator
CounterSet::lowerBound(std::string_view name) const
{
    return std::lower_bound(items_.begin(), items_.end(), name,
                            [](const Item &item, std::string_view key) {
                                return item.first < key;
                            });
}

void
CounterSet::set(std::string name, std::uint64_t value)
{
    auto it = lowerBound(name);
    if (it != items_.end() && it->first == name)
        it->second = value;
    else
        items_.insert(it, Item{std::move(name), value});
}

std::uint64_t
CounterSet::value(std::string_view name) const
{
    auto it = lowerBound(name);
    return it != items_.end() && it->first == name ? it->second : 0;
}

bool
CounterSet::contains(std::string_view name) const
{
    auto it = lowerBound(name);
    return it != items_.end() && it->first == name;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const Item &item : other.items_) {
        auto it = lowerBound(item.first);
        if (it != items_.end() && it->first == item.first)
            it->second += item.second;
        else
            items_.insert(it, item);
    }
}

CounterSet
CounterSet::nonzero() const
{
    CounterSet out;
    for (const Item &item : items_)
        if (item.second != 0)
            out.items_.push_back(item);
    return out;
}

void
mergeCounterSets(CounterSet &into, const CounterSet &from,
                 const CounterRegistry &registry)
{
    for (const CounterSet::Item &item : from.items()) {
        if (registry.kindByName(item.first) == CounterKind::Max) {
            if (item.second > into.value(item.first))
                into.set(item.first, item.second);
        } else if (item.second != 0 || !into.contains(item.first)) {
            into.set(item.first, into.value(item.first) + item.second);
        }
    }
}

// --- CounterRegistry -------------------------------------------------

CounterRegistry &
CounterRegistry::global()
{
    static CounterRegistry instance;
    return instance;
}

std::size_t
CounterRegistry::addLocked(std::string_view name, CounterKind kind)
{
    std::size_t id = names_.size();
    names_.emplace_back(name);
    kinds_.push_back(kind);
    slots_.push_back(0);
    index_.emplace(names_.back(), id);
    return id;
}

std::size_t
CounterRegistry::findLocked(std::string_view name) const
{
    auto it = index_.find(name);
    return it != index_.end() ? it->second : npos;
}

std::size_t
CounterRegistry::add(std::string_view name, CounterKind kind)
{
    std::lock_guard<std::mutex> lock(regMu_);
    if (index_.find(name) != index_.end())
        panic("duplicate counter '", std::string(name), "'");
    return addLocked(name, kind);
}

std::size_t
CounterRegistry::getOrAdd(std::string_view name, CounterKind kind)
{
    std::lock_guard<std::mutex> lock(regMu_);
    std::size_t id = findLocked(name);
    return id != npos ? id : addLocked(name, kind);
}

std::size_t
CounterRegistry::find(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(regMu_);
    return findLocked(name);
}

std::size_t
CounterRegistry::size() const
{
    std::lock_guard<std::mutex> lock(regMu_);
    return names_.size();
}

CounterKind
CounterRegistry::kindByName(std::string_view name) const
{
    std::size_t id = find(name);
    return id == npos ? CounterKind::Sum : kinds_[id];
}

std::uint64_t
CounterRegistry::valueByName(std::string_view name) const
{
    std::size_t id = find(name);
    return id == npos ? 0 : slots_[id];
}

void
CounterRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(regMu_);
    std::fill(slots_.begin(), slots_.end(), 0);
}

CounterSet
CounterRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(regMu_);
    CounterSet out;
    for (std::size_t id = 0; id < names_.size(); ++id)
        out.set(names_[id], slots_[id]);
    return out;
}

CounterSet
CounterRegistry::deltaSince(const CounterSet &before) const
{
    std::lock_guard<std::mutex> lock(regMu_);
    CounterSet out;
    for (std::size_t id = 0; id < names_.size(); ++id)
        out.set(names_[id], slots_[id] - before.value(names_[id]));
    return out;
}

// --- CounterShard ----------------------------------------------------

void
CounterShard::clear()
{
    std::fill(slots_.begin(), slots_.end(), 0);
}

CounterSet
CounterShard::snapshot() const
{
    CounterSet out;
    for (std::size_t id = 0; id < registry_->size(); ++id)
        out.set(registry_->name(id), value(id));
    return out;
}

CounterSet
CounterShard::deltaSince(const CounterSet &before) const
{
    CounterSet out;
    for (std::size_t id = 0; id < registry_->size(); ++id) {
        // A Max gauge is a per-interval peak: subtraction against an
        // earlier peak is meaningless, so report the value as-is.
        std::uint64_t v = value(id);
        if (registry_->kind(id) == CounterKind::Sum)
            v -= before.value(registry_->name(id));
        out.set(registry_->name(id), v);
    }
    return out;
}

void
CounterShard::flushInto(CounterShard &into) const
{
    for (std::size_t id = 0; id < slots_.size(); ++id) {
        if (slots_[id] == 0)
            continue;
        if (registry_->kind(id) == CounterKind::Max)
            into.recordMax(id, slots_[id]);
        else
            into.add(id, slots_[id]);
    }
}

void
CounterShard::flushInto(CounterRegistry &into) const
{
    for (std::size_t id = 0; id < slots_.size(); ++id) {
        if (slots_[id] == 0)
            continue;
        if (registry_->kind(id) == CounterKind::Max)
            into.recordMax(id, slots_[id]);
        else
            into.increment(id, slots_[id]);
    }
}

CounterSet
counterSetDelta(const CounterSet &now, const CounterSet &before,
                const CounterRegistry &registry)
{
    CounterSet out;
    for (const auto &[name, value] : now.items()) {
        std::uint64_t v = value;
        if (registry.kindByName(name) == CounterKind::Sum) {
            const std::uint64_t prev = before.value(name);
            v = v > prev ? v - prev : 0;
        }
        out.set(name, v);
    }
    return out;
}

CounterSet
SnapshotDeltaTracker::advance(const CounterSet &now)
{
    CounterSet delta = counterSetDelta(now, last_, *registry_);
    last_ = now;
    return delta;
}

// --- Thread-active helpers -------------------------------------------

CounterSet
activeSnapshot()
{
    if (detail::t_shard)
        return detail::t_shard->snapshot();
    return CounterRegistry::global().snapshot();
}

CounterSet
activeDeltaSince(const CounterSet &before)
{
    if (detail::t_shard)
        return detail::t_shard->deltaSince(before);
    return CounterRegistry::global().deltaSince(before);
}

} // namespace sched91::obs
