/**
 * @file
 * Event-counter registry: the observability layer's answer to the
 * paper's Table 1 cost legend.  Every heuristic is classified by
 * *when* its work happens — 'a' at add-arc time, 'f' in the forward
 * pass, 'b' in the backward pass, 'v' at node visitation — and the
 * counters here count exactly those events (`dag.arcs_added`,
 * `heur.forward_visits`, `sched.node_visits`, ...), turning the
 * classification into measurable quantities per run, per block, and
 * per phase.
 *
 * Design (gem5-style stats registry discipline):
 *
 *  - a process-wide CounterRegistry holds named 64-bit slots with
 *    stable addresses;
 *  - instrumentation sites hold a Counter handle (one pointer);
 *    increments cost a single predictable branch on the global
 *    enable flag — nothing else — so the hot paths of Tables 4/5
 *    are unaffected when observability is off (the default);
 *  - CounterSet snapshots/deltas make counters resettable per block
 *    or per phase without disturbing program-wide totals.
 *
 * Parallel runs add one more layer: a CounterShard is a flat,
 * thread-private copy of the registry's slots.  The pipeline installs
 * one per worker (ScopedCounterShard), instrumentation sites route
 * into it, and after the parallel region the shards are flushed back
 * into the registry in a fixed order.  Each counter carries a
 * CounterKind so the flush knows how to combine shard values: Sum
 * counters add, Max counters (gauges such as `sched.ready_list_peak`)
 * take the high-water mark.
 */

#ifndef SCHED91_OBS_COUNTERS_HH
#define SCHED91_OBS_COUNTERS_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sched91::obs
{

class CounterShard;

/** How concurrent observations of one counter combine. */
enum class CounterKind : std::uint8_t
{
    Sum, ///< monotone event count; shards add
    Max, ///< high-water gauge; shards take the maximum
};

namespace detail
{
/** Global enable flag; read on every increment, written rarely. */
inline bool g_enabled = false;

/** Shard the calling thread routes increments into (none by default). */
inline thread_local CounterShard *t_shard = nullptr;
} // namespace detail

/** Whether event counting and phase-tree profiling are active. */
inline bool enabled() { return detail::g_enabled; }

/** Turn the observability layer on or off (off by default). */
void setEnabled(bool on);

/**
 * An ordered name -> value mapping: a snapshot of a registry, or a
 * delta between two snapshots.  Plain data, mergeable.
 */
class CounterSet
{
  public:
    using Item = std::pair<std::string, std::uint64_t>;

    CounterSet() = default;

    /** Add (or overwrite) one entry. */
    void set(std::string name, std::uint64_t value);

    /** Value by name; 0 when absent. */
    std::uint64_t value(std::string_view name) const;

    bool contains(std::string_view name) const;

    /** Sum @p other into this set, name by name. */
    void merge(const CounterSet &other);

    /** Copy with zero-valued entries dropped. */
    CounterSet nonzero() const;

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    /** Entries in ascending name order. */
    const std::vector<Item> &items() const { return items_; }

    friend bool
    operator==(const CounterSet &a, const CounterSet &b)
    {
        return a.items_ == b.items_;
    }

  private:
    std::vector<Item> items_; ///< kept sorted by name

    std::vector<Item>::iterator lowerBound(std::string_view name);
    std::vector<Item>::const_iterator
    lowerBound(std::string_view name) const;
};

/**
 * Registry of named counters.  One process-wide instance backs the
 * instrumented library; tests may create private instances.
 *
 * Registration and name-indexed reads are internally locked: handles
 * bind lazily (function-local statics on whatever thread first uses
 * an instrumented path), and a live telemetry scrape (`sched91
 * serve`'s stats endpoint) may snapshot the registry at the same
 * moment.  Id-indexed hot-path accessors (increment, value, kind,
 * slotAddress) stay lock-free: every per-id container is a deque, so
 * registration never relocates an existing slot.
 */
class CounterRegistry
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** The process-wide registry the Counter handles bind to. */
    static CounterRegistry &global();

    CounterRegistry() = default;
    CounterRegistry(const CounterRegistry &) = delete;
    CounterRegistry &operator=(const CounterRegistry &) = delete;

    /**
     * Register a new counter.  A duplicate name is a programming
     * error and panics; use getOrAdd() for idempotent binding.
     */
    std::size_t add(std::string_view name,
                    CounterKind kind = CounterKind::Sum);

    /** Id of an existing counter, or register it. */
    std::size_t getOrAdd(std::string_view name,
                         CounterKind kind = CounterKind::Sum);

    /** Id by name, npos when absent. */
    std::size_t find(std::string_view name) const;

    std::size_t size() const;
    const std::string &name(std::size_t id) const { return names_[id]; }
    CounterKind kind(std::size_t id) const { return kinds_[id]; }
    std::uint64_t value(std::size_t id) const { return slots_[id]; }

    /** Kind by name; Sum when the name is not registered. */
    CounterKind kindByName(std::string_view name) const;

    /** Value by name; 0 when absent (so probes never fault). */
    std::uint64_t valueByName(std::string_view name) const;

    void increment(std::size_t id, std::uint64_t by = 1)
    {
        slots_[id] += by;
    }

    /** Raise a high-water-mark counter to @p v if it is larger. */
    void recordMax(std::size_t id, std::uint64_t v)
    {
        if (v > slots_[id])
            slots_[id] = v;
    }

    /** Zero every slot (registrations are kept). */
    void resetAll();

    /** Snapshot of all counters. */
    CounterSet snapshot() const;

    /** now - before, name by name (names absent from @p before count
     * from zero). */
    CounterSet deltaSince(const CounterSet &before) const;

    /** Stable slot address for handle-based increments. */
    std::uint64_t *slotAddress(std::size_t id) { return &slots_[id]; }

  private:
    std::size_t addLocked(std::string_view name, CounterKind kind);
    std::size_t findLocked(std::string_view name) const;

    /** Guards registration and the name index; by-id reads need no
     * lock (deques keep existing elements in place on append). */
    mutable std::mutex regMu_;
    std::deque<std::string> names_;
    std::deque<CounterKind> kinds_;
    std::deque<std::uint64_t> slots_; ///< deque: stable addresses
    std::map<std::string, std::size_t, std::less<>> index_;
};

/**
 * Combine @p from into @p into respecting each counter's kind as
 * registered in @p registry: Sum entries add, Max entries keep the
 * larger value.  Names unknown to the registry default to Sum.
 */
void mergeCounterSets(CounterSet &into, const CounterSet &from,
                      const CounterRegistry &registry);

/**
 * Kind-aware delta between two successive snapshots of the same
 * source: Sum counters subtract (clamped at zero, so a reset source
 * never yields an underflowed delta), Max gauges report the current
 * value as-is — a high-water mark has no meaningful subtraction.
 * Names only present in @p before are dropped (their delta is zero or
 * meaningless); names unknown to @p registry default to Sum.
 */
CounterSet counterSetDelta(const CounterSet &now,
                           const CounterSet &before,
                           const CounterRegistry &registry);

/**
 * Bookkeeping for periodic delta emission (`--snapshot-seconds`):
 * remembers the previous observation and yields the kind-aware delta
 * each time a new snapshot arrives.  The first advance() deltas
 * against zero, so the first emitted snapshot covers everything since
 * startup.
 */
class SnapshotDeltaTracker
{
  public:
    explicit SnapshotDeltaTracker(const CounterRegistry &registry)
        : registry_(&registry)
    {
    }

    /** Delta of @p now against the previous call; remembers @p now. */
    CounterSet advance(const CounterSet &now);

  private:
    const CounterRegistry *registry_;
    CounterSet last_;
};

/**
 * Thread-private mirror of a registry's slots.  Instrumentation
 * handles route into the installed shard instead of the shared slots,
 * so workers never write the same memory; flushInto() folds the shard
 * back (kind-aware) once the owning thread has quiesced.
 *
 * The pipeline clears the shard at each block boundary, which also
 * makes Max gauges *per-block* peaks — exactly the value a per-block
 * delta should report, independent of which blocks ran earlier on the
 * same worker.
 */
class CounterShard
{
  public:
    explicit CounterShard(CounterRegistry &registry)
        : registry_(&registry)
    {
    }

    CounterRegistry &registry() const { return *registry_; }

    void
    add(std::size_t id, std::uint64_t n)
    {
        grow(id);
        slots_[id] += n;
    }

    void
    recordMax(std::size_t id, std::uint64_t v)
    {
        grow(id);
        if (v > slots_[id])
            slots_[id] = v;
    }

    std::uint64_t
    value(std::size_t id) const
    {
        return id < slots_.size() ? slots_[id] : 0;
    }

    /** Zero every slot (capacity is kept for reuse). */
    void clear();

    /** All registry names with this shard's values. */
    CounterSet snapshot() const;

    /** now - before for Sum counters; for Max counters the shard value
     * itself (a per-interval peak has no meaningful subtraction). */
    CounterSet deltaSince(const CounterSet &before) const;

    /** Fold this shard into another (kind-aware); both must mirror the
     * same registry. */
    void flushInto(CounterShard &into) const;

    /** Fold this shard into the shared registry slots (kind-aware). */
    void flushInto(CounterRegistry &into) const;

  private:
    void
    grow(std::size_t id)
    {
        if (id >= slots_.size())
            slots_.resize(std::max(registry_->size(), id + 1), 0);
    }

    CounterRegistry *registry_;
    std::vector<std::uint64_t> slots_;
};

/** RAII installer: route this thread's counter traffic into @p shard. */
class ScopedCounterShard
{
  public:
    explicit ScopedCounterShard(CounterShard &shard)
        : prev_(detail::t_shard)
    {
        detail::t_shard = &shard;
    }

    ~ScopedCounterShard() { detail::t_shard = prev_; }

    ScopedCounterShard(const ScopedCounterShard &) = delete;
    ScopedCounterShard &operator=(const ScopedCounterShard &) = delete;

  private:
    CounterShard *prev_;
};

/** Snapshot of whatever the calling thread's increments land in: the
 * installed shard if any, else the global registry. */
CounterSet activeSnapshot();

/** Delta against activeSnapshot()'s source (see CounterShard's note on
 * Max counters). */
CounterSet activeDeltaSince(const CounterSet &before);

/**
 * Cheap instrumentation handle bound to one registry slot.  Intended
 * for namespace-scope inline definitions (see obs/events.hh): binding
 * happens once at static initialization, and the hot-path cost of
 * inc()/max() with observability disabled is the single branch the
 * acceptance contract allows.  When enabled, increments divert to the
 * calling thread's installed CounterShard, if any.
 */
class Counter
{
  public:
    /** Bind to (registering if needed) @p name in the global registry. */
    explicit Counter(const char *name,
                     CounterKind kind = CounterKind::Sum)
        : Counter(CounterRegistry::global(), name, kind)
    {
    }

    Counter(CounterRegistry &registry, const char *name,
            CounterKind kind = CounterKind::Sum)
        : registry_(&registry), id_(registry.getOrAdd(name, kind)),
          slot_(registry.slotAddress(id_)), name_(name)
    {
    }

    void inc(std::uint64_t n = 1)
    {
        if (!detail::g_enabled)
            return;
        if (CounterShard *shard = detail::t_shard;
            shard && &shard->registry() == registry_)
            shard->add(id_, n);
        else
            *slot_ += n;
    }

    /** Record a high-water mark (gauge-style counter). */
    void max(std::uint64_t v)
    {
        if (!detail::g_enabled)
            return;
        if (CounterShard *shard = detail::t_shard;
            shard && &shard->registry() == registry_)
            shard->recordMax(id_, v);
        else if (v > *slot_)
            *slot_ = v;
    }

    std::uint64_t value() const { return *slot_; }
    const char *name() const { return name_; }

  private:
    CounterRegistry *registry_;
    std::size_t id_;
    std::uint64_t *slot_;
    const char *name_;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_COUNTERS_HH
