/**
 * @file
 * Event-counter registry: the observability layer's answer to the
 * paper's Table 1 cost legend.  Every heuristic is classified by
 * *when* its work happens — 'a' at add-arc time, 'f' in the forward
 * pass, 'b' in the backward pass, 'v' at node visitation — and the
 * counters here count exactly those events (`dag.arcs_added`,
 * `heur.forward_visits`, `sched.node_visits`, ...), turning the
 * classification into measurable quantities per run, per block, and
 * per phase.
 *
 * Design (gem5-style stats registry discipline):
 *
 *  - a process-wide CounterRegistry holds named 64-bit slots with
 *    stable addresses;
 *  - instrumentation sites hold a Counter handle (one pointer);
 *    increments cost a single predictable branch on the global
 *    enable flag — nothing else — so the hot paths of Tables 4/5
 *    are unaffected when observability is off (the default);
 *  - CounterSet snapshots/deltas make counters resettable per block
 *    or per phase without disturbing program-wide totals.
 */

#ifndef SCHED91_OBS_COUNTERS_HH
#define SCHED91_OBS_COUNTERS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sched91::obs
{

namespace detail
{
/** Global enable flag; read on every increment, written rarely. */
inline bool g_enabled = false;
} // namespace detail

/** Whether event counting and phase-tree profiling are active. */
inline bool enabled() { return detail::g_enabled; }

/** Turn the observability layer on or off (off by default). */
void setEnabled(bool on);

/**
 * An ordered name -> value mapping: a snapshot of a registry, or a
 * delta between two snapshots.  Plain data, mergeable.
 */
class CounterSet
{
  public:
    using Item = std::pair<std::string, std::uint64_t>;

    CounterSet() = default;

    /** Add (or overwrite) one entry. */
    void set(std::string name, std::uint64_t value);

    /** Value by name; 0 when absent. */
    std::uint64_t value(std::string_view name) const;

    bool contains(std::string_view name) const;

    /** Sum @p other into this set, name by name. */
    void merge(const CounterSet &other);

    /** Copy with zero-valued entries dropped. */
    CounterSet nonzero() const;

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    /** Entries in ascending name order. */
    const std::vector<Item> &items() const { return items_; }

  private:
    std::vector<Item> items_; ///< kept sorted by name

    std::vector<Item>::iterator lowerBound(std::string_view name);
    std::vector<Item>::const_iterator
    lowerBound(std::string_view name) const;
};

/**
 * Registry of named counters.  One process-wide instance backs the
 * instrumented library; tests may create private instances.
 */
class CounterRegistry
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** The process-wide registry the Counter handles bind to. */
    static CounterRegistry &global();

    CounterRegistry() = default;
    CounterRegistry(const CounterRegistry &) = delete;
    CounterRegistry &operator=(const CounterRegistry &) = delete;

    /**
     * Register a new counter.  A duplicate name is a programming
     * error and panics; use getOrAdd() for idempotent binding.
     */
    std::size_t add(std::string_view name);

    /** Id of an existing counter, or register it. */
    std::size_t getOrAdd(std::string_view name);

    /** Id by name, npos when absent. */
    std::size_t find(std::string_view name) const;

    std::size_t size() const { return names_.size(); }
    const std::string &name(std::size_t id) const { return names_[id]; }
    std::uint64_t value(std::size_t id) const { return slots_[id]; }

    /** Value by name; 0 when absent (so probes never fault). */
    std::uint64_t valueByName(std::string_view name) const;

    void increment(std::size_t id, std::uint64_t by = 1)
    {
        slots_[id] += by;
    }

    /** Raise a high-water-mark counter to @p v if it is larger. */
    void recordMax(std::size_t id, std::uint64_t v)
    {
        if (v > slots_[id])
            slots_[id] = v;
    }

    /** Zero every slot (registrations are kept). */
    void resetAll();

    /** Snapshot of all counters. */
    CounterSet snapshot() const;

    /** now - before, name by name (names absent from @p before count
     * from zero). */
    CounterSet deltaSince(const CounterSet &before) const;

    /** Stable slot address for handle-based increments. */
    std::uint64_t *slotAddress(std::size_t id) { return &slots_[id]; }

  private:
    std::vector<std::string> names_;
    std::deque<std::uint64_t> slots_; ///< deque: stable addresses
    std::map<std::string, std::size_t, std::less<>> index_;
};

/**
 * Cheap instrumentation handle bound to one registry slot.  Intended
 * for namespace-scope inline definitions (see obs/events.hh): binding
 * happens once at static initialization, and the hot-path cost of
 * inc()/max() with observability disabled is the single branch the
 * acceptance contract allows.
 */
class Counter
{
  public:
    /** Bind to (registering if needed) @p name in the global registry. */
    explicit Counter(const char *name)
        : Counter(CounterRegistry::global(), name)
    {
    }

    Counter(CounterRegistry &registry, const char *name)
        : slot_(registry.slotAddress(registry.getOrAdd(name))), name_(name)
    {
    }

    void inc(std::uint64_t n = 1)
    {
        if (detail::g_enabled)
            *slot_ += n;
    }

    /** Record a high-water mark (gauge-style counter). */
    void max(std::uint64_t v)
    {
        if (detail::g_enabled && v > *slot_)
            *slot_ = v;
    }

    std::uint64_t value() const { return *slot_; }
    const char *name() const { return name_; }

  private:
    std::uint64_t *slot_;
    const char *name_;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_COUNTERS_HH
