#include "obs/emitter.hh"

#include <algorithm>

#include "obs/json.hh"
#include "support/string_util.hh"

namespace sched91::obs
{

namespace
{

void
writeMinMaxAvg(JsonWriter &w, const MinMaxAvg &s)
{
    w.beginObject()
        .key("max").value(s.max())
        .key("avg").value(s.avg())
        .endObject();
}

void
writeCounterSet(JsonWriter &w, const CounterSet &counters)
{
    // Bind the filtered set before iterating: items() references the
    // set's own storage, and a temporary would die before the loop.
    CounterSet nz = counters.nonzero();
    w.beginObject();
    for (const auto &[name, value] : nz.items())
        w.key(name).value(value);
    w.endObject();
}

void
writeHistogram(JsonWriter &w, const Histogram &h, bool zero_values)
{
    // zero_values: a duration histogram under zeroTimes — the event
    // *count* is deterministic, the nanosecond values are wall-clock
    // noise, so only the count survives.
    w.beginObject()
        .key("count").value(h.count())
        .key("sum").value(zero_values ? 0 : h.sum())
        .key("min").value(zero_values ? 0 : h.min())
        .key("max").value(zero_values ? 0 : h.max())
        .key("mean").value(zero_values ? 0.0 : h.mean())
        .key("p50").value(zero_values ? 0 : h.percentile(50))
        .key("p90").value(zero_values ? 0 : h.percentile(90))
        .key("p99").value(zero_values ? 0 : h.percentile(99));
    w.key("buckets").beginArray();
    if (!zero_values) {
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            w.beginObject()
                .key("lo").value(Histogram::bucketLo(i))
                .key("hi").value(Histogram::bucketHi(i))
                .key("count").value(h.bucketCount(i))
                .endObject();
        }
    }
    w.endArray().endObject();
}

/** Human name of a DecisionRecord's deciding rank. */
std::string_view
decidedByName(const DecisionTrace &trace, std::int32_t rank)
{
    if (rank == DecisionStats::kDecidedTrivial)
        return "trivial";
    if (rank == DecisionStats::kDecidedOriginalOrder)
        return "original-order";
    if (rank >= 0 &&
        static_cast<std::size_t>(rank) < trace.rankNames.size())
        return trace.rankNames[static_cast<std::size_t>(rank)];
    return "?";
}

void
writeDecisions(JsonWriter &w, const DecisionTrace &trace)
{
    const DecisionStats &s = trace.stats;
    w.beginObject()
        .key("block").value(trace.block)
        .key("algorithm").value(trace.algorithm)
        .key("total_picks").value(s.totalPicks)
        .key("trivial_picks").value(s.trivialPicks)
        .key("original_order_ties").value(s.originalOrderTies);
    w.key("ranks").beginArray();
    for (std::size_t r = 0; r < trace.rankNames.size(); ++r) {
        w.beginObject()
            .key("name").value(trace.rankNames[r])
            .key("decided")
            .value(r < s.decidedAtRank.size() ? s.decidedAtRank[r] : 0)
            .endObject();
    }
    w.endArray();
    w.key("log").beginArray();
    for (const DecisionRecord &rec : s.log) {
        w.beginObject()
            .key("pick").value(rec.pick)
            .key("node").value(rec.node)
            .key("ready").value(rec.readySize)
            .key("decided_by").value(decidedByName(trace, rec.decidedRank))
            .key("time").value(rec.time)
            .key("inst")
            .value(rec.node < trace.insts.size() ? trace.insts[rec.node]
                                                 : std::string{})
            .endObject();
    }
    w.endArray().endObject();
}

/** The outlier fields shared by the stats section and the bundle. */
void
writeOutlierBody(JsonWriter &w, const OutlierRecord &r,
                 const EmitOptions &opts, bool with_source)
{
    const double zt = opts.zeroTimes ? 0.0 : 1.0;
    w.key("block").value(static_cast<std::uint64_t>(r.block))
        .key("score").value(r.score)
        .key("begin").value(r.begin)
        .key("insts").value(r.size);
    w.key("dag").beginObject()
        .key("nodes").value(r.dagNodes)
        .key("arcs").value(r.dagArcs)
        .endObject();
    w.key("seconds").beginObject()
        .key("build").value(zt * r.buildSeconds)
        .key("heur").value(zt * r.heurSeconds)
        .key("sched").value(zt * r.schedSeconds)
        .key("verify").value(zt * r.verifySeconds)
        .endObject();
    w.key("counters");
    writeCounterSet(w, r.counters);
    w.key("issue").beginObject()
        .key("stage").value(r.stage)
        .key("reason").value(r.reason)
        .key("degraded").value(r.degraded)
        .key("fallback").value(r.fallback)
        .endObject();
    if (with_source)
        w.key("source").value(r.source);
}

void
writePhaseTree(JsonWriter &w, const PhaseStats &node, bool zero_times)
{
    w.beginObject()
        .key("name").value(node.name)
        .key("entries").value(node.entries)
        .key("seconds").value(zero_times ? 0.0 : node.seconds);
    w.key("counters");
    writeCounterSet(w, node.counters);
    w.key("children").beginArray();
    for (const PhaseStats &child : node.children)
        writePhaseTree(w, child, zero_times);
    w.endArray().endObject();
}

} // namespace

std::string
programResultJson(const ProgramResult &result, const RunMeta &meta,
                  const CounterSet &counters, const PhaseStats *phases,
                  const EmitOptions &opts)
{
    JsonWriter w;
    w.beginObject();

    w.key("meta").beginObject()
        .key("tool").value("sched91")
        .key("command").value(meta.command)
        .key("input").value(meta.input)
        .key("builder").value(meta.builder)
        .key("algorithm").value(meta.algorithm)
        .key("machine").value(meta.machine);
    if (!meta.policy.empty())
        w.key("policy").value(meta.policy);
    if (!meta.traceId.empty())
        w.key("trace_id").value(meta.traceId);
    w.endObject();

    w.key("blocks").value(static_cast<std::uint64_t>(result.numBlocks))
        .key("instructions")
        .value(static_cast<std::uint64_t>(result.numInsts));

    const double zt = opts.zeroTimes ? 0.0 : 1.0;
    w.key("phases").beginObject()
        .key("build_seconds").value(zt * result.buildSeconds)
        .key("heur_seconds").value(zt * result.heurSeconds)
        .key("sched_seconds").value(zt * result.schedSeconds)
        .key("total_seconds").value(zt * result.totalSeconds())
        .endObject();

    const DagStructure &d = result.dagStats;
    w.key("dag").beginObject()
        .key("total_arcs").value(static_cast<std::uint64_t>(d.totalArcs))
        .key("total_nodes").value(static_cast<std::uint64_t>(d.totalNodes))
        .key("duplicate_arc_attempts")
        .value(static_cast<std::uint64_t>(d.duplicateArcAttempts))
        .key("suppressed_arcs")
        .value(static_cast<std::uint64_t>(d.suppressedArcs));
    w.key("arcs_per_block");
    writeMinMaxAvg(w, d.arcsPerBlock);
    w.key("children_per_inst");
    writeMinMaxAvg(w, d.childrenPerInst);
    w.key("trees_per_block");
    writeMinMaxAvg(w, d.treesPerBlock);
    w.endObject();

    if (result.cyclesOriginal != 0 || result.cyclesScheduled != 0) {
        w.key("cycles").beginObject()
            .key("original").value(result.cyclesOriginal)
            .key("scheduled").value(result.cyclesScheduled)
            .endObject();
    }

    w.key("robust").beginObject()
        .key("blocks_degraded")
        .value(static_cast<std::uint64_t>(result.blocksDegraded))
        .key("builder_fallbacks")
        .value(static_cast<std::uint64_t>(result.builderFallbacks))
        .key("verifier_rejections")
        .value(static_cast<std::uint64_t>(result.verifierRejections))
        .key("parse_errors")
        .value(static_cast<std::uint64_t>(result.parseErrors))
        .key("parse_warnings")
        .value(static_cast<std::uint64_t>(result.parseWarnings));
    w.key("block_issues").beginArray();
    for (const ProgramResult::BlockIssue &issue : result.blockIssues) {
        w.beginObject()
            .key("block").value(static_cast<std::uint64_t>(issue.block))
            .key("stage").value(issue.stage)
            .key("reason").value(issue.reason)
            .key("degraded").value(issue.degraded)
            .endObject();
    }
    w.endArray().endObject();

    if (!result.decisions.empty()) {
        w.key("decisions");
        writeDecisions(w, result.decisions);
    }

    if (!result.outliers.empty()) {
        w.key("outliers").beginArray();
        for (const OutlierRecord &r : result.outliers) {
            // No source text in the stats document — the per-block
            // bundles carry it; here it would dwarf everything else.
            w.beginObject();
            writeOutlierBody(w, r, opts, false);
            w.endObject();
        }
        w.endArray();
    }

    w.key("counters");
    writeCounterSet(w, counters);

    w.key("histograms").beginObject();
    for (const auto &[name, hist] : result.histograms.items()) {
        w.key(name);
        writeHistogram(w, hist,
                       opts.zeroTimes && isTimeHistogram(name));
    }
    w.endObject();

    // The deterministic/environmental split (obs/memory.hh): the
    // environmental gauges vary with lane assignment and process
    // history, so zeroTimes zeroes them the way it zeroes seconds.
    const MemoryStats &m = result.memory;
    w.key("memory").beginObject()
        .key("arena_bytes_allocated").value(m.arenaBytesAllocated)
        .key("arena_high_water_bytes").value(m.arenaHighWaterBytes)
        .key("dag_arcs").value(m.dagArcs)
        .key("dag_arc_bytes").value(m.dagArcBytes)
        .key("arena_reserved_bytes")
        .value(opts.zeroTimes ? 0 : m.arenaReservedBytes)
        .key("arena_chunks").value(opts.zeroTimes ? 0 : m.arenaChunks)
        .key("peak_rss_bytes")
        .value(opts.zeroTimes ? 0 : m.peakRssBytes)
        .endObject();

    if (phases) {
        w.key("phase_tree").beginArray();
        for (const PhaseStats &child : phases->children)
            writePhaseTree(w, child, opts.zeroTimes);
        w.endArray();
    }

    w.endObject();
    return w.take();
}

std::string
counterSetJson(const CounterSet &counters)
{
    JsonWriter w;
    writeCounterSet(w, counters);
    return w.take();
}

std::string
renderCounters(const CounterSet &counters)
{
    CounterSet nz = counters.nonzero();
    std::size_t width = 0;
    for (const auto &[name, value] : nz.items())
        width = std::max(width, name.size());
    std::string out;
    for (const auto &[name, value] : nz.items()) {
        out += padRight(name, width + 2);
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

std::string
outlierBundleJson(const OutlierRecord &record, const RunMeta &meta,
                  const EmitOptions &opts)
{
    JsonWriter w;
    w.beginObject().key("sched91_outlier").value(1);
    w.key("meta").beginObject()
        .key("tool").value("sched91")
        .key("command").value(meta.command)
        .key("input").value(meta.input)
        .key("builder").value(meta.builder)
        .key("algorithm").value(meta.algorithm)
        .key("machine").value(meta.machine);
    if (!meta.policy.empty())
        w.key("policy").value(meta.policy);
    if (!meta.traceId.empty())
        w.key("trace_id").value(meta.traceId);
    w.endObject();
    writeOutlierBody(w, record, opts, true);
    w.endObject();
    return w.take();
}

std::string
renderDecisionTrace(const DecisionTrace &trace)
{
    if (trace.empty())
        return {};
    const DecisionStats &s = trace.stats;
    std::string out;
    out += "block " + std::to_string(trace.block) + "  algorithm " +
           trace.algorithm + "  picks " + std::to_string(s.totalPicks) +
           "  (trivial " + std::to_string(s.trivialPicks) +
           ", original-order " + std::to_string(s.originalOrderTies) +
           ")\n";

    std::size_t name_width = std::string_view{"decided-by"}.size();
    for (const std::string &name : trace.rankNames)
        name_width = std::max(name_width, name.size());
    for (std::size_t r = 0; r < trace.rankNames.size(); ++r) {
        long long decided =
            r < s.decidedAtRank.size() ? s.decidedAtRank[r] : 0;
        out += "  rank " + std::to_string(r) + "  " +
               padRight(trace.rankNames[r], name_width + 2) +
               std::to_string(decided) + "\n";
    }

    out += padRight("pick", 6) + padRight("time", 6) +
           padRight("ready", 7) + padRight("decided-by", name_width + 2) +
           "inst\n";
    for (const DecisionRecord &rec : s.log) {
        out += padRight(std::to_string(rec.pick), 6);
        out += padRight(std::to_string(rec.time), 6);
        out += padRight(std::to_string(rec.readySize), 7);
        out += padRight(std::string(decidedByName(trace, rec.decidedRank)),
                        name_width + 2);
        out += rec.node < trace.insts.size() ? trace.insts[rec.node]
                                             : std::string{};
        out += '\n';
    }
    return out;
}

std::string
renderOutliers(const std::vector<OutlierRecord> &outliers)
{
    if (outliers.empty())
        return {};
    std::string out = padRight("block", 7) + padRight("score", 12) +
                      padRight("insts", 7) + padRight("arcs", 8) +
                      "issue\n";
    for (const OutlierRecord &r : outliers) {
        out += padRight(std::to_string(r.block), 7);
        out += padRight(std::to_string(r.score), 12);
        out += padRight(std::to_string(r.size), 7);
        out += padRight(std::to_string(r.dagArcs), 8);
        if (r.stage.empty())
            out += "-";
        else
            out += r.stage + (r.reason.empty() ? "" : ": " + r.reason);
        out += '\n';
    }
    return out;
}

} // namespace sched91::obs
