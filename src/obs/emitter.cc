#include "obs/emitter.hh"

#include <algorithm>

#include "obs/json.hh"
#include "support/string_util.hh"

namespace sched91::obs
{

namespace
{

void
writeMinMaxAvg(JsonWriter &w, const MinMaxAvg &s)
{
    w.beginObject()
        .key("max").value(s.max())
        .key("avg").value(s.avg())
        .endObject();
}

void
writeCounterSet(JsonWriter &w, const CounterSet &counters)
{
    // Bind the filtered set before iterating: items() references the
    // set's own storage, and a temporary would die before the loop.
    CounterSet nz = counters.nonzero();
    w.beginObject();
    for (const auto &[name, value] : nz.items())
        w.key(name).value(value);
    w.endObject();
}

void
writeHistogram(JsonWriter &w, const Histogram &h, bool zero_values)
{
    // zero_values: a duration histogram under zeroTimes — the event
    // *count* is deterministic, the nanosecond values are wall-clock
    // noise, so only the count survives.
    w.beginObject()
        .key("count").value(h.count())
        .key("sum").value(zero_values ? 0 : h.sum())
        .key("min").value(zero_values ? 0 : h.min())
        .key("max").value(zero_values ? 0 : h.max())
        .key("mean").value(zero_values ? 0.0 : h.mean())
        .key("p50").value(zero_values ? 0 : h.percentile(50))
        .key("p90").value(zero_values ? 0 : h.percentile(90))
        .key("p99").value(zero_values ? 0 : h.percentile(99));
    w.key("buckets").beginArray();
    if (!zero_values) {
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            w.beginObject()
                .key("lo").value(Histogram::bucketLo(i))
                .key("hi").value(Histogram::bucketHi(i))
                .key("count").value(h.bucketCount(i))
                .endObject();
        }
    }
    w.endArray().endObject();
}

void
writePhaseTree(JsonWriter &w, const PhaseStats &node, bool zero_times)
{
    w.beginObject()
        .key("name").value(node.name)
        .key("entries").value(node.entries)
        .key("seconds").value(zero_times ? 0.0 : node.seconds);
    w.key("counters");
    writeCounterSet(w, node.counters);
    w.key("children").beginArray();
    for (const PhaseStats &child : node.children)
        writePhaseTree(w, child, zero_times);
    w.endArray().endObject();
}

} // namespace

std::string
programResultJson(const ProgramResult &result, const RunMeta &meta,
                  const CounterSet &counters, const PhaseStats *phases,
                  const EmitOptions &opts)
{
    JsonWriter w;
    w.beginObject();

    w.key("meta").beginObject()
        .key("tool").value("sched91")
        .key("command").value(meta.command)
        .key("input").value(meta.input)
        .key("builder").value(meta.builder)
        .key("algorithm").value(meta.algorithm)
        .key("machine").value(meta.machine)
        .endObject();

    w.key("blocks").value(static_cast<std::uint64_t>(result.numBlocks))
        .key("instructions")
        .value(static_cast<std::uint64_t>(result.numInsts));

    const double zt = opts.zeroTimes ? 0.0 : 1.0;
    w.key("phases").beginObject()
        .key("build_seconds").value(zt * result.buildSeconds)
        .key("heur_seconds").value(zt * result.heurSeconds)
        .key("sched_seconds").value(zt * result.schedSeconds)
        .key("total_seconds").value(zt * result.totalSeconds())
        .endObject();

    const DagStructure &d = result.dagStats;
    w.key("dag").beginObject()
        .key("total_arcs").value(static_cast<std::uint64_t>(d.totalArcs))
        .key("total_nodes").value(static_cast<std::uint64_t>(d.totalNodes))
        .key("duplicate_arc_attempts")
        .value(static_cast<std::uint64_t>(d.duplicateArcAttempts))
        .key("suppressed_arcs")
        .value(static_cast<std::uint64_t>(d.suppressedArcs));
    w.key("arcs_per_block");
    writeMinMaxAvg(w, d.arcsPerBlock);
    w.key("children_per_inst");
    writeMinMaxAvg(w, d.childrenPerInst);
    w.key("trees_per_block");
    writeMinMaxAvg(w, d.treesPerBlock);
    w.endObject();

    if (result.cyclesOriginal != 0 || result.cyclesScheduled != 0) {
        w.key("cycles").beginObject()
            .key("original").value(result.cyclesOriginal)
            .key("scheduled").value(result.cyclesScheduled)
            .endObject();
    }

    w.key("robust").beginObject()
        .key("blocks_degraded")
        .value(static_cast<std::uint64_t>(result.blocksDegraded))
        .key("builder_fallbacks")
        .value(static_cast<std::uint64_t>(result.builderFallbacks))
        .key("verifier_rejections")
        .value(static_cast<std::uint64_t>(result.verifierRejections))
        .key("parse_errors")
        .value(static_cast<std::uint64_t>(result.parseErrors))
        .key("parse_warnings")
        .value(static_cast<std::uint64_t>(result.parseWarnings));
    w.key("block_issues").beginArray();
    for (const ProgramResult::BlockIssue &issue : result.blockIssues) {
        w.beginObject()
            .key("block").value(static_cast<std::uint64_t>(issue.block))
            .key("stage").value(issue.stage)
            .key("reason").value(issue.reason)
            .key("degraded").value(issue.degraded)
            .endObject();
    }
    w.endArray().endObject();

    w.key("counters");
    writeCounterSet(w, counters);

    w.key("histograms").beginObject();
    for (const auto &[name, hist] : result.histograms.items()) {
        w.key(name);
        writeHistogram(w, hist,
                       opts.zeroTimes && isTimeHistogram(name));
    }
    w.endObject();

    // The deterministic/environmental split (obs/memory.hh): the
    // environmental gauges vary with lane assignment and process
    // history, so zeroTimes zeroes them the way it zeroes seconds.
    const MemoryStats &m = result.memory;
    w.key("memory").beginObject()
        .key("arena_bytes_allocated").value(m.arenaBytesAllocated)
        .key("arena_high_water_bytes").value(m.arenaHighWaterBytes)
        .key("dag_arcs").value(m.dagArcs)
        .key("dag_arc_bytes").value(m.dagArcBytes)
        .key("arena_reserved_bytes")
        .value(opts.zeroTimes ? 0 : m.arenaReservedBytes)
        .key("arena_chunks").value(opts.zeroTimes ? 0 : m.arenaChunks)
        .key("peak_rss_bytes")
        .value(opts.zeroTimes ? 0 : m.peakRssBytes)
        .endObject();

    if (phases) {
        w.key("phase_tree").beginArray();
        for (const PhaseStats &child : phases->children)
            writePhaseTree(w, child, opts.zeroTimes);
        w.endArray();
    }

    w.endObject();
    return w.take();
}

std::string
counterSetJson(const CounterSet &counters)
{
    JsonWriter w;
    writeCounterSet(w, counters);
    return w.take();
}

std::string
renderCounters(const CounterSet &counters)
{
    CounterSet nz = counters.nonzero();
    std::size_t width = 0;
    for (const auto &[name, value] : nz.items())
        width = std::max(width, name.size());
    std::string out;
    for (const auto &[name, value] : nz.items()) {
        out += padRight(name, width + 2);
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

} // namespace sched91::obs
