#include "obs/emitter.hh"

#include <algorithm>

#include "obs/json.hh"
#include "support/string_util.hh"

namespace sched91::obs
{

namespace
{

void
writeMinMaxAvg(JsonWriter &w, const MinMaxAvg &s)
{
    w.beginObject()
        .key("max").value(s.max())
        .key("avg").value(s.avg())
        .endObject();
}

void
writeCounterSet(JsonWriter &w, const CounterSet &counters)
{
    // Bind the filtered set before iterating: items() references the
    // set's own storage, and a temporary would die before the loop.
    CounterSet nz = counters.nonzero();
    w.beginObject();
    for (const auto &[name, value] : nz.items())
        w.key(name).value(value);
    w.endObject();
}

void
writePhaseTree(JsonWriter &w, const PhaseStats &node, bool zero_times)
{
    w.beginObject()
        .key("name").value(node.name)
        .key("entries").value(node.entries)
        .key("seconds").value(zero_times ? 0.0 : node.seconds);
    w.key("counters");
    writeCounterSet(w, node.counters);
    w.key("children").beginArray();
    for (const PhaseStats &child : node.children)
        writePhaseTree(w, child, zero_times);
    w.endArray().endObject();
}

} // namespace

std::string
programResultJson(const ProgramResult &result, const RunMeta &meta,
                  const CounterSet &counters, const PhaseStats *phases,
                  const EmitOptions &opts)
{
    JsonWriter w;
    w.beginObject();

    w.key("meta").beginObject()
        .key("tool").value("sched91")
        .key("command").value(meta.command)
        .key("input").value(meta.input)
        .key("builder").value(meta.builder)
        .key("algorithm").value(meta.algorithm)
        .key("machine").value(meta.machine)
        .endObject();

    w.key("blocks").value(static_cast<std::uint64_t>(result.numBlocks))
        .key("instructions")
        .value(static_cast<std::uint64_t>(result.numInsts));

    const double zt = opts.zeroTimes ? 0.0 : 1.0;
    w.key("phases").beginObject()
        .key("build_seconds").value(zt * result.buildSeconds)
        .key("heur_seconds").value(zt * result.heurSeconds)
        .key("sched_seconds").value(zt * result.schedSeconds)
        .key("total_seconds").value(zt * result.totalSeconds())
        .endObject();

    const DagStructure &d = result.dagStats;
    w.key("dag").beginObject()
        .key("total_arcs").value(static_cast<std::uint64_t>(d.totalArcs))
        .key("total_nodes").value(static_cast<std::uint64_t>(d.totalNodes))
        .key("duplicate_arc_attempts")
        .value(static_cast<std::uint64_t>(d.duplicateArcAttempts))
        .key("suppressed_arcs")
        .value(static_cast<std::uint64_t>(d.suppressedArcs));
    w.key("arcs_per_block");
    writeMinMaxAvg(w, d.arcsPerBlock);
    w.key("children_per_inst");
    writeMinMaxAvg(w, d.childrenPerInst);
    w.key("trees_per_block");
    writeMinMaxAvg(w, d.treesPerBlock);
    w.endObject();

    if (result.cyclesOriginal != 0 || result.cyclesScheduled != 0) {
        w.key("cycles").beginObject()
            .key("original").value(result.cyclesOriginal)
            .key("scheduled").value(result.cyclesScheduled)
            .endObject();
    }

    w.key("robust").beginObject()
        .key("blocks_degraded")
        .value(static_cast<std::uint64_t>(result.blocksDegraded))
        .key("builder_fallbacks")
        .value(static_cast<std::uint64_t>(result.builderFallbacks))
        .key("verifier_rejections")
        .value(static_cast<std::uint64_t>(result.verifierRejections))
        .key("parse_errors")
        .value(static_cast<std::uint64_t>(result.parseErrors))
        .key("parse_warnings")
        .value(static_cast<std::uint64_t>(result.parseWarnings));
    w.key("block_issues").beginArray();
    for (const ProgramResult::BlockIssue &issue : result.blockIssues) {
        w.beginObject()
            .key("block").value(static_cast<std::uint64_t>(issue.block))
            .key("stage").value(issue.stage)
            .key("reason").value(issue.reason)
            .key("degraded").value(issue.degraded)
            .endObject();
    }
    w.endArray().endObject();

    w.key("counters");
    writeCounterSet(w, counters);

    if (phases) {
        w.key("phase_tree").beginArray();
        for (const PhaseStats &child : phases->children)
            writePhaseTree(w, child, opts.zeroTimes);
        w.endArray();
    }

    w.endObject();
    return w.take();
}

std::string
counterSetJson(const CounterSet &counters)
{
    JsonWriter w;
    writeCounterSet(w, counters);
    return w.take();
}

std::string
renderCounters(const CounterSet &counters)
{
    CounterSet nz = counters.nonzero();
    std::size_t width = 0;
    for (const auto &[name, value] : nz.items())
        width = std::max(width, name.size());
    std::string out;
    for (const auto &[name, value] : nz.items()) {
        out += padRight(name, width + 2);
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

} // namespace sched91::obs
