/**
 * @file
 * Structured run-output emitter: serializes a whole-program pipeline
 * result — per-phase seconds, DAG structural statistics (Tables 4/5),
 * schedule quality, event counters (Table 1's a/f/b/v work, counted),
 * and the nested phase tree — as one machine-readable JSON document.
 *
 * Schema documented in docs/OBSERVABILITY.md.
 */

#ifndef SCHED91_OBS_EMITTER_HH
#define SCHED91_OBS_EMITTER_HH

#include <string>

#include "core/pipeline.hh"
#include "obs/counters.hh"
#include "obs/phase.hh"

namespace sched91::obs
{

/** Run identification carried into the JSON `meta` object. */
struct RunMeta
{
    std::string command;   ///< CLI command or bench name
    std::string input;     ///< file, kernel, or profile name
    std::string builder;
    std::string algorithm;
    std::string machine;
    std::string policy;    ///< alias policy (emitted when non-empty)
    std::string traceId;   ///< originating service trace id (emitted
                           ///< when non-empty; lets `sched91 explain`
                           ///< cross-reference a daemon bundle with
                           ///< its live trace)
};

/** Serialization knobs. */
struct EmitOptions
{
    /** Write every `seconds` field as 0.  Wall-clock is run-to-run
     * noise; zeroing it makes whole documents byte-comparable (used by
     * the determinism tests and `--zero-times`). */
    bool zeroTimes = false;
};

/**
 * Serialize @p result with @p counters (typically the registry deltas
 * for the run) and, when non-null, the phase tree rooted at @p phases.
 * Cycle totals are included only when the result carries them.
 */
std::string programResultJson(const ProgramResult &result,
                              const RunMeta &meta,
                              const CounterSet &counters,
                              const PhaseStats *phases = nullptr,
                              const EmitOptions &opts = {});

/** Serialize one counter set as a flat JSON object. */
std::string counterSetJson(const CounterSet &counters);

/** Fixed-width text table of nonzero counters (for `--counters`). */
std::string renderCounters(const CounterSet &counters);

/**
 * Serialize one captured outlier as a standalone forensic bundle
 * (docs/FORENSICS.md): run meta, block identity, DAG shape, per-phase
 * seconds (zeroed under opts.zeroTimes), counter deltas, degradation
 * attribution, and the block's source text.  Marked with
 * `"sched91_outlier": 1` so `sched91 explain` can validate its input.
 */
std::string outlierBundleJson(const OutlierRecord &record,
                              const RunMeta &meta,
                              const EmitOptions &opts = {});

/** Text rendering of a decision log (for `--explain-block`). */
std::string renderDecisionTrace(const DecisionTrace &trace);

/** Text summary of captured outliers (for `--capture-outliers`). */
std::string renderOutliers(const std::vector<OutlierRecord> &outliers);

} // namespace sched91::obs

#endif // SCHED91_OBS_EMITTER_HH
