/**
 * @file
 * The library's well-known event counters, one inline handle per
 * event so instrumentation sites pay no lookup.  Names are
 * hierarchical (`subsystem.event`) and map onto the paper's Table 1
 * cost legend:
 *
 *  - `dag.*`   — 'a' work, done while nodes/arcs are added
 *                (Section 2, Tables 4/5 construction asymmetry);
 *  - `heur.*`  — 'f'/'b' work, the intermediate heuristic passes
 *                (Section 4);
 *  - `sched.*` — 'v' work, done as the scheduler visits nodes
 *                (Section 5).
 *
 * See docs/OBSERVABILITY.md for the full schema and the worked
 * mapping to Table 1.
 */

#ifndef SCHED91_OBS_EVENTS_HH
#define SCHED91_OBS_EVENTS_HH

#include "obs/counters.hh"

namespace sched91::obs::ev
{

// --- DAG construction ('a') -----------------------------------------

/** Unique arcs inserted by Dag::addArc. */
inline Counter dagArcsAdded{"dag.arcs_added"};

/** (from,to) attempts merged into an existing arc. */
inline Counter dagArcsDuplicate{"dag.arcs_duplicate"};

/** Arcs dropped by Landskov-style transitive prevention. */
inline Counter dagArcsSuppressed{"dag.arcs_suppressed"};

/** Pairwise instruction comparisons made by the n**2 builders. */
inline Counter dagPairwiseCompares{"dag.pairwise_compares"};

/** Definition-table slot and memory-entry probes, table builders. */
inline Counter dagTableProbes{"dag.table_probes"};

/** Memory alias-oracle queries (any builder, any policy). */
inline Counter dagAliasQueries{"dag.alias_queries"};

/** Blocks force-split by the instruction window during partitioning. */
inline Counter dagWindowFlushes{"dag.window_flushes"};

// --- Heuristic passes ('f' / 'b') -----------------------------------

/** Node visitations by the forward pass (EST and friends). */
inline Counter heurForwardVisits{"heur.forward_visits"};

/** Node visitations by the backward pass (LST, delays-to-leaf). */
inline Counter heurBackwardVisits{"heur.backward_visits"};

/** Nodes whose slack was derived (LST - EST). */
inline Counter heurSlackComputes{"heur.slack_computes"};

/** Descendant bitmaps materialized by a separate sweep (the backward
 * pass had no builder-maintained maps to reuse). */
inline Counter heurDescendantSweeps{"heur.descendant_sweeps"};

// --- List scheduling ('v') ------------------------------------------

/** Nodes scheduled (candidate-list extractions). */
inline Counter schedNodeVisits{"sched.node_visits"};

/** Individual heuristic evaluations during candidate selection. */
inline Counter schedHeuristicEvals{"sched.heuristic_evals"};

/** High-water mark of the ready/candidate list (a Max gauge: shards
 * and per-block deltas report peaks, not sums). */
inline Counter schedReadyListPeak{"sched.ready_list_peak",
                                  CounterKind::Max};

/** Dependence-arc relaxations when a scheduled node releases
 * successors (forward) or predecessors (backward). */
inline Counter schedDepUpdates{"sched.dep_updates"};

// --- Robustness (docs/ROBUSTNESS.md) --------------------------------

/** Malformed assembly lines recovered from by the lenient parser. */
inline Counter robustParseErrors{"robust.parse_errors"};

/** Parseable-but-suspicious lines flagged with a Severity::Warning
 * diagnostic (immediate outside the 13-bit signed range, doubly
 * defined labels). */
inline Counter robustParseWarnings{"robust.parse_warnings"};

/** Blocks degraded to their original instruction order after a fault,
 * budget overrun, or verifier rejection. */
inline Counter robustBlocksDegraded{"robust.blocks_degraded"};

/** Schedules rejected by the independent verifier
 * (sched/verifier.hh). */
inline Counter robustVerifierRejections{"robust.verifier_rejections"};

/** Oversized blocks auto-switched from an n**2 builder to table
 * building (the paper's F1/F2 window ladder) — not a degradation. */
inline Counter robustBuilderFallbacks{"robust.builder_fallbacks"};

/** Blocks that overran --max-block-seconds (subset of
 * robust.blocks_degraded). */
inline Counter robustBudgetExceeded{"robust.block_budget_exceeded"};

/** Worker exceptions dropped by ThreadPool::parallelFor after the
 * first (only the first rethrows; the rest are counted here and in
 * the rethrown message). */
inline Counter robustPoolSuppressed{"robust.pool_suppressed_errors"};

// --- Cooperative cancellation (support/cancellation.hh) -------------

/** Blocks whose build/sched phase was interrupted mid-loop by a
 * cancellation token (subset of robust.block_budget_exceeded when the
 * token came from --max-block-seconds). */
inline Counter cancelBlocksCancelled{"cancel.blocks_cancelled"};

/** Blocks degraded because the whole-run --max-run-seconds budget ran
 * out: cancelled while running on a fair-share allowance, or skipped
 * outright once nothing remained. */
inline Counter cancelRunBudgetExhausted{"cancel.run_budget_exhausted"};

/** Blocks degraded because the run was interrupted (SIGINT/SIGTERM
 * drain): in-flight blocks finish, the rest degrade to original
 * order. */
inline Counter cancelRunInterrupted{"cancel.run_interrupted"};

// --- Fault injection (support/fault_inject.hh) ----------------------

/** Faults fired by the deterministic injection layer (any point). */
inline Counter faultInjected{"fault.injected"};

// --- Scheduling service (src/service/, docs/ROBUSTNESS.md) ----------

/** Requests admitted into the daemon's bounded queue. */
inline Counter svcRequestsAccepted{"svc.requests_accepted"};

/** Requests shed at admission: queue full or daemon draining. */
inline Counter svcRequestsRejected{"svc.requests_rejected"};

/** Requests answered "ok" (scheduled normally, possibly on retry). */
inline Counter svcRequestsOk{"svc.requests_ok"};

/** Requests answered "degraded" (any block on original order, or the
 * whole request on the ladder's last rung). */
inline Counter svcRequestsDegraded{"svc.requests_degraded"};

/** Requests answered "error" (malformed request JSON). */
inline Counter svcRequestsError{"svc.requests_error"};

/** Admitted requests shed at queue pickup (deadline already expired)
 * — the piece that closes the conservation law `accepted == ok +
 * degraded + error + rejected_after_admit` the soak client asserts. */
inline Counter svcRejectedAfterAdmit{"svc.rejected_after_admit"};

/** Ladder retries: a failed attempt re-run on the table builder. */
inline Counter svcRetries{"svc.retries"};

/** Requests that exhausted both real attempts and fell to
 * original-order degradation (the ladder's last rung). */
inline Counter svcDegradedFallbacks{"svc.degraded_fallbacks"};

/** Payloads added to the quarantine table after failing twice. */
inline Counter svcQuarantineAdds{"svc.quarantine_adds"};

/** Requests short-circuited to degraded output by a quarantine hit. */
inline Counter svcQuarantineHits{"svc.quarantine_hits"};

/** Requests whose deadline expired in the queue (rejected) or that
 * ran out of deadline mid-run (blocks degraded via the budget rung). */
inline Counter svcDeadlineExpired{"svc.deadline_expired"};

/** Sandbox workers (`serve --isolate=process`) that died mid-request
 * — signal, rlimit kill, or unexpected exit.  The victim request is
 * answered degraded by the supervisor's ladder. */
inline Counter svcWorkerCrashes{"svc.worker_crashes"};

/** Subset of crashes inflicted by the supervisor's hung-worker
 * watchdog (SIGKILL past the deadline grace). */
inline Counter svcWorkerKills{"svc.worker_kills"};

/** Replacement sandbox workers spawned after a death. */
inline Counter svcWorkerRespawns{"svc.worker_respawns"};

/** Sandbox workers that never came up (exec failure or death before
 * the ready banner). */
inline Counter svcWorkerSpawnFailures{"svc.worker_spawn_failures"};

// --- Memory telemetry (obs/memory.hh) -------------------------------
// Deterministic gauges only: each is a function of the input program,
// so runs stay byte-identical across thread counts.  Environmental
// quantities (peak RSS, arena chunk reservations) live in the
// stats-JSON "memory" section instead, never in counters.

/** Cumulative bytes handed out by all worker arenas over the run. */
inline Counter memArenaBytesAllocated{"mem.arena_bytes_allocated"};

/** Largest arena working set any single block reached (Max gauge). */
inline Counter memArenaHighWater{"mem.arena_high_water_bytes",
                                 CounterKind::Max};

/** Bytes of DAG arc records built over the run (arcs * sizeof(Arc)). */
inline Counter memDagArcBytes{"mem.dag_arc_bytes"};

// --- Adversarial harness (src/fuzz/) --------------------------------

/** Programs synthesized by the fuzz generator. */
inline Counter fuzzProgramsGenerated{"fuzz.programs_generated"};

/** Source lines mutated by injected syntax corruption. */
inline Counter fuzzCorruptedLines{"fuzz.corrupted_lines"};

/** Differential-oracle runs (fuzz/differential.cc). */
inline Counter fuzzOracleRuns{"fuzz.oracle_runs"};

/** Oracle runs that found a divergence or verifier rejection. */
inline Counter fuzzOracleFailures{"fuzz.oracle_failures"};

/** Candidate reductions attempted by the minimizing reducer. */
inline Counter fuzzReducerSteps{"fuzz.reducer_steps"};

} // namespace sched91::obs::ev

#endif // SCHED91_OBS_EVENTS_HH
