#include "obs/exposition.hh"

#include <cmath>
#include <cstdio>

namespace sched91::obs
{

namespace
{

bool
validMetricChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/**
 * Format a gauge value: integers print exactly (Prometheus accepts
 * either form, but `3` reads better than `3.000000`), everything else
 * with enough digits to round-trip a scrape interval.
 */
std::string
formatValue(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** The `{a="b",c="d"}` block for @p labels, empty string when none. */
std::string
labelBlock(const std::vector<std::pair<std::string, std::string>>
               &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k;
        out += "=\"";
        out += promEscapeLabel(v);
        out += '"';
    }
    out += '}';
    return out;
}

/** Same, with one extra `le` label appended (histogram buckets). */
std::string
bucketLabelBlock(
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::string &le)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k;
        out += "=\"";
        out += promEscapeLabel(v);
        out += '"';
    }
    if (!first)
        out += ',';
    out += "le=\"";
    out += le; // numeric or "+Inf": nothing to escape
    out += '"';
    out += '}';
    return out;
}

void
appendFamily(std::string &out, const std::string &name,
             const char *type)
{
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

} // namespace

std::string
promMetricName(std::string_view raw)
{
    std::string out = "sched91_";
    out.reserve(out.size() + raw.size());
    for (char c : raw)
        out += validMetricChar(c) ? c : '_';
    return out;
}

std::string
promEscapeLabel(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
prometheusExposition(const PromDoc &doc)
{
    std::string out;
    const std::string labels = labelBlock(doc.labels);

    if (doc.counters) {
        for (const auto &[name, value] : doc.counters->items()) {
            const std::string metric = promMetricName(name);
            const bool gauge =
                doc.registry &&
                doc.registry->kindByName(name) == CounterKind::Max;
            appendFamily(out, metric, gauge ? "gauge" : "counter");
            out += metric;
            out += labels;
            out += ' ';
            out += formatValue(static_cast<double>(value));
            out += '\n';
        }
    }

    for (const PromGauge &g : doc.gauges) {
        const std::string metric = promMetricName(g.name);
        appendFamily(out, metric, "gauge");
        out += metric;
        out += labels;
        out += ' ';
        out += formatValue(g.value);
        out += '\n';
    }

    if (doc.histograms) {
        for (const auto &[name, hist] : doc.histograms->items()) {
            const std::string metric = promMetricName(name);
            appendFamily(out, metric, "histogram");
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
                const std::uint64_t n = hist.bucketCount(i);
                if (n == 0)
                    continue;
                cumulative += n;
                out += metric;
                out += "_bucket";
                out += bucketLabelBlock(
                    doc.labels,
                    formatValue(static_cast<double>(
                        Histogram::bucketHi(i))));
                out += ' ';
                out += formatValue(static_cast<double>(cumulative));
                out += '\n';
            }
            out += metric;
            out += "_bucket";
            out += bucketLabelBlock(doc.labels, "+Inf");
            out += ' ';
            out += formatValue(static_cast<double>(hist.count()));
            out += '\n';
            out += metric;
            out += "_sum";
            out += labels;
            out += ' ';
            out += formatValue(static_cast<double>(hist.sum()));
            out += '\n';
            out += metric;
            out += "_count";
            out += labels;
            out += ' ';
            out += formatValue(static_cast<double>(hist.count()));
            out += '\n';
        }
    }

    return out;
}

} // namespace sched91::obs
