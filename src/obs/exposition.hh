/**
 * @file
 * Prometheus-style text exposition for the live `stats` endpoint:
 * turns counter sets, gauges, and log2 histograms into the plain-text
 * format scrapers expect — `# TYPE` metadata lines, mangled metric
 * names (`svc.request_ns` -> `sched91_svc_request_ns`), escaped label
 * values, and cumulative `_bucket{le="..."}` series derived from the
 * 65 power-of-two histogram buckets.
 *
 * Format reference: the Prometheus "Exposition formats" document
 * (text-based format, version 0.0.4).  Only the subset the daemon
 * needs is produced: counter, gauge, and histogram families, one
 * optional constant label set applied to every sample.
 */

#ifndef SCHED91_OBS_EXPOSITION_HH
#define SCHED91_OBS_EXPOSITION_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/counters.hh"
#include "obs/histogram.hh"

namespace sched91::obs
{

/**
 * Mangle a counter/histogram name into a valid Prometheus metric
 * name: every character outside [a-zA-Z0-9_:] becomes '_', and the
 * result is prefixed with "sched91_" so all exported series share one
 * namespace (`svc.request_ns` -> `sched91_svc_request_ns`).
 */
std::string promMetricName(std::string_view raw);

/**
 * Escape a label value for the text exposition: backslash, double
 * quote, and newline become \\, \", and \n (the only escapes the
 * format defines).
 */
std::string promEscapeLabel(std::string_view raw);

/** One free-standing gauge sample (uptime, queue depth, RSS, ...). */
struct PromGauge
{
    std::string name; ///< raw (unmangled) metric name
    double value = 0.0;
};

/** Everything one exposition document is built from. */
struct PromDoc
{
    /** Counter samples; kinds looked up in @ref registry (Sum ->
     * counter, Max -> gauge).  May be null. */
    const CounterSet *counters = nullptr;

    /** Kind source for @ref counters; when null every counter is
     * exported as a Prometheus counter. */
    const CounterRegistry *registry = nullptr;

    /** Histogram families, exported as cumulative bucket series. */
    const HistogramSet *histograms = nullptr;

    /** Free-standing gauges, exported in the given order. */
    std::vector<PromGauge> gauges;

    /** Constant labels stamped onto every sample (values are escaped
     * by the renderer; names must already be valid). */
    std::vector<std::pair<std::string, std::string>> labels;
};

/**
 * Render the full text exposition: counters first (ascending name
 * order, as CounterSet stores them), then gauges, then histograms.
 * Every family gets one `# TYPE` line; histogram buckets are emitted
 * cumulatively for each non-empty log2 bucket, closed by the
 * mandatory `le="+Inf"` bucket, `_sum`, and `_count` samples.
 */
std::string prometheusExposition(const PromDoc &doc);

} // namespace sched91::obs

#endif // SCHED91_OBS_EXPOSITION_HH
