/**
 * @file
 * Flight recorder implementation: static ring storage, the
 * allocation-free JSON dump, and the fatal-signal/terminate hooks.
 */

#include "obs/flight_recorder.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

namespace sched91::obs::flight
{

namespace
{

/** All recorder storage is static so the crash path never allocates. */
Recorder g_recorders[kMaxRecorders];
std::atomic<std::size_t> g_claimed{0};
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_gauges[static_cast<std::size_t>(Gauge::Count)];
std::chrono::steady_clock::time_point g_epoch;

thread_local Recorder *t_recorder = nullptr;

/** Crash-dump arming state; path copied into static storage. */
char g_dumpPath[512] = {};
bool g_zeroTimes = false;
std::atomic<bool> g_dumped{false};

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_epoch)
            .count());
}

/** Copy into a fixed field, truncating and forcing printable ASCII so
 * the dump can emit the bytes verbatim inside a JSON string. */
void
sanitizeInto(char *dst, std::size_t cap, std::string_view src)
{
    std::size_t n = std::min(src.size(), cap - 1);
    for (std::size_t i = 0; i < n; ++i) {
        char c = src[i];
        bool printable = c >= 0x20 && c < 0x7f && c != '"' && c != '\\';
        dst[i] = printable ? c : '_';
    }
    dst[n] = '\0';
}

} // namespace

std::string_view
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::RunBegin:
        return "run_begin";
      case EventKind::BlockBegin:
        return "block_begin";
      case EventKind::PhaseEnd:
        return "phase_end";
      case EventKind::Diag:
        return "diag";
      case EventKind::Cancel:
        return "cancel";
      case EventKind::CounterSnap:
        return "counter_snap";
      case EventKind::BlockEnd:
        return "block_end";
      case EventKind::RunEnd:
        return "run_end";
    }
    return "?";
}

void
Recorder::reset()
{
    total_ = 0;
    key_ = 0;
    seq_ = 0;
}

void
Recorder::record(EventKind kind, std::string_view tag,
                 std::string_view detail, std::uint64_t a, std::uint64_t b)
{
    Event &e = ring_[total_++ % kRingCapacity];
    e.blockKey = key_;
    e.seq = seq_++;
    e.kind = kind;
    sanitizeInto(e.tag, sizeof(e.tag), tag);
    sanitizeInto(e.detail, sizeof(e.detail), detail);
    e.a = a;
    e.b = b;
    e.ns = nowNs();
}

std::size_t
Recorder::kept() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(total_, kRingCapacity));
}

const Event &
Recorder::keptAt(std::size_t i) const
{
    std::size_t first =
        total_ > kRingCapacity
            ? static_cast<std::size_t>(total_ % kRingCapacity)
            : 0;
    return ring_[(first + i) % kRingCapacity];
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void
beginRun()
{
    for (Recorder &r : g_recorders)
        r.reset();
    g_claimed.store(0, std::memory_order_relaxed);
    for (auto &g : g_gauges)
        g.store(0, std::memory_order_relaxed);
    g_epoch = std::chrono::steady_clock::now();
}

namespace
{
std::atomic<bool> g_external{false};
} // namespace

void
setExternallyManaged(bool on)
{
    g_external.store(on, std::memory_order_relaxed);
}

bool
externallyManaged()
{
    return g_external.load(std::memory_order_relaxed);
}

Recorder *
claim()
{
    std::size_t slot = g_claimed.fetch_add(1, std::memory_order_relaxed);
    if (slot >= kMaxRecorders)
        return nullptr;
    return &g_recorders[slot];
}

ScopedRecorder::ScopedRecorder(Recorder *recorder) : prev_(t_recorder)
{
    t_recorder = recorder;
}

ScopedRecorder::~ScopedRecorder() { t_recorder = prev_; }

Recorder *
current()
{
    return t_recorder;
}

void
record(EventKind kind, std::string_view tag, std::string_view detail,
       std::uint64_t a, std::uint64_t b)
{
    if (!enabled() || !t_recorder)
        return;
    t_recorder->record(kind, tag, detail, a, b);
}

void
setBlock(std::uint64_t block)
{
    if (t_recorder)
        t_recorder->setBlock(block);
}

void
setPostRun()
{
    if (t_recorder)
        t_recorder->setPostRun();
}

void
setGauge(Gauge g, std::uint64_t value)
{
    g_gauges[static_cast<std::size_t>(g)].store(value,
                                                std::memory_order_relaxed);
}

void
maxGauge(Gauge g, std::uint64_t value)
{
    auto &cell = g_gauges[static_cast<std::size_t>(g)];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (value > cur &&
           !cell.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
addGauge(Gauge g, std::uint64_t delta)
{
    g_gauges[static_cast<std::size_t>(g)].fetch_add(
        delta, std::memory_order_relaxed);
}

std::uint64_t
gaugeValue(Gauge g)
{
    return g_gauges[static_cast<std::size_t>(g)].load(
        std::memory_order_relaxed);
}

// --- Allocation-free JSON dump -------------------------------------

namespace
{

/** Bounded text sink; drops bytes once full (the caller sizes the
 * buffer so truncation only loses trailing events). */
struct Sink
{
    char *buf;
    std::size_t cap;
    std::size_t len = 0;

    void
    put(char c)
    {
        if (len < cap)
            buf[len++] = c;
    }

    void
    str(std::string_view s)
    {
        for (char c : s)
            put(c);
    }

    void
    u64(std::uint64_t v)
    {
        char tmp[20];
        std::size_t n = 0;
        do {
            tmp[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v);
        while (n)
            put(tmp[--n]);
    }

    void
    i64(std::int64_t v)
    {
        if (v < 0) {
            put('-');
            u64(static_cast<std::uint64_t>(-v));
        } else {
            u64(static_cast<std::uint64_t>(v));
        }
    }

    /** Emit a NUL-terminated field verbatim, re-sanitizing in case the
     * buffer was never written through sanitizeInto. */
    void
    field(const char *s, std::size_t cap_)
    {
        for (std::size_t i = 0; i < cap_ && s[i]; ++i) {
            char c = s[i];
            bool ok = c >= 0x20 && c < 0x7f && c != '"' && c != '\\';
            put(ok ? c : '_');
        }
    }
};

std::string_view
gaugeName(Gauge g)
{
    switch (g) {
      case Gauge::BlocksTotal:
        return "blocks_total";
      case Gauge::BlocksDone:
        return "blocks_done";
      case Gauge::ArenaHighWaterBytes:
        return "arena_high_water_bytes";
      case Gauge::DagArcBytes:
        return "dag_arc_bytes";
      case Gauge::Count:
        break;
    }
    return "?";
}

bool
eventBefore(const Event &a, std::size_t recA, const Event &b,
            std::size_t recB)
{
    if (a.blockKey != b.blockKey)
        return a.blockKey < b.blockKey;
    if (a.seq != b.seq)
        return a.seq < b.seq;
    return recA < recB;
}

} // namespace

std::size_t
dumpJsonTo(char *buf, std::size_t cap, const DumpInfo &info)
{
    Sink out{buf, cap};
    std::size_t lanes =
        std::min(g_claimed.load(std::memory_order_relaxed), kMaxRecorders);

    std::uint64_t totalEver = 0;
    std::size_t totalKept = 0;
    std::size_t idx[kMaxRecorders] = {};
    for (std::size_t r = 0; r < lanes; ++r) {
        totalEver += g_recorders[r].total();
        totalKept += g_recorders[r].kept();
    }

    // Dump tail = newest min(kRingCapacity, totalKept) events in
    // (blockKey, seq) order: advance past the smallest-keyed events
    // until only the tail remains, then merge-emit the rest.
    std::size_t tail = std::min(totalKept, kRingCapacity);
    std::size_t skip = totalKept - tail;
    for (std::size_t s = 0; s < skip; ++s) {
        std::size_t best = kMaxRecorders;
        for (std::size_t r = 0; r < lanes; ++r) {
            if (idx[r] >= g_recorders[r].kept())
                continue;
            if (best == kMaxRecorders ||
                eventBefore(g_recorders[r].keptAt(idx[r]), r,
                            g_recorders[best].keptAt(idx[best]), best))
                best = r;
        }
        if (best == kMaxRecorders)
            break;
        ++idx[best];
    }

    out.str("{\"sched91_flight\":1,\"crashed\":");
    out.str(info.crashed ? "true" : "false");
    out.str(",\"signal\":");
    out.i64(info.signal);
    out.str(",\"reason\":\"");
    if (info.reason)
        out.field(info.reason, 256);
    out.str("\",\"events_total\":");
    out.u64(totalEver);
    out.str(",\"events\":[");
    bool first = true;
    for (std::size_t e = 0; e < tail; ++e) {
        std::size_t best = kMaxRecorders;
        for (std::size_t r = 0; r < lanes; ++r) {
            if (idx[r] >= g_recorders[r].kept())
                continue;
            if (best == kMaxRecorders ||
                eventBefore(g_recorders[r].keptAt(idx[r]), r,
                            g_recorders[best].keptAt(idx[best]), best))
                best = r;
        }
        if (best == kMaxRecorders)
            break;
        const Event &ev = g_recorders[best].keptAt(idx[best]++);
        if (!first)
            out.put(',');
        first = false;
        out.str("{\"block\":");
        if (ev.blockKey == 0)
            out.i64(-1);
        else if (ev.blockKey == ~std::uint64_t{0})
            out.i64(-2);
        else
            out.u64(ev.blockKey - 1);
        out.str(",\"seq\":");
        out.u64(ev.seq);
        out.str(",\"kind\":\"");
        out.str(eventKindName(ev.kind));
        out.str("\",\"tag\":\"");
        out.field(ev.tag, sizeof(ev.tag));
        out.str("\",\"detail\":\"");
        out.field(ev.detail, sizeof(ev.detail));
        out.str("\",\"a\":");
        out.u64(ev.a);
        out.str(",\"b\":");
        out.u64(ev.b);
        out.str(",\"ns\":");
        out.u64(info.zeroTimes ? 0 : ev.ns);
        out.put('}');
    }
    out.str("],\"memory\":{");
    for (std::size_t g = 0; g < static_cast<std::size_t>(Gauge::Count);
         ++g) {
        if (g)
            out.put(',');
        out.put('"');
        out.str(gaugeName(static_cast<Gauge>(g)));
        out.str("\":");
        out.u64(g_gauges[g].load(std::memory_order_relaxed));
    }
    out.str("}}\n");
    if (out.len < cap)
        buf[out.len] = '\0';
    else if (cap)
        buf[cap - 1] = '\0';
    return std::min(out.len, cap);
}

std::string
dumpJson(const DumpInfo &info)
{
    // Generous fixed bound: ~220 bytes per event plus header/gauges.
    std::string s(kRingCapacity * 256 + 4096, '\0');
    std::size_t n = dumpJsonTo(s.data(), s.size(), info);
    s.resize(n);
    return s;
}

// --- Crash path ----------------------------------------------------

namespace
{

/** Static buffer for the signal-handler dump (128 KiB holds the full
 * 256-event tail comfortably). */
char g_crashBuf[128 * 1024];

void
writeDumpRaw(const DumpInfo &info)
{
    if (g_dumped.exchange(true))
        return;
    std::size_t n = dumpJsonTo(g_crashBuf, sizeof(g_crashBuf), info);
    int fd = STDERR_FILENO;
    bool opened = false;
    if (g_dumpPath[0] && std::strcmp(g_dumpPath, "-") != 0) {
        int f = ::open(g_dumpPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (f >= 0) {
            fd = f;
            opened = true;
        }
    }
    std::size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, g_crashBuf + off, n - off);
        if (w <= 0)
            break;
        off += static_cast<std::size_t>(w);
    }
    if (opened)
        ::close(fd);
}

void
fatalSignalHandler(int sig)
{
    DumpInfo info;
    info.crashed = true;
    info.signal = sig;
    info.reason = "fatal signal";
    info.zeroTimes = g_zeroTimes;
    writeDumpRaw(info);
    ::raise(sig); // SA_RESETHAND restored the default action.
}

std::terminate_handler g_prevTerminate = nullptr;

[[noreturn]] void
terminateHandler()
{
    DumpInfo info;
    info.crashed = true;
    info.reason = "std::terminate";
    info.zeroTimes = g_zeroTimes;
    writeDumpRaw(info);
    if (g_prevTerminate)
        g_prevTerminate();
    std::abort();
}

} // namespace

void
setCrashDump(std::string_view path, bool zeroTimes)
{
    std::size_t n = std::min(path.size(), sizeof(g_dumpPath) - 1);
    std::memcpy(g_dumpPath, path.data(), n);
    g_dumpPath[n] = '\0';
    g_zeroTimes = zeroTimes;
    g_dumped.store(false);
}

void
installCrashHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fatalSignalHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
        ::sigaction(sig, &sa, nullptr);
    g_prevTerminate = std::set_terminate(terminateHandler);
}

void
writeCrashDump(const char *reason)
{
    DumpInfo info;
    info.crashed = true;
    info.reason = reason ? reason : "";
    info.zeroTimes = g_zeroTimes;
    writeDumpRaw(info);
}

} // namespace sched91::obs::flight
