/**
 * @file
 * Crash-safe flight recorder (docs/FORENSICS.md).
 *
 * Each worker lane owns a fixed-size ring of compact POD events
 * (block begin/end, phase transitions, diagnostics, cancellations,
 * counter snapshots).  On a panic, fatal signal, or std::terminate the
 * process dumps the last-N events across all lanes plus the memory
 * gauges as one well-formed JSON document — a dying run always leaves
 * a triage artifact.
 *
 * Everything on the crash path is async-signal-safe: the rings are
 * static storage claimed with an atomic counter, events hold only
 * fixed-size char arrays (sanitized to printable ASCII at record time,
 * so the dump needs no JSON escaping), and the dump itself formats
 * into a caller-supplied buffer with no allocation, then write(2)s it.
 *
 * Determinism: events are keyed (blockKey, seq) where blockKey is
 * 0 before the parallel region, `block + 1` during it, and
 * UINT64_MAX after the join; seq resets at each key change.  The
 * pipeline's chunked self-scheduling hands each lane a strictly
 * ascending block sequence, so every ring is already sorted by key
 * and the dump — a k-way merge truncated to the newest
 * min(kRingCapacity, total) events — is byte-identical at every
 * thread count once timestamps are zeroed (`--zero-times`).  An event
 * can only be evicted from a ring after >= kRingCapacity later events
 * with keys >= its own, so an evicted event is never part of the
 * global tail.
 */

#ifndef SCHED91_OBS_FLIGHT_RECORDER_HH
#define SCHED91_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sched91::obs::flight
{

enum class EventKind : std::uint8_t
{
    RunBegin,
    BlockBegin,
    PhaseEnd,
    Diag,
    Cancel,
    CounterSnap,
    BlockEnd,
    RunEnd,
};

/** "run_begin" / "phase_end" / ... as emitted in dumps. */
std::string_view eventKindName(EventKind kind);

/** Compact fixed-size event; POD so the ring never allocates. */
struct Event
{
    std::uint64_t blockKey = 0; ///< 0 pre-run, block+1, UINT64_MAX post.
    std::uint32_t seq = 0;      ///< Per-key sequence number.
    EventKind kind = EventKind::RunBegin;
    char tag[16] = {};    ///< Short site label ("build", "sched", ...).
    char detail[44] = {}; ///< Free text, truncated + ASCII-sanitized.
    std::uint64_t a = 0;  ///< Kind-specific payload.
    std::uint64_t b = 0;  ///< Kind-specific payload.
    std::uint64_t ns = 0; ///< Nanoseconds since run epoch (0 if zeroed).
};

/** Events retained per lane (and in the merged dump tail). */
inline constexpr std::size_t kRingCapacity = 256;

/** Static recorder slots; lanes beyond this record nothing. */
inline constexpr std::size_t kMaxRecorders = 64;

/** Per-lane event ring.  Not thread-safe; one lane per recorder. */
class Recorder
{
  public:
    void reset();

    /** Key subsequent events as belonging to block @p block. */
    void
    setBlock(std::uint64_t block)
    {
        key_ = block + 1;
        seq_ = 0;
    }

    /** Key subsequent events as after the parallel join. */
    void
    setPostRun()
    {
        key_ = ~std::uint64_t{0};
        seq_ = 0;
    }

    void record(EventKind kind, std::string_view tag,
                std::string_view detail = {}, std::uint64_t a = 0,
                std::uint64_t b = 0);

    /** Events ever recorded (>= kept()). */
    std::uint64_t total() const { return total_; }

    /** Events still in the ring. */
    std::size_t kept() const;

    /** i-th kept event, oldest first. */
    const Event &keptAt(std::size_t i) const;

  private:
    Event ring_[kRingCapacity];
    std::uint64_t total_ = 0;
    std::uint64_t key_ = 0;
    std::uint32_t seq_ = 0;
};

/** Whether record()/gauges are live (off by default; ~1 branch when
 * off). */
bool enabled();
void setEnabled(bool on);

/**
 * Start a run: resets all recorder slots, the claim counter, the
 * gauges, and the timestamp epoch.  Call once before claiming.
 */
void beginRun();

/**
 * Hand ring ownership to an outer host (the scheduling daemon).
 * beginRun() resets *every* recorder slot, which is correct for the
 * one-run CLI but destroys concurrent requests' history in a
 * long-lived process.  While externally managed, runPipeline skips
 * its begin/claim/run-bracket entirely; record() still flows through
 * whatever recorder the host installed on the calling thread, so
 * per-request events land in the host's rings.
 */
void setExternallyManaged(bool on);
bool externallyManaged();

/** Claim a recorder slot; nullptr once kMaxRecorders are claimed. */
Recorder *claim();

/** RAII installer: route this thread's events into @p recorder. */
class ScopedRecorder
{
  public:
    explicit ScopedRecorder(Recorder *recorder);
    ~ScopedRecorder();

    ScopedRecorder(const ScopedRecorder &) = delete;
    ScopedRecorder &operator=(const ScopedRecorder &) = delete;

  private:
    Recorder *prev_;
};

/** The calling thread's installed recorder (may be null). */
Recorder *current();

/** Record through the thread's recorder; no-op when disabled or none
 * installed. */
void record(EventKind kind, std::string_view tag,
            std::string_view detail = {}, std::uint64_t a = 0,
            std::uint64_t b = 0);

/** setBlock()/setPostRun() through the thread's recorder. */
void setBlock(std::uint64_t block);
void setPostRun();

/** Process-wide gauges included in every dump. */
enum class Gauge : std::size_t
{
    BlocksTotal,
    BlocksDone,
    ArenaHighWaterBytes,
    DagArcBytes,
    Count,
};

void setGauge(Gauge g, std::uint64_t value);
void maxGauge(Gauge g, std::uint64_t value);
void addGauge(Gauge g, std::uint64_t delta);
std::uint64_t gaugeValue(Gauge g);

/** Context for a dump; reason must be a NUL-terminated literal or a
 * buffer that outlives the call. */
struct DumpInfo
{
    bool crashed = false;
    int signal = 0; ///< 0 when not signal-initiated.
    const char *reason = "";
    bool zeroTimes = false;
};

/**
 * Format the flight-recorder document into @p buf (allocation-free;
 * safe inside a signal handler).  Returns bytes written, truncating
 * whole events (never mid-token) if the buffer runs out.
 */
std::size_t dumpJsonTo(char *buf, std::size_t cap, const DumpInfo &info);

/** Convenience heap wrapper for tests and the CLI's panic path. */
std::string dumpJson(const DumpInfo &info);

/**
 * Arm the crash path: dumps go to @p path ("-" or empty = stderr),
 * with timestamps zeroed when @p zeroTimes.
 */
void setCrashDump(std::string_view path, bool zeroTimes);

/**
 * Install fatal-signal (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT) and
 * std::terminate handlers that write the crash dump then re-raise.
 */
void installCrashHandlers();

/** Write the crash dump once from a caught fatal error (panic path). */
void writeCrashDump(const char *reason);

} // namespace sched91::obs::flight

#endif // SCHED91_OBS_FLIGHT_RECORDER_HH
