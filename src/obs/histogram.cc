#include "obs/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/string_util.hh"

namespace sched91::obs
{

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p <= 0.0)
        return min();
    if (p >= 100.0)
        return max_;
    // Rank of the percentile among the sorted samples (1-based).
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::min(bucketHi(i), max_);
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
}

Histogram &
HistogramSet::get(std::string_view name)
{
    auto it = std::lower_bound(
        items_.begin(), items_.end(), name,
        [](const Item &item, std::string_view n) {
            return item.first < n;
        });
    if (it != items_.end() && it->first == name)
        return it->second;
    it = items_.insert(it, Item{std::string(name), Histogram{}});
    return it->second;
}

const Histogram *
HistogramSet::find(std::string_view name) const
{
    auto it = std::lower_bound(
        items_.begin(), items_.end(), name,
        [](const Item &item, std::string_view n) {
            return item.first < n;
        });
    if (it != items_.end() && it->first == name)
        return &it->second;
    return nullptr;
}

void
HistogramSet::merge(const HistogramSet &other)
{
    for (const Item &item : other.items_)
        get(item.first).merge(item.second);
}

bool
isTimeHistogram(std::string_view name)
{
    return name.size() >= 3 &&
           name.substr(name.size() - 3) == "_ns";
}

std::string
renderHistograms(const HistogramSet &hists)
{
    static constexpr std::size_t kCol = 12;
    std::size_t width = std::string_view("histogram").size();
    for (const auto &[name, h] : hists.items())
        width = std::max(width, name.size());

    std::string out;
    out += padRight("histogram", width + 2);
    for (const char *col : {"count", "p50", "p90", "p99", "max", "mean"})
        out += padLeft(col, kCol);
    out += '\n';
    for (const auto &[name, h] : hists.items()) {
        out += padRight(name, width + 2);
        if (h.count() == 0) {
            // Zero samples: every statistic is 0 by definition.  Print
            // a plain 0 in each column rather than trusting the
            // percentile/mean math with an empty distribution.
            for (int col = 0; col < 6; ++col)
                out += padLeft("0", kCol);
            out += '\n';
            continue;
        }
        out += padLeft(std::to_string(h.count()), kCol);
        out += padLeft(std::to_string(h.percentile(50)), kCol);
        out += padLeft(std::to_string(h.percentile(90)), kCol);
        out += padLeft(std::to_string(h.percentile(99)), kCol);
        out += padLeft(std::to_string(h.max()), kCol);
        char mean[32];
        std::snprintf(mean, sizeof(mean), "%.1f", h.mean());
        out += padLeft(mean, kCol);
        out += '\n';
    }
    return out;
}

} // namespace sched91::obs
