/**
 * @file
 * Fixed log-bucketed histograms for latency and size distributions —
 * the per-block timing *distributions* behind the paper's F1/F2
 * curves and Tables 4/5, which scalar per-phase totals cannot show
 * (a run dominated by one 11750-instruction block and a run of
 * uniformly slow blocks have the same totals but opposite p99s).
 *
 * Design mirrors the counter layer (obs/counters.hh):
 *
 *  - a Histogram is a fixed array of power-of-two buckets holding
 *    exact event counts — recording is a bit-width computation and
 *    one increment, no allocation, no locks;
 *  - per-worker HistogramSet shards record privately during the
 *    parallel region and merge post-join by bucket-count addition,
 *    which is associative and commutative, so the merged result is
 *    identical at every thread count (for value streams that are
 *    themselves deterministic, e.g. block sizes; latency streams get
 *    identical counts and run-dependent bucket placement);
 *  - percentiles are extracted from the bucket counts: p50/p90/p99
 *    report the inclusive upper bound of the bucket containing the
 *    rank (clamped to the observed maximum), p100 is the exact max.
 *
 * Values are unsigned integers; latencies are recorded in
 * nanoseconds.
 */

#ifndef SCHED91_OBS_HISTOGRAM_HH
#define SCHED91_OBS_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sched91::obs
{

/**
 * Log2-bucketed distribution of unsigned integer values with exact
 * per-bucket counts.  Bucket 0 holds the value 0; bucket i >= 1 holds
 * values in [2^(i-1), 2^i - 1].  65 buckets cover the full uint64
 * range.
 */
class Histogram
{
  public:
    static constexpr std::size_t kNumBuckets = 65;

    /** Bucket index a value lands in (== bit width of the value). */
    static constexpr std::size_t
    bucketOf(std::uint64_t v)
    {
        return static_cast<std::size_t>(std::bit_width(v));
    }

    /** Inclusive lower bound of bucket @p i. */
    static constexpr std::uint64_t
    bucketLo(std::size_t i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Inclusive upper bound of bucket @p i. */
    static constexpr std::uint64_t
    bucketHi(std::size_t i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << i) - 1;
    }

    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return i < kNumBuckets ? buckets_[i] : 0;
    }

    /**
     * Value at percentile @p p in [0, 100]: the inclusive upper bound
     * of the bucket containing rank ceil(p/100 * count), clamped to
     * the observed max (so percentile(100) is the exact maximum and
     * no percentile overstates the data).  0 when empty.
     */
    std::uint64_t percentile(double p) const;

    /** Bucket-count addition — associative, commutative, and
     * order-independent, the property the per-worker shard merge
     * depends on. */
    void merge(const Histogram &other);

    friend bool
    operator==(const Histogram &a, const Histogram &b)
    {
        return a.count_ == b.count_ && a.sum_ == b.sum_ &&
               a.min() == b.min() && a.max_ == b.max_ &&
               a.buckets_ == b.buckets_;
    }

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Ordered name -> Histogram mapping, the histogram analogue of
 * CounterSet.  One per pipeline worker (a lock-free shard: only the
 * owning thread records); merged post-join in a fixed order.
 *
 * Naming convention: histograms of wall-clock durations end in
 * `_ns` (values in nanoseconds) — the emitter uses the suffix to
 * zero them under `--zero-times`.
 */
class HistogramSet
{
  public:
    using Item = std::pair<std::string, Histogram>;

    /** Histogram by name, created empty on first use. */
    Histogram &get(std::string_view name);

    /** Histogram by name, nullptr when absent. */
    const Histogram *find(std::string_view name) const;

    void
    record(std::string_view name, std::uint64_t v)
    {
        get(name).record(v);
    }

    /** Merge every histogram of @p other into this set, name by
     * name. */
    void merge(const HistogramSet &other);

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    /** Entries in ascending name order. */
    const std::vector<Item> &items() const { return items_; }

    friend bool
    operator==(const HistogramSet &a, const HistogramSet &b)
    {
        return a.items_ == b.items_;
    }

  private:
    std::vector<Item> items_; ///< kept sorted by name
};

/** True when @p name follows the duration-histogram convention. */
bool isTimeHistogram(std::string_view name);

/** Convert seconds to the nanosecond unit histograms record. */
inline std::uint64_t
secondsToNs(double seconds)
{
    return seconds <= 0.0
               ? 0
               : static_cast<std::uint64_t>(seconds * 1e9);
}

/** Fixed-width text table (count/p50/p90/p99/max per histogram) for
 * the CLI `--histograms` flag. */
std::string renderHistograms(const HistogramSet &hists);

} // namespace sched91::obs

#endif // SCHED91_OBS_HISTOGRAM_HH
