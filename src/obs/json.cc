#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace sched91::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ += ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SCHED91_ASSERT(!hasElement_.empty() && !pendingKey_,
                   "misnested endObject");
    out_ += '}';
    hasElement_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SCHED91_ASSERT(!hasElement_.empty() && !pendingKey_,
                   "misnested endArray");
    out_ += ']';
    hasElement_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    SCHED91_ASSERT(!hasElement_.empty() && !pendingKey_,
                   "key outside object");
    if (hasElement_.back())
        out_ += ',';
    hasElement_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double d)
{
    beforeValue();
    if (!std::isfinite(d)) {
        out_ += "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", d);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out_ += b ? "true" : "false";
    return *this;
}

std::string
JsonWriter::take()
{
    SCHED91_ASSERT(hasElement_.empty() && !pendingKey_,
                   "unterminated JSON document");
    std::string out = std::move(out_);
    out_.clear();
    return out;
}

} // namespace sched91::obs
