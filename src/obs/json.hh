/**
 * @file
 * Minimal streaming JSON writer for the structured emitters.  No
 * external dependency: the output side of the observability layer
 * needs only object/array nesting, correct string escaping, and
 * locale-independent number formatting, all of which fit in a page
 * of code.
 */

#ifndef SCHED91_OBS_JSON_HH
#define SCHED91_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sched91::obs
{

/** Escape @p s for use inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Compact JSON builder with automatic comma placement.  Usage:
 *
 *     JsonWriter w;
 *     w.beginObject().key("n").value(3).key("xs").beginArray()
 *      .value(1.5).endArray().endObject();
 *     std::string text = w.take();
 *
 * Misnested begin/end calls panic.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object key; must be followed by a value or a begin*(). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(long long v)
    {
        return value(static_cast<std::int64_t>(v));
    }
    JsonWriter &value(unsigned long long v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(bool b);

    /** The finished document (writer resets to empty). */
    std::string take();

  private:
    void beforeValue();

    std::string out_;
    std::vector<bool> hasElement_; ///< per open scope
    bool pendingKey_ = false;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_JSON_HH
