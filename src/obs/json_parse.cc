#include "obs/json_parse.hh"

#include <cctype>
#include <cstdlib>

#include "support/logging.hh"

namespace sched91::obs
{

double
JsonValue::numberOr(const std::string &k, double fallback) const
{
    if (!has(k) || !at(k).isNumber())
        return fallback;
    return at(k).number();
}

std::string
JsonValue::strOr(const std::string &k, const std::string &fallback) const
{
    if (!has(k) || !at(k).isString())
        return fallback;
    return at(k).str();
}

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("malformed JSON at offset ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return JsonValue{parseString()};
        case 't':
            if (!literal("true"))
                fail("bad literal");
            return JsonValue{true};
        case 'f':
            if (!literal("false"))
                fail("bad literal");
            return JsonValue{false};
        case 'n':
            if (!literal("null"))
                fail("bad literal");
            return JsonValue{nullptr};
        default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue::Object obj;
        if (peek() != '}') {
            while (true) {
                std::string key = parseString();
                expect(':');
                obj.insert_or_assign(std::move(key), parseValue());
                if (peek() != ',')
                    break;
                ++pos_;
            }
        }
        expect('}');
        return JsonValue{std::move(obj)};
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue::Array arr;
        if (peek() != ']') {
            while (true) {
                arr.push_back(parseValue());
                if (peek() != ',')
                    break;
                ++pos_;
            }
        }
        expect(']');
        return JsonValue{std::move(arr)};
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                // The writer only emits \u00xx (control characters).
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a') + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A') + 10;
                    else
                        fail("bad \\u escape");
                }
                if (code > 0xff)
                    fail("\\u escape beyond latin-1 unsupported");
                out += static_cast<char>(code);
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double d = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            fail("bad number");
        return JsonValue{d};
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace sched91::obs
