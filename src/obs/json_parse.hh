/**
 * @file
 * Minimal JSON reader — the input-side complement of obs/json.hh,
 * sized for consuming this repository's own emitters (stats-JSON,
 * BENCH_*.json records, Chrome traces): objects, arrays, strings with
 * the escapes the writer produces, numbers as doubles, booleans,
 * null.  Not a general-purpose parser: no \uXXXX surrogate pairs, no
 * duplicate-key policy beyond last-wins, numbers limited to double
 * precision — exactly what the writer can emit.
 *
 * Malformed input throws FatalError with a character offset, so tools
 * built on this (tools/bench_compare.cc) report bad files cleanly
 * under the exit-code contract instead of asserting.
 */

#ifndef SCHED91_OBS_JSON_PARSE_HH
#define SCHED91_OBS_JSON_PARSE_HH

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sched91::obs
{

/** One parsed JSON value (recursive). */
class JsonValue
{
  public:
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;

    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        v;

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(v); }
    bool isObject() const { return std::holds_alternative<Object>(v); }
    bool isArray() const { return std::holds_alternative<Array>(v); }
    bool isNumber() const { return std::holds_alternative<double>(v); }
    bool isString() const
    {
        return std::holds_alternative<std::string>(v);
    }

    const Object &object() const { return std::get<Object>(v); }
    const Array &array() const { return std::get<Array>(v); }
    double number() const { return std::get<double>(v); }
    bool boolean() const { return std::get<bool>(v); }
    const std::string &str() const { return std::get<std::string>(v); }

    bool
    has(const std::string &k) const
    {
        return isObject() && object().count(k) > 0;
    }

    /** Member access; throws std::out_of_range when absent. */
    const JsonValue &at(const std::string &k) const
    {
        return object().at(k);
    }

    /** Number by key with a default for absent/non-numeric members. */
    double numberOr(const std::string &k, double fallback) const;

    /** String by key with a default for absent/non-string members. */
    std::string strOr(const std::string &k,
                      const std::string &fallback) const;
};

/** Parse one JSON document; throws FatalError on malformed input or
 * trailing garbage. */
JsonValue parseJson(std::string_view text);

} // namespace sched91::obs

#endif // SCHED91_OBS_JSON_PARSE_HH
