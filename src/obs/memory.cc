#include "obs/memory.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sched91::obs
{

std::uint64_t
currentPeakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    // Linux (and the BSDs) report kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace sched91::obs
