/**
 * @file
 * Memory telemetry for the scheduling pipeline: where a run's bytes
 * go (worker arenas, DAG arcs) and what the process paid for them
 * (peak RSS).  The paper's F2 point — table building handling fpppp's
 * 11750-instruction block — is as much a memory claim as a time
 * claim; this module makes the footprint measurable.
 *
 * Two classes of quantity, with different determinism guarantees:
 *
 *  - *deterministic* gauges, functions of the input program alone —
 *    cumulative arena bytes, the largest single-block arena working
 *    set, DAG arc count/bytes.  These also surface as `mem.*`
 *    counters and are byte-identical at every thread count;
 *  - *environmental* gauges — arena chunk reservations (dependent on
 *    block-to-worker assignment) and process peak RSS (monotonic over
 *    process lifetime).  These appear only in the `"memory"`
 *    stats-JSON section and are zeroed under `--zero-times`, keeping
 *    whole-document byte-comparability intact.
 */

#ifndef SCHED91_OBS_MEMORY_HH
#define SCHED91_OBS_MEMORY_HH

#include <cstdint>

namespace sched91::obs
{

/** One run's memory footprint (ProgramResult::memory). */
struct MemoryStats
{
    // Deterministic: functions of the input program.
    std::uint64_t arenaBytesAllocated = 0; ///< cumulative, all workers
    std::uint64_t arenaHighWaterBytes = 0; ///< largest one-block set
    std::uint64_t dagArcs = 0;             ///< arcs across all blocks
    std::uint64_t dagArcBytes = 0;         ///< dagArcs * sizeof(Arc)

    // Environmental: depend on lane assignment / process history.
    std::uint64_t arenaReservedBytes = 0; ///< chunk storage, all workers
    std::uint64_t arenaChunks = 0;        ///< chunk count, all workers
    std::uint64_t peakRssBytes = 0;       ///< getrusage ru_maxrss

    friend bool
    operator==(const MemoryStats &a, const MemoryStats &b)
    {
        return a.arenaBytesAllocated == b.arenaBytesAllocated &&
               a.arenaHighWaterBytes == b.arenaHighWaterBytes &&
               a.dagArcs == b.dagArcs && a.dagArcBytes == b.dagArcBytes &&
               a.arenaReservedBytes == b.arenaReservedBytes &&
               a.arenaChunks == b.arenaChunks &&
               a.peakRssBytes == b.peakRssBytes;
    }
};

/**
 * Process peak resident set in bytes (getrusage RUSAGE_SELF
 * ru_maxrss).  Monotonic over the process lifetime; 0 where the
 * platform cannot report it.
 */
std::uint64_t currentPeakRssBytes();

} // namespace sched91::obs

#endif // SCHED91_OBS_MEMORY_HH
