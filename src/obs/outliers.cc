/**
 * @file
 * Outlier tracker implementation: the deterministic work score and
 * the top-K ordering/merge algebra.
 */

#include "obs/outliers.hh"

#include <algorithm>
#include <utility>

namespace sched91::obs
{

std::uint64_t
shardWorkScore(const CounterShard &shard)
{
    const CounterRegistry &reg = shard.registry();
    std::uint64_t score = 0;
    for (std::size_t id = 0; id < reg.size(); ++id) {
        if (reg.kind(id) == CounterKind::Sum)
            score += shard.value(id);
    }
    return score;
}

namespace
{

bool
outranks(std::uint64_t scoreA, std::size_t blockA, std::uint64_t scoreB,
         std::size_t blockB)
{
    if (scoreA != scoreB)
        return scoreA > scoreB;
    return blockA < blockB;
}

} // namespace

bool
OutlierTracker::admits(std::uint64_t score, std::size_t block) const
{
    if (k_ == 0)
        return false;
    if (items_.size() < k_)
        return true;
    const OutlierRecord &last = items_.back();
    return outranks(score, block, last.score, last.block);
}

void
OutlierTracker::insert(OutlierRecord record)
{
    if (!admits(record.score, record.block))
        return;
    auto pos = std::lower_bound(
        items_.begin(), items_.end(), record,
        [](const OutlierRecord &a, const OutlierRecord &b) {
            return outranks(a.score, a.block, b.score, b.block);
        });
    items_.insert(pos, std::move(record));
    if (items_.size() > k_)
        items_.pop_back();
}

void
OutlierTracker::merge(const OutlierTracker &other)
{
    for (const OutlierRecord &r : other.items_)
        insert(r);
}

std::vector<OutlierRecord>
OutlierTracker::byBlock() const
{
    std::vector<OutlierRecord> out = items_;
    std::sort(out.begin(), out.end(),
              [](const OutlierRecord &a, const OutlierRecord &b) {
                  return a.block < b.block;
              });
    return out;
}

} // namespace sched91::obs
