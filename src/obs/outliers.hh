/**
 * @file
 * Deterministic top-K outlier tracking (docs/FORENSICS.md).
 *
 * `--capture-outliers K` keeps the K most expensive blocks of a run
 * and writes a forensic bundle for each (source text, DAG shape,
 * per-phase latencies, counter deltas, degradation attribution) that
 * `sched91 explain` can replay.
 *
 * Wall-clock time is nondeterministic, so ranking by it would make
 * capture depend on scheduling noise.  Instead a block's outlier
 * *score* is the sum of its Sum-kind counter slots — the total
 * instrumented work the block caused (arcs added, visits, heuristic
 * evaluations, ...), which is a pure function of the input and the
 * configuration.  Ordering is (score desc, block id asc).
 *
 * Sharding follows the histogram pattern: each worker lane keeps its
 * own top-K over the blocks it processed, and the post-join merge of
 * lane trackers equals a global top-K because any block in the global
 * top-K is necessarily in its own lane's top-K.
 */

#ifndef SCHED91_OBS_OUTLIERS_HH
#define SCHED91_OBS_OUTLIERS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hh"

namespace sched91::obs
{

/** Everything a forensic bundle needs about one captured block. */
struct OutlierRecord
{
    std::size_t block = 0;
    std::uint64_t score = 0; ///< Sum of Sum-kind counter slots.

    std::uint32_t begin = 0; ///< First instruction index in program.
    std::uint32_t size = 0;  ///< Instruction count.
    std::uint64_t dagNodes = 0;
    std::uint64_t dagArcs = 0;

    double buildSeconds = 0.0;
    double heurSeconds = 0.0;
    double schedSeconds = 0.0;
    double verifySeconds = 0.0;

    CounterSet counters; ///< Per-block counter delta (nonzero slots).

    std::string stage;  ///< Issue stage, empty when the block was clean.
    std::string reason; ///< Issue reason, empty when clean.
    bool degraded = false;
    bool fallback = false;

    std::string source; ///< The block's instructions, one per line.
};

/** The score: total Sum-kind work recorded in @p shard. */
std::uint64_t shardWorkScore(const CounterShard &shard);

/**
 * Keeps the K highest-scoring records seen, ordered (score desc,
 * block asc).  Plain data; merge() makes lane-local trackers
 * equivalent to one global tracker.
 */
class OutlierTracker
{
  public:
    explicit OutlierTracker(std::size_t k) : k_(k) {}

    std::size_t k() const { return k_; }

    /**
     * Whether a record with @p score for @p block would be kept.
     * Callers use this to skip the (expensive) source/counter capture
     * for blocks that cannot place.
     */
    bool admits(std::uint64_t score, std::size_t block) const;

    void insert(OutlierRecord record);

    void merge(const OutlierTracker &other);

    /** Kept records, (score desc, block asc). */
    const std::vector<OutlierRecord> &ranked() const { return items_; }

    /** Kept records re-sorted by block id (stable report order). */
    std::vector<OutlierRecord> byBlock() const;

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

  private:
    std::size_t k_;
    std::vector<OutlierRecord> items_; ///< sorted (score desc, block asc)
};

} // namespace sched91::obs

#endif // SCHED91_OBS_OUTLIERS_HH
