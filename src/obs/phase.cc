#include "obs/phase.hh"

#include "support/logging.hh"

namespace sched91::obs
{

const PhaseStats *
PhaseStats::child(std::string_view child_name) const
{
    for (const PhaseStats &c : children)
        if (c.name == child_name)
            return &c;
    return nullptr;
}

PhaseProfiler &
PhaseProfiler::global()
{
    static PhaseProfiler instance;
    return instance;
}

void
PhaseProfiler::clear()
{
    SCHED91_ASSERT(stack_.empty(),
                   "cannot clear the phase tree with phases open");
    root_.children.clear();
    root_.counters = CounterSet{};
    root_.entries = 0;
    root_.seconds = 0.0;
}

double
PhaseProfiler::topLevelSeconds() const
{
    double total = 0.0;
    for (const PhaseStats &c : root_.children)
        total += c.seconds;
    return total;
}

PhaseStats *
PhaseProfiler::enter(const char *name)
{
    PhaseStats *parent = stack_.empty() ? &root_ : stack_.back();
    PhaseStats *node = nullptr;
    for (PhaseStats &c : parent->children)
        if (c.name == name) {
            node = &c;
            break;
        }
    if (!node) {
        // Only the innermost open phase ever grows children, so this
        // push_back cannot invalidate any pointer still on the stack.
        parent->children.push_back(PhaseStats{});
        node = &parent->children.back();
        node->name = name;
    }
    ++node->entries;
    stack_.push_back(node);
    return node;
}

void
PhaseProfiler::exit(double seconds, const CounterSet &delta)
{
    SCHED91_ASSERT(!stack_.empty(), "phase exit without enter");
    PhaseStats *node = stack_.back();
    stack_.pop_back();
    node->seconds += seconds;
    node->counters.merge(delta);
}

ScopedPhase::ScopedPhase(const char *name, PhaseProfiler &profiler)
    : profiler_(profiler), start_(Clock::now())
{
    if (enabled()) {
        profiler_.enter(name);
        before_ = CounterRegistry::global().snapshot();
        open_ = true;
    }
}

double
ScopedPhase::seconds() const
{
    if (stopped_)
        return elapsed_;
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

double
ScopedPhase::stop()
{
    if (stopped_)
        return elapsed_;
    elapsed_ = seconds();
    stopped_ = true;
    if (open_) {
        profiler_.exit(elapsed_,
                       CounterRegistry::global().deltaSince(before_));
        open_ = false;
    }
    return elapsed_;
}

} // namespace sched91::obs
