#include "obs/phase.hh"

#include "support/logging.hh"

namespace sched91::obs
{

const PhaseStats *
PhaseStats::child(std::string_view child_name) const
{
    for (const PhaseStats &c : children)
        if (c.name == child_name)
            return &c;
    return nullptr;
}

PhaseProfiler &
PhaseProfiler::global()
{
    static PhaseProfiler instance;
    return instance;
}

PhaseProfiler &
PhaseProfiler::active()
{
    return detail::t_profiler ? *detail::t_profiler : global();
}

void
PhaseProfiler::clear()
{
    SCHED91_ASSERT(stack_.empty(),
                   "cannot clear the phase tree with phases open");
    root_.children.clear();
    root_.counters = CounterSet{};
    root_.entries = 0;
    root_.seconds = 0.0;
}

double
PhaseProfiler::topLevelSeconds() const
{
    double total = 0.0;
    for (const PhaseStats &c : root_.children)
        total += c.seconds;
    return total;
}

namespace
{

void
mergeNode(PhaseStats &into, const PhaseStats &from)
{
    into.entries += from.entries;
    into.seconds += from.seconds;
    mergeCounterSets(into.counters, from.counters,
                     CounterRegistry::global());
    for (const PhaseStats &fc : from.children) {
        PhaseStats *ic = nullptr;
        for (PhaseStats &c : into.children)
            if (c.name == fc.name) {
                ic = &c;
                break;
            }
        if (!ic) {
            into.children.push_back(PhaseStats{});
            ic = &into.children.back();
            ic->name = fc.name;
        }
        mergeNode(*ic, fc);
    }
}

} // namespace

void
PhaseProfiler::mergeFrom(const PhaseProfiler &other)
{
    SCHED91_ASSERT(stack_.empty() && other.stack_.empty(),
                   "cannot merge phase trees with phases open");
    mergeNode(root_, other.root_);
}

PhaseStats *
PhaseProfiler::enter(const char *name)
{
    PhaseStats *parent = stack_.empty() ? &root_ : stack_.back();
    PhaseStats *node = nullptr;
    for (PhaseStats &c : parent->children)
        if (c.name == name) {
            node = &c;
            break;
        }
    if (!node) {
        // Only the innermost open phase ever grows children, so this
        // push_back cannot invalidate any pointer still on the stack.
        parent->children.push_back(PhaseStats{});
        node = &parent->children.back();
        node->name = name;
    }
    ++node->entries;
    stack_.push_back(node);
    return node;
}

void
PhaseProfiler::exit(double seconds, const CounterSet &delta)
{
    SCHED91_ASSERT(!stack_.empty(), "phase exit without enter");
    PhaseStats *node = stack_.back();
    stack_.pop_back();
    node->seconds += seconds;
    mergeCounterSets(node->counters, delta, CounterRegistry::global());
}

ScopedPhase::ScopedPhase(const char *name, PhaseProfiler &profiler)
    : profiler_(profiler), start_(Clock::now())
{
    if (enabled()) {
        profiler_.enter(name);
        before_ = activeSnapshot();
        open_ = true;
    }
}

double
ScopedPhase::seconds() const
{
    if (stopped_)
        return elapsed_;
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

double
ScopedPhase::stop()
{
    if (stopped_)
        return elapsed_;
    elapsed_ = seconds();
    stopped_ = true;
    if (open_) {
        profiler_.exit(elapsed_, activeDeltaSince(before_));
        open_ = false;
    }
    return elapsed_;
}

} // namespace sched91::obs
