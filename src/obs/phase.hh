/**
 * @file
 * RAII phase profiler: a nestable tree of named phases (build ->
 * heur-fwd/heur-bwd -> sched -> evaluate) carrying elapsed seconds,
 * entry counts, and per-phase counter deltas.
 *
 * ScopedPhase replaces the ad-hoc Timer plumbing of the pipeline:
 * it always measures wall-clock time (two steady-clock reads, the
 * same cost the Timer had), and only when the observability layer is
 * enabled does it additionally maintain the global phase tree and
 * snapshot the counter registry to attribute event deltas to phases.
 * Deltas are *inclusive*: a parent phase's counters include those of
 * its children.
 */

#ifndef SCHED91_OBS_PHASE_HH
#define SCHED91_OBS_PHASE_HH

#include <chrono>
#include <string>
#include <vector>

#include "obs/counters.hh"

namespace sched91::obs
{

/** Accumulated statistics for one phase node in the tree. */
struct PhaseStats
{
    std::string name;
    std::uint64_t entries = 0; ///< times the phase was entered
    double seconds = 0.0;      ///< total wall-clock across entries
    CounterSet counters;       ///< inclusive counter deltas
    std::vector<PhaseStats> children;

    /** Child by name, nullptr when absent. */
    const PhaseStats *child(std::string_view child_name) const;
};

/**
 * Process-wide accumulator for the phase tree.  Phases entered while
 * another phase is open become (or re-open) children of it; the tree
 * persists across blocks, so per-block phases accumulate into one
 * node per distinct nesting path.
 */
class PhaseProfiler
{
  public:
    static PhaseProfiler &global();

    PhaseProfiler() { root_.name = "run"; }

    /** Drop all accumulated phases (open phases keep recording into
     * fresh nodes). */
    void clear();

    /** The synthetic root; real phases are its descendants. */
    const PhaseStats &root() const { return root_; }

    /** Total seconds of the top-level phases. */
    double topLevelSeconds() const;

  private:
    friend class ScopedPhase;

    PhaseStats *enter(const char *name);
    void exit(double seconds, const CounterSet &delta);

    PhaseStats root_;
    std::vector<PhaseStats *> stack_; ///< open-phase path, root absent
};

/**
 * RAII handle opening a phase for the duration of a scope.  Cheap
 * when observability is disabled: construction and destruction are a
 * clock read plus one branch each.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name,
                         PhaseProfiler &profiler = PhaseProfiler::global());

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase() { stop(); }

    /** Elapsed seconds since construction (or until stop()). */
    double seconds() const;

    /**
     * Close the phase early; returns elapsed seconds.  Idempotent —
     * the destructor becomes a no-op.  Phases must close LIFO.
     */
    double stop();

  private:
    using Clock = std::chrono::steady_clock;

    PhaseProfiler &profiler_;
    Clock::time_point start_;
    double elapsed_ = 0.0; ///< valid once stopped
    CounterSet before_;    ///< registry snapshot (enabled runs only)
    bool open_ = false;    ///< tree node pending an exit()
    bool stopped_ = false;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_PHASE_HH
