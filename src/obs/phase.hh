/**
 * @file
 * RAII phase profiler: a nestable tree of named phases (build ->
 * heur-fwd/heur-bwd -> sched -> evaluate) carrying elapsed seconds,
 * entry counts, and per-phase counter deltas.
 *
 * ScopedPhase replaces the ad-hoc Timer plumbing of the pipeline:
 * it always measures wall-clock time (two steady-clock reads, the
 * same cost the Timer had), and only when the observability layer is
 * enabled does it additionally maintain the phase tree and snapshot
 * the thread's active counter source to attribute event deltas to
 * phases.  Deltas are *inclusive*: a parent phase's counters include
 * those of its children.
 *
 * Phases record into the thread's *active* profiler: normally the
 * process-wide one, but the parallel pipeline installs a private
 * profiler per worker (ScopedProfiler) and merges the worker trees
 * into the caller's after the join — name-matched, so the final tree
 * is independent of how blocks were distributed over threads.
 */

#ifndef SCHED91_OBS_PHASE_HH
#define SCHED91_OBS_PHASE_HH

#include <chrono>
#include <string>
#include <vector>

#include "obs/counters.hh"

namespace sched91::obs
{

class PhaseProfiler;

namespace detail
{
/** Profiler this thread's phases record into (global() by default). */
inline thread_local PhaseProfiler *t_profiler = nullptr;
} // namespace detail

/** Accumulated statistics for one phase node in the tree. */
struct PhaseStats
{
    std::string name;
    std::uint64_t entries = 0; ///< times the phase was entered
    double seconds = 0.0;      ///< total wall-clock across entries
    CounterSet counters;       ///< inclusive counter deltas
    std::vector<PhaseStats> children;

    /** Child by name, nullptr when absent. */
    const PhaseStats *child(std::string_view child_name) const;
};

/**
 * Accumulator for the phase tree.  Phases entered while another phase
 * is open become (or re-open) children of it; the tree persists
 * across blocks, so per-block phases accumulate into one node per
 * distinct nesting path.
 */
class PhaseProfiler
{
  public:
    static PhaseProfiler &global();

    /** The profiler the calling thread records into: the installed
     * one (ScopedProfiler) or global(). */
    static PhaseProfiler &active();

    PhaseProfiler() { root_.name = "run"; }

    /** Drop all accumulated phases (open phases keep recording into
     * fresh nodes). */
    void clear();

    /** The synthetic root; real phases are its descendants. */
    const PhaseStats &root() const { return root_; }

    /** Total seconds of the top-level phases. */
    double topLevelSeconds() const;

    /**
     * Fold another profiler's tree into this one, matching phases by
     * nesting path and name: entries and seconds add, counters merge
     * kind-aware.  Used to fold per-worker trees back into the
     * caller's after a parallel region.
     */
    void mergeFrom(const PhaseProfiler &other);

  private:
    friend class ScopedPhase;

    PhaseStats *enter(const char *name);
    void exit(double seconds, const CounterSet &delta);

    PhaseStats root_;
    std::vector<PhaseStats *> stack_; ///< open-phase path, root absent
};

/** RAII installer: this thread's phases record into @p profiler. */
class ScopedProfiler
{
  public:
    explicit ScopedProfiler(PhaseProfiler &profiler)
        : prev_(detail::t_profiler)
    {
        detail::t_profiler = &profiler;
    }

    ~ScopedProfiler() { detail::t_profiler = prev_; }

    ScopedProfiler(const ScopedProfiler &) = delete;
    ScopedProfiler &operator=(const ScopedProfiler &) = delete;

  private:
    PhaseProfiler *prev_;
};

/**
 * RAII handle opening a phase for the duration of a scope.  Cheap
 * when observability is disabled: construction and destruction are a
 * clock read plus one branch each.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name,
                         PhaseProfiler &profiler = PhaseProfiler::active());

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase() { stop(); }

    /** Elapsed seconds since construction (or until stop()). */
    double seconds() const;

    /**
     * Close the phase early; returns elapsed seconds.  Idempotent —
     * the destructor becomes a no-op.  Phases must close LIFO.
     */
    double stop();

  private:
    using Clock = std::chrono::steady_clock;

    PhaseProfiler &profiler_;
    Clock::time_point start_;
    double elapsed_ = 0.0; ///< valid once stopped
    CounterSet before_;    ///< active-source snapshot (enabled runs)
    bool open_ = false;    ///< tree node pending an exit()
    bool stopped_ = false;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_PHASE_HH
