#include "obs/trace.hh"

#include "obs/json.hh"

namespace sched91::obs
{

void
JsonlTraceSink::event(const TraceEvent &ev)
{
    JsonWriter w;
    w.beginObject()
        .key("block").value(static_cast<std::uint64_t>(ev.block))
        .key("begin").value(ev.begin)
        .key("size").value(ev.size)
        .key("phase").value(ev.phase)
        .key("seconds").value(zeroTimes_ ? 0.0 : ev.seconds);
    w.key("counters").beginObject();
    // Named binding: items() references the set's own storage.
    CounterSet nz = ev.counters.nonzero();
    for (const auto &[name, value] : nz.items())
        w.key(name).value(value);
    w.endObject().endObject();
    *out_ << w.take() << '\n';
    ++events_;
}

} // namespace sched91::obs
