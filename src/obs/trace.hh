/**
 * @file
 * Per-block per-phase trace events and the JSONL sink that serializes
 * them — one event per line, so a run over thousands of blocks streams
 * without buffering and the output is trivially greppable/parsable.
 *
 * The pipeline fires one TraceEvent per phase of every block it
 * schedules, carrying the counter deltas attributable to that phase —
 * the per-block resolution at which the paper discusses construction
 * cost growth (Tables 4/5).
 */

#ifndef SCHED91_OBS_TRACE_HH
#define SCHED91_OBS_TRACE_HH

#include <cstdint>
#include <ostream>

#include "obs/counters.hh"

namespace sched91::obs
{

/** One phase of one block. */
struct TraceEvent
{
    std::size_t block = 0;     ///< block index within the run
    std::uint32_t begin = 0;   ///< first program index of the block
    std::uint32_t size = 0;    ///< instructions in the block
    const char *phase = "";    ///< "build", "heur", "sched", ...
    double seconds = 0.0;
    CounterSet counters;       ///< event deltas within the phase
};

/** Abstract consumer of trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void event(const TraceEvent &ev) = 0;
};

/** Writes each event as one JSON object per line (JSONL). */
class JsonlTraceSink final : public TraceSink
{
  public:
    /** @p out must outlive the sink. */
    explicit JsonlTraceSink(std::ostream &out) : out_(&out) {}

    void event(const TraceEvent &ev) override;

    std::size_t eventsWritten() const { return events_; }

  private:
    std::ostream *out_;
    std::size_t events_ = 0;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_TRACE_HH
