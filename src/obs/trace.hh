/**
 * @file
 * Per-block per-phase trace events and the JSONL sink that serializes
 * them — one event per line, so a run over thousands of blocks streams
 * without buffering and the output is trivially greppable/parsable.
 *
 * The pipeline fires one TraceEvent per phase of every block it
 * schedules, carrying the counter deltas attributable to that phase —
 * the per-block resolution at which the paper discusses construction
 * cost growth (Tables 4/5).
 */

#ifndef SCHED91_OBS_TRACE_HH
#define SCHED91_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/counters.hh"

namespace sched91::obs
{

/** One phase of one block. */
struct TraceEvent
{
    std::size_t block = 0;     ///< block index within the run
    std::uint32_t begin = 0;   ///< first program index of the block
    std::uint32_t size = 0;    ///< instructions in the block
    const char *phase = "";    ///< "build", "heur", "sched", ...
    double seconds = 0.0;
    /** Pipeline lane that processed the block.  Consumed by the
     * Chrome-trace sink (`tid`); deliberately *not* serialized by
     * JsonlTraceSink — lane assignment varies with thread count, and
     * JSONL traces are byte-compared across thread counts. */
    unsigned worker = 0;
    CounterSet counters;       ///< event deltas within the phase
};

/** Abstract consumer of trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void event(const TraceEvent &ev) = 0;
};

/** Writes each event as one JSON object per line (JSONL). */
class JsonlTraceSink final : public TraceSink
{
  public:
    /**
     * @p out must outlive the sink.  With @p zero_times the `seconds`
     * field is written as 0 — wall-clock is inherently run-to-run
     * noise, and zeroing it makes traces byte-comparable across runs
     * and thread counts.
     */
    explicit JsonlTraceSink(std::ostream &out, bool zero_times = false)
        : out_(&out), zeroTimes_(zero_times)
    {
    }

    void event(const TraceEvent &ev) override;

    std::size_t eventsWritten() const { return events_; }

  private:
    std::ostream *out_;
    bool zeroTimes_;
    std::size_t events_ = 0;
};

/**
 * Accumulates events in memory for later in-order replay.  The
 * parallel pipeline gives every block its own buffer (phase events of
 * one block stay contiguous and ordered), then replays the buffers in
 * block order after the join — so the user-visible trace is identical
 * to a serial run's, no matter which worker traced which block.
 *
 * TraceEvent::phase is a pointer to a static string literal at every
 * call site, so buffering events does not dangle.
 */
class BufferedTraceSink final : public TraceSink
{
  public:
    void event(const TraceEvent &ev) override { events_.push_back(ev); }

    void
    replayInto(TraceSink &sink) const
    {
        for (const TraceEvent &ev : events_)
            sink.event(ev);
    }

    void clear() { events_.clear(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    std::vector<TraceEvent> events_;
};

} // namespace sched91::obs

#endif // SCHED91_OBS_TRACE_HH
