#include "regalloc/local_allocator.hh"

#include <algorithm>
#include <climits>
#include <map>
#include <set>

#include "support/logging.hh"

namespace sched91
{

namespace
{

/** Allocation unit: an integer register or an FP even/odd pair. */
struct Unit
{
    bool fp = false;
    int base = 0; ///< int reg index, or even FP index

    bool operator==(const Unit &) const = default;
    auto operator<=>(const Unit &) const = default;
};

/** A value: one definition (version) of a unit. */
using Value = std::pair<Unit, int>; // (unit, version); version 0 = live-in

/** Registers that must never be reallocated. */
bool
pinnedIntReg(int idx)
{
    return idx == 0 || idx == 14 || idx == 15 || idx == 30; // g0 sp o7 fp
}

std::optional<Unit>
unitOf(Resource r)
{
    if (r.kind() == Resource::Kind::IntReg && !pinnedIntReg(r.index()))
        return Unit{false, r.index()};
    if (r.kind() == Resource::Kind::FpReg)
        return Unit{true, r.index() & ~1};
    return std::nullopt;
}

/** Per-block precomputed value information. */
struct ValueInfo
{
    std::vector<int> usePositions; // ascending order positions
};

/** The allocator state machine. */
class Allocator
{
  public:
    Allocator(const BlockView &block,
              const std::vector<std::uint32_t> &order,
              const AllocatorOptions &opts)
        : block_(block), order_(order), opts_(opts)
    {
    }

    std::optional<AllocationResult>
    run()
    {
        if (!scanBlock())
            return std::nullopt;
        buildPools();

        for (pos_ = 0; pos_ < static_cast<int>(order_.size()); ++pos_) {
            const Instruction &inst = block_.inst(order_[pos_]);
            if (!processInstruction(inst))
                return std::nullopt;
        }
        return std::move(result_);
    }

  private:
    /** Version bookkeeping and feasibility scan. */
    bool
    scanBlock()
    {
        std::map<Unit, int> version;
        for (std::size_t p = 0; p < order_.size(); ++p) {
            const Instruction &inst = block_.inst(order_[p]);
            // Calls clobber registers outside the rename map's view;
            // integer pairs would break single-register units.
            if (inst.cls() == InstClass::Call ||
                inst.op() == Opcode::Ldd || inst.op() == Opcode::Std ||
                inst.op() == Opcode::Jmpl) {
                return false;
            }
            std::set<Unit> seen;
            for (Resource r : inst.uses()) {
                auto u = unitOf(r);
                if (!u || !seen.insert(*u).second)
                    continue;
                int v = version.count(*u) ? version[*u] : 0;
                if (v == 0)
                    liveIn_[*u] = true;
                values_[{*u, v}].usePositions.push_back(
                    static_cast<int>(p));
            }
            seen.clear();
            for (Resource r : inst.defs()) {
                auto u = unitOf(r);
                if (!u || !seen.insert(*u).second)
                    continue; // register pairs are one unit
                ++version[*u];
            }
        }
        return true;
    }

    /** Remove live-in originals and pinned registers from the pools. */
    void
    buildPools()
    {
        for (int reg : opts_.intPool) {
            bool live_in = liveIn_.count(Unit{false, reg}) > 0;
            if (!pinnedIntReg(reg) && !live_in)
                freeInt_.push_back(reg);
        }
        for (int reg : opts_.fpPool) {
            bool live_in = liveIn_.count(Unit{true, reg & ~1}) > 0;
            if (!live_in)
                freeFp_.push_back(reg & ~1);
        }
    }

    int
    nextUseAfter(const Value &value, int pos) const
    {
        auto it = values_.find(value);
        if (it == values_.end())
            return INT_MAX;
        const auto &uses = it->second.usePositions;
        auto u = std::upper_bound(uses.begin(), uses.end(), pos);
        return u == uses.end() ? INT_MAX : *u;
    }

    /** Spill slot for a value (stable once assigned). */
    std::int64_t
    slotOffset(const Value &value)
    {
        auto it = slots_.find(value);
        if (it == slots_.end()) {
            it = slots_.emplace(value, opts_.spillBase -
                                           8 * result_.slotsUsed)
                     .first;
            ++result_.slotsUsed;
        }
        return it->second;
    }

    void
    emitSpillStore(const Value &value, int reg)
    {
        MemOperand slot;
        slot.base = 30; // %fp
        slot.offset = slotOffset(value);
        slot.width = 8;
        Opcode op = value.first.fp ? Opcode::Stdf : Opcode::Stx;
        Resource data = value.first.fp ? Resource::fpReg(reg)
                                       : Resource::intReg(reg);
        result_.insts.push_back(
            makeInstruction(op, data, Resource(), Resource(), slot));
        ++result_.spillStores;
    }

    void
    emitReload(const Value &value, int reg)
    {
        MemOperand slot;
        slot.base = 30;
        slot.offset = slotOffset(value);
        slot.width = 8;
        Opcode op = value.first.fp ? Opcode::Lddf : Opcode::Ldx;
        Resource dest = value.first.fp ? Resource::fpReg(reg)
                                       : Resource::intReg(reg);
        result_.insts.push_back(
            makeInstruction(op, Resource(), Resource(), dest, slot));
        ++result_.spillLoads;
    }

    /**
     * Obtain a register of the right class, evicting the in-register
     * value with the furthest next use when the pool is dry.  @p locked
     * registers (operands of the instruction being rewritten) are not
     * evictable.
     */
    std::optional<int>
    acquireReg(bool fp, const std::vector<int> &locked)
    {
        auto &free = fp ? freeFp_ : freeInt_;
        if (!free.empty()) {
            int reg = free.back();
            free.pop_back();
            return reg;
        }

        // Belady eviction over same-class in-register values.
        const Value *victim = nullptr;
        int victim_reg = -1;
        int victim_next = -1;
        for (const auto &[value, reg] : inReg_) {
            if (value.first.fp != fp)
                continue;
            if (std::find(locked.begin(), locked.end(), reg) !=
                locked.end()) {
                continue;
            }
            int next = nextUseAfter(value, pos_ - 1);
            if (next > victim_next) {
                victim_next = next;
                victim = &value;
                victim_reg = reg;
            }
        }
        if (!victim)
            return std::nullopt;

        Value v = *victim;
        inReg_.erase(v);
        if (victim_next != INT_MAX) {
            emitSpillStore(v, victim_reg);
            spilled_.insert(v);
        }
        return victim_reg;
    }

    bool
    processInstruction(const Instruction &inst)
    {
        // Rename maps for this instruction.
        std::map<Unit, int> use_map;
        std::map<Unit, int> def_map;
        std::vector<int> locked;

        // --- secure every use ------------------------------------
        for (Resource r : inst.uses()) {
            auto u = unitOf(r);
            if (!u || use_map.count(*u))
                continue;
            int version = curVersion_.count(*u) ? curVersion_[*u] : 0;
            if (version == 0) {
                // Live-in: stays in its original register.
                use_map[*u] = u->base;
                locked.push_back(u->base);
                continue;
            }
            Value value{*u, version};
            auto it = inReg_.find(value);
            if (it != inReg_.end()) {
                use_map[*u] = it->second;
                locked.push_back(it->second);
                continue;
            }
            SCHED91_ASSERT(spilled_.count(value),
                           "value neither in reg nor spilled");
            auto reg = acquireReg(u->fp, locked);
            if (!reg)
                return false;
            emitReload(value, *reg);
            spilled_.erase(value);
            inReg_[value] = *reg;
            use_map[*u] = *reg;
            locked.push_back(*reg);
        }

        // --- free registers whose value dies here ------------------
        for (const auto &[unit, reg] : use_map) {
            int version = curVersion_.count(unit) ? curVersion_[unit] : 0;
            if (version == 0)
                continue; // live-in registers are never pooled
            Value value{unit, version};
            if (nextUseAfter(value, pos_) == INT_MAX) {
                auto it = inReg_.find(value);
                if (it != inReg_.end()) {
                    (unit.fp ? freeFp_ : freeInt_).push_back(it->second);
                    inReg_.erase(it);
                }
            }
        }

        // --- allocate definitions -----------------------------------
        for (Resource r : inst.defs()) {
            auto u = unitOf(r);
            if (!u || def_map.count(*u))
                continue;
            int version = (curVersion_[*u] += 1);
            Value value{*u, version};
            auto reg = acquireReg(u->fp, locked);
            if (!reg)
                return false;
            inReg_[value] = *reg;
            def_map[*u] = *reg;
            locked.push_back(*reg);
            // A dead definition frees its register immediately.
            if (nextUseAfter(value, pos_) == INT_MAX) {
                (u->fp ? freeFp_ : freeInt_).push_back(*reg);
                inReg_.erase(value);
            }
        }

        // --- rewrite the instruction --------------------------------
        auto apply = [](const std::map<Unit, int> &map, Resource r) {
            auto u = unitOf(r);
            if (!u)
                return r;
            auto it = map.find(*u);
            if (it == map.end())
                return r;
            if (u->fp)
                return Resource::fpReg(it->second +
                                       (r.index() & 1));
            return Resource::intReg(it->second);
        };
        result_.insts.push_back(renameRegisters(
            inst,
            [&](Resource r) { return apply(use_map, r); },
            [&](Resource r) { return apply(def_map, r); }));
        return true;
    }

    const BlockView &block_;
    const std::vector<std::uint32_t> &order_;
    const AllocatorOptions &opts_;

    std::map<Unit, bool> liveIn_;
    std::map<Value, ValueInfo> values_;
    std::map<Unit, int> curVersion_;

    std::vector<int> freeInt_;
    std::vector<int> freeFp_;
    std::map<Value, int> inReg_;
    std::set<Value> spilled_;
    std::map<Value, std::int64_t> slots_;

    AllocationResult result_;
    int pos_ = 0;
};

} // namespace

std::optional<AllocationResult>
allocateBlock(const BlockView &block,
              const std::vector<std::uint32_t> &order,
              const AllocatorOptions &opts)
{
    SCHED91_ASSERT(order.size() == block.size());
    Allocator allocator(block, order, opts);
    return allocator.run();
}

} // namespace sched91
