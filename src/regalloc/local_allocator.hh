/**
 * @file
 * Local (within-block) register allocation with spilling.
 *
 * The paper's register-usage heuristics exist because scheduling and
 * allocation interact: "The integration of register allocation and
 * instruction scheduling into one pass has also been studied by other
 * authors [2,5]" (Section 3).  This allocator makes that interaction
 * measurable end to end: given a block (typically one already
 * reordered by a prepass scheduler), it re-maps every block-defined
 * value onto a bounded physical register pool, inserting spill stores
 * and reloads (64-bit stx/ldx for integers, stdf/lddf for FP pairs)
 * against dedicated frame slots when the pool overflows.  Eviction is
 * furthest-next-use (Belady).
 *
 * Live-in values keep their original registers (which are excluded
 * from the pool), so the rewritten block is a drop-in replacement:
 * executing it from the same initial state produces the same memory
 * writes and the same values at each original store — verified by the
 * allocator tests through the functional executor.
 *
 * FP values are allocated in even/odd pair units (double-precision
 * safe); integer double-word pairs (ldd/std) are rare enough that
 * blocks containing them are rejected rather than mishandled.
 */

#ifndef SCHED91_REGALLOC_LOCAL_ALLOCATOR_HH
#define SCHED91_REGALLOC_LOCAL_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "dag/dag.hh"
#include "ir/instruction.hh"

namespace sched91
{

/** Allocator configuration. */
struct AllocatorOptions
{
    /** Allocatable integer registers (indices into the int file). */
    std::vector<int> intPool = {8, 9, 10, 11, 12, 13};

    /** Allocatable FP pair bases (even indices). */
    std::vector<int> fpPool = {0, 4, 8, 12};

    /** Frame offset of the first spill slot; slots descend by 8. */
    std::int64_t spillBase = -0x8000;
};

/** Rewritten block plus spill accounting. */
struct AllocationResult
{
    std::vector<Instruction> insts; ///< block with spill code inserted
    int spillStores = 0;
    int spillLoads = 0;
    int slotsUsed = 0;

    /** Total instructions added. */
    int overhead() const { return spillStores + spillLoads; }
};

/**
 * Allocate the block given by @p block executed in @p order
 * (block-relative node ids; pass the identity for program order).
 * Returns std::nullopt when the block cannot be allocated (integer
 * pair operations, or a single instruction needs more registers than
 * the pool holds).
 */
std::optional<AllocationResult>
allocateBlock(const BlockView &block,
              const std::vector<std::uint32_t> &order,
              const AllocatorOptions &opts = {});

} // namespace sched91

#endif // SCHED91_REGALLOC_LOCAL_ALLOCATOR_HH
