/**
 * @file
 * The six published instruction scheduling algorithms analyzed in
 * Table 2 of the paper, each expressed as a SchedulerConfig for the
 * generic list-scheduling engine plus its Table 2 DAG-construction
 * preference.
 *
 * Table 2 summary (pass directions and ranked heuristics):
 *
 *                    | dag pass | dag alg | sched | ranked heuristics
 *  Gibbons&Muchnick  |  b       | n**2    | f     | 1 no-interlock-prev,
 *                    |          |         |       | 2 interlock-w/-child,
 *                    |          |         |       | 3 #children, 4 max path to leaf
 *  Krishnamurthy     |  f       | table   | f+fix | 1 earliest time, 2 fpu
 *                    |          |         |       | interlocks, 3 max path to
 *                    |          |         |       | leaf, 4 exec time, 5 max
 *                    |          |         |       | delay to leaf (priority fn)
 *  Schlansker        |  n.g.    | n.g.    | b     | 1 slack, 2 latest start
 *                    |          |         |       | time (priority fn)
 *  Shieh&Papachristou|  n.g.    | n.g.    | f     | 1 max delay to leaf, 2 exec
 *                    |          |         |       | time, 3 #children,
 *                    |          |         |       | 4 #parents (inverse),
 *                    |          |         |       | 5 max path to root
 *  Tiemann (GCC)     |  f       | table   | b     | 1 max delay to root,
 *                    |          |         |       | 2 birthing instruction,
 *                    |          |         |       | 3 original order (priority fn)
 *  Warren            |  f       | n**2    | f     | 1 earliest time, 2 alternate
 *                    |          |         |       | type, 3 max delay to leaf,
 *                    |          |         |       | 4 register liveness,
 *                    |          |         |       | 5 #uncovered, 6 original order
 */

#ifndef SCHED91_SCHED_ALGORITHMS_ALGORITHMS_HH
#define SCHED91_SCHED_ALGORITHMS_ALGORITHMS_HH

#include "sched/list_scheduler.hh"

namespace sched91
{

/** Gibbons & Muchnick, SIGPLAN '86 [3]. */
SchedulerConfig gibbonsMuchnickConfig();

/** Krishnamurthy, Clemson M.S. '90 [8] (with postpass fixup). */
SchedulerConfig krishnamurthyConfig();

/** Schlansker, ASPLOS-IV tutorial '91 [12] (slack critical path). */
SchedulerConfig schlanskerConfig();

/** Shieh & Papachristou, MICRO-22 '89 [13]. */
SchedulerConfig shiehPapachristouConfig();

/** Tiemann's GNU instruction scheduler '89 [15] / GCC 2 [17]. */
SchedulerConfig tiemannConfig();

/** Warren, IBM RS/6000 scheduler, IBM JRD '90 [16]. */
SchedulerConfig warrenConfig();

} // namespace sched91

#endif // SCHED91_SCHED_ALGORITHMS_ALGORITHMS_HH
