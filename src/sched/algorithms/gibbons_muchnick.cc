/**
 * @file
 * Gibbons & Muchnick, "Efficient instruction scheduling for a
 * pipelined architecture" [3].
 *
 * Forward list scheduling over an n**2 backward-built DAG, winnowing
 * by: (1) does NOT interlock with the previously scheduled
 * instruction; (2) interlocks with some child (choose long-delay
 * producers early so the remaining candidates can fill the delay
 * slots); (3) number of children; (4) maximum path length to a leaf.
 */

#include "sched/algorithms/algorithms.hh"

namespace sched91
{

SchedulerConfig
gibbonsMuchnickConfig()
{
    SchedulerConfig c;
    c.name = "gibbons-muchnick";
    c.forward = true;
    c.ranking = {
        {Heuristic::InterlockWithPrevious, /*preferLarger=*/false},
        {Heuristic::InterlockWithChild, true},
        {Heuristic::NumChildren, true},
        {Heuristic::MaxPathToLeaf, true},
    };
    c.needsBackwardPass = true; // max path length to a leaf
    return c;
}

} // namespace sched91
