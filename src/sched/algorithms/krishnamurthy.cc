/**
 * @file
 * Krishnamurthy, "Static scheduling of multi-cycle operations for a
 * pipelined RISC processor" [8].
 *
 * Table-building forward DAG construction paired with a forward
 * scheduling pass driven by a priority function over: (1) earliest
 * execution time, (2) FP function unit interlocks (busy times),
 * (3) maximum path length to a leaf, (4) execution time, (5) maximum
 * delay to a leaf — followed by a postpass fixup that fills remaining
 * operation delay slots (Section 5).
 */

#include "sched/algorithms/algorithms.hh"

namespace sched91
{

SchedulerConfig
krishnamurthyConfig()
{
    SchedulerConfig c;
    c.name = "krishnamurthy";
    c.forward = true;
    c.ranking = {
        {Heuristic::EarliestExecutionTime, /*preferLarger=*/false},
        {Heuristic::FpuBusyTimes, false},
        {Heuristic::MaxPathToLeaf, true},
        {Heuristic::ExecutionTime, true},
        {Heuristic::MaxDelayToLeaf, true},
    };
    c.postpassFixup = true;
    c.needsBackwardPass = true; // path/delay to leaf
    return c;
}

} // namespace sched91
