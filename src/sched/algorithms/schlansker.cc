/**
 * @file
 * Schlansker, "Compilation for VLIW and superscalar processors" [12].
 *
 * A critical-path algorithm: earliest start times by a forward pass,
 * latest start times by a backward pass, slack = LST - EST; nodes with
 * zero slack lie on the critical path.  The scheduling pass runs
 * backward, filling the block from the end: the candidate that can
 * start *latest* (largest LST) takes the current last slot, with
 * larger slack breaking ties — so zero-slack critical-path nodes are
 * pushed as early as possible.  (Ranking by slack before LST places
 * high-slack nodes after nodes with later deadlines and measurably
 * lengthens schedules; LST realizes the critical-path intent.)
 *
 * Per Section 5, this is the one algorithm whose need for both a
 * forward and a backward heuristic pass is unavoidable.
 */

#include "sched/algorithms/algorithms.hh"

namespace sched91
{

SchedulerConfig
schlanskerConfig()
{
    SchedulerConfig c;
    c.name = "schlansker";
    c.forward = false;
    c.ranking = {
        {Heuristic::LatestStartTime, /*preferLarger=*/true},
        {Heuristic::Slack, true},
    };
    c.needsForwardPass = true;  // EST
    c.needsBackwardPass = true; // LST
    return c;
}

} // namespace sched91
