/**
 * @file
 * Shieh & Papachristou, "On reordering instruction streams for
 * pipelined computers" [13].
 *
 * Forward scheduling ranked by: (1) maximum total delay to a leaf,
 * (2) execution time, (3) number of children, (4) number of parents as
 * an *inverse* heuristic ("the larger number of parents will mean that
 * the candidate node must wait for a larger number of instruction
 * completions"), and (5) maximum path length from the root, which the
 * authors recommend "to help schedule nodes as soon as possible".
 * Section 5 notes this last heuristic could be omitted with little
 * effect since it is applied last.
 */

#include "sched/algorithms/algorithms.hh"

namespace sched91
{

SchedulerConfig
shiehPapachristouConfig()
{
    SchedulerConfig c;
    c.name = "shieh-papachristou";
    c.forward = true;
    c.ranking = {
        {Heuristic::MaxDelayToLeaf, /*preferLarger=*/true},
        {Heuristic::ExecutionTime, true},
        {Heuristic::NumChildren, true},
        {Heuristic::NumParents, false},
        {Heuristic::MaxPathFromRoot, true},
    };
    c.needsForwardPass = true;  // max path from root
    c.needsBackwardPass = true; // max delay to leaf
    return c;
}

} // namespace sched91
