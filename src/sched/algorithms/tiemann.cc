/**
 * @file
 * Tiemann, "The GNU instruction scheduler" [15], as modified in the
 * version 2 GNU C compiler [17].
 *
 * Backward scheduling with a priority function: (1) maximum total
 * delay from the root (computed by a forward pass), (2) the birthing-
 * instruction adjustment — "each RAW parent of the most recently
 * scheduled node has its priority adjusted upward so that each is more
 * likely to be chosen next and thus shorten the lifetime of the
 * corresponding live register" — and (3) original program order.
 * GCC 2 additionally consults #registers killed; expose that with
 * tiemannConfig() by appending Heuristic::RegistersKilled if desired.
 */

#include "sched/algorithms/algorithms.hh"

namespace sched91
{

SchedulerConfig
tiemannConfig()
{
    SchedulerConfig c;
    c.name = "tiemann";
    c.forward = false;
    c.ranking = {
        {Heuristic::MaxDelayFromRoot, /*preferLarger=*/true},
        {Heuristic::BirthingInstruction, true},
    };
    c.birthing = true;
    c.needsForwardPass = true; // max delay from root
    c.needsRegisterPressure = true;
    return c;
}

} // namespace sched91
