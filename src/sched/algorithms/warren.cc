/**
 * @file
 * Warren, "Instruction scheduling for the IBM RISC System/6000
 * processor" [16].
 *
 * n**2 forward DAG construction with a forward scheduling pass ranked
 * by: (1) earliest execution time, (2) alternate type (prefer a
 * different issue group than the last scheduled instruction, to keep
 * the superscalar units balanced), (3) maximum total delay to a leaf,
 * (4) register liveness (designed for both prepass and postpass use),
 * (5) number of uncovered children — the exact measure of how many
 * nodes join the candidate list — and (6) original order.
 */

#include "sched/algorithms/algorithms.hh"

namespace sched91
{

SchedulerConfig
warrenConfig()
{
    SchedulerConfig c;
    c.name = "warren";
    c.forward = true;
    c.ranking = {
        {Heuristic::EarliestExecutionTime, /*preferLarger=*/false},
        {Heuristic::AlternateType, true},
        {Heuristic::MaxDelayToLeaf, true},
        {Heuristic::Liveness, true},
        {Heuristic::NumUncoveredChildren, true},
    };
    c.needsBackwardPass = true;
    c.needsRegisterPressure = true;
    return c;
}

} // namespace sched91
