#include "sched/branch_and_bound.hh"

#include <algorithm>

#include "heuristics/static_passes.hh"
#include "machine/function_unit.hh"
#include "sched/list_scheduler.hh"
#include "sched/pipeline_sim.hh"
#include "sched/simple_forward.hh"
#include "support/logging.hh"

namespace sched91
{

namespace
{

/** Depth-first branch-and-bound search state and machinery. */
class Search
{
  public:
    Search(Dag &dag, const MachineModel &machine, const BnbOptions &opts)
        : dag_(dag), machine_(machine), opts_(opts), fus_(machine)
    {
        n_ = dag.size();
        eet_.assign(n_, 0);
        unschedParents_.resize(n_);
        scheduled_.assign(n_, false);
        for (std::uint32_t i = 0; i < n_; ++i)
            unschedParents_[i] = dag.numParents(i);

        // Critical tail per node: cycles from the node's issue to
        // block completion along the worst path (arc delays, closing
        // with the final node's latency).  The search's lower bound.
        tail_.assign(n_, 0);
        for (std::uint32_t i = n_; i-- > 0;) {
            int t = dag.ann().execTime[i];
            std::span<const std::uint32_t> to = dag.succTo(i);
            std::span<const std::int32_t> delay = dag.succDelay(i);
            for (std::size_t k = 0; k < to.size(); ++k)
                t = std::max(t, delay[k] + tail_[to[k]]);
            tail_[i] = t;
        }
    }

    BnbResult
    run(int initial_bound, Schedule initial_sched)
    {
        best_ = initial_bound;
        bestOrder_ = std::move(initial_sched.order);
        order_.reserve(n_);
        exhausted_ = false;
        dfs(/*time=*/0, /*finish=*/0);

        BnbResult result;
        result.sched.order = bestOrder_;
        result.cycles = best_;
        result.optimal = !exhausted_;
        result.nodesExplored = explored_;
        return result;
    }

  private:
    /** Lower bound on the final makespan from the current state. */
    int
    lowerBound(int time, int finish) const
    {
        int lb = finish;
        int remaining = 0;
        for (std::uint32_t i = 0; i < n_; ++i) {
            if (scheduled_[i])
                continue;
            ++remaining;
            // The node cannot issue before its dependences settle nor
            // before the next issue slot.
            lb = std::max(lb, std::max(eet_[i], time) + tail_[i]);
        }
        // Single issue: the last remaining node issues no earlier than
        // time + remaining - 1 and needs at least one cycle.
        if (remaining > 0)
            lb = std::max(lb, time + remaining);
        return lb;
    }

    void
    dfs(int time, int finish)
    {
        if (explored_ >= opts_.maxNodes) {
            exhausted_ = true;
            return;
        }
        ++explored_;

        if (order_.size() == n_) {
            if (finish < best_) {
                best_ = finish;
                bestOrder_ = order_;
            }
            return;
        }

        // Candidates, most promising first (smallest earliest issue,
        // then longest critical tail) so good schedules tighten the
        // bound early.
        std::vector<std::uint32_t> candidates;
        for (std::uint32_t i = 0; i < n_; ++i)
            if (!scheduled_[i] && unschedParents_[i] == 0)
                candidates.push_back(i);
        std::sort(candidates.begin(), candidates.end(),
                  [this, time](std::uint32_t a, std::uint32_t b) {
                      int ia = std::max(eet_[a], time);
                      int ib = std::max(eet_[b], time);
                      if (ia != ib)
                          return ia < ib;
                      if (tail_[a] != tail_[b])
                          return tail_[a] > tail_[b];
                      return a < b;
                  });

        for (std::uint32_t c : candidates) {
            InstClass cls = dag_.inst(c).cls();
            int issue = std::max({time, eet_[c],
                                  fus_.earliestFree(machine_.fuFor(cls),
                                                    time)});
            int new_finish =
                std::max(finish, issue + dag_.ann().execTime[c]);
            if (new_finish >= best_)
                continue;

            // Apply.
            scheduled_[c] = true;
            order_.push_back(c);
            std::span<const std::uint32_t> to = dag_.succTo(c);
            std::span<const std::int32_t> delay = dag_.succDelay(c);
            std::vector<int> saved_eet;
            for (std::size_t k = 0; k < to.size(); ++k) {
                saved_eet.push_back(eet_[to[k]]);
                --unschedParents_[to[k]];
                eet_[to[k]] =
                    std::max(eet_[to[k]], issue + delay[k]);
            }
            FuState saved_fus = fus_;
            fus_.occupy(cls, issue);

            if (lowerBound(issue + 1, new_finish) < best_)
                dfs(issue + 1, new_finish);

            // Undo.
            fus_ = saved_fus;
            for (std::size_t k = 0; k < to.size(); ++k) {
                ++unschedParents_[to[k]];
                eet_[to[k]] = saved_eet[k];
            }
            order_.pop_back();
            scheduled_[c] = false;

            if (explored_ >= opts_.maxNodes) {
                exhausted_ = true;
                return;
            }
        }
    }

    Dag &dag_;
    const MachineModel &machine_;
    const BnbOptions &opts_;

    std::uint32_t n_ = 0;
    std::vector<int> eet_;
    std::vector<int> unschedParents_;
    std::vector<bool> scheduled_;
    std::vector<int> tail_;
    FuState fus_;

    std::vector<std::uint32_t> order_;
    std::vector<std::uint32_t> bestOrder_;
    int best_ = 0;
    long long explored_ = 0;
    bool exhausted_ = false;
};

} // namespace

BnbResult
scheduleOptimal(Dag &dag, const MachineModel &machine,
                const BnbOptions &opts)
{
    runAllStaticPasses(dag);

    // Seed the bound with the better of two heuristic schedules.
    SchedulerConfig simple = simpleForwardConfig();
    Schedule seed = ListScheduler(simple, machine).run(dag);
    int seed_cycles = simulateSchedule(dag, seed.order, machine).cycles;

    int bound = opts.initialBound >= 0
                    ? std::min(opts.initialBound, seed_cycles + 1)
                    : seed_cycles + 1;

    Search search(dag, machine, opts);
    BnbResult result = search.run(bound, seed);

    // The seeded schedule may remain the incumbent.
    if (result.cycles >= seed_cycles) {
        result.cycles = seed_cycles;
        result.sched.order = seed.order;
    }
    SCHED91_ASSERT(isValidTopologicalOrder(dag, result.sched.order));
    result.sched.issueCycle.clear();
    return result;
}

} // namespace sched91
