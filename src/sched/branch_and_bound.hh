/**
 * @file
 * Optimal basic-block scheduling by branch and bound.
 *
 * The paper's future work (Section 7): "We plan to extend this work
 * by determining if an optimal branch-and-bound scheduler would
 * benefit performance for small basic blocks."  This module provides
 * that scheduler: depth-first search over topological completions of
 * the DAG with critical-path lower-bound pruning, optimizing the same
 * objective the pipeline simulator measures on a single-issue
 * machine — block completion time including dependence delays and
 * function-unit (structural) hazards.
 *
 * Finding the optimum is NP-complete [6], so the search carries an
 * exploration budget; within the budget the result is proven optimal,
 * otherwise the best schedule found so far is returned with
 * BnbResult::optimal == false.  Intended for small blocks (tens of
 * instructions); bench_optimal quantifies how much the Table 2
 * heuristics leave on the table.
 */

#ifndef SCHED91_SCHED_BRANCH_AND_BOUND_HH
#define SCHED91_SCHED_BRANCH_AND_BOUND_HH

#include <cstdint>

#include "dag/dag.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** Search configuration. */
struct BnbOptions
{
    /** Maximum number of search-tree nodes to expand. */
    long long maxNodes = 2'000'000;

    /**
     * Initial upper bound (cycles).  Values < 0 seed the bound from a
     * heuristic schedule computed internally.
     */
    int initialBound = -1;
};

/** Search outcome. */
struct BnbResult
{
    Schedule sched;
    int cycles = 0;               ///< makespan of sched
    bool optimal = false;         ///< proven optimal within budget
    long long nodesExplored = 0;  ///< search-tree size
};

/**
 * Find a provably optimal (or budget-best) schedule for @p dag on a
 * single-issue machine.  The DAG's static annotations are refreshed
 * internally; dynamic state is consumed.
 */
BnbResult scheduleOptimal(Dag &dag, const MachineModel &machine,
                          const BnbOptions &opts = {});

} // namespace sched91

#endif // SCHED91_SCHED_BRANCH_AND_BOUND_HH
