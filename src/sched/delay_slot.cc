#include "sched/delay_slot.hh"

#include <algorithm>

#include "ir/opcode.hh"

namespace sched91
{

namespace
{

/** Is @p node's only influence on the branch the control anchor? */
bool
onlyControlToBranch(const Dag &dag, std::uint32_t node,
                    std::uint32_t branch)
{
    for (std::uint32_t arc_id : dag.succs(node)) {
        const Arc &arc = dag.arc(arc_id);
        if (arc.to != branch || arc.kind != DepKind::CTRL)
            return false;
    }
    return !dag.succs(node).empty();
}

} // namespace

DelaySlotResult
fillBranchDelaySlot(const Dag &dag, Schedule &sched)
{
    DelaySlotResult result;
    if (dag.size() < 2 || sched.order.empty())
        return result;

    std::uint32_t branch = dag.size() - 1;
    const Instruction &tail = dag.inst(branch);
    if (!isControlTransfer(tail.cls()) || sched.order.back() != branch)
        return result;

    // Latest-scheduled candidate whose only tie to the branch is the
    // control anchor: it contributes nothing the branch reads, so it
    // may execute in the slot.
    for (std::size_t p = sched.order.size() - 1; p-- > 0;) {
        std::uint32_t node = sched.order[p];
        if (!onlyControlToBranch(dag, node, branch))
            continue;
        // Rotate the filler past the branch.
        sched.order.erase(sched.order.begin() +
                          static_cast<std::ptrdiff_t>(p));
        sched.order.push_back(node);
        if (!sched.issueCycle.empty())
            sched.issueCycle.clear(); // timings no longer meaningful
        result.filled = true;
        result.filler = node;
        return result;
    }
    return result;
}

bool
isValidModuloDelaySlot(const Dag &dag,
                       const std::vector<std::uint32_t> &order)
{
    if (order.size() != dag.size())
        return false;
    std::vector<int> pos(dag.size(), -1);
    for (std::uint32_t p = 0; p < order.size(); ++p) {
        if (order[p] >= dag.size() || pos[order[p]] != -1)
            return false;
        pos[order[p]] = static_cast<int>(p);
    }
    std::uint32_t branch = dag.size() - 1;
    for (const Arc &arc : dag.arcs()) {
        if (arc.kind == DepKind::CTRL && arc.to == branch)
            continue; // advisory anchor
        if (pos[arc.from] >= pos[arc.to])
            return false;
    }
    return true;
}

} // namespace sched91
