/**
 * @file
 * Branch delay-slot filling (paper Section 1: control hazards "can
 * also be handled in a special manner, possibly by a delay slot
 * scheduler").
 *
 * The block builders anchor every true leaf above the block-ending
 * branch so it schedules last (Section 2).  On a delayed-branch
 * machine like the SPARC, the instruction *after* the branch executes
 * regardless of the branch outcome — so exactly one instruction whose
 * only ordering constraint on the branch is that control anchor can
 * legally move into the slot.  This pass picks such an instruction
 * (the least critical one, scheduled latest) and moves it after the
 * branch, replacing the nop a compiler would otherwise emit.
 */

#ifndef SCHED91_SCHED_DELAY_SLOT_HH
#define SCHED91_SCHED_DELAY_SLOT_HH

#include <cstdint>

#include "dag/dag.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** Outcome of the delay-slot pass. */
struct DelaySlotResult
{
    bool filled = false;
    std::uint32_t filler = 0; ///< node moved into the slot (if filled)
};

/**
 * Try to move one instruction of @p sched into the delay slot after
 * the block-ending branch (the last node).  The resulting order
 * violates only the advisory control anchor arc; every data
 * dependence still holds, so architectural semantics are preserved.
 */
DelaySlotResult fillBranchDelaySlot(const Dag &dag, Schedule &sched);

/**
 * Validity check that tolerates the relocated delay-slot filler:
 * @p order must respect every arc except control arcs into the final
 * branch.
 */
bool isValidModuloDelaySlot(const Dag &dag,
                            const std::vector<std::uint32_t> &order);

} // namespace sched91

#endif // SCHED91_SCHED_DELAY_SLOT_HH
