#include "sched/fixup.hh"

#include <algorithm>

namespace sched91
{

namespace
{

/** Lookahead distance when hunting for a slot filler. */
constexpr std::size_t kFixupWindow = 64;

} // namespace

int
applyPostpassFixup(const Dag &dag, Schedule &sched)
{
    const std::size_t n = sched.order.size();
    std::vector<int> pos(dag.size(), 0);
    for (std::size_t p = 0; p < n; ++p)
        pos[sched.order[p]] = static_cast<int>(p);

    std::vector<int> dep_ready(dag.size(), 0);
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        dep_ready[i] = dag.ann().inheritedEet[i];
    int moved = 0;
    int time = 0;

    for (std::size_t p = 0; p < n; ++p) {
        std::uint32_t node = sched.order[p];
        int issue = std::max(time, dep_ready[node]);

        if (issue > time) {
            // Stall cycle(s): look ahead for an instruction that is
            // ready now and whose parents are all already placed.
            std::size_t limit = std::min(n, p + 1 + kFixupWindow);
            for (std::size_t q = p + 1; q < limit; ++q) {
                std::uint32_t cand = sched.order[q];
                if (dep_ready[cand] > time)
                    continue;
                bool parents_placed = true;
                for (std::uint32_t from : dag.predFrom(cand)) {
                    if (pos[from] >= static_cast<int>(p)) {
                        parents_placed = false;
                        break;
                    }
                }
                if (!parents_placed)
                    continue;

                // Move the candidate up into the stall slot.
                std::rotate(sched.order.begin() +
                                static_cast<std::ptrdiff_t>(p),
                            sched.order.begin() +
                                static_cast<std::ptrdiff_t>(q),
                            sched.order.begin() +
                                static_cast<std::ptrdiff_t>(q) + 1);
                for (std::size_t r = p; r <= q; ++r)
                    pos[sched.order[r]] = static_cast<int>(r);
                node = cand;
                issue = std::max(time, dep_ready[node]);
                ++moved;
                break;
            }
        }

        std::span<const std::uint32_t> to = dag.succTo(node);
        std::span<const std::int32_t> delay = dag.succDelay(node);
        for (std::size_t k = 0; k < to.size(); ++k) {
            dep_ready[to[k]] =
                std::max(dep_ready[to[k]], issue + delay[k]);
        }
        time = issue + 1;
    }

    return moved;
}

} // namespace sched91
