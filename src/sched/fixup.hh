/**
 * @file
 * Postpass delay-slot fixup (Krishnamurthy [8]).
 *
 * "Some algorithms (e.g., Krishnamurthy) use a postpass 'fixup' to try
 * to fill more operation delay slots than are filled by the heuristic
 * scheduling pass" (Section 5).  The fixup scans the issued schedule
 * for stall cycles and greedily moves a later, dependence-independent
 * instruction up into each stall slot when the move cannot lengthen
 * the schedule.
 */

#ifndef SCHED91_SCHED_FIXUP_HH
#define SCHED91_SCHED_FIXUP_HH

#include "dag/dag.hh"
#include "sched/schedule.hh"

namespace sched91
{

/**
 * Improve @p sched in place; returns the number of instructions moved.
 * The result is still a valid topological order of @p dag.
 */
int applyPostpassFixup(const Dag &dag, Schedule &sched);

} // namespace sched91

#endif // SCHED91_SCHED_FIXUP_HH
