#include "sched/global_info.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sched91
{

InheritedLatencies
computeOutgoingLatencies(const Dag &dag, const Schedule &sched,
                         const MachineModel &machine)
{
    SCHED91_ASSERT(sched.issueCycle.size() == sched.order.size(),
                   "schedule lacks issue cycles");
    InheritedLatencies out;
    if (sched.order.empty())
        return out;

    int next_issue = sched.issueCycle.back() + 1;
    std::array<int, Resource::kNumSlots> settle{};
    for (std::size_t p = 0; p < sched.order.size(); ++p) {
        const Instruction &inst = dag.inst(sched.order[p]);
        int done = sched.issueCycle[p] + machine.latency(inst.cls());
        for (Resource r : inst.defs())
            settle[r.slot()] = std::max(settle[r.slot()], done);
    }
    for (int s = 0; s < Resource::kNumSlots; ++s)
        out.ready[s] = std::max(0, settle[s] - next_issue);
    return out;
}

void
applyInheritedLatencies(Dag &dag, const InheritedLatencies &in)
{
    NodeAnnotations &ann = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        const Instruction &inst = dag.inst(i);
        int floor = 0;
        for (Resource r : inst.uses())
            floor = std::max(floor, in.ready[r.slot()]);
        for (Resource r : inst.defs())
            floor = std::max(floor, in.ready[r.slot()]);
        ann.inheritedEet[i] = floor;
    }
}

std::vector<int>
inheritedReadyTimes(const Dag &dag, const InheritedLatencies &in)
{
    std::vector<int> ready(dag.size(), 0);
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        const Instruction &inst = dag.inst(i);
        int floor = 0;
        for (Resource r : inst.uses())
            floor = std::max(floor, in.ready[r.slot()]);
        for (Resource r : inst.defs())
            floor = std::max(floor, in.ready[r.slot()]);
        ready[i] = floor;
    }
    return ready;
}

} // namespace sched91
