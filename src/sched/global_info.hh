/**
 * @file
 * Global scheduling information: operation latencies inherited from
 * the immediately preceding basic block.
 *
 * Paper Section 2: "If global information (i.e., across basic blocks)
 * is considered, there may be pseudo-nodes and arcs to represent
 * operation latencies inherited from immediately preceding blocks.
 * This extra information can be used to avoid dependency stalls and
 * structural hazards that a purely local algorithm would ignore" —
 * and Section 7 lists "determining the benefits of global scheduling
 * information" as future work.
 *
 * This module implements the mechanism: after a block is scheduled,
 * the dangling latencies of its final operations (a load issued in
 * the last cycle still owes its destination register a cycle in the
 * next block) are summarized per resource slot; the next block's DAG
 * then receives inherited earliest-execution-time floors on every
 * node touching a late resource — the pseudo-arc information without
 * materializing pseudo-nodes.  bench_global measures the benefit.
 */

#ifndef SCHED91_SCHED_GLOBAL_INFO_HH
#define SCHED91_SCHED_GLOBAL_INFO_HH

#include <array>
#include <cstdint>

#include "dag/dag.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** Per-resource readiness carried across a block boundary. */
struct InheritedLatencies
{
    /**
     * ready[slot]: cycles after the next block's first issue slot at
     * which the resource becomes available (0 = no carried latency).
     */
    std::array<int, Resource::kNumSlots> ready{};

    bool
    any() const
    {
        for (int r : ready)
            if (r > 0)
                return true;
        return false;
    }
};

/**
 * Dangling latencies a scheduled block leaves behind: for each
 * resource defined by the block, how far past the block's final issue
 * slot its value settles.  @p sched must carry issue cycles (as
 * produced by ListScheduler).
 */
InheritedLatencies computeOutgoingLatencies(const Dag &dag,
                                            const Schedule &sched,
                                            const MachineModel &machine);

/**
 * Install inherited floors on @p dag: every node using or defining a
 * late resource gets NodeAnnotations::inheritedEet, which
 * initDynamicState() folds into the node's starting earliest
 * execution time, steering timing-driven schedulers away from the
 * carried stalls.
 */
void applyInheritedLatencies(Dag &dag, const InheritedLatencies &in);

/**
 * Per-node initial readiness for the pipeline simulator, so measured
 * cycles account for carried latencies whether or not the scheduler
 * knew about them.
 */
std::vector<int> inheritedReadyTimes(const Dag &dag,
                                     const InheritedLatencies &in);

} // namespace sched91

#endif // SCHED91_SCHED_GLOBAL_INFO_HH
