#include "sched/list_scheduler.hh"

#include <algorithm>

#include "heuristics/dynamic.hh"
#include "machine/function_unit.hh"
#include "obs/events.hh"
#include "sched/fixup.hh"
#include "support/dary_heap.hh"
#include "support/logging.hh"
#include "support/worker_context.hh"

namespace sched91
{

namespace
{

/**
 * Heuristics whose value depends on scheduling state (Table 1's 'v'
 * work or the evaluation context): these must be re-evaluated at every
 * pick, so a ranking containing one cannot precompute heap keys.
 * Everything else falls through evaluate()'s default case to
 * staticValue()/staticValueMax(), fixed once the heuristic passes ran.
 */
bool
isDynamicHeuristic(Heuristic h)
{
    switch (h) {
      case Heuristic::InterlockWithPrevious:
      case Heuristic::EarliestExecutionTime:
      case Heuristic::FpuBusyTimes:
      case Heuristic::AlternateType:
      case Heuristic::NumSingleParentChildren:
      case Heuristic::SumDelaysToSingleParentChildren:
      case Heuristic::NumUncoveredChildren:
      case Heuristic::BirthingInstruction:
        return true;
      default:
        return false;
    }
}

/** Mutable evaluation context for the dynamic ("v") heuristics. */
struct EvalContext
{
    std::int64_t last = -1; ///< most recently scheduled node
    int lastGroup = -1;     ///< its issue group
    const FuState *fus = nullptr;
    int time = 0;
};

/** Evaluate one heuristic for candidate @p n. */
long long
evaluate(const Dag &dag, std::uint32_t n, const RankedHeuristic &rh,
         const EvalContext &ctx, const MachineModel &machine)
{
    obs::ev::schedHeuristicEvals.inc();
    const NodeAnnotations &ann = dag.ann();
    switch (rh.heuristic) {
      case Heuristic::InterlockWithPrevious:
        return interlocksWithPrevious(dag, n, ctx.last) ? 1 : 0;
      case Heuristic::EarliestExecutionTime:
        // EET acts as admission: every candidate already issueable at
        // the current time ranks equally (the paper admits nodes with
        // "EET <= current time"); later heuristics break the tie.
        return std::max<long long>(ann.earliestExecTime[n], ctx.time);
      case Heuristic::FpuBusyTimes: {
        if (!ctx.fus)
            return 0;
        FuKind fu = machine.fuFor(dag.inst(n).cls());
        return std::max(0, ctx.fus->earliestFree(fu, ctx.time) - ctx.time);
      }
      case Heuristic::AlternateType:
        return ann.altType[n] != ctx.lastGroup ? 1 : 0;
      case Heuristic::NumSingleParentChildren:
        return numSingleParentChildren(dag, n);
      case Heuristic::SumDelaysToSingleParentChildren:
        return sumDelaysToSingleParentChildren(dag, n);
      case Heuristic::NumUncoveredChildren:
        return numUncoveredChildren(dag, n);
      case Heuristic::BirthingInstruction:
        return static_cast<long long>(ann.priorityBoost[n]);
      default:
        return rh.phiMax ? staticValueMax(dag, n, rh.heuristic)
                         : staticValue(dag, n, rh.heuristic);
    }
}

/**
 * True when candidate @p a beats candidate @p b under the ranked
 * chain; ties fall through to original order (@p forward selects which
 * end of the block "earlier" means).
 */
bool
better(const Dag &dag, std::uint32_t a, std::uint32_t b,
       const SchedulerConfig &config, const EvalContext &ctx,
       const MachineModel &machine)
{
    for (const RankedHeuristic &rh : config.ranking) {
        long long va = evaluate(dag, a, rh, ctx, machine);
        long long vb = evaluate(dag, b, rh, ctx, machine);
        if (va != vb)
            return rh.preferLarger ? va > vb : va < vb;
    }
    return config.forward ? a < b : a > b;
}

/**
 * Pick the best candidate.  The default path is a linear lexicographic
 * scan; when @p stats is requested the pick runs as an explicit
 * winnowing pass (paper Section 5: "apply heuristics in a given order
 * in a winnowing-like process") recording the deciding rank.  Both
 * paths select the same winner.
 */
std::size_t
selectBest(const Dag &dag, const std::vector<std::uint32_t> &candidates,
           const SchedulerConfig &config, const EvalContext &ctx,
           const MachineModel &machine, DecisionStats *stats)
{
    SCHED91_ASSERT(!candidates.empty());
    if (!stats) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < candidates.size(); ++i)
            if (better(dag, candidates[i], candidates[best], config, ctx,
                       machine)) {
                best = i;
            }
        return best;
    }

    ++stats->totalPicks;
    stats->decidedAtRank.resize(config.ranking.size(), 0);

    // Optional decision log: one record per pick, filed at the
    // winning return point with the rank that decided it.
    auto logPick = [&](std::size_t idx, std::int32_t rank) {
        if (!stats->recordLog)
            return;
        DecisionRecord rec;
        rec.pick = static_cast<std::uint32_t>(stats->totalPicks - 1);
        rec.node = candidates[idx];
        rec.readySize = static_cast<std::uint32_t>(candidates.size());
        rec.decidedRank = rank;
        rec.time = ctx.time;
        stats->log.push_back(rec);
    };

    if (candidates.size() == 1) {
        ++stats->trivialPicks;
        logPick(0, DecisionStats::kDecidedTrivial);
        return 0;
    }

    std::vector<std::size_t> alive(candidates.size());
    for (std::size_t i = 0; i < alive.size(); ++i)
        alive[i] = i;

    for (std::size_t r = 0; r < config.ranking.size(); ++r) {
        const RankedHeuristic &rh = config.ranking[r];
        long long best_value =
            evaluate(dag, candidates[alive[0]], rh, ctx, machine);
        std::vector<std::size_t> kept{alive[0]};
        for (std::size_t k = 1; k < alive.size(); ++k) {
            long long v =
                evaluate(dag, candidates[alive[k]], rh, ctx, machine);
            bool better_value =
                rh.preferLarger ? v > best_value : v < best_value;
            if (better_value) {
                best_value = v;
                kept.clear();
                kept.push_back(alive[k]);
            } else if (v == best_value) {
                kept.push_back(alive[k]);
            }
        }
        alive = std::move(kept);
        if (alive.size() == 1) {
            ++stats->decidedAtRank[r];
            logPick(alive[0], static_cast<std::int32_t>(r));
            return alive[0];
        }
    }

    ++stats->originalOrderTies;
    std::size_t best = alive[0];
    for (std::size_t k : alive) {
        bool wins = config.forward ? candidates[k] < candidates[best]
                                   : candidates[k] > candidates[best];
        if (wins)
            best = k;
    }
    logPick(best, DecisionStats::kDecidedOriginalOrder);
    return best;
}

/** Compute issue cycles and makespan for a completed order. */
void
fillTiming(const Dag &dag, Schedule &sched)
{
    // Inherited cross-block floors participate in the timing just
    // like dependence arcs from a previous block would.
    WorkerContext *wc = WorkerContext::current();
    std::vector<int> local_dep;
    std::vector<int> &dep_ready = wc ? wc->depReady : local_dep;
    dep_ready.assign(dag.size(), 0);
    const NodeAnnotations &ann = dag.ann();
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        dep_ready[i] = ann.inheritedEet[i];
    sched.issueCycle.assign(sched.order.size(), 0);
    int time = 0;
    sched.makespan = 0;
    for (std::size_t p = 0; p < sched.order.size(); ++p) {
        std::uint32_t n = sched.order[p];
        int issue = std::max(time, dep_ready[n]);
        sched.issueCycle[p] = issue;
        std::span<const std::uint32_t> to = dag.succTo(n);
        std::span<const std::int32_t> delay = dag.succDelay(n);
        for (std::size_t k = 0; k < to.size(); ++k) {
            dep_ready[to[k]] =
                std::max(dep_ready[to[k]], issue + delay[k]);
        }
        sched.makespan =
            std::max(sched.makespan, issue + ann.execTime[n]);
        time = issue + 1;
    }
}

} // namespace

ListScheduler::ListScheduler(SchedulerConfig config,
                             const MachineModel &machine)
    : config_(std::move(config)), machine_(machine), rankingStatic_(true)
{
    for (const RankedHeuristic &rh : config_.ranking)
        if (isDynamicHeuristic(rh.heuristic))
            rankingStatic_ = false;
}

Schedule
ListScheduler::run(Dag &dag, DecisionStats *stats,
                   const CancellationToken *cancel) const
{
    // DecisionStats needs the explicit winnowing pass, so the heap
    // fast path only serves plain scheduling runs.
    Schedule sched =
        (rankingStatic_ && !stats)
            ? runHeap(dag, cancel)
            : (config_.forward ? runForward(dag, stats, cancel)
                               : runBackward(dag, stats, cancel));
    if (config_.postpassFixup)
        applyPostpassFixup(dag, sched);
    fillTiming(dag, sched);
    return sched;
}

Schedule
ListScheduler::runHeap(Dag &dag, const CancellationToken *cancel) const
{
    initDynamicState(dag);

    const std::size_t ranks = config_.ranking.size();
    const bool forward = config_.forward;

    WorkerContext *wc = WorkerContext::current();
    std::vector<long long> local_keys;
    std::vector<std::uint32_t> local_heap;
    std::vector<long long> &keys = wc ? wc->heapKeys : local_keys;
    std::vector<std::uint32_t> &store = wc ? wc->heapNodes : local_heap;
    keys.resize(static_cast<std::size_t>(dag.size()) * ranks);

    // Each node enters the ready list exactly once, so its ranked
    // tuple is evaluated exactly once, at admission.
    auto computeKey = [&](std::uint32_t n) {
        for (std::size_t r = 0; r < ranks; ++r) {
            const RankedHeuristic &rh = config_.ranking[r];
            keys[n * ranks + r] =
                rh.phiMax ? staticValueMax(dag, n, rh.heuristic)
                          : staticValue(dag, n, rh.heuristic);
        }
        obs::ev::schedHeuristicEvals.inc(ranks);
    };

    // Same strict total order as better(): the ranked tuple, then
    // program order (earlier wins forward, later wins backward) — so
    // extract-max returns exactly the node the linear scan would pick.
    auto outranks = [&](std::uint32_t a, std::uint32_t b) {
        for (std::size_t r = 0; r < ranks; ++r) {
            long long va = keys[a * ranks + r];
            long long vb = keys[b * ranks + r];
            if (va != vb)
                return config_.ranking[r].preferLarger ? va > vb : va < vb;
        }
        return forward ? a < b : a > b;
    };

    DaryHeap<std::uint32_t, decltype(outranks)> ready(outranks, &store);
    for (std::uint32_t i = 0; i < dag.size(); ++i) {
        bool root = forward ? dag.numParents(i) == 0
                            : dag.numChildren(i) == 0;
        if (root) {
            computeKey(i);
            ready.push(i);
        }
    }

    Schedule sched;
    sched.order.reserve(dag.size());
    int time = 0;

    while (!ready.empty()) {
        if (cancel)
            cancel->poll();
        obs::ev::schedNodeVisits.inc();
        obs::ev::schedReadyListPeak.max(ready.size());
        std::uint32_t n = ready.pop();
        sched.order.push_back(n);

        if (forward) {
            int issue = std::max(time, dag.ann().earliestExecTime[n]);
            onScheduledForward(dag, n, issue);
            for (std::uint32_t c : dag.succTo(n)) {
                if (dag.ann().unscheduledParents[c] == 0) {
                    computeKey(c);
                    ready.push(c);
                }
            }
            time = issue + 1;
        } else {
            onScheduledBackward(dag, n, config_.birthing);
            for (std::uint32_t p : dag.predFrom(n)) {
                if (dag.ann().unscheduledChildren[p] == 0) {
                    computeKey(p);
                    ready.push(p);
                }
            }
        }
    }

    SCHED91_ASSERT(sched.order.size() == dag.size(),
                   "scheduler lost nodes (cyclic DAG?)");
    if (!forward)
        std::reverse(sched.order.begin(), sched.order.end());
    return sched;
}

Schedule
ListScheduler::runForward(Dag &dag, DecisionStats *stats,
                          const CancellationToken *cancel) const
{
    initDynamicState(dag);

    WorkerContext *wc = WorkerContext::current();
    std::vector<std::uint32_t> local_candidates;
    std::vector<std::uint32_t> &candidates =
        wc ? wc->readyList : local_candidates;
    candidates.clear();
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        if (dag.numParents(i) == 0)
            candidates.push_back(i);

    FuState fus(machine_);
    EvalContext ctx;
    ctx.fus = &fus;

    Schedule sched;
    sched.order.reserve(dag.size());
    int time = 0;

    while (!candidates.empty()) {
        if (cancel)
            cancel->poll();
        obs::ev::schedNodeVisits.inc();
        obs::ev::schedReadyListPeak.max(candidates.size());
        ctx.time = time;
        std::size_t best =
            selectBest(dag, candidates, config_, ctx, machine_, stats);

        std::uint32_t n = candidates[best];
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(best));

        int issue = std::max(time, dag.ann().earliestExecTime[n]);
        sched.order.push_back(n);
        fus.occupy(dag.inst(n).cls(), issue);
        onScheduledForward(dag, n, issue);

        for (std::uint32_t c : dag.succTo(n))
            if (dag.ann().unscheduledParents[c] == 0)
                candidates.push_back(c);

        time = issue + 1;
        ctx.last = n;
        ctx.lastGroup = dag.ann().altType[n];
    }

    SCHED91_ASSERT(sched.order.size() == dag.size(),
                   "scheduler lost nodes (cyclic DAG?)");
    return sched;
}

Schedule
ListScheduler::runBackward(Dag &dag, DecisionStats *stats,
                           const CancellationToken *cancel) const
{
    initDynamicState(dag);

    WorkerContext *wc = WorkerContext::current();
    std::vector<std::uint32_t> local_candidates;
    std::vector<std::uint32_t> &candidates =
        wc ? wc->readyList : local_candidates;
    candidates.clear();
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        if (dag.numChildren(i) == 0)
            candidates.push_back(i);

    EvalContext ctx; // no FU / time context in a backward pass

    Schedule sched;
    sched.order.reserve(dag.size());

    while (!candidates.empty()) {
        if (cancel)
            cancel->poll();
        obs::ev::schedNodeVisits.inc();
        obs::ev::schedReadyListPeak.max(candidates.size());
        std::size_t best =
            selectBest(dag, candidates, config_, ctx, machine_, stats);

        std::uint32_t n = candidates[best];
        candidates.erase(candidates.begin() +
                         static_cast<std::ptrdiff_t>(best));

        sched.order.push_back(n);
        onScheduledBackward(dag, n, config_.birthing);

        for (std::uint32_t p : dag.predFrom(n))
            if (dag.ann().unscheduledChildren[p] == 0)
                candidates.push_back(p);

        ctx.last = n;
        ctx.lastGroup = dag.ann().altType[n];
    }

    SCHED91_ASSERT(sched.order.size() == dag.size(),
                   "scheduler lost nodes (cyclic DAG?)");
    std::reverse(sched.order.begin(), sched.order.end());
    return sched;
}

} // namespace sched91
