/**
 * @file
 * Generic list scheduler parameterized by a ranked heuristic chain.
 *
 * "List scheduling algorithms examine a candidate list of ready-to-
 * execute instructions at each time step and apply one or more
 * heuristics to determine the 'best' instruction to issue" (Section 1).
 * Some published algorithms combine heuristics into a single priority
 * value, others "apply heuristics in a given order in a winnowing-like
 * process" (Section 5); both are realized here as a lexicographic
 * comparison over the ranked chain — equivalent to a priority function
 * whose rank weights are sufficiently separated — with original
 * program order as the final deterministic tie break.
 *
 * A forward pass admits a node once all parents are scheduled, ranks
 * candidates (typically with earliest execution time first), issues
 * the winner no earlier than its earliest execution time, and updates
 * its children's dynamic state.  A backward pass fills the block from
 * the end: a node is a candidate once all children are scheduled.
 */

#ifndef SCHED91_SCHED_LIST_SCHEDULER_HH
#define SCHED91_SCHED_LIST_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.hh"
#include "heuristics/heuristic.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"
#include "support/cancellation.hh"

namespace sched91
{

/** One entry of the winnowing chain. */
struct RankedHeuristic
{
    Heuristic heuristic;
    bool preferLarger = true; ///< false: smaller value wins
    bool phiMax = false;      ///< max form of a phi heuristic
};

/** Configuration of one scheduling algorithm. */
struct SchedulerConfig
{
    std::string name = "list";

    /** Scheduling pass direction. */
    bool forward = true;

    /** Ranked heuristics, most important first. */
    std::vector<RankedHeuristic> ranking;

    /**
     * Tiemann's birthing adjustment: in a backward pass, bump the
     * priority of each RAW parent of the node just scheduled.
     */
    bool birthing = false;

    /**
     * Krishnamurthy-style postpass fixup: after a forward pass, try to
     * pull later independent instructions into stall slots.
     */
    bool postpassFixup = false;

    /**
     * Which static heuristic passes this algorithm requires (used by
     * the Pipeline to run only the work the algorithm needs, mirroring
     * Table 2's per-algorithm pass analysis).
     */
    bool needsForwardPass = false;
    bool needsBackwardPass = false;
    bool needsDescendants = false;
    bool needsRegisterPressure = false;
};

/**
 * Which heuristic ranks actually decide the picks.  Section 5 of the
 * paper observes that low-ranked heuristics may be removable ("the
 * use of minimum path to a root in Shieh and Papachristou could
 * possibly be omitted or replaced with little effect because it is
 * the last heuristic to be applied"); these counters measure that.
 */
/**
 * One entry of the optional per-pick decision log: which node won,
 * how crowded the ready list was, and which rank of the winnowing
 * chain broke the tie.
 */
struct DecisionRecord
{
    std::uint32_t pick = 0;      ///< 0-based pick index within the block.
    std::uint32_t node = 0;      ///< Winning DAG node (program index).
    std::uint32_t readySize = 0; ///< Candidates at this pick.

    /** Deciding rank: an index into the ranking, or a sentinel. */
    std::int32_t decidedRank = 0;

    int time = 0; ///< Scheduler clock (0 in a backward pass).
};

struct DecisionStats
{
    /** decidedRank sentinel: a single candidate, no decision needed. */
    static constexpr std::int32_t kDecidedTrivial = -2;

    /** decidedRank sentinel: every rank tied; program order decided. */
    static constexpr std::int32_t kDecidedOriginalOrder = -1;

    /** Picks resolved at each rank of the winnowing chain. */
    std::vector<long long> decidedAtRank;

    /** Picks that fell through every rank to the original-order tie. */
    long long originalOrderTies = 0;

    /** Picks with a single candidate (no decision needed). */
    long long trivialPicks = 0;

    long long totalPicks = 0;

    /** When set, every pick appends a DecisionRecord to log. */
    bool recordLog = false;
    std::vector<DecisionRecord> log;
};

/**
 * A rendered decision log for one block: the raw records plus enough
 * naming context (algorithm, rank names, instruction text) to print or
 * export without the DAG in hand.  Produced by the pipeline for
 * `--explain-block` and exported as the `"decisions"` stats section.
 */
struct DecisionTrace
{
    int block = -1;
    std::string algorithm;
    std::vector<std::string> rankNames; ///< One per ranking entry.
    DecisionStats stats;
    std::vector<std::string> insts; ///< Text of the block's instructions.

    bool empty() const { return block < 0; }
};

/** The generic engine. */
class ListScheduler
{
  public:
    /** The configuration is copied, so temporaries are safe to pass;
     * the machine model must outlive the scheduler. */
    ListScheduler(SchedulerConfig config, const MachineModel &machine);

    /**
     * Schedule @p dag.  Dynamic state in the node annotations is
     * (re)initialized; static annotations must already be computed.
     * When @p stats is non-null, candidate selection runs as an
     * explicit winnowing pass and records which rank decided each
     * pick (same winners, slightly different bookkeeping cost).
     *
     * Rankings built purely from static ('a'/'f'/'b') heuristics run
     * on a d-ary heap keyed by the precomputed heuristic tuple —
     * O(log n) per pick instead of an O(n) rescan — with the same
     * strict total order (tuple, then program-order tie break), so the
     * produced schedules are identical to the scan's.  Rankings with
     * dynamic ('v') heuristics, whose values change as nodes issue,
     * keep the scan.
     *
     * When @p cancel is non-null the main scheduling loop polls it
     * once per extracted node and abandons the pass with
     * CancelledError once it fires (cooperative budget enforcement;
     * see support/cancellation.hh).
     */
    Schedule run(Dag &dag, DecisionStats *stats = nullptr,
                 const CancellationToken *cancel = nullptr) const;

    /** Whether this configuration's ranking qualifies for the heap. */
    bool rankingStatic() const { return rankingStatic_; }

  private:
    Schedule runForward(Dag &dag, DecisionStats *stats,
                        const CancellationToken *cancel) const;
    Schedule runBackward(Dag &dag, DecisionStats *stats,
                         const CancellationToken *cancel) const;
    Schedule runHeap(Dag &dag, const CancellationToken *cancel) const;

    SchedulerConfig config_;
    const MachineModel &machine_;
    bool rankingStatic_;
};

} // namespace sched91

#endif // SCHED91_SCHED_LIST_SCHEDULER_HH
