#include "sched/pipeline_sim.hh"

#include <algorithm>

#include "machine/function_unit.hh"
#include "support/logging.hh"

namespace sched91
{

SimResult
simulateSchedule(const Dag &ground_truth,
                 const std::vector<std::uint32_t> &order,
                 const MachineModel &machine,
                 const std::vector<int> *initial_ready)
{
    SCHED91_ASSERT(isValidTopologicalOrder(ground_truth, order),
                   "schedule violates dependences");

    std::vector<int> dep_ready(ground_truth.size(), 0);
    if (initial_ready) {
        SCHED91_ASSERT(initial_ready->size() == ground_truth.size());
        dep_ready = *initial_ready;
    }
    FuState fus(machine);

    SimResult result;
    int cycle = 0;
    int issued_this_cycle = 0;
    unsigned groups_used = 0;
    int prev_issue = -1;

    for (std::uint32_t n : order) {
        const Instruction &inst = ground_truth.inst(n);
        InstClass cls = inst.cls();
        unsigned group_bit = 1u << static_cast<unsigned>(inst.group());

        int earliest = std::max(dep_ready[n],
                                fus.earliestFree(machine.fuFor(cls), 0));
        int t = std::max(cycle, earliest);

        auto reset_cycle = [&](int new_cycle) {
            cycle = new_cycle;
            issued_this_cycle = 0;
            groups_used = 0;
        };

        if (t > cycle)
            reset_cycle(t);
        // Issue-slot and group constraints (superscalar only).
        while (issued_this_cycle >= machine.issueWidth ||
               (machine.issueWidth > 1 && (groups_used & group_bit))) {
            reset_cycle(cycle + 1);
        }

        int issue = cycle;
        ++issued_this_cycle;
        groups_used |= group_bit;
        fus.occupy(cls, issue);

        int latency = machine.latency(cls);
        result.cycles = std::max(result.cycles, issue + latency);
        if (prev_issue >= 0)
            result.stallCycles += std::max(0, issue - prev_issue - 1);
        prev_issue = issue;
        result.lastIssue = issue;

        std::span<const std::uint32_t> to = ground_truth.succTo(n);
        std::span<const std::int32_t> delay = ground_truth.succDelay(n);
        for (std::size_t k = 0; k < to.size(); ++k) {
            dep_ready[to[k]] =
                std::max(dep_ready[to[k]], issue + delay[k]);
        }
    }

    return result;
}

} // namespace sched91
