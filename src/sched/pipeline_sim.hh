/**
 * @file
 * In-order pipeline simulator: the authoritative measure of schedule
 * quality in machine cycles.
 *
 * Instructions issue in schedule order on an in-order machine: an
 * instruction stalls until (a) every dependence delay from already
 * issued producers has elapsed, (b) its function unit is free
 * (non-pipelined units such as FP divide stay busy for their full
 * latency — the structural hazards of Section 1), and (c) an issue
 * slot is available.  With issueWidth > 1 the machine can issue
 * multiple instructions per cycle but no two of the same issue group —
 * the superscalar setting that motivates the alternate-type heuristic.
 */

#ifndef SCHED91_SCHED_PIPELINE_SIM_HH
#define SCHED91_SCHED_PIPELINE_SIM_HH

#include <vector>

#include "dag/dag.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** Cycle-level outcome of executing one block in a given order. */
struct SimResult
{
    int cycles = 0;      ///< block completion time (last writeback)
    int lastIssue = 0;   ///< issue cycle of the final instruction
    int stallCycles = 0; ///< issue slots lost to dependence/structural
                         ///< hazards
};

/**
 * Simulate @p order on @p machine using the dependence arcs of
 * @p ground_truth (build it with a full-dependence builder over the
 * same block so no conservative constraint is missed).
 *
 * @p initial_ready, when non-null, gives per-node earliest issue
 * floors carried in from the previous block (see
 * sched/global_info.hh).
 */
SimResult simulateSchedule(const Dag &ground_truth,
                           const std::vector<std::uint32_t> &order,
                           const MachineModel &machine,
                           const std::vector<int> *initial_ready = nullptr);

} // namespace sched91

#endif // SCHED91_SCHED_PIPELINE_SIM_HH
