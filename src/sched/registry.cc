#include "sched/registry.hh"

#include "sched/algorithms/algorithms.hh"
#include "sched/simple_forward.hh"
#include "support/logging.hh"

namespace sched91
{

AlgorithmSpec
algorithmSpec(AlgorithmKind kind)
{
    switch (kind) {
      case AlgorithmKind::GibbonsMuchnick:
        return {kind, gibbonsMuchnickConfig(), BuilderKind::N2Backward,
                "Gibbons & Muchnick, SIGPLAN '86 [3]"};
      case AlgorithmKind::Krishnamurthy:
        return {kind, krishnamurthyConfig(), BuilderKind::TableForward,
                "Krishnamurthy, Clemson M.S. '90 [8]"};
      case AlgorithmKind::Schlansker:
        return {kind, schlanskerConfig(), BuilderKind::TableForward,
                "Schlansker, ASPLOS-IV tutorial '91 [12]"};
      case AlgorithmKind::ShiehPapachristou:
        return {kind, shiehPapachristouConfig(), BuilderKind::TableForward,
                "Shieh & Papachristou, MICRO-22 '89 [13]"};
      case AlgorithmKind::Tiemann:
        return {kind, tiemannConfig(), BuilderKind::TableForward,
                "Tiemann, GNU scheduler '89 [15]"};
      case AlgorithmKind::Warren:
        return {kind, warrenConfig(), BuilderKind::N2Forward,
                "Warren, IBM JRD '90 [16]"};
      case AlgorithmKind::SimpleForward:
        return {kind, simpleForwardConfig(), BuilderKind::TableForward,
                "Section 6 comparison pass"};
    }
    panic("bad algorithm kind");
}

std::vector<AlgorithmKind>
publishedAlgorithms()
{
    return {AlgorithmKind::GibbonsMuchnick, AlgorithmKind::Krishnamurthy,
            AlgorithmKind::Schlansker, AlgorithmKind::ShiehPapachristou,
            AlgorithmKind::Tiemann, AlgorithmKind::Warren};
}

std::vector<AlgorithmKind>
allAlgorithms()
{
    auto v = publishedAlgorithms();
    v.push_back(AlgorithmKind::SimpleForward);
    return v;
}

std::string_view
algorithmName(AlgorithmKind kind)
{
    switch (kind) {
      case AlgorithmKind::GibbonsMuchnick: return "gibbons-muchnick";
      case AlgorithmKind::Krishnamurthy: return "krishnamurthy";
      case AlgorithmKind::Schlansker: return "schlansker";
      case AlgorithmKind::ShiehPapachristou: return "shieh-papachristou";
      case AlgorithmKind::Tiemann: return "tiemann";
      case AlgorithmKind::Warren: return "warren";
      case AlgorithmKind::SimpleForward: return "simple-forward";
    }
    return "?";
}

} // namespace sched91
