/**
 * @file
 * Registry tying scheduling algorithms to their Table 2 metadata:
 * configuration for the list-scheduling engine, preferred DAG
 * construction algorithm, and citation.
 */

#ifndef SCHED91_SCHED_REGISTRY_HH
#define SCHED91_SCHED_REGISTRY_HH

#include <string_view>
#include <vector>

#include "dag/builder.hh"
#include "sched/list_scheduler.hh"

namespace sched91
{

/** The six published algorithms plus the Section 6 comparison pass. */
enum class AlgorithmKind : std::uint8_t {
    GibbonsMuchnick,
    Krishnamurthy,
    Schlansker,
    ShiehPapachristou,
    Tiemann,
    Warren,
    SimpleForward,
};

/** One Table 2 column. */
struct AlgorithmSpec
{
    AlgorithmKind kind;
    SchedulerConfig config;
    /** The DAG construction the reference used ("n.g." entries map to
     * table-forward, the cheapest correct choice). */
    BuilderKind preferredBuilder;
    const char *citation;
};

/** Specification of one algorithm. */
AlgorithmSpec algorithmSpec(AlgorithmKind kind);

/** The six published algorithms (Table 2 order). */
std::vector<AlgorithmKind> publishedAlgorithms();

/** All algorithms including the Section 6 simple pass. */
std::vector<AlgorithmKind> allAlgorithms();

/** Display name. */
std::string_view algorithmName(AlgorithmKind kind);

} // namespace sched91

#endif // SCHED91_SCHED_REGISTRY_HH
