#include "sched/report.hh"

#include <algorithm>
#include <sstream>

#include "dag/table_forward.hh"
#include "support/string_util.hh"

namespace sched91
{

std::vector<BlockReport>
ProgramReport::worstBlocks(std::size_t n) const
{
    std::vector<BlockReport> sorted = blocks;
    std::sort(sorted.begin(), sorted.end(),
              [](const BlockReport &a, const BlockReport &b) {
                  return a.slackToBound() > b.slackToBound();
              });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

std::string
ProgramReport::render(std::size_t n) const
{
    std::ostringstream os;
    os << "blocks " << blocks.size() << ", cycles " << cyclesOriginal
       << " -> " << cyclesScheduled << "\n";
    os << padRight("block@", 8) << padLeft("size", 6)
       << padLeft("orig", 7) << padLeft("sched", 7)
       << padLeft("bound", 7) << padLeft("excess", 7) << "\n";
    for (const BlockReport &b : worstBlocks(n)) {
        os << padRight(std::to_string(b.begin), 8)
           << padLeft(std::to_string(b.size), 6)
           << padLeft(std::to_string(b.cyclesOriginal), 7)
           << padLeft(std::to_string(b.cyclesScheduled), 7)
           << padLeft(std::to_string(b.criticalPath), 7)
           << padLeft(std::to_string(b.slackToBound()), 7) << "\n";
    }
    return os.str();
}

ProgramReport
reportProgram(Program &prog, const MachineModel &machine,
              const PipelineOptions &opts)
{
    ProgramReport report;
    auto blocks = partitionBlocks(prog, opts.partition);
    for (const BasicBlock &bb : blocks) {
        BlockView block(prog, bb);
        auto result = scheduleBlock(block, machine, opts);

        Dag gt = TableForwardBuilder().build(block, machine, opts.build);
        SimResult before = simulateSchedule(
            gt, originalOrderSchedule(gt).order, machine);
        SimResult after =
            simulateSchedule(gt, result.sched.order, machine);

        // Critical path: longest arc-delay path closed with the final
        // node's latency.
        std::vector<int> tail(gt.size(), 0);
        int critical = 0;
        for (std::uint32_t i = gt.size(); i-- > 0;) {
            tail[i] = gt.ann().execTime[i];
            std::span<const std::uint32_t> to = gt.succTo(i);
            std::span<const std::int32_t> delay = gt.succDelay(i);
            for (std::size_t k = 0; k < to.size(); ++k)
                tail[i] = std::max(tail[i], delay[k] + tail[to[k]]);
            critical = std::max(critical, tail[i]);
        }

        BlockReport r;
        r.begin = bb.begin;
        r.size = bb.size();
        r.cyclesOriginal = before.cycles;
        r.cyclesScheduled = after.cycles;
        r.stallsOriginal = before.stallCycles;
        r.stallsScheduled = after.stallCycles;
        r.criticalPath = critical;
        report.blocks.push_back(r);
        report.cyclesOriginal += before.cycles;
        report.cyclesScheduled += after.cycles;
    }
    return report;
}

} // namespace sched91
