/**
 * @file
 * Per-block scheduling quality reports.
 *
 * The whole-program pipeline aggregates totals; this module keeps the
 * per-block breakdown — block position and size, cycles before and
 * after scheduling, stall counts, and the DAG's critical path — and
 * renders the worst offenders, so a user can see *where* a scheduler
 * is leaving cycles (the kind of analysis behind the paper's plan to
 * characterize "the attributes of larger basic blocks").
 */

#ifndef SCHED91_SCHED_REPORT_HH
#define SCHED91_SCHED_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "ir/basic_block.hh"
#include "machine/machine_model.hh"

namespace sched91
{

/** Quality record for one scheduled block. */
struct BlockReport
{
    std::uint32_t begin = 0;   ///< first program index of the block
    std::uint32_t size = 0;
    int cyclesOriginal = 0;
    int cyclesScheduled = 0;
    int stallsOriginal = 0;
    int stallsScheduled = 0;
    int criticalPath = 0;      ///< lower bound in cycles

    int gain() const { return cyclesOriginal - cyclesScheduled; }

    /** Cycles above the critical-path lower bound after scheduling. */
    int slackToBound() const { return cyclesScheduled - criticalPath; }
};

/** Per-block quality over a whole program. */
struct ProgramReport
{
    std::vector<BlockReport> blocks;
    long long cyclesOriginal = 0;
    long long cyclesScheduled = 0;

    /** Blocks sorted by remaining distance to the critical path. */
    std::vector<BlockReport> worstBlocks(std::size_t n) const;

    /** Fixed-width text rendering of the n worst blocks. */
    std::string render(std::size_t n = 10) const;
};

/**
 * Schedule every block of @p prog with @p opts and collect per-block
 * quality records.
 */
ProgramReport reportProgram(Program &prog, const MachineModel &machine,
                            const PipelineOptions &opts);

} // namespace sched91

#endif // SCHED91_SCHED_REPORT_HH
