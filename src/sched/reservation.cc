#include "sched/reservation.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sched91
{

std::vector<FuUse>
reservationPattern(const MachineModel &machine, InstClass cls)
{
    switch (cls) {
      case InstClass::Load:
      case InstClass::LoadDouble:
      case InstClass::Store:
      case InstClass::StoreDouble:
        // Address generation on the ALU, then the memory port.
        return {{FuKind::IntAlu, 0, 1}, {FuKind::MemPort, 1, 1}};
      case InstClass::IntMul:
      case InstClass::IntDiv:
        return {{FuKind::IntMulDiv, 0, machine.latency(cls)}};
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
        return {{FuKind::FpDivSqrt, 0, machine.latency(cls)}};
      case InstClass::FpMul:
        return {{FuKind::FpMul, 0, 1}};
      case InstClass::FpAdd:
      case InstClass::FpCmp:
      case InstClass::FpMove:
        return {{FuKind::FpAdd, 0, 1}};
      case InstClass::Branch:
      case InstClass::Call:
        return {{FuKind::BranchUnit, 0, 1}};
      default:
        return {{FuKind::IntAlu, 0, 1}};
    }
}

ReservationTable::ReservationTable(const MachineModel &machine)
    : machine_(machine), busy_(kNumFuKinds)
{
}

bool
ReservationTable::busy(FuKind fu, int cycle) const
{
    const auto &row = busy_[static_cast<std::size_t>(fu)];
    if (cycle >= static_cast<int>(row.size()))
        return false;
    return row[cycle] >= machine_.fuDesc(fu).count;
}

void
ReservationTable::setBusy(FuKind fu, int cycle)
{
    auto &row = busy_[static_cast<std::size_t>(fu)];
    if (cycle >= static_cast<int>(row.size()))
        row.resize(cycle + 1, 0);
    ++row[cycle];
}

bool
ReservationTable::fits(const std::vector<FuUse> &pattern, int start) const
{
    for (const FuUse &use : pattern)
        for (int c = 0; c < use.duration; ++c)
            if (busy(use.fu, start + use.start + c))
                return false;
    return true;
}

void
ReservationTable::place(const std::vector<FuUse> &pattern, int start)
{
    for (const FuUse &use : pattern)
        for (int c = 0; c < use.duration; ++c)
            setBusy(use.fu, start + use.start + c);
}

int
ReservationTable::earliestFit(const std::vector<FuUse> &pattern,
                              int from) const
{
    for (int start = from;; ++start)
        if (fits(pattern, start))
            return start;
}

ReservationResult
scheduleWithReservationTable(Dag &dag, const MachineModel &machine)
{
    std::uint32_t n = dag.size();
    ReservationResult result;
    result.cycle.assign(n, -1);

    ReservationTable table(machine);
    std::vector<int> unplaced_parents(n);
    for (std::uint32_t i = 0; i < n; ++i)
        unplaced_parents[i] = dag.numParents(i);

    // Ready set ordered by priority: critical path (max delay to a
    // leaf) first, then execution time, then original order.
    auto priority_less = [&dag](std::uint32_t a, std::uint32_t b) {
        const NodeAnnotations &ann = dag.ann();
        if (ann.maxDelayToLeaf[a] != ann.maxDelayToLeaf[b])
            return ann.maxDelayToLeaf[a] > ann.maxDelayToLeaf[b];
        if (ann.execTime[a] != ann.execTime[b])
            return ann.execTime[a] > ann.execTime[b];
        return a < b;
    };

    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < n; ++i)
        if (unplaced_parents[i] == 0)
            ready.push_back(i);

    std::uint32_t placed = 0;
    while (!ready.empty()) {
        auto it = std::min_element(ready.begin(), ready.end(),
                                   priority_less);
        std::uint32_t node_id = *it;
        ready.erase(it);

        // Operand dependences set the floor; the table sets the slot.
        int floor = 0;
        std::span<const std::uint32_t> from = dag.predFrom(node_id);
        std::span<const std::int32_t> pdelay = dag.predDelay(node_id);
        for (std::size_t k = 0; k < from.size(); ++k)
            floor = std::max(floor, result.cycle[from[k]] + pdelay[k]);
        auto pattern =
            reservationPattern(machine, dag.inst(node_id).cls());
        int slot = table.earliestFit(pattern, floor);
        table.place(pattern, slot);
        result.cycle[node_id] = slot;
        result.makespan = std::max(
            result.makespan, slot + dag.ann().execTime[node_id]);
        ++placed;

        for (std::uint32_t child : dag.succTo(node_id)) {
            if (--unplaced_parents[child] == 0)
                ready.push_back(child);
        }
    }
    SCHED91_ASSERT(placed == n, "reservation scheduling lost nodes");

    // Emission order: by placement cycle, original order on ties.
    result.sched.order.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        result.sched.order[i] = i;
    std::sort(result.sched.order.begin(), result.sched.order.end(),
              [&result](std::uint32_t a, std::uint32_t b) {
                  if (result.cycle[a] != result.cycle[b])
                      return result.cycle[a] < result.cycle[b];
                  return a < b;
              });
    result.sched.makespan = result.makespan;
    for (std::uint32_t node_id : result.sched.order)
        result.sched.issueCycle.push_back(result.cycle[node_id]);
    return result;
}

} // namespace sched91
