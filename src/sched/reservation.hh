/**
 * @file
 * Resource-reservation-table scheduling (paper Section 1).
 *
 * "A more refined form of scheduling uses an explicit resource
 * reservation table and is more popular for use with processors
 * having a large number of multi-cycle instructions or multiple
 * resource usage instructions.  This latter approach always inserts
 * the 'highest priority' instruction into the earliest empty slots of
 * the table; that is, an instruction is an aggregate structure
 * represented by blocks of busy cycles for one or more function
 * units, and scheduling involves pattern matching these blocks into a
 * partially-filled reservation table as well as considering operand
 * dependencies."
 *
 * Each instruction class maps to a reservation pattern — a set of
 * (function unit, start offset, duration) blocks (e.g. a load uses
 * the integer ALU for address generation in its first cycle and the
 * memory port in its second; a divide holds the non-pipelined divider
 * for its full latency).  The scheduler repeatedly takes the
 * highest-priority instruction whose parents are placed and pattern-
 * matches it into the earliest feasible cycle, which — unlike list
 * scheduling — can back-fill holes left earlier in the table.
 */

#ifndef SCHED91_SCHED_RESERVATION_HH
#define SCHED91_SCHED_RESERVATION_HH

#include <cstdint>
#include <vector>

#include "dag/dag.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** One busy block of a reservation pattern. */
struct FuUse
{
    FuKind fu;
    int start;    ///< offset from issue, cycles
    int duration; ///< busy cycles
};

/** Reservation pattern (busy blocks) for an instruction class. */
std::vector<FuUse> reservationPattern(const MachineModel &machine,
                                      InstClass cls);

/** A partially filled reservation table. */
class ReservationTable
{
  public:
    explicit ReservationTable(const MachineModel &machine);

    /** Can @p pattern be placed with issue cycle @p start? */
    bool fits(const std::vector<FuUse> &pattern, int start) const;

    /** Occupy the table for @p pattern issued at @p start. */
    void place(const std::vector<FuUse> &pattern, int start);

    /** Earliest cycle >= @p from at which @p pattern fits. */
    int earliestFit(const std::vector<FuUse> &pattern, int from) const;

  private:
    bool busy(FuKind fu, int cycle) const;
    void setBusy(FuKind fu, int cycle);

    const MachineModel &machine_;
    /** busy_[fu][cycle] = units of that pool in use. */
    std::vector<std::vector<int>> busy_;
};

/** Result of reservation scheduling. */
struct ReservationResult
{
    Schedule sched;          ///< order sorted by placement cycle
    std::vector<int> cycle;  ///< placement cycle per block node id
    int makespan = 0;        ///< max placement + latency
};

/**
 * Schedule @p dag by reservation-table insertion, prioritized by
 * maximum delay to a leaf (critical path first).  Static annotations
 * must be computed (runAllStaticPasses).
 */
ReservationResult scheduleWithReservationTable(Dag &dag,
                                               const MachineModel &machine);

} // namespace sched91

#endif // SCHED91_SCHED_RESERVATION_HH
