#include "sched/schedule.hh"

#include <numeric>

namespace sched91
{

bool
isValidTopologicalOrder(const Dag &dag,
                        const std::vector<std::uint32_t> &order)
{
    if (order.size() != dag.size())
        return false;
    std::vector<int> pos(dag.size(), -1);
    for (std::uint32_t p = 0; p < order.size(); ++p) {
        if (order[p] >= dag.size() || pos[order[p]] != -1)
            return false; // not a permutation
        pos[order[p]] = static_cast<int>(p);
    }
    for (const Arc &arc : dag.arcs())
        if (pos[arc.from] >= pos[arc.to])
            return false;
    return true;
}

Schedule
originalOrderSchedule(const Dag &dag)
{
    Schedule s;
    s.order.resize(dag.size());
    std::iota(s.order.begin(), s.order.end(), 0);
    s.issueCycle.assign(dag.size(), 0);
    return s;
}

} // namespace sched91
