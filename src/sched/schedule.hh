/**
 * @file
 * Schedule results and validity checks.
 */

#ifndef SCHED91_SCHED_SCHEDULE_HH
#define SCHED91_SCHED_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "dag/dag.hh"

namespace sched91
{

/** The result of scheduling one basic block. */
struct Schedule
{
    /** Block-relative node ids in issue order (a permutation). */
    std::vector<std::uint32_t> order;

    /** Issue cycle per order position (scheduler's own accounting). */
    std::vector<int> issueCycle;

    /** Scheduler's estimate of total cycles (see PipelineSim for the
     * authoritative measurement). */
    int makespan = 0;
};

/** True when @p order is a permutation respecting every arc of @p dag. */
bool isValidTopologicalOrder(const Dag &dag,
                             const std::vector<std::uint32_t> &order);

/** The identity (original program order) schedule. */
Schedule originalOrderSchedule(const Dag &dag);

} // namespace sched91

#endif // SCHED91_SCHED_SCHEDULE_HH
