#include "sched/simple_forward.hh"

namespace sched91
{

SchedulerConfig
simpleForwardConfig()
{
    SchedulerConfig c;
    c.name = "simple-forward";
    c.forward = true;
    c.ranking = {
        {Heuristic::MaxDelayToLeaf, /*preferLarger=*/true},
        {Heuristic::MaxPathToLeaf, true},
        {Heuristic::DelaysToChildren, true, /*phiMax=*/true},
    };
    c.needsBackwardPass = true;
    return c;
}

} // namespace sched91
