/**
 * @file
 * The "simple forward scheduling pass" of Section 6.
 *
 * The paper's construction-algorithm comparison pairs each builder
 * with this pass: "The following backward static heuristics are used:
 * max path to leaf, max delay to leaf, and max delay to child."  Each
 * run thus makes two passes over the instructions (DAG construction
 * plus the intermediate backward heuristic pass) and one scheduling
 * pass over the DAG — the structure whose timing Tables 4 and 5
 * report.
 */

#ifndef SCHED91_SCHED_SIMPLE_FORWARD_HH
#define SCHED91_SCHED_SIMPLE_FORWARD_HH

#include "sched/list_scheduler.hh"

namespace sched91
{

/** Configuration of the Section 6 comparison scheduler. */
SchedulerConfig simpleForwardConfig();

} // namespace sched91

#endif // SCHED91_SCHED_SIMPLE_FORWARD_HH
