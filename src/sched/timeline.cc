#include "sched/timeline.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "machine/function_unit.hh"
#include "support/string_util.hh"

namespace sched91
{

namespace
{

char
positionMark(std::size_t pos)
{
    static const char digits[] =
        "0123456789abcdefghijklmnopqrstuvwxyz";
    return digits[pos % 36];
}

const char *
fuName(FuKind kind)
{
    switch (kind) {
      case FuKind::IntAlu: return "int-alu";
      case FuKind::IntMulDiv: return "int-muldiv";
      case FuKind::MemPort: return "mem-port";
      case FuKind::BranchUnit: return "branch";
      case FuKind::FpAdd: return "fp-add";
      case FuKind::FpMul: return "fp-mul";
      case FuKind::FpDivSqrt: return "fp-divsqrt";
      default: return "?";
    }
}

} // namespace

std::string
renderTimeline(const Dag &dag, const std::vector<std::uint32_t> &order,
               const MachineModel &machine, const TimelineOptions &opts)
{
    // Replay with the pipeline simulator's rules, recording placements.
    struct Placement
    {
        FuKind fu;
        int issue;
        int busy;
        char mark;
    };
    std::vector<Placement> placements;

    std::vector<int> dep_ready(dag.size(), 0);
    for (std::uint32_t i = 0; i < dag.size(); ++i)
        dep_ready[i] = dag.ann().inheritedEet[i];
    FuState fus(machine);
    int cycle = 0;
    int issued = 0;
    unsigned groups = 0;
    int last_cycle = 0;

    for (std::size_t p = 0; p < order.size(); ++p) {
        std::uint32_t n = order[p];
        InstClass cls = dag.inst(n).cls();
        unsigned bit = 1u << static_cast<unsigned>(dag.inst(n).group());
        int t = std::max({cycle, dep_ready[n],
                          fus.earliestFree(machine.fuFor(cls), 0)});
        if (t > cycle) {
            cycle = t;
            issued = 0;
            groups = 0;
        }
        while (issued >= machine.issueWidth ||
               (machine.issueWidth > 1 && (groups & bit))) {
            ++cycle;
            issued = 0;
            groups = 0;
        }
        ++issued;
        groups |= bit;
        fus.occupy(cls, cycle);
        placements.push_back(Placement{machine.fuFor(cls), cycle,
                                       machine.fuBusyCycles(cls),
                                       positionMark(p)});
        last_cycle = std::max(last_cycle,
                              cycle + machine.fuBusyCycles(cls));
        std::span<const std::uint32_t> to = dag.succTo(n);
        std::span<const std::int32_t> delay = dag.succDelay(n);
        for (std::size_t k = 0; k < to.size(); ++k) {
            dep_ready[to[k]] =
                std::max(dep_ready[to[k]], cycle + delay[k]);
        }
    }

    int width = std::min(last_cycle, opts.maxCycles);
    bool truncated = last_cycle > opts.maxCycles;

    std::ostringstream os;
    // Cycle ruler (tens).
    os << padRight("", 12);
    for (int c = 0; c < width; ++c)
        os << (c % 10 == 0 ? static_cast<char>('0' + (c / 10) % 10)
                           : ' ');
    os << "\n";

    for (int k = 0; k < kNumFuKinds; ++k) {
        FuKind kind = static_cast<FuKind>(k);
        std::string row(static_cast<std::size_t>(width), '.');
        bool used = false;
        for (const Placement &pl : placements) {
            if (pl.fu != kind)
                continue;
            used = true;
            if (pl.issue < width)
                row[pl.issue] = pl.mark;
            for (int b = 1; b < pl.busy && pl.issue + b < width; ++b)
                if (row[pl.issue + b] == '.')
                    row[pl.issue + b] = '=';
        }
        if (used)
            os << padRight(fuName(kind), 12) << row
               << (truncated ? "…" : "") << "\n";
    }

    if (opts.showLegend) {
        os << "\n(" << order.size() << " instructions, "
           << last_cycle << " cycles; digits mark issue position, "
           << "'=' marks non-pipelined busy cycles)\n";
    }
    return os.str();
}

} // namespace sched91
