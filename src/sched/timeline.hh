/**
 * @file
 * ASCII function-unit occupancy timelines.
 *
 * Renders a scheduled block as one row per function-unit pool and one
 * column per cycle: the issue cycle of each instruction is marked
 * with its schedule position (base-36), non-pipelined busy cycles
 * with '='.  Makes structural hazards (Section 1) and the shadows the
 * schedulers fill visually obvious; used by the CLI's `timeline`
 * command and the examples.
 */

#ifndef SCHED91_SCHED_TIMELINE_HH
#define SCHED91_SCHED_TIMELINE_HH

#include <string>

#include "dag/dag.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** Rendering options. */
struct TimelineOptions
{
    int maxCycles = 100; ///< truncate (with ellipsis) beyond this
    bool showLegend = true;
};

/**
 * Render @p order executing on @p machine (same replay rules as the
 * pipeline simulator: dependence delays, issue slots, function-unit
 * occupancy).
 */
std::string renderTimeline(const Dag &dag,
                           const std::vector<std::uint32_t> &order,
                           const MachineModel &machine,
                           const TimelineOptions &opts = {});

} // namespace sched91

#endif // SCHED91_SCHED_TIMELINE_HH
