#include "sched/verifier.hh"

#include <algorithm>
#include <sstream>

namespace sched91
{

namespace
{

/** Stop collecting after this many reasons; one is enough to reject
 * and a corrupted permutation could otherwise produce thousands. */
constexpr std::size_t kMaxReasons = 8;

void
fail(VerifyResult &r, std::string reason)
{
    if (r.reasons.size() < kMaxReasons)
        r.reasons.push_back(std::move(reason));
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/**
 * Fill pos[node] = schedule position.  Returns false (with reasons)
 * unless @p order is a permutation of [0, dag.size()).
 */
bool
buildPositions(const Dag &dag, const std::vector<std::uint32_t> &order,
               std::vector<int> &pos, VerifyResult &r)
{
    if (order.size() != dag.size()) {
        fail(r, concat("order covers ", order.size(), " of ",
                       dag.size(), " nodes"));
        return false;
    }
    pos.assign(dag.size(), -1);
    bool ok = true;
    for (std::uint32_t p = 0; p < order.size(); ++p) {
        std::uint32_t n = order[p];
        if (n >= dag.size()) {
            fail(r, concat("position ", p, " names node ", n,
                           " outside the block"));
            ok = false;
            continue;
        }
        if (pos[n] != -1) {
            fail(r, concat("node ", n, " scheduled twice (positions ",
                           pos[n], " and ", p, ")"));
            ok = false;
            continue;
        }
        pos[n] = static_cast<int>(p);
    }
    return ok;
}

/** The block-ending control transfer, or none. */
bool
blockEndsInControl(const Dag &dag)
{
    if (dag.size() == 0)
        return false;
    const Instruction *tail = dag.instPtr(dag.size() - 1);
    return tail != nullptr && tail->endsBlock();
}

/** Is this arc the advisory control anchor into the final branch? */
bool
isBranchAnchor(const Dag &dag, const Arc &arc)
{
    return arc.kind == DepKind::CTRL && arc.to == dag.size() - 1 &&
           blockEndsInControl(dag);
}

} // namespace

std::string
VerifyResult::summary() const
{
    if (reasons.empty())
        return "ok";
    std::string out;
    for (const std::string &reason : reasons) {
        if (!out.empty())
            out += "; ";
        out += reason;
    }
    return out;
}

VerifyResult
verifySchedule(const Dag &dag, const Schedule &sched,
               const MachineModel &machine, const VerifyOptions &opts)
{
    (void)machine; // reserved for future structural checks
    VerifyResult r;

    // 1. Permutation.
    std::vector<int> pos;
    if (!buildPositions(dag, sched.order, pos, r))
        return r; // positions unusable; later checks would lie

    // 2. Precedence: every arc points forward in the order.  In
    // delay-slot mode the advisory control anchors into the final
    // branch are exempt (the filler legally moves past the branch).
    for (const Arc &arc : dag.arcs()) {
        if (opts.allowDelaySlot && isBranchAnchor(dag, arc))
            continue;
        if (pos[arc.from] >= pos[arc.to])
            fail(r, concat("arc ", arc.from, " -> ", arc.to, " (",
                           depKindName(arc.kind), ", delay ",
                           arc.delay, ") runs backward: positions ",
                           pos[arc.from], " >= ", pos[arc.to]));
    }

    // 3. Branch placement.
    if (opts.requireBranchLast && blockEndsInControl(dag)) {
        const std::uint32_t branch = dag.size() - 1;
        const int last = static_cast<int>(dag.size()) - 1;
        if (opts.allowDelaySlot) {
            if (pos[branch] < last - 1)
                fail(r, concat("block-ending control transfer at "
                               "position ",
                               pos[branch], " leaves more than one "
                               "delay-slot instruction behind it"));
        } else if (pos[branch] != last) {
            fail(r, concat("block-ending control transfer scheduled "
                           "at position ",
                           pos[branch], ", not last (", last, ")"));
        }
    }

    // 4. Timing claims.  An all-zero issueCycle vector is "no claim"
    // (originalOrderSchedule); a real fillTiming vector is strictly
    // increasing, so the two cannot be confused for blocks >= 2.
    const std::vector<int> &cyc = sched.issueCycle;
    bool claims_timing =
        opts.checkTiming && cyc.size() == sched.order.size() &&
        !cyc.empty() &&
        std::any_of(cyc.begin(), cyc.end(),
                    [](int c) { return c != 0; });
    if (claims_timing) {
        for (std::size_t p = 1; p < cyc.size(); ++p)
            if (cyc[p] < cyc[p - 1])
                fail(r, concat("issue cycles not monotone: position ",
                               p, " issues at ", cyc[p],
                               " after cycle ", cyc[p - 1]));
        for (const Arc &arc : dag.arcs()) {
            if (opts.allowDelaySlot && isBranchAnchor(dag, arc))
                continue;
            if (pos[arc.from] >= pos[arc.to])
                continue; // already reported as a precedence failure
            int from_cyc = cyc[static_cast<std::size_t>(pos[arc.from])];
            int to_cyc = cyc[static_cast<std::size_t>(pos[arc.to])];
            if (to_cyc < from_cyc + arc.delay)
                fail(r, concat("arc ", arc.from, " -> ", arc.to,
                               " latency violated: issue ", to_cyc,
                               " < ", from_cyc, " + ", arc.delay));
        }
    }

    return r;
}

VerifyResult
verifyReservation(const Dag &dag, const ReservationResult &res,
                  const MachineModel &machine)
{
    VerifyResult r;

    std::vector<int> pos;
    if (!buildPositions(dag, res.sched.order, pos, r))
        return r;

    if (res.cycle.size() != dag.size()) {
        fail(r, concat("placement cycles cover ", res.cycle.size(),
                       " of ", dag.size(), " nodes"));
        return r;
    }

    // Precedence and latency on placement cycles.
    for (const Arc &arc : dag.arcs())
        if (res.cycle[arc.to] < res.cycle[arc.from] + arc.delay)
            fail(r, concat("arc ", arc.from, " -> ", arc.to,
                           " latency violated: cycle ",
                           res.cycle[arc.to], " < ",
                           res.cycle[arc.from], " + ", arc.delay));

    // Reservation conflicts: replay every pattern into a fresh table.
    ReservationTable table(machine);
    for (std::uint32_t n : res.sched.order) {
        const Instruction *inst = dag.instPtr(n);
        if (inst == nullptr)
            continue;
        auto pattern = reservationPattern(machine, inst->cls());
        int start = res.cycle[n];
        if (!table.fits(pattern, start)) {
            fail(r, concat("node ", n, " reservation pattern conflicts "
                           "at cycle ",
                           start));
            continue;
        }
        table.place(pattern, start);
    }

    return r;
}

} // namespace sched91
