/**
 * @file
 * Independent schedule verifier.
 *
 * Production combinatorial schedulers ship behind a validity-checking
 * harness: every emitted schedule is re-checked against the
 * dependence DAG by code that shares nothing with the scheduler that
 * produced it, and a rejected schedule falls back to a safe order
 * instead of reaching the user.  This file is that harness for
 * sched91.  verifySchedule() checks, per block:
 *
 *  1. **Permutation** — the order covers every DAG node exactly once;
 *  2. **Precedence** — every dependence arc points forward in the
 *     order (optionally modulo the advisory control anchor a delay-
 *     slot filler is allowed to violate);
 *  3. **Branch placement** — a block-ending control transfer is
 *     scheduled last (or second-to-last with exactly one legal filler
 *     behind it in delay-slot mode);
 *  4. **Timing claims** — when the schedule carries issue cycles,
 *     they are non-decreasing and respect every arc's latency (an
 *     all-zero cycle vector is treated as "no claim"; that is what
 *     originalOrderSchedule emits).
 *
 * verifyReservation() additionally replays a reservation-table
 * schedule's placement cycles through a fresh ReservationTable and
 * rejects any pattern overlap — the "reservation conflicts absent"
 * guarantee for back-filling schedulers.
 *
 * The verifier is wired into runPipeline behind
 * PipelineOptions::verify (on by default): a rejection counts
 * `robust.verifier_rejections` and degrades the block to original
 * order.  See docs/ROBUSTNESS.md.
 */

#ifndef SCHED91_SCHED_VERIFIER_HH
#define SCHED91_SCHED_VERIFIER_HH

#include <string>
#include <vector>

#include "dag/dag.hh"
#include "machine/machine_model.hh"
#include "sched/reservation.hh"
#include "sched/schedule.hh"

namespace sched91
{

/** What verifySchedule checks. */
struct VerifyOptions
{
    /** Tolerate one delay-slot filler behind the final branch (its
     * control-anchor arc is advisory; see sched/delay_slot.hh). */
    bool allowDelaySlot = false;

    /** Validate Schedule::issueCycle when the schedule claims one. */
    bool checkTiming = true;

    /** Require a block-ending control transfer to be scheduled last.
     * Disable for schedules over DAGs built with anchorBranch off. */
    bool requireBranchLast = true;
};

/** Verification outcome: empty reasons == accepted. */
struct VerifyResult
{
    std::vector<std::string> reasons;

    bool ok() const { return reasons.empty(); }

    /** All reasons joined with "; " ("ok" when accepted). */
    std::string summary() const;
};

/**
 * Independently check @p sched against @p dag.  Pure function of its
 * inputs; never throws, never mutates.
 */
VerifyResult verifySchedule(const Dag &dag, const Schedule &sched,
                            const MachineModel &machine,
                            const VerifyOptions &opts = {});

/**
 * Check a reservation-table schedule: precedence and latency on the
 * placement cycles, plus absence of reservation conflicts (all
 * patterns replayed into a fresh table must fit).
 */
VerifyResult verifyReservation(const Dag &dag,
                               const ReservationResult &res,
                               const MachineModel &machine);

} // namespace sched91

#endif // SCHED91_SCHED_VERIFIER_HH
