/**
 * @file
 * Bounded MPMC admission queue for the scheduling daemon
 * (docs/ROBUSTNESS.md).
 *
 * The queue is the daemon's backpressure point: connection readers
 * tryPush() and get an immediate `false` when the queue is full (the
 * caller answers "rejected" — explicit load shedding, never unbounded
 * buffering), service workers pop() until the queue is closed.
 * close() is the drain barrier: producers can no longer add, and
 * consumers drain what was already admitted before pop() returns
 * nullopt — which is exactly the "finish in-flight, lose nothing
 * accepted" drain contract.
 *
 * Mutex + condvar, deliberately: admission happens once per request
 * (micro- to milliseconds of scheduling work each), so queue overhead
 * is noise and the simple structure is easy to reason about under
 * drain/shutdown.  (The lock-free MPMC designs in the RACoherence
 * lineage trade that simplicity for throughput this path does not
 * need.)
 */

#ifndef SCHED91_SERVICE_BOUNDED_QUEUE_HH
#define SCHED91_SERVICE_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sched91::service
{

template <typename T> class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    /** Admit one item; false when full or closed (shed the load). */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Take the oldest item, blocking while the queue is open and
     * empty.  nullopt only once the queue is closed *and* drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock,
                       [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Stop admitting; wake every blocked consumer.  Items already
     * admitted remain poppable. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace sched91::service

#endif // SCHED91_SERVICE_BOUNDED_QUEUE_HH
