#include "service/daemon.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/pipeline.hh"
#include "obs/exposition.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/memory.hh"
#include "obs/phase.hh"
#include "service/supervisor.hh"
#include "support/fault_inject.hh"
#include "support/log.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace sched91::service
{

namespace
{

/** Reader poll interval: the latency bound on noticing a drain. */
constexpr int kPollMs = 200;

/** Request lines larger than this are a protocol violation, answered
 * with an error and a closed connection — the admission path must
 * never buffer unboundedly. */
constexpr std::size_t kMaxLineBytes = 8u << 20;

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Nanoseconds from @p epoch to @p tp, clamped at zero — the span
 * timebase every trace event shares. */
std::uint64_t
nsSince(std::chrono::steady_clock::time_point epoch,
        std::chrono::steady_clock::time_point tp)
{
    const auto d = tp - epoch;
    if (d.count() <= 0)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d)
            .count());
}

} // namespace

/** One client connection: the fd plus a write lock so concurrent
 * workers (and the reader's error path) never interleave response
 * bytes.  Owned by shared_ptr — queued requests keep the fd alive
 * after the reader exits, so a draining daemon can still answer
 * everything it admitted. */
struct Daemon::Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Send one response line; EPIPE and friends are ignored (the
     * client hung up — its responses have nowhere to go). */
    void
    writeLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMu);
        std::string framed = line;
        framed += '\n';
        std::size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = ::send(fd, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return;
            }
            off += static_cast<std::size_t>(n);
        }
    }

    int fd;
    std::mutex writeMu;
};

/** Per-worker-lane observability kit, set up before the lanes start
 * and reduced after they join. */
struct Daemon::WorkerSlot
{
    obs::CounterShard shard{obs::CounterRegistry::global()};
    obs::PhaseProfiler profiler;
    obs::flight::Recorder *flight = nullptr;
};

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), engine_(config_.engine),
      queue_(config_.queueCapacity)
{
}

Daemon::~Daemon()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int fd : wakePipe_)
        if (fd >= 0)
            ::close(fd);
}

void
Daemon::requestDrain()
{
    // Async-signal-safe: relaxed store + one write(2).  Everything
    // heavier (queue close, joins, stats) happens on normal threads
    // that this write wakes up.
    drain_.store(true, std::memory_order_relaxed);
    char byte = 'd';
    if (wakePipe_[1] >= 0)
        (void)!::write(wakePipe_[1], &byte, 1);
}

int
Daemon::run()
{
    startTime_ = std::chrono::steady_clock::now();

    // --- Socket setup -----------------------------------------------
    if (config_.socketPath.empty())
        fatal("serve: --socket path must not be empty");
    if (config_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        fatal("serve: socket path '", config_.socketPath,
              "' too long for AF_UNIX");
    ::unlink(config_.socketPath.c_str());

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        fatal("serve: socket(): ", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("serve: bind('", config_.socketPath,
              "'): ", std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("serve: listen(): ", std::strerror(errno));
    if (::pipe(wakePipe_) < 0)
        fatal("serve: pipe(): ", std::strerror(errno));

    unsigned lanes = config_.workers != 0
                         ? config_.workers
                         : ThreadPool::hardwareConcurrency();
    if (lanes == 0)
        lanes = 1;

    // --- Observability: the daemon owns the flight rings ------------
    const bool flight_on = obs::flight::enabled();
    if (flight_on) {
        obs::flight::beginRun();
        obs::flight::setExternallyManaged(true);
    }
    if (obs::enabled())
        statsBefore_ = obs::CounterRegistry::global().snapshot();

    slots_.clear();
    for (unsigned i = 0; i < lanes; ++i) {
        slots_.push_back(std::make_unique<WorkerSlot>());
        if (flight_on)
            slots_.back()->flight = obs::flight::claim();
    }

    // --- Process isolation: one sandbox worker per lane -------------
    if (config_.isolateProcess) {
        SupervisorConfig scfg;
        scfg.workers = lanes;
        scfg.engine = config_.engine;
        scfg.workerExe = config_.sandboxWorkerExe;
        if (fault::enabled())
            scfg.faultSpec = fault::specString(fault::activeConfig());
        scfg.rlimitCpuSeconds = config_.isolateRlimitCpu;
        scfg.rlimitAsMb = config_.isolateRlimitAsMb;
        scfg.hangTimeoutMs = config_.isolateHangMs;
        scfg.crashDir = config_.engine.outlierDir;
        supervisor_ =
            std::make_unique<Supervisor>(std::move(scfg), engine_);
        supervisor_->start();
    }

    log::info("sched91 serve: listening on ", config_.socketPath,
              " (", lanes, " worker", lanes == 1 ? "" : "s",
              ", queue depth ", queue_.capacity(), ")");

    // --- Periodic telemetry snapshots -------------------------------
    if (config_.snapshotSeconds > 0.0 && !config_.snapshotPath.empty())
        snapshotThread_ = std::thread([this] { snapshotLoop(); });

    // --- Serve ------------------------------------------------------
    std::thread acceptor([this] { acceptLoop(); });
    {
        // Worker lanes on the repo's own pool.  Each chunk is one
        // long-running lane loop; lanes exit when the queue is closed
        // *and* drained, so parallelFor returning is the "all
        // admitted work answered" barrier.
        ThreadPool pool(lanes);
        pool.parallelFor(lanes, 1,
                         [this](unsigned, std::size_t begin,
                                std::size_t end) {
                             for (std::size_t lane = begin; lane < end;
                                  ++lane)
                                 workerLoop(
                                     static_cast<unsigned>(lane));
                         });
    }
    acceptor.join();
    {
        std::lock_guard<std::mutex> lock(readersMu_);
        for (std::thread &t : readers_)
            t.join();
        readers_.clear();
    }
    if (supervisor_)
        supervisor_->stop(); // every lane is idle: clean pool drain

    // Snapshot thread last among the live-telemetry producers: its
    // final tick (emitted on stop) sees every answered request.
    if (snapshotThread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(snapMu_);
            snapStop_ = true;
        }
        snapCv_.notify_all();
        snapshotThread_.join();
    }

    // --- Final accounting (single-threaded from here) ---------------
    if (obs::enabled()) {
        engine_.counters().flushToRegistry();
        obs::CounterRegistry &registry = obs::CounterRegistry::global();
        for (auto &slot : slots_)
            slot->shard.flushInto(registry);
    }
    if (flight_on)
        obs::flight::setExternallyManaged(false);

    emitFinalStats();
    emitFinalTrace();

    ::unlink(config_.socketPath.c_str());
    log::info("sched91 serve: drained cleanly (",
              engine_.counters().ok.load() +
                  engine_.counters().degraded.load(),
              " answered, ", engine_.counters().rejected.load(),
              " shed)");
    return 0;
}

void
Daemon::acceptLoop()
{
    while (!draining()) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            log::error("serve: poll(): ", std::strerror(errno));
            requestDrain();
            break;
        }
        if (draining())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            log::error("serve: accept(): ", std::strerror(errno));
            requestDrain();
            break;
        }
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(readersMu_);
        readers_.emplace_back(
            [this, conn] { readerLoop(std::move(conn)); });
    }
    // Drain: stop admitting.  Closing the queue is the barrier that
    // lets workers finish everything already accepted, then exit.
    queue_.close();
}

void
Daemon::handleLine(const std::shared_ptr<Connection> &conn,
                   std::string line)
{
    if (line.empty())
        return;
    // Control lines bypass admission entirely: they are answered here
    // on the reader thread, so `stats`/`health` stay responsive while
    // every lane is busy and the queue is shedding.
    if (handleControlLine(conn, line))
        return;
    std::string error;
    std::optional<RequestSpec> spec = parseRequestLine(line, error);
    if (!spec) {
        engine_.counters().error.fetch_add(1,
                                           std::memory_order_relaxed);
        conn->writeLine(errorLine("", error));
        return;
    }
    Request req;
    req.spec = std::move(*spec);
    req.conn = conn;
    req.arrival = std::chrono::steady_clock::now();
    if (req.spec.traceId.empty())
        req.spec.traceId =
            "t" + std::to_string(
                      traceSeq_.fetch_add(1,
                                          std::memory_order_relaxed) +
                      1);
    req.deadlineMs = req.spec.deadlineMs > 0.0
                         ? req.spec.deadlineMs
                         : config_.engine.defaultDeadlineMs;
    const std::string id = req.spec.id;
    if (!queue_.tryPush(std::move(req))) {
        engine_.counters().rejected.fetch_add(
            1, std::memory_order_relaxed);
        conn->writeLine(rejectedLine(
            id, draining() ? "draining" : "overloaded"));
        return;
    }
    engine_.counters().accepted.fetch_add(1,
                                          std::memory_order_relaxed);
}

bool
Daemon::handleControlLine(const std::shared_ptr<Connection> &conn,
                          const std::string &line)
{
    const ControlRequest ctl = parseControlLine(line);
    switch (ctl.type) {
    case ControlType::None:
        return false;
    case ControlType::Invalid:
        conn->writeLine(errorLine(ctl.id, ctl.error));
        return true;
    case ControlType::Stats:
        if (ctl.format == "prometheus") {
            obs::JsonWriter w;
            w.beginObject();
            if (!ctl.id.empty())
                w.key("id").value(ctl.id);
            w.key("status").value("ok");
            w.key("format").value("prometheus");
            w.key("exposition").value(prometheusDocument());
            w.endObject();
            conn->writeLine(w.take());
        } else {
            conn->writeLine(statsDocument(ctl.id, nullptr));
        }
        return true;
    case ControlType::Health:
        conn->writeLine(healthDocument(ctl.id));
        return true;
    case ControlType::TraceDump:
        conn->writeLine(traceDumpDocument(ctl.id));
        return true;
    }
    return false;
}

void
Daemon::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    while (!draining()) {
        pollfd pfd{conn->fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, kPollMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (rc == 0)
            continue; // timeout: re-check the drain flag
        char chunk[65536];
        ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n == 0)
            break; // client closed
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl;
             (nl = buffer.find('\n', start)) != std::string::npos;
             start = nl + 1)
            handleLine(conn, buffer.substr(start, nl - start));
        buffer.erase(0, start);
        if (buffer.size() > kMaxLineBytes) {
            engine_.counters().error.fetch_add(
                1, std::memory_order_relaxed);
            conn->writeLine(
                errorLine("", "request line exceeds 8 MiB"));
            return;
        }
    }
    // EOF with an unterminated trailing line: lenient, treat it as a
    // request (a drain, by contrast, just stops reading).
    if (!draining() && !buffer.empty())
        handleLine(conn, std::move(buffer));
}

void
Daemon::workerLoop(unsigned lane)
{
    WorkerSlot &slot = *slots_[lane];
    // The lane's observability kit: all counter/profiler/flight
    // traffic from the pipelines this lane runs lands in lane-private
    // state, reduced single-threaded after the join.
    std::optional<obs::ScopedCounterShard> shard_scope;
    std::optional<obs::ScopedProfiler> prof_scope;
    if (obs::enabled()) {
        shard_scope.emplace(slot.shard);
        prof_scope.emplace(slot.profiler);
    }
    std::optional<obs::flight::ScopedRecorder> flight_scope;
    if (slot.flight != nullptr)
        flight_scope.emplace(slot.flight);

    while (std::optional<Request> req = queue_.pop()) {
        const double waited = elapsedSeconds(req->arrival);
        {
            std::lock_guard<std::mutex> lock(publishMu_);
            publishedHists_.record("svc.queue_wait_ns",
                                   obs::secondsToNs(waited));
        }

        // The request's span tree: one timebase (daemon start) for
        // the whole process group, so parent and worker spans nest.
        obs::RequestTrace trace;
        trace.log = &traceLog_;
        trace.traceId = req->spec.traceId;
        trace.lane = lane;
        trace.epoch = startTime_;
        const std::uint64_t arrivalNs =
            nsSince(startTime_, req->arrival);
        const std::uint64_t pickupNs = trace.nowNs();
        trace.span("queue", -1, arrivalNs, pickupNs);

        double remaining = 0.0;
        if (req->deadlineMs > 0.0) {
            remaining = req->deadlineMs / 1000.0 - waited;
            if (remaining <= 0.0) {
                // Expired while queued: shedding it now is cheaper
                // and more honest than starting doomed work.  This is
                // the admitted-then-shed leg of the conservation law
                // (accepted == ok + degraded + error +
                // rejected_after_admit) the soak client checks.
                engine_.counters().deadlineExpired.fetch_add(
                    1, std::memory_order_relaxed);
                engine_.counters().rejectedAfterAdmit.fetch_add(
                    1, std::memory_order_relaxed);
                engine_.counters().rejected.fetch_add(
                    1, std::memory_order_relaxed);
                req->conn->writeLine(
                    rejectedLine(req->spec.id, "deadline"));
                trace.span("request", -1, arrivalNs, trace.nowNs(),
                           "shed: deadline");
                continue;
            }
        }

        obs::flight::setBlock(lane); // key events by lane
        const auto started = std::chrono::steady_clock::now();
        std::string response;
        try {
            response = supervisor_
                           ? supervisor_->process(lane, req->spec,
                                                  remaining, &trace)
                           : engine_.process(req->spec, remaining,
                                             &trace);
        } catch (const std::exception &e) {
            // The engine contract is "never throws"; this is the
            // daemon's own last-resort containment.
            engine_.counters().error.fetch_add(
                1, std::memory_order_relaxed);
            response = errorLine(req->spec.id, e.what());
        }
        {
            std::lock_guard<std::mutex> lock(publishMu_);
            publishedHists_.record(
                "svc.request_ns",
                obs::secondsToNs(elapsedSeconds(started)));
        }
        trace.span("request", -1, arrivalNs, trace.nowNs());
        req->conn->writeLine(response);
    }
}

obs::CounterSet
Daemon::liveCounters()
{
    obs::CounterSet set;
    if (obs::enabled()) {
        obs::CounterSet now;
        {
            // The pipeline's post-join reduction flushes shards into
            // the global registry under this lock; taking it makes a
            // mid-run snapshot consistent instead of half-reduced.
            std::lock_guard<std::mutex> lock(registryBracketMutex());
            now = obs::CounterRegistry::global().snapshot();
        }
        set = counterSetDelta(now, statsBefore_,
                              obs::CounterRegistry::global());
    }
    // svc.* tallies live in plain atomics until the drain-time flush;
    // overlay them so live scrapes and the final document agree.
    const SvcCounters &c = engine_.counters();
    set.set("svc.requests_accepted", c.accepted.load());
    set.set("svc.requests_rejected", c.rejected.load());
    set.set("svc.requests_ok", c.ok.load());
    set.set("svc.requests_degraded", c.degraded.load());
    set.set("svc.requests_error", c.error.load());
    set.set("svc.rejected_after_admit", c.rejectedAfterAdmit.load());
    set.set("svc.retries", c.retries.load());
    set.set("svc.degraded_fallbacks", c.degradedFallbacks.load());
    set.set("svc.quarantine_adds", c.quarantineAdds.load());
    set.set("svc.quarantine_hits", c.quarantineHits.load());
    set.set("svc.deadline_expired", c.deadlineExpired.load());
    if (config_.isolateProcess) {
        set.set("svc.worker_crashes", c.workerCrashes.load());
        set.set("svc.worker_kills", c.workerKills.load());
        set.set("svc.worker_respawns", c.workerRespawns.load());
        set.set("svc.worker_spawn_failures",
                c.workerSpawnFailures.load());
    }
    return set;
}

std::string
Daemon::statsDocument(const std::string &id,
                      const obs::CounterSet *delta)
{
    obs::HistogramSet hists;
    {
        std::lock_guard<std::mutex> lock(publishMu_);
        hists = publishedHists_;
    }

    obs::JsonWriter w;
    w.beginObject();
    w.key("sched91_serve_stats").value(1);
    if (!id.empty())
        w.key("id").value(id);
    w.key("meta").beginObject();
    w.key("command").value("serve");
    w.key("stats_schema").value(1);
    w.key("socket").value(config_.socketPath);
    w.key("workers")
        .value(static_cast<std::uint64_t>(slots_.size()));
    w.key("queue_capacity")
        .value(static_cast<std::uint64_t>(queue_.capacity()));
    w.key("machine").value(config_.engine.machineName);
    w.key("uptime_seconds")
        .value(config_.zeroTimes ? 0.0
                                 : elapsedSeconds(startTime_));
    if (config_.isolateProcess)
        w.key("isolate").value("process");
    if (fault::enabled())
        w.key("fault_inject")
            .value(fault::specString(fault::activeConfig()));
    w.endObject();

    const SvcCounters &c = engine_.counters();
    w.key("service").beginObject();
    w.key("accepted").value(c.accepted.load());
    w.key("rejected").value(c.rejected.load());
    w.key("ok").value(c.ok.load());
    w.key("degraded").value(c.degraded.load());
    w.key("error").value(c.error.load());
    w.key("retries").value(c.retries.load());
    w.key("degraded_fallbacks").value(c.degradedFallbacks.load());
    w.key("quarantine_adds").value(c.quarantineAdds.load());
    w.key("quarantine_hits").value(c.quarantineHits.load());
    w.key("deadline_expired").value(c.deadlineExpired.load());
    w.key("rejected_after_admit").value(c.rejectedAfterAdmit.load());
    w.key("quarantine_size")
        .value(static_cast<std::uint64_t>(engine_.quarantineSize()));
    if (config_.isolateProcess) {
        w.key("worker_crashes").value(c.workerCrashes.load());
        w.key("worker_kills").value(c.workerKills.load());
        w.key("worker_respawns").value(c.workerRespawns.load());
        w.key("worker_spawn_failures")
            .value(c.workerSpawnFailures.load());
        w.key("workers_live")
            .value(static_cast<std::uint64_t>(
                supervisor_ ? supervisor_->liveWorkers() : 0));
    }
    w.endObject();

    w.key("queue").beginObject();
    w.key("depth").value(static_cast<std::uint64_t>(queue_.size()));
    w.key("capacity")
        .value(static_cast<std::uint64_t>(queue_.capacity()));
    w.endObject();

    w.key("memory").beginObject();
    w.key("peak_rss_bytes")
        .value(config_.zeroTimes ? std::uint64_t{0}
                                 : obs::currentPeakRssBytes());
    w.endObject();

    w.key("trace").beginObject();
    w.key("spans")
        .value(static_cast<std::uint64_t>(traceLog_.size()));
    w.key("dropped").value(traceLog_.dropped());
    w.endObject();

    if (obs::enabled()) {
        // Bind the set before iterating: items() is a view into its
        // owner, and a temporary would be gone before the loop body.
        const obs::CounterSet live = liveCounters().nonzero();
        w.key("counters").beginObject();
        for (const auto &[name, value] : live.items())
            w.key(name).value(value);
        w.endObject();
    }

    if (delta != nullptr) {
        const obs::CounterSet changed = delta->nonzero();
        w.key("delta").beginObject();
        for (const auto &[name, value] : changed.items())
            w.key(name).value(value);
        w.endObject();
    }

    w.key("histograms").beginObject();
    for (const auto &[name, hist] : hists.items()) {
        const bool zero =
            config_.zeroTimes && obs::isTimeHistogram(name);
        w.key(name).beginObject();
        w.key("count").value(hist.count());
        w.key("mean").value(zero ? 0.0 : hist.mean());
        w.key("p50").value(zero ? 0 : hist.percentile(50));
        w.key("p90").value(zero ? 0 : hist.percentile(90));
        w.key("p99").value(zero ? 0 : hist.percentile(99));
        w.key("max").value(zero ? 0 : hist.max());
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.take();
}

std::string
Daemon::prometheusDocument()
{
    obs::HistogramSet hists;
    {
        std::lock_guard<std::mutex> lock(publishMu_);
        hists = publishedHists_;
    }
    const obs::CounterSet counters = liveCounters().nonzero();

    obs::PromDoc doc;
    doc.counters = &counters;
    doc.registry = &obs::CounterRegistry::global();
    doc.histograms = &hists;
    doc.gauges.push_back(
        {"svc.uptime_seconds",
         config_.zeroTimes ? 0.0 : elapsedSeconds(startTime_)});
    doc.gauges.push_back(
        {"svc.queue_depth", static_cast<double>(queue_.size())});
    doc.gauges.push_back({"svc.queue_capacity",
                          static_cast<double>(queue_.capacity())});
    doc.gauges.push_back(
        {"svc.quarantine_size",
         static_cast<double>(engine_.quarantineSize())});
    if (config_.isolateProcess)
        doc.gauges.push_back(
            {"svc.workers_live",
             static_cast<double>(
                 supervisor_ ? supervisor_->liveWorkers() : 0)});
    doc.gauges.push_back(
        {"mem.peak_rss_bytes",
         config_.zeroTimes
             ? 0.0
             : static_cast<double>(obs::currentPeakRssBytes())});
    doc.labels.emplace_back("machine", config_.engine.machineName);
    return obs::prometheusExposition(doc);
}

std::string
Daemon::healthDocument(const std::string &id)
{
    const SvcCounters &c = engine_.counters();
    obs::JsonWriter w;
    w.beginObject();
    w.key("sched91_serve_health").value(1);
    if (!id.empty())
        w.key("id").value(id);
    w.key("status").value(draining() ? "draining" : "ok");
    w.key("uptime_seconds")
        .value(config_.zeroTimes ? 0.0
                                 : elapsedSeconds(startTime_));
    w.key("workers")
        .value(static_cast<std::uint64_t>(slots_.size()));
    if (config_.isolateProcess)
        w.key("workers_live")
            .value(static_cast<std::uint64_t>(
                supervisor_ ? supervisor_->liveWorkers() : 0));
    w.key("queue_depth")
        .value(static_cast<std::uint64_t>(queue_.size()));
    w.key("queue_capacity")
        .value(static_cast<std::uint64_t>(queue_.capacity()));
    w.key("accepted").value(c.accepted.load());
    w.key("rejected").value(c.rejected.load());
    w.endObject();
    return w.take();
}

std::string
Daemon::traceDumpDocument(const std::string &id)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("sched91_serve_trace").value(1);
    if (!id.empty())
        w.key("id").value(id);
    w.key("status").value("ok");
    w.key("spans")
        .value(static_cast<std::uint64_t>(traceLog_.size()));
    w.key("dropped").value(traceLog_.dropped());
    w.endObject();
    // chromeJson() is itself one JSON document on one line; splice it
    // in as the "trace" value so framing stays line-delimited.
    std::string doc = w.take();
    doc.pop_back(); // trailing '}'
    doc += ",\"trace\":";
    doc += traceLog_.chromeJson(config_.zeroTimes);
    doc += '}';
    return doc;
}

void
Daemon::snapshotLoop()
{
    obs::SnapshotDeltaTracker tracker(obs::CounterRegistry::global());
    std::vector<std::string> lines;

    const auto writeAll = [this, &lines] {
        const std::string tmp = config_.snapshotPath + ".tmp";
        {
            std::ofstream out(tmp);
            if (!out) {
                log::error("serve: cannot write snapshot to '", tmp,
                           "'");
                return;
            }
            for (const std::string &line : lines)
                out << line << '\n';
        }
        if (std::rename(tmp.c_str(),
                        config_.snapshotPath.c_str()) != 0)
            log::error("serve: rename('", tmp, "' -> '",
                       config_.snapshotPath,
                       "'): ", std::strerror(errno));
    };

    const auto interval =
        std::chrono::duration<double>(config_.snapshotSeconds);
    std::unique_lock<std::mutex> lock(snapMu_);
    for (;;) {
        const bool stopping = snapCv_.wait_for(
            lock, interval, [this] { return snapStop_; });
        lock.unlock();
        // One tick per interval — and one final tick on stop, so the
        // last snapshot line covers everything the daemon answered.
        obs::CounterSet delta = tracker.advance(liveCounters());
        lines.push_back(statsDocument("", &delta));
        writeAll();
        if (stopping)
            return;
        lock.lock();
    }
}

void
Daemon::emitFinalStats()
{
    if (config_.statsPath.empty())
        return;

    std::string doc = statsDocument("", nullptr);
    doc += '\n';
    if (config_.statsPath == "-") {
        std::fputs(doc.c_str(), stdout);
        std::fflush(stdout);
        return;
    }
    std::ofstream out(config_.statsPath);
    if (!out) {
        log::error("serve: cannot write stats to '",
                   config_.statsPath, "'");
        return;
    }
    out << doc;
}

void
Daemon::emitFinalTrace()
{
    if (config_.tracePath.empty())
        return;

    std::string doc = traceLog_.chromeJson(config_.zeroTimes);
    doc += '\n';
    if (config_.tracePath == "-") {
        std::fputs(doc.c_str(), stdout);
        std::fflush(stdout);
        return;
    }
    std::ofstream out(config_.tracePath);
    if (!out) {
        log::error("serve: cannot write trace to '",
                   config_.tracePath, "'");
        return;
    }
    out << doc;
}

} // namespace sched91::service
