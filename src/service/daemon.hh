/**
 * @file
 * `sched91 serve`: a long-lived scheduling daemon over a local
 * (AF_UNIX) stream socket, newline-delimited JSON in both directions
 * (service/protocol.hh).
 *
 * Structure (docs/ROBUSTNESS.md):
 *
 *  - an acceptor thread poll()s the listening socket and a self-pipe;
 *  - one reader thread per connection parses request lines and admits
 *    them through a bounded MPMC queue (service/bounded_queue.hh) —
 *    a full queue is answered "rejected"/overloaded immediately, the
 *    daemon never buffers unboundedly;
 *  - worker lanes run on the repo's own ThreadPool, each popping
 *    requests and running them through the Engine's resilience
 *    ladder; responses go back over the connection under a per-
 *    connection write lock, so concurrent workers never interleave
 *    bytes;
 *  - requestDrain() — async-signal-safe: one relaxed store plus one
 *    write(2) to the self-pipe — stops admission (later lines are
 *    answered "rejected"/draining), lets workers finish everything
 *    already admitted, then emits one final stats document.  Zero
 *    accepted requests are lost on SIGINT/SIGTERM.
 *
 * Observability in a long-lived process: the daemon owns the flight-
 * recorder rings (obs::flight::setExternallyManaged), claims one per
 * worker lane, and installs per-lane counter shards and profilers;
 * runPipeline detects external management and skips its own run
 * bracket.  Request latency and queue-wait distributions land in
 * `svc.request_ns` / `svc.queue_wait_ns` histograms; svc.* counters
 * are flushed into the global registry at drain.
 *
 * Live telemetry (docs/OBSERVABILITY.md):
 *
 *  - control lines (`{"type": "stats" | "health" | "trace-dump"}`)
 *    are answered on the reader thread, *without* entering the
 *    admission queue, so introspection works while the service is
 *    saturated or shedding;
 *  - `stats` returns the same document shape as the drain-time stats
 *    file — one schema for live scrapes, periodic snapshots, and the
 *    final document — or a Prometheus text exposition
 *    (obs/exposition.hh) when `"format": "prometheus"`;
 *  - every admitted request gets a trace id; workers report per-phase
 *    spans back through the response envelope, and the daemon merges
 *    queue/rung/respawn/phase spans into one Chrome-trace stream
 *    (obs/chrome_trace.hh), dumpable live via `trace-dump` or at
 *    drain via `--trace-json`;
 *  - `--snapshot-seconds N` appends one stats document (with a
 *    delta-since-last-snapshot section) to a JSONL file every N
 *    seconds, written whole to a temp file and renamed, so readers
 *    never see a torn write.
 */

#ifndef SCHED91_SERVICE_DAEMON_HH
#define SCHED91_SERVICE_DAEMON_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "service/bounded_queue.hh"
#include "service/engine.hh"

namespace sched91::service
{

struct DaemonConfig
{
    std::string socketPath = "/tmp/sched91.sock";

    /** Worker lanes; 0 = hardware concurrency. */
    unsigned workers = 0;

    /** Admission-queue depth (requests waiting for a worker). */
    std::size_t queueCapacity = 64;

    EngineConfig engine;

    /** Final stats document destination: "-" = stdout, "" = none. */
    std::string statsPath = "-";

    /** Zero wall-clock fields in the final stats (determinism
     * tests). */
    bool zeroTimes = false;

    /** Periodic telemetry snapshots: every N seconds append one stats
     * document (with a delta-since-last-snapshot section) to
     * snapshotPath, written temp-then-rename.  0 = off. */
    double snapshotSeconds = 0.0;

    /** JSONL file the periodic snapshots go to; empty = off. */
    std::string snapshotPath;

    /** Merged Chrome-trace destination at drain: "-" = stdout,
     * "" = none.  (`trace-dump` serves the same stream live.) */
    std::string tracePath;

    // --- Process isolation (`--isolate=process`) --------------------
    /** Run ladder attempts in pre-forked sandbox subprocesses
     * (service/supervisor.hh) instead of in-process. */
    bool isolateProcess = false;

    /** Watchdog bound for deadline-less requests, ms. */
    int isolateHangMs = 10'000;

    /** Per-worker RLIMIT_CPU seconds; 0 = unlimited. */
    int isolateRlimitCpu = 0;

    /** Per-worker RLIMIT_AS MiB; 0 = unlimited (keep 0 under
     * sanitizers). */
    std::size_t isolateRlimitAsMb = 0;

    /** Sandbox worker executable override; empty = /proc/self/exe. */
    std::string sandboxWorkerExe;
};

class Supervisor;

class Daemon
{
  public:
    struct Connection;

    /** One admitted request, queued between reader and worker. */
    struct Request
    {
        RequestSpec spec;
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point arrival;
        double deadlineMs = 0.0; ///< resolved (request or default)
    };

    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, listen, serve, drain.  Blocks until requestDrain() (or a
     * fatal socket error) and returns the exit code for main():
     * 0 = clean drain.  Throws FatalError on setup errors.
     */
    int run();

    /** Begin graceful drain.  Async-signal-safe. */
    void requestDrain();

    bool draining() const
    {
        return drain_.load(std::memory_order_relaxed);
    }

    /** Service tallies (tests). */
    SvcCounters &counters() { return engine_.counters(); }

    /** Live span log for `trace-dump` / `--trace-json` (tests). */
    const obs::ServiceTraceLog &traceLog() const { return traceLog_; }

  private:
    struct WorkerSlot;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void workerLoop(unsigned lane);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    std::string line);

    /** Answer a control line on the reader thread; false when @p line
     * is not a control request (take the scheduling path). */
    bool handleControlLine(const std::shared_ptr<Connection> &conn,
                           const std::string &line);

    /**
     * The one stats-document builder behind every consumer — the live
     * `stats` endpoint, periodic snapshots, and the drain-time file —
     * so all three share a schema.  @p id is echoed when non-empty;
     * @p delta, when non-null, adds a "delta" section (snapshot
     * mode).
     */
    std::string statsDocument(const std::string &id,
                              const obs::CounterSet *delta);

    /** Prometheus text exposition of the same telemetry. */
    std::string prometheusDocument();

    std::string healthDocument(const std::string &id);
    std::string traceDumpDocument(const std::string &id);

    /** Counter telemetry for stats/exposition: the registry delta
     * since daemon start (bracket-locked against concurrent pipeline
     * flushes) overlaid with the live svc.* service tallies. */
    obs::CounterSet liveCounters();

    void snapshotLoop();
    void emitFinalStats();
    void emitFinalTrace();

    DaemonConfig config_;
    Engine engine_;
    BoundedQueue<Request> queue_;
    std::unique_ptr<Supervisor> supervisor_; ///< only under --isolate

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::atomic<bool> drain_{false};

    std::mutex readersMu_;
    std::vector<std::thread> readers_;

    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    obs::CounterSet statsBefore_;

    // --- Live telemetry ---------------------------------------------
    obs::ServiceTraceLog traceLog_;
    std::atomic<std::uint64_t> traceSeq_{0};
    std::chrono::steady_clock::time_point startTime_{};

    /** Guards the published histogram set: lanes record queue-wait /
     * request latency here per request; control responses copy it.
     * Two short-critical-section records per request — noise next to
     * the scheduling work. */
    std::mutex publishMu_;
    obs::HistogramSet publishedHists_;

    std::thread snapshotThread_;
    std::mutex snapMu_;
    std::condition_variable snapCv_;
    bool snapStop_ = false;
};

} // namespace sched91::service

#endif // SCHED91_SERVICE_DAEMON_HH
