/**
 * @file
 * `sched91 serve`: a long-lived scheduling daemon over a local
 * (AF_UNIX) stream socket, newline-delimited JSON in both directions
 * (service/protocol.hh).
 *
 * Structure (docs/ROBUSTNESS.md):
 *
 *  - an acceptor thread poll()s the listening socket and a self-pipe;
 *  - one reader thread per connection parses request lines and admits
 *    them through a bounded MPMC queue (service/bounded_queue.hh) —
 *    a full queue is answered "rejected"/overloaded immediately, the
 *    daemon never buffers unboundedly;
 *  - worker lanes run on the repo's own ThreadPool, each popping
 *    requests and running them through the Engine's resilience
 *    ladder; responses go back over the connection under a per-
 *    connection write lock, so concurrent workers never interleave
 *    bytes;
 *  - requestDrain() — async-signal-safe: one relaxed store plus one
 *    write(2) to the self-pipe — stops admission (later lines are
 *    answered "rejected"/draining), lets workers finish everything
 *    already admitted, then emits one final stats document.  Zero
 *    accepted requests are lost on SIGINT/SIGTERM.
 *
 * Observability in a long-lived process: the daemon owns the flight-
 * recorder rings (obs::flight::setExternallyManaged), claims one per
 * worker lane, and installs per-lane counter shards and profilers;
 * runPipeline detects external management and skips its own run
 * bracket.  Request latency and queue-wait distributions land in
 * `svc.request_ns` / `svc.queue_wait_ns` histograms; svc.* counters
 * are flushed into the global registry at drain.
 */

#ifndef SCHED91_SERVICE_DAEMON_HH
#define SCHED91_SERVICE_DAEMON_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "service/bounded_queue.hh"
#include "service/engine.hh"

namespace sched91::service
{

struct DaemonConfig
{
    std::string socketPath = "/tmp/sched91.sock";

    /** Worker lanes; 0 = hardware concurrency. */
    unsigned workers = 0;

    /** Admission-queue depth (requests waiting for a worker). */
    std::size_t queueCapacity = 64;

    EngineConfig engine;

    /** Final stats document destination: "-" = stdout, "" = none. */
    std::string statsPath = "-";

    /** Zero wall-clock fields in the final stats (determinism
     * tests). */
    bool zeroTimes = false;

    // --- Process isolation (`--isolate=process`) --------------------
    /** Run ladder attempts in pre-forked sandbox subprocesses
     * (service/supervisor.hh) instead of in-process. */
    bool isolateProcess = false;

    /** Watchdog bound for deadline-less requests, ms. */
    int isolateHangMs = 10'000;

    /** Per-worker RLIMIT_CPU seconds; 0 = unlimited. */
    int isolateRlimitCpu = 0;

    /** Per-worker RLIMIT_AS MiB; 0 = unlimited (keep 0 under
     * sanitizers). */
    std::size_t isolateRlimitAsMb = 0;

    /** Sandbox worker executable override; empty = /proc/self/exe. */
    std::string sandboxWorkerExe;
};

class Supervisor;

class Daemon
{
  public:
    struct Connection;

    /** One admitted request, queued between reader and worker. */
    struct Request
    {
        RequestSpec spec;
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point arrival;
        double deadlineMs = 0.0; ///< resolved (request or default)
    };

    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, listen, serve, drain.  Blocks until requestDrain() (or a
     * fatal socket error) and returns the exit code for main():
     * 0 = clean drain.  Throws FatalError on setup errors.
     */
    int run();

    /** Begin graceful drain.  Async-signal-safe. */
    void requestDrain();

    bool draining() const
    {
        return drain_.load(std::memory_order_relaxed);
    }

    /** Service tallies (tests). */
    SvcCounters &counters() { return engine_.counters(); }

  private:
    struct WorkerSlot;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void workerLoop(unsigned lane);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    std::string line);
    void emitFinalStats();

    DaemonConfig config_;
    Engine engine_;
    BoundedQueue<Request> queue_;
    std::unique_ptr<Supervisor> supervisor_; ///< only under --isolate

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::atomic<bool> drain_{false};

    std::mutex readersMu_;
    std::vector<std::thread> readers_;

    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    obs::CounterSet statsBefore_;
};

} // namespace sched91::service

#endif // SCHED91_SERVICE_DAEMON_HH
