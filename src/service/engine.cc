#include "service/engine.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "dag/memdep.hh"
#include "ir/parser.hh"
#include "obs/emitter.hh"
#include "obs/events.hh"
#include "obs/flight_recorder.hh"
#include "support/diagnostics.hh"
#include "support/fault_inject.hh"
#include "support/log.hh"

namespace sched91::service
{

namespace
{

/** Scheduled (or original-order) instruction text, block by block. */
std::vector<std::string>
scheduleText(Program &prog, const std::vector<BasicBlock> &blocks,
             const std::vector<Schedule> *schedules)
{
    std::vector<std::string> lines;
    lines.reserve(prog.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        BlockView block(prog, blocks[b]);
        if (schedules != nullptr) {
            for (std::uint32_t pos : (*schedules)[b].order)
                lines.push_back(block.inst(pos).toString());
        } else {
            for (std::uint32_t i = 0; i < block.size(); ++i)
                lines.push_back(block.inst(i).toString());
        }
    }
    return lines;
}

} // namespace

void
SvcCounters::flushToRegistry() const
{
    obs::ev::svcRequestsAccepted.inc(accepted.load());
    obs::ev::svcRequestsRejected.inc(rejected.load());
    obs::ev::svcRequestsOk.inc(ok.load());
    obs::ev::svcRequestsDegraded.inc(degraded.load());
    obs::ev::svcRequestsError.inc(error.load());
    obs::ev::svcRejectedAfterAdmit.inc(rejectedAfterAdmit.load());
    obs::ev::svcRetries.inc(retries.load());
    obs::ev::svcDegradedFallbacks.inc(degradedFallbacks.load());
    obs::ev::svcQuarantineAdds.inc(quarantineAdds.load());
    obs::ev::svcQuarantineHits.inc(quarantineHits.load());
    obs::ev::svcDeadlineExpired.inc(deadlineExpired.load());
    obs::ev::svcWorkerCrashes.inc(workerCrashes.load());
    obs::ev::svcWorkerKills.inc(workerKills.load());
    obs::ev::svcWorkerRespawns.inc(workerRespawns.load());
    obs::ev::svcWorkerSpawnFailures.inc(workerSpawnFailures.load());
}

/** The parse every rung shares: even the last-resort degradation
 * needs the block structure to answer truthfully. */
struct Engine::Parsed
{
    Program prog;
    std::vector<BasicBlock> blocks;
    ResponseBody body; ///< blocks/insts/parse tallies pre-filled
    std::optional<MachineModel> overrideMachine;
    std::uint64_t parseNs = 0; ///< the shared parse's wall clock
};

void
recordPhaseSpans(const obs::RequestTrace *trace, int rung,
                 std::uint64_t rungStartNs, const PhaseSpans &spans,
                 bool worker)
{
    if (trace == nullptr || trace->log == nullptr)
        return;
    const std::pair<const char *, std::uint64_t> phases[] = {
        {"parse", spans.parseNs},   {"build", spans.buildNs},
        {"heur", spans.heurNs},     {"sched", spans.schedNs},
        {"verify", spans.verifyNs},
    };
    std::uint64_t at = rungStartNs;
    for (const auto &[name, durNs] : phases) {
        if (durNs == 0)
            continue;
        trace->span(name, rung, at, at + durNs, {}, worker);
        at += durNs;
    }
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      machine_(presetByName(config_.machineName))
{
}

bool
Engine::isQuarantined(std::uint64_t key) const
{
    if (config_.quarantineCapacity == 0)
        return false;
    std::lock_guard<std::mutex> lock(quarantineMu_);
    return quarantine_.count(key) != 0;
}

void
Engine::addToQuarantine(std::uint64_t key)
{
    if (config_.quarantineCapacity == 0)
        return;
    std::lock_guard<std::mutex> lock(quarantineMu_);
    // Bounded: a full table stops admitting rather than evicting —
    // losing an old entry would let a known-bad payload back onto the
    // failing path, the worse trade for a daemon.
    if (quarantine_.size() >= config_.quarantineCapacity)
        return;
    if (quarantine_.insert(key).second)
        counters_.quarantineAdds.fetch_add(1,
                                           std::memory_order_relaxed);
}

std::size_t
Engine::quarantineSize() const
{
    std::lock_guard<std::mutex> lock(quarantineMu_);
    return quarantine_.size();
}

void
Engine::writeOutlierBundles(const RequestSpec &spec,
                            const ProgramResult &result,
                            const PipelineOptions &popts,
                            std::uint64_t key) const
{
    // Display-name meta, exactly what the CLI writes, so the daemon's
    // bundles replay verbatim through `sched91 explain`.
    obs::RunMeta meta;
    meta.command = "serve";
    meta.input = spec.id.empty() ? "request" : spec.id;
    meta.builder = std::string(builderKindName(popts.builder));
    meta.algorithm = std::string(algorithmName(popts.algorithm));
    meta.machine = spec.machine.value_or(config_.machineName);
    meta.policy = std::string(aliasPolicyName(popts.build.memPolicy));
    meta.traceId = spec.traceId;

    char keyHex[17];
    std::snprintf(keyHex, sizeof keyHex, "%016llx",
                  static_cast<unsigned long long>(key));
    for (const obs::OutlierRecord &rec : result.outliers) {
        std::ostringstream path;
        path << config_.outlierDir << "/outlier-req" << keyHex
             << "-block" << rec.block << ".json";
        std::ofstream out(path.str());
        if (!out) {
            log::warn("cannot write outlier bundle '", path.str(),
                      "'");
            return;
        }
        out << obs::outlierBundleJson(rec, meta) << '\n';
    }
}

Engine::Parsed
Engine::parseRequest(const RequestSpec &spec) const
{
    const auto t0 = std::chrono::steady_clock::now();
    Parsed parsed;
    if (spec.machine)
        parsed.overrideMachine = presetByName(*spec.machine);

    DiagnosticEngine::Options dopts;
    dopts.strict = false;
    dopts.echoToLog = false;
    DiagnosticEngine diags(dopts);
    parsed.prog = parseAssembly(spec.source, diags, "request");
    stampMemGenerations(parsed.prog);
    parsed.blocks = partitionBlocks(parsed.prog, {});

    parsed.body.blocks = parsed.blocks.size();
    parsed.body.insts = parsed.prog.size();
    parsed.body.parseErrors = diags.errorCount();
    parsed.body.parseWarnings = diags.warningCount();
    parsed.body.traceId = spec.traceId;
    parsed.parseNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return parsed;
}

Engine::AttemptOutcome
Engine::runAttempt(Parsed &parsed, const RequestSpec &spec,
                   BuilderKind builder, int attempt, bool downgraded,
                   double remainingSeconds)
{
    PipelineOptions popts;
    popts.builder = builder;
    popts.algorithm = spec.algorithm.value_or(config_.algorithm);
    popts.build.memPolicy = spec.policy.value_or(config_.policy);
    popts.threads = 1; // concurrency comes from daemon workers
    popts.evaluate = spec.evaluate;
    popts.verify = true;
    // Failures must reach the ladder, not vanish into per-block
    // degradation.  The budget/deadline and interrupt rungs still
    // degrade in-pipeline — by design (see pipeline.hh).
    popts.containFaults = false;
    popts.maxBlockInsts = config_.maxBlockInsts;
    if (remainingSeconds > 0.0)
        popts.maxRunSeconds = remainingSeconds;
    popts.faultSalt = static_cast<std::uint64_t>(attempt);
    if (config_.captureOutliers > 0)
        popts.captureOutliers = config_.captureOutliers;

    std::vector<Schedule> schedules;
    if (spec.emitSchedule)
        popts.schedules = &schedules;

    const MachineModel *machine = parsed.overrideMachine
                                      ? &*parsed.overrideMachine
                                      : &machine_;
    ProgramResult result = runPipeline(parsed.prog, *machine, popts);

    ResponseBody body = parsed.body;
    body.status = result.blocksDegraded > 0 ? "degraded" : "ok";
    body.degradedBlocks = result.blocksDegraded;
    body.builderFallbacks = result.builderFallbacks;
    body.verifierRejections = result.verifierRejections;
    body.attempts = attempt + 1;
    body.downgradedBuilder = downgraded;
    if (spec.evaluate) {
        body.haveCycles = true;
        body.cyclesOriginal = result.cyclesOriginal;
        body.cyclesScheduled = result.cyclesScheduled;
    }
    if (spec.emitSchedule)
        body.schedule =
            scheduleText(parsed.prog, parsed.blocks, &schedules);
    for (const ProgramResult::BlockIssue &issue : result.blockIssues)
        body.deadlineHit = body.deadlineHit || issue.stage == "budget";
    body.spans.parseNs = parsed.parseNs;
    body.spans.buildNs = obs::secondsToNs(result.buildSeconds);
    body.spans.heurNs = obs::secondsToNs(result.heurSeconds);
    body.spans.schedNs = obs::secondsToNs(result.schedSeconds);
    body.spans.verifyNs = obs::secondsToNs(result.verifySeconds);

    if (config_.captureOutliers > 0 && !config_.outlierDir.empty() &&
        !result.outliers.empty())
        writeOutlierBundles(spec, result, popts,
                            fault::fnv1a64(spec.source));

    AttemptOutcome out;
    out.degraded = result.blocksDegraded > 0;
    out.deadlineHit = body.deadlineHit;
    out.spans = body.spans;
    out.line = responseLine(spec.id, body);
    return out;
}

std::string
Engine::lastRungLine(Parsed &parsed, const RequestSpec &spec,
                     bool fromQuarantine, int attempts)
{
    ResponseBody body = parsed.body;
    body.status = "degraded";
    body.attempts = attempts;
    body.quarantined = fromQuarantine;
    body.degradedBlocks = parsed.blocks.size();
    // The last rung's only real work is the shared parse; report it so
    // even a crash-degraded answer carries a per-phase span.
    body.spans.parseNs = parsed.parseNs;
    if (spec.emitSchedule)
        body.schedule =
            scheduleText(parsed.prog, parsed.blocks, nullptr);
    counters_.degraded.fetch_add(1, std::memory_order_relaxed);
    return responseLine(spec.id, body);
}

std::string
Engine::attemptLine(const RequestSpec &spec, int attempt,
                    bool downgraded, double remainingSeconds)
{
    Parsed parsed = parseRequest(spec);
    return runAttempt(parsed, spec,
                      spec.builder.value_or(config_.builder), attempt,
                      downgraded, remainingSeconds)
        .line;
}

std::string
Engine::degradedLine(const RequestSpec &spec, bool fromQuarantine,
                     int attempts)
{
    std::optional<Parsed> parsed;
    try {
        parsed.emplace(parseRequest(spec));
    } catch (const std::exception &e) {
        counters_.error.fetch_add(1, std::memory_order_relaxed);
        return errorLine(spec.id, e.what());
    }
    return lastRungLine(*parsed, spec, fromQuarantine, attempts);
}

std::string
Engine::process(const RequestSpec &spec, double remainingSeconds,
                const obs::RequestTrace *trace)
{
    const std::uint64_t key = fault::fnv1a64(spec.source);
    const auto rungSpan = [trace](int rung, std::uint64_t startNs,
                                  std::string_view note) {
        if (trace)
            trace->span("rung", rung, startNs, trace->nowNs(), note);
    };

    std::optional<Parsed> parsed;
    try {
        parsed.emplace(parseRequest(spec));
    } catch (const std::exception &e) {
        // Unknown machine override (the parse itself is lenient).
        counters_.error.fetch_add(1, std::memory_order_relaxed);
        return errorLine(spec.id, e.what());
    }

    if (isQuarantined(key)) {
        const std::uint64_t t0 = trace ? trace->nowNs() : 0;
        counters_.quarantineHits.fetch_add(1,
                                           std::memory_order_relaxed);
        obs::flight::record(obs::flight::EventKind::Diag, "svc",
                            "quarantine hit", key);
        std::string line = lastRungLine(*parsed, spec,
                                        /*fromQuarantine=*/true,
                                        /*attempts=*/0);
        rungSpan(0, t0, "quarantine");
        return line;
    }

    // Attempts 0 (requested builder) and 1 (table-forward downgrade).
    const BuilderKind requested_builder =
        spec.builder.value_or(config_.builder);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const BuilderKind builder = attempt == 0
                                        ? requested_builder
                                        : BuilderKind::TableForward;
        const bool downgraded =
            attempt > 0 &&
            requested_builder != BuilderKind::TableForward;
        const std::uint64_t t0 = trace ? trace->nowNs() : 0;
        try {
            AttemptOutcome out =
                runAttempt(*parsed, spec, builder, attempt, downgraded,
                           remainingSeconds);
            if (out.deadlineHit)
                counters_.deadlineExpired.fetch_add(
                    1, std::memory_order_relaxed);
            if (out.degraded)
                counters_.degraded.fetch_add(1,
                                             std::memory_order_relaxed);
            else
                counters_.ok.fetch_add(1, std::memory_order_relaxed);
            rungSpan(attempt, t0, out.degraded ? "degraded" : "ok");
            recordPhaseSpans(trace, attempt, t0, out.spans,
                             /*worker=*/false);
            return out.line;
        } catch (const std::exception &e) {
            rungSpan(attempt, t0,
                     std::string("failed: ") + e.what());
            if (attempt == 0) {
                counters_.retries.fetch_add(1,
                                            std::memory_order_relaxed);
                obs::flight::record(obs::flight::EventKind::Diag,
                                    "svc", "retry: table builder",
                                    key);
                log::info("request ", spec.id.empty() ? "?" : spec.id,
                          ": attempt 0 failed (", e.what(),
                          "); retrying on table builder");
            } else {
                obs::flight::record(obs::flight::EventKind::Diag,
                                    "svc", "quarantine add", key);
                log::info("request ", spec.id.empty() ? "?" : spec.id,
                          ": attempt 1 failed (", e.what(),
                          "); degrading to original order");
            }
        }
    }

    // Both real attempts failed: quarantine and answer the last rung.
    const std::uint64_t t0 = trace ? trace->nowNs() : 0;
    addToQuarantine(key);
    counters_.degradedFallbacks.fetch_add(1, std::memory_order_relaxed);
    std::string line = lastRungLine(*parsed, spec,
                                    /*fromQuarantine=*/false,
                                    /*attempts=*/3);
    rungSpan(2, t0, "last-rung");
    return line;
}

} // namespace sched91::service
