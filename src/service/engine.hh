/**
 * @file
 * Request engine of the scheduling daemon: one request through the
 * resilience ladder (docs/ROBUSTNESS.md).
 *
 * The ladder, in order:
 *
 *  0. quarantine check — a payload that already failed twice is
 *     answered degraded (original order) without touching the
 *     pipeline again;
 *  1. attempt 0: the requested builder, fault containment *off* so
 *     failures surface here instead of silently degrading per block;
 *     the per-request deadline rides PipelineOptions::maxRunSeconds,
 *     so overruns come back as degraded blocks, not errors;
 *  2. attempt 1 (retry with downgrade): the table-forward builder —
 *     the construction that handled fpppp's 11750-instruction block —
 *     with the fault-injection salt advanced, so a transient injected
 *     fault clears deterministically;
 *  3. last rung: degrade the whole request to original instruction
 *     order (always possible — it needs only the parse), and
 *     quarantine the payload by content hash.
 *
 * Thread safety: process() is called concurrently by the daemon's
 * workers.  Each call runs its pipeline single-threaded (threads=1)
 * on the calling worker, whose thread-installed counter shard, phase
 * profiler, and flight recorder absorb all per-event traffic; the
 * engine's own tallies are atomics (SvcCounters).  The quarantine
 * table is the only shared mutable state and sits behind a mutex.
 */

#ifndef SCHED91_SERVICE_ENGINE_HH
#define SCHED91_SERVICE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

#include "core/pipeline.hh"
#include "machine/presets.hh"
#include "obs/chrome_trace.hh"
#include "service/protocol.hh"

namespace sched91::service
{

/** Daemon-side defaults a request can override. */
struct EngineConfig
{
    BuilderKind builder = BuilderKind::TableForward;
    AlgorithmKind algorithm = AlgorithmKind::SimpleForward;
    AliasPolicy policy = AliasPolicy::BaseOffset;
    std::string machineName = "sparcstation2";

    /** Default per-request deadline in ms; 0 = none. */
    double defaultDeadlineMs = 0.0;

    /** F1/F2 window: oversized blocks fall back to table building. */
    int maxBlockInsts = 0;

    /** Payloads quarantined at most (hash-set entries); 0 disables
     * quarantine entirely. */
    std::size_t quarantineCapacity = 256;

    /** Per-request forensic bundles: keep the K most expensive blocks
     * of each successful request and write replayable bundles into
     * outlierDir (empty = off).  Bundles replay with
     * `sched91 explain`. */
    int captureOutliers = 0;
    std::string outlierDir;
};

/** Service-layer tallies; atomics because every daemon thread
 * (readers, workers, acceptor) bumps them.  Flushed into the global
 * counter registry once, at drain, by the daemon's main thread. */
struct SvcCounters
{
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> error{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> degradedFallbacks{0};
    std::atomic<std::uint64_t> quarantineAdds{0};
    std::atomic<std::uint64_t> quarantineHits{0};
    std::atomic<std::uint64_t> deadlineExpired{0};

    /** Admitted, then shed at queue pickup with the deadline already
     * expired — the "rejected-after-admit" leg of the conservation
     * law `accepted == ok + degraded + error + rejectedAfterAdmit`
     * the soak client asserts against live scrapes. */
    std::atomic<std::uint64_t> rejectedAfterAdmit{0};

    // Process isolation (service/supervisor.hh); all zero when the
    // daemon runs in-process.
    std::atomic<std::uint64_t> workerCrashes{0};   ///< deaths mid-request
    std::atomic<std::uint64_t> workerKills{0};     ///< watchdog SIGKILLs
    std::atomic<std::uint64_t> workerRespawns{0};  ///< replacements spawned
    std::atomic<std::uint64_t> workerSpawnFailures{0}; ///< spawns that died

    /** Fold the tallies into the obs::ev::svc* registry counters
     * (call single-threaded, with observability enabled). */
    void flushToRegistry() const;
};

class Engine
{
  public:
    explicit Engine(EngineConfig config);

    /**
     * Run one parsed request through the ladder and return the
     * response line (no trailing newline).  @p remainingSeconds is
     * what is left of the request's deadline at pick-up time
     * (<= 0 = no deadline).  Never throws.
     *
     * @p trace, when non-null, receives the request's span tree:
     * one "rung" span per ladder attempt plus per-phase child spans
     * (parse/build/heur/sched/verify) under the answering rung.
     */
    std::string process(const RequestSpec &spec,
                        double remainingSeconds,
                        const obs::RequestTrace *trace = nullptr);

    /**
     * One ladder attempt in isolation — the sandbox worker's entry
     * point (`--isolate=process`): parse @p spec, run the pipeline
     * once with the spec's explicit configuration (the supervisor
     * resolves daemon defaults before dispatch), and return the
     * response line.  @p attempt sets the fault-injection salt and
     * the reported attempts count; @p downgraded marks the response
     * as answered by the builder-retry rung.  Throws when the attempt
     * fails — the *caller* owns the ladder.  Does not touch the
     * counters or the quarantine.
     */
    std::string attemptLine(const RequestSpec &spec, int attempt,
                            bool downgraded, double remainingSeconds);

    /**
     * The ladder's last rung as a standalone answer — what the
     * supervisor sends for a request whose worker died: the whole
     * request degraded to original instruction order.  Counts one
     * degraded response.  Never throws usefully beyond a malformed
     * machine override (answered "error").
     */
    std::string degradedLine(const RequestSpec &spec,
                             bool fromQuarantine, int attempts);

    /** Quarantine table, shared with the supervisor's ladder. */
    bool isQuarantined(std::uint64_t key) const;
    void addToQuarantine(std::uint64_t key);

    SvcCounters &counters() { return counters_; }
    const EngineConfig &config() const { return config_; }

    /** Payloads currently quarantined (tests). */
    std::size_t quarantineSize() const;

  private:
    struct Parsed;

    /** Everything process()/the supervisor classify an attempt by. */
    struct AttemptOutcome
    {
        std::string line;
        bool degraded = false;
        bool deadlineHit = false;
        PhaseSpans spans; ///< per-phase timings of this attempt
    };

    Parsed parseRequest(const RequestSpec &spec) const;
    AttemptOutcome runAttempt(Parsed &parsed, const RequestSpec &spec,
                              BuilderKind builder, int attempt,
                              bool downgraded, double remainingSeconds);
    std::string lastRungLine(Parsed &parsed, const RequestSpec &spec,
                             bool fromQuarantine, int attempts);
    void writeOutlierBundles(const RequestSpec &spec,
                             const ProgramResult &result,
                             const PipelineOptions &popts,
                             std::uint64_t key) const;

    EngineConfig config_;
    MachineModel machine_;
    SvcCounters counters_;

    mutable std::mutex quarantineMu_;
    std::unordered_set<std::uint64_t> quarantine_;
};

/**
 * Stitch one attempt's per-phase timings into @p trace as child spans
 * of the rung that ran it, laid out sequentially from
 * @p rungStartNs (phase wall-clock is measured as durations, so the
 * sequential layout reconstructs the attempt's internal timeline).
 * @p worker marks spans measured inside a sandbox worker.  No-op when
 * @p trace is null.
 */
void recordPhaseSpans(const obs::RequestTrace *trace, int rung,
                      std::uint64_t rungStartNs,
                      const PhaseSpans &spans, bool worker);

} // namespace sched91::service

#endif // SCHED91_SERVICE_ENGINE_HH
