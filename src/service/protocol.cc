#include "service/protocol.hh"

#include "dag/memdep.hh"
#include "obs/json.hh"
#include "obs/json_parse.hh"
#include "support/logging.hh"

namespace sched91::service
{

namespace
{

/** Accept both the CLI token and the stats-JSON display name, so a
 * request can be assembled from either a command line or a captured
 * meta section. */
template <typename Kind, std::size_t N>
std::optional<Kind>
lookup(const std::string &name,
       const std::pair<const char *, Kind> (&tokens)[N],
       std::string_view (*displayName)(Kind))
{
    for (const auto &entry : tokens)
        if (name == entry.first)
            return entry.second;
    for (const auto &entry : tokens)
        if (displayName(entry.second) == name)
            return entry.second;
    return std::nullopt;
}

constexpr std::pair<const char *, BuilderKind> kBuilderTokens[] = {
    {"n2-fwd", BuilderKind::N2Forward},
    {"n2-bwd", BuilderKind::N2Backward},
    {"landskov", BuilderKind::N2Landskov},
    {"table-fwd", BuilderKind::TableForward},
    {"table-bwd", BuilderKind::TableBackward},
};

constexpr std::pair<const char *, AliasPolicy> kPolicyTokens[] = {
    {"serialize", AliasPolicy::SerializeAll},
    {"base-offset", AliasPolicy::BaseOffset},
    {"storage", AliasPolicy::StorageClassed},
    {"symbolic", AliasPolicy::SymbolicExpr},
};

} // namespace

AlgorithmKind
algorithmFromToken(const std::string &name)
{
    for (AlgorithmKind kind : allAlgorithms())
        if (algorithmName(kind) == name)
            return kind;
    fatal("unknown algorithm '", name, "'");
}

BuilderKind
builderFromToken(const std::string &name)
{
    if (auto kind = lookup(name, kBuilderTokens, builderKindName))
        return *kind;
    fatal("unknown builder '", name, "'");
}

AliasPolicy
policyFromToken(const std::string &name)
{
    if (auto kind = lookup(name, kPolicyTokens, aliasPolicyName))
        return *kind;
    fatal("unknown alias policy '", name, "'");
}

std::optional<RequestSpec>
parseRequestLine(const std::string &line, std::string &error)
{
    obs::JsonValue doc;
    try {
        doc = obs::parseJson(line);
    } catch (const std::exception &e) {
        error = e.what();
        return std::nullopt;
    }
    if (!doc.isObject()) {
        error = "request is not a JSON object";
        return std::nullopt;
    }

    RequestSpec spec;
    spec.id = doc.strOr("id", "");
    try {
        if (!doc.has("source") || !doc.at("source").isString()) {
            error = "request has no string 'source' field";
            return std::nullopt;
        }
        spec.source = doc.at("source").str();
        if (doc.has("algorithm"))
            spec.algorithm =
                algorithmFromToken(doc.at("algorithm").str());
        if (doc.has("builder"))
            spec.builder = builderFromToken(doc.at("builder").str());
        if (doc.has("policy"))
            spec.policy = policyFromToken(doc.at("policy").str());
        if (doc.has("machine"))
            spec.machine = doc.at("machine").str();
        spec.deadlineMs = doc.numberOr("deadline_ms", 0.0);
        if (spec.deadlineMs < 0.0) {
            error = "deadline_ms must be >= 0";
            return std::nullopt;
        }
        if (doc.has("evaluate"))
            spec.evaluate = doc.at("evaluate").boolean();
        if (doc.has("emit")) {
            const std::string emit = doc.at("emit").str();
            if (emit == "schedule")
                spec.emitSchedule = true;
            else if (emit != "none") {
                error = "unknown emit mode '" + emit + "'";
                return std::nullopt;
            }
        }
        spec.traceId = doc.strOr("trace_id", "");
    } catch (const std::exception &e) {
        // Wrong-typed field (std::get), unknown token (FatalError).
        error = e.what();
        return std::nullopt;
    }
    return spec;
}

std::string
responseLine(const std::string &id, const ResponseBody &body)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("status").value(body.status);
    w.key("blocks").value(static_cast<std::uint64_t>(body.blocks));
    w.key("insts").value(static_cast<std::uint64_t>(body.insts));
    w.key("degraded_blocks")
        .value(static_cast<std::uint64_t>(body.degradedBlocks));
    w.key("builder_fallbacks")
        .value(static_cast<std::uint64_t>(body.builderFallbacks));
    w.key("verifier_rejections")
        .value(static_cast<std::uint64_t>(body.verifierRejections));
    w.key("parse_errors")
        .value(static_cast<std::uint64_t>(body.parseErrors));
    w.key("parse_warnings")
        .value(static_cast<std::uint64_t>(body.parseWarnings));
    w.key("attempts").value(body.attempts);
    w.key("downgraded_builder").value(body.downgradedBuilder);
    w.key("quarantined").value(body.quarantined);
    if (body.deadlineHit)
        w.key("deadline_hit").value(true);
    if (body.haveCycles) {
        w.key("cycles_original").value(body.cyclesOriginal);
        w.key("cycles_scheduled").value(body.cyclesScheduled);
    }
    if (!body.schedule.empty()) {
        w.key("schedule").beginArray();
        for (const std::string &line : body.schedule)
            w.value(line);
        w.endArray();
    }
    if (!body.traceId.empty())
        w.key("trace_id").value(body.traceId);
    if (body.spans.any()) {
        w.key("spans").beginObject();
        w.key("parse_ns").value(body.spans.parseNs);
        w.key("build_ns").value(body.spans.buildNs);
        w.key("heur_ns").value(body.spans.heurNs);
        w.key("sched_ns").value(body.spans.schedNs);
        w.key("verify_ns").value(body.spans.verifyNs);
        w.endObject();
    }
    w.endObject();
    return w.take();
}

PhaseSpans
phaseSpansFromResponse(const std::string &line)
{
    PhaseSpans spans;
    try {
        obs::JsonValue doc = obs::parseJson(line);
        if (!doc.has("spans") || !doc.at("spans").isObject())
            return spans;
        const obs::JsonValue &s = doc.at("spans");
        auto ns = [&s](const char *key) {
            const double v = s.numberOr(key, 0.0);
            return v > 0.0 ? static_cast<std::uint64_t>(v) : 0;
        };
        spans.parseNs = ns("parse_ns");
        spans.buildNs = ns("build_ns");
        spans.heurNs = ns("heur_ns");
        spans.schedNs = ns("sched_ns");
        spans.verifyNs = ns("verify_ns");
    } catch (const std::exception &) {
        // Unparseable response: the caller already classified it as a
        // worker fault; spans simply stay empty.
    }
    return spans;
}

std::string
sandboxEnvelopeLine(const SandboxEnvelope &env)
{
    const RequestSpec &spec = env.spec;
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(spec.id);
    w.key("source").value(spec.source);
    // Display-name spellings, which parseRequestLine() accepts; the
    // supervisor resolved the daemon defaults, so every field is
    // explicit on the wire.
    if (spec.algorithm)
        w.key("algorithm")
            .value(std::string(algorithmName(*spec.algorithm)));
    if (spec.builder)
        w.key("builder")
            .value(std::string(builderKindName(*spec.builder)));
    if (spec.policy)
        w.key("policy")
            .value(std::string(aliasPolicyName(*spec.policy)));
    if (spec.machine)
        w.key("machine").value(*spec.machine);
    if (spec.deadlineMs > 0.0)
        w.key("deadline_ms").value(spec.deadlineMs);
    if (spec.evaluate)
        w.key("evaluate").value(true);
    if (spec.emitSchedule)
        w.key("emit").value("schedule");
    if (!spec.traceId.empty())
        w.key("trace_id").value(spec.traceId);
    w.key("attempt").value(env.attempt);
    if (env.downgraded)
        w.key("downgraded").value(true);
    w.endObject();
    return w.take();
}

std::optional<SandboxEnvelope>
parseSandboxEnvelopeLine(const std::string &line, std::string &error)
{
    std::optional<RequestSpec> spec = parseRequestLine(line, error);
    if (!spec)
        return std::nullopt;
    SandboxEnvelope env;
    env.spec = std::move(*spec);
    try {
        obs::JsonValue doc = obs::parseJson(line);
        env.attempt = static_cast<int>(doc.numberOr("attempt", 0.0));
        if (doc.has("downgraded"))
            env.downgraded = doc.at("downgraded").boolean();
    } catch (const std::exception &e) {
        error = e.what();
        return std::nullopt;
    }
    if (env.attempt < 0) {
        error = "attempt must be >= 0";
        return std::nullopt;
    }
    return env;
}

std::string
rejectedLine(const std::string &id, const std::string &reason)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("status").value("rejected");
    w.key("reason").value(reason);
    w.endObject();
    return w.take();
}

std::string
errorLine(const std::string &id, const std::string &message)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("status").value("error");
    w.key("error").value(message);
    w.endObject();
    return w.take();
}

ControlRequest
parseControlLine(const std::string &line)
{
    ControlRequest req;
    obs::JsonValue doc;
    try {
        doc = obs::parseJson(line);
    } catch (const std::exception &) {
        return req; // malformed JSON: the scheduling path reports it
    }
    if (!doc.isObject() || !doc.has("type") ||
        !doc.at("type").isString())
        return req;

    req.id = doc.strOr("id", "");
    const std::string type = doc.at("type").str();
    if (type == "stats")
        req.type = ControlType::Stats;
    else if (type == "health")
        req.type = ControlType::Health;
    else if (type == "trace-dump")
        req.type = ControlType::TraceDump;
    else {
        req.type = ControlType::Invalid;
        req.error = "unknown control type '" + type + "'";
        return req;
    }

    req.format = doc.strOr("format", "json");
    if (req.format != "json" && req.format != "prometheus") {
        req.error = "unknown format '" + req.format + "'";
        req.type = ControlType::Invalid;
    }
    return req;
}

std::string
controlRequestLine(const ControlRequest &req)
{
    const char *type = "";
    switch (req.type) {
    case ControlType::Stats:
        type = "stats";
        break;
    case ControlType::Health:
        type = "health";
        break;
    case ControlType::TraceDump:
        type = "trace-dump";
        break;
    case ControlType::None:
    case ControlType::Invalid:
        fatal("controlRequestLine: not a serializable control type");
    }
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value(type);
    if (!req.id.empty())
        w.key("id").value(req.id);
    if (!req.format.empty() && req.format != "json")
        w.key("format").value(req.format);
    w.endObject();
    return w.take();
}

} // namespace sched91::service
