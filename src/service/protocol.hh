/**
 * @file
 * Wire protocol of the scheduling daemon (`sched91 serve`): one JSON
 * object per line in each direction, over a local stream socket.
 *
 * Request line:
 *
 *     {"id": "r1", "source": "add %r1, %r2, %r3\n...",
 *      "algorithm": "warren", "builder": "table-fwd",
 *      "policy": "base-offset", "machine": "sparcstation2",
 *      "deadline_ms": 250, "evaluate": true, "emit": "schedule"}
 *
 * Only `source` is required; every other field falls back to the
 * daemon's configured defaults.  Configuration tokens are the CLI's
 * (`--algorithm`/`--builder`/`--policy` spellings); the display names
 * used by stats-JSON meta sections are accepted too, so a captured
 * bundle's meta can be replayed verbatim.
 *
 * Response line: `{"id": ..., "status": ...}` plus status-specific
 * fields.  `status` is one of:
 *
 *  - "ok"        scheduled normally (possibly after a ladder retry);
 *  - "degraded"  some or all blocks kept original order (deadline,
 *                contained fault, quarantine, or last-rung fallback);
 *  - "rejected"  not processed: queue full, daemon draining, or the
 *                deadline expired before a worker picked it up
 *                (`reason` says which) — the 429 of this protocol;
 *  - "error"     the request itself was malformed (bad JSON, bad
 *                config token); `error` carries the message.
 *
 * Control lines (in-band introspection, served without entering the
 * admission queue):
 *
 *     {"type": "stats", "id": "s1"}                      -> stats doc
 *     {"type": "stats", "format": "prometheus"}          -> exposition
 *     {"type": "health"}                                 -> health doc
 *     {"type": "trace-dump"}                             -> span trees
 *
 * A line with a "type" key is a control request; everything else goes
 * down the ordinary scheduling path.  Responses stay one JSON object
 * per line: the Prometheus text exposition rides inside the JSON
 * response as an "exposition" string so framing never changes.
 *
 * Tracing: the daemon stamps every admitted request with a trace id
 * ("trace_id", client-suppliable).  The id rides through the sandbox
 * envelope into workers, which echo it back along with per-phase span
 * timings ("spans": parse/build/heur/sched/verify, nanoseconds), so
 * the supervisor can stitch worker time into the request's span tree
 * (docs/OBSERVABILITY.md).  Both keys are ordinary JSON fields that
 * plain parsers ignore — the wire format stays backward compatible.
 *
 * The reader (obs/json_parse) and writer (obs/json) are the repo's
 * own; the protocol deliberately stays within what they emit/accept.
 */

#ifndef SCHED91_SERVICE_PROTOCOL_HH
#define SCHED91_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dag/builder.hh"
#include "sched/registry.hh"

namespace sched91::service
{

/** Parsed request, before defaults are applied. */
struct RequestSpec
{
    std::string id;     ///< echoed back; may be empty
    std::string source; ///< assembly text (required)

    /** Optional overrides; nullopt = daemon default. */
    std::optional<AlgorithmKind> algorithm;
    std::optional<BuilderKind> builder;
    std::optional<AliasPolicy> policy;
    std::optional<std::string> machine;

    /** Per-request deadline in milliseconds; 0 = daemon default. */
    double deadlineMs = 0.0;

    /** Simulate original vs scheduled cycles (adds simulator time). */
    bool evaluate = false;

    /** Include the scheduled instruction text in the response. */
    bool emitSchedule = false;

    /** Trace id ("trace_id"): assigned by the daemon at admission
     * when the client did not supply one; propagated through the
     * sandbox envelope and echoed in responses. */
    std::string traceId;
};

/**
 * Parse one request line.  Returns the spec, or sets @p error and
 * returns nullopt on malformed JSON / unknown tokens (the caller
 * answers status "error").
 */
std::optional<RequestSpec> parseRequestLine(const std::string &line,
                                            std::string &error);

/**
 * Per-phase wall-clock spans of one attempt, in nanoseconds — the
 * child spans a sandbox worker reports back ("spans" response key) so
 * the supervisor can stitch them under the dispatching rung.
 */
struct PhaseSpans
{
    std::uint64_t parseNs = 0;
    std::uint64_t buildNs = 0;
    std::uint64_t heurNs = 0;
    std::uint64_t schedNs = 0;
    std::uint64_t verifyNs = 0;

    bool
    any() const
    {
        return (parseNs | buildNs | heurNs | schedNs | verifyNs) != 0;
    }
};

/** Extract the "spans" object from a response line; all-zero spans
 * when absent or unparseable (old workers, error lines). */
PhaseSpans phaseSpansFromResponse(const std::string &line);

/** Outcome summary serialized into ok/degraded responses. */
struct ResponseBody
{
    std::string status = "ok"; ///< "ok" | "degraded"
    std::size_t blocks = 0;
    std::size_t insts = 0;
    std::size_t degradedBlocks = 0;
    std::size_t builderFallbacks = 0;
    std::size_t verifierRejections = 0;
    std::size_t parseErrors = 0;
    std::size_t parseWarnings = 0;
    int attempts = 1;         ///< ladder attempts consumed (1..3)
    bool downgradedBuilder = false; ///< answered by the retry rung
    bool quarantined = false; ///< short-circuited by quarantine
    bool deadlineHit = false; ///< a block degraded on the budget rung
                              ///< (emitted only when true; lets the
                              ///< supervisor attribute deadline
                              ///< expiry across the process boundary)
    long long cyclesOriginal = 0;  ///< only when evaluate
    long long cyclesScheduled = 0; ///< only when evaluate
    bool haveCycles = false;
    std::vector<std::string> schedule; ///< only when emitSchedule

    std::string traceId; ///< echoed when the request carried one
    PhaseSpans spans;    ///< emitted when any phase was timed
};

/** Serialize an ok/degraded response (no trailing newline). */
std::string responseLine(const std::string &id, const ResponseBody &body);

/** Serialize a rejection: reason is "overloaded" | "draining" |
 * "deadline". */
std::string rejectedLine(const std::string &id, const std::string &reason);

/** Serialize a request-level error. */
std::string errorLine(const std::string &id, const std::string &message);

/** Kind of an in-band introspection request. */
enum class ControlType
{
    None,      ///< not a control line: take the scheduling path
    Stats,     ///< full stats snapshot (JSON or Prometheus text)
    Health,    ///< cheap liveness/pressure probe
    TraceDump, ///< merged Chrome-trace span trees
    Invalid,   ///< has a "type" key but it is unusable (see error)
};

/**
 * An in-band introspection request (`{"type": ...}`) — answered by
 * the daemon's reader thread directly, never admitted to the queue,
 * so the endpoint stays responsive while the service is saturated.
 */
struct ControlRequest
{
    ControlType type = ControlType::None;
    std::string id;            ///< echoed back; may be empty
    std::string format;        ///< stats: "json" (default) |
                               ///< "prometheus"
    std::string error;         ///< set when type == Invalid
};

/**
 * Classify one wire line.  Returns type None for anything without a
 * "type" key (including malformed JSON — the scheduling path owns
 * those errors); Invalid with @ref ControlRequest::error set for an
 * unknown type or format.
 */
ControlRequest parseControlLine(const std::string &line);

/** Serialize a control request (no trailing newline); empty id and
 * format are omitted. */
std::string controlRequestLine(const ControlRequest &req);

/** CLI/display token parsers shared with `sched91 serve` defaults;
 * throw FatalError on unknown names. */
AlgorithmKind algorithmFromToken(const std::string &name);
BuilderKind builderFromToken(const std::string &name);
AliasPolicy policyFromToken(const std::string &name);

/**
 * Supervisor -> sandbox-worker dispatch envelope
 * (`sched91 serve --isolate=process`, docs/ROBUSTNESS.md): the wire
 * request format with every daemon default already resolved by the
 * supervisor, plus which ladder attempt the worker is carrying out.
 * The extra fields ride as ordinary JSON keys that plain
 * parseRequestLine() callers ignore, so the envelope *is* a valid
 * request line.
 */
struct SandboxEnvelope
{
    RequestSpec spec; ///< deadlineMs = remaining seconds * 1000
    int attempt = 0;  ///< ladder attempt (fault salt, attempts count)
    bool downgraded = false; ///< answered by the builder-retry rung
};

/** Serialize an envelope (no trailing newline). */
std::string sandboxEnvelopeLine(const SandboxEnvelope &env);

/** Parse an envelope; sets @p error and returns nullopt when
 * malformed (the worker answers status "error"). */
std::optional<SandboxEnvelope>
parseSandboxEnvelopeLine(const std::string &line, std::string &error);

} // namespace sched91::service

#endif // SCHED91_SERVICE_PROTOCOL_HH
