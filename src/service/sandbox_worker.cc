#include "service/sandbox_worker.hh"

#include <cerrno>
#include <csignal>
#include <new>
#include <optional>
#include <string>

#include <sys/mman.h>
#include <unistd.h>

#include "service/protocol.hh"
#include "support/fault_inject.hh"

namespace sched91::service
{

namespace
{

bool
writeLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** One envelope -> one response line.  An attempt failure answers
 * status "error" — the supervisor's ladder turns that into a retry or
 * the degraded last rung; the worker itself never retries. */
std::string
answer(Engine &engine, const std::string &line)
{
    std::string error;
    std::optional<SandboxEnvelope> env =
        parseSandboxEnvelopeLine(line, error);
    if (!env)
        return errorLine("", error);

    // A crash leaves the content hash, attempt number, and trace id
    // as the last ring event, so `sched91 explain` on the recovered
    // ring says what the worker was chewing on — and which live trace
    // the death belongs to.
    std::string detail = "attempt";
    if (!env->spec.traceId.empty()) {
        detail += ' ';
        detail += env->spec.traceId;
    }
    obs::flight::record(obs::flight::EventKind::Diag, "sandbox",
                        detail, fault::fnv1a64(env->spec.source),
                        static_cast<std::uint64_t>(env->attempt));

    const double remaining =
        env->spec.deadlineMs > 0.0 ? env->spec.deadlineMs / 1000.0
                                   : 0.0;
    try {
        return engine.attemptLine(env->spec, env->attempt,
                                  env->downgraded, remaining);
    } catch (const std::exception &e) {
        return errorLine(env->spec.id, e.what());
    }
}

} // namespace

int
runSandboxWorker(const SandboxWorkerConfig &config)
{
    // Lifecycle belongs to the supervisor: drain is request-pipe EOF,
    // hangs end in SIGKILL.  Ignoring the terminal's signals keeps a
    // ^C on the process group from racing the orderly drain.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);

    CrashRing *ring = nullptr;
    if (config.ringFd >= 0) {
        void *mem = ::mmap(nullptr, sizeof(CrashRing),
                           PROT_READ | PROT_WRITE, MAP_SHARED,
                           config.ringFd, 0);
        if (mem != MAP_FAILED) {
            ring = new (mem) CrashRing{};
            ring->magic = kCrashRingMagic;
        }
    }

    std::optional<obs::flight::ScopedRecorder> flight_scope;
    if (ring != nullptr) {
        obs::flight::setEnabled(true);
        // The ring outlives any single pipeline run; keep runPipeline
        // from resetting or re-claiming it (same contract as the
        // daemon's lane rings).
        obs::flight::setExternallyManaged(true);
        flight_scope.emplace(&ring->recorder);
    }

    Engine engine(config.engine);

    if (!writeLine(config.respFd, kWorkerReadyLine))
        return 1;

    std::string buffer;
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::read(config.reqFd, chunk, sizeof chunk);
        if (n == 0)
            return 0; // supervisor closed the pipe: clean drain
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return 1;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl;
             (nl = buffer.find('\n', start)) != std::string::npos;
             start = nl + 1) {
            const std::string line = buffer.substr(start, nl - start);
            if (line.empty())
                continue;
            if (!writeLine(config.respFd, answer(engine, line)))
                return 1;
        }
        buffer.erase(0, start);
    }
}

} // namespace sched91::service
