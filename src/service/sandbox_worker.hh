/**
 * @file
 * Child-process side of `sched91 serve --isolate=process`
 * (docs/ROBUSTNESS.md): one sandbox worker runs ONE ladder attempt
 * per dispatch envelope and answers on its response pipe.  The ladder
 * itself — retries, quarantine, degradation, counters — stays in the
 * supervisor (service/supervisor.hh), so a worker death is just a
 * failed attempt the parent can answer for.
 *
 * Lifecycle is entirely the supervisor's: EOF on the request pipe is
 * the drain signal (the worker exits 0), a hung worker is SIGKILLed.
 * SIGINT/SIGTERM are ignored so a ^C delivered to the process group
 * cannot race the supervisor's orderly drain.
 *
 * The crash ring makes killed workers debuggable: a flight-recorder
 * ring living in a supervisor-created memfd, mapped MAP_SHARED by
 * both processes.  The worker records into it through the ordinary
 * obs::flight thread hook; because the memory is shared, the
 * supervisor can read the final events of a worker that died by
 * SIGKILL — which by definition never runs a dump-on-death path.
 */

#ifndef SCHED91_SERVICE_SANDBOX_WORKER_HH
#define SCHED91_SERVICE_SANDBOX_WORKER_HH

#include <cstdint>

#include "obs/flight_recorder.hh"
#include "service/engine.hh"

namespace sched91::service
{

/**
 * Layout of the per-worker crash ring memfd.  Self-contained POD (the
 * Recorder holds fixed arrays and integers, no pointers), so the two
 * processes can map it at different addresses.  The worker
 * placement-constructs it and stamps `magic` last; the supervisor
 * reads it only after reaping the worker, so there is no concurrent
 * access to order.
 */
struct CrashRing
{
    std::uint64_t magic = 0;
    obs::flight::Recorder recorder;
};

/** Stamped by the worker once the ring is constructed ("sc91ring"). */
inline constexpr std::uint64_t kCrashRingMagic = 0x73633931'72696e67ull;

/** Well-known child fd numbers (the supervisor's dup2 plan). */
inline constexpr int kWorkerReqFd = 3;  ///< envelopes in
inline constexpr int kWorkerRespFd = 4; ///< responses out
inline constexpr int kWorkerRingFd = 5; ///< crash-ring memfd

/** First line on the response pipe: the worker is up.  Its absence
 * within the spawn timeout is a spawn failure. */
inline constexpr char kWorkerReadyLine[] = "{\"sandbox_ready\":1}";

struct SandboxWorkerConfig
{
    int reqFd = kWorkerReqFd;
    int respFd = kWorkerRespFd;
    int ringFd = -1; ///< crash-ring memfd; -1 = no ring
    EngineConfig engine;
};

/**
 * Entry point of the hidden `__sandbox-worker` CLI command: serve
 * envelopes until request-pipe EOF.  Returns the process exit code
 * (0 = clean drain).
 */
int runSandboxWorker(const SandboxWorkerConfig &config);

} // namespace sched91::service

#endif // SCHED91_SERVICE_SANDBOX_WORKER_HH
