#include "service/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include "obs/emitter.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/json_parse.hh"
#include "obs/outliers.hh"
#include "service/sandbox_worker.hh"
#include "support/fault_inject.hh"
#include "support/log.hh"
#include "support/logging.hh"

namespace sched91::service
{

namespace
{

constexpr std::int64_t kMsNs = 1'000'000;

/** Lane-side backstop slack past the watchdog's kill time: the lane
 * only SIGKILLs itself when the watchdog thread is wedged. */
constexpr std::int64_t kLaneSlackNs = 250 * kMsNs;

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
writeLineFd(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // EPIPE: the worker is gone
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

enum class ReadStatus
{
    Line,
    Eof,
    Timeout,
};

/** Read one '\n'-terminated line from @p fd into @p line, buffering
 * partial reads in @p buffer, until the absolute steady-clock instant
 * @p deadlineNs. */
ReadStatus
readLineFd(int fd, std::string &buffer, std::string &line,
           std::int64_t deadlineNs)
{
    for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
            line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        const std::int64_t left = deadlineNs - nowNs();
        if (left <= 0)
            return ReadStatus::Timeout;
        pollfd pfd{fd, POLLIN, 0};
        const int waitMs = static_cast<int>(
            left / kMsNs < 100 ? left / kMsNs + 1 : 100);
        const int rc = ::poll(&pfd, 1, waitMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Eof;
        }
        if (rc == 0)
            continue;
        char chunk[65536];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n == 0)
            return ReadStatus::Eof;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return ReadStatus::Eof;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** The fields the ladder classifies a worker response by. */
struct Classified
{
    std::string status;
    std::string error;
    bool deadlineHit = false;
    PhaseSpans spans; ///< the worker's per-phase child spans
};

Classified
classifyResponse(const std::string &line)
{
    Classified c;
    try {
        obs::JsonValue doc = obs::parseJson(line);
        c.status = doc.strOr("status", "");
        c.error = doc.strOr("error", "");
        c.deadlineHit = doc.has("deadline_hit");
        c.spans = phaseSpansFromResponse(line);
    } catch (const std::exception &) {
        // Unparseable bytes from a worker are a worker fault.
        c.status = "error";
        c.error = "unparseable worker response";
    }
    return c;
}

std::string
boundedString(const char *buf, std::size_t cap)
{
    return std::string(buf, ::strnlen(buf, cap));
}

} // namespace

/** One lane's sandbox worker.  Owned and dispatched by exactly one
 * lane thread; the watchdog touches only the atomics. */
struct Supervisor::Worker
{
    unsigned lane = 0;
    Subprocess proc;
    int reqFd = -1;  ///< parent write end (envelopes out)
    int respFd = -1; ///< parent read end (responses in)
    int ringFd = -1; ///< crash-ring memfd
    CrashRing *ring = nullptr; ///< parent-side mapping
    std::string buffer;        ///< partial response line
    bool live = false;
    bool everLive = false; ///< distinguishes respawn from first spawn
    bool laneKilled = false; ///< this lane's backstop fired

    // Watchdog interface: killAtNs != 0 marks the worker busy and
    // names the SIGKILL instant; livePid is what the watchdog may
    // signal (never the Subprocess object — lane-owned).
    std::atomic<std::int64_t> killAtNs{0};
    std::atomic<pid_t> livePid{-1};
    std::atomic<bool> watchdogKilled{false};
};

Supervisor::Supervisor(SupervisorConfig config, Engine &engine)
    : config_(std::move(config)), engine_(engine)
{
}

Supervisor::~Supervisor()
{
    stop();
}

void
Supervisor::start()
{
    exe_ = config_.workerExe.empty() ? selfExePath()
                                     : config_.workerExe;
    if (exe_.empty())
        fatal("serve --isolate=process: cannot resolve the worker "
              "executable (no --isolate-exe and /proc/self/exe "
              "unreadable)");

    workers_.clear();
    const unsigned n = config_.workers != 0 ? config_.workers : 1;
    for (unsigned i = 0; i < n; ++i) {
        workers_.push_back(std::make_unique<Worker>());
        workers_.back()->lane = i;
        // A failed pre-spawn is already counted; the lane retries
        // lazily at its first dispatch.
        spawnWorker(*workers_.back());
    }
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopping_ = false;
        started_ = true;
    }
    watchdog_ = std::thread([this] { watchdogLoop(); });
    log::info("sched91 serve: process isolation on (", n,
              " sandbox worker", n == 1 ? "" : "s", ", exe ", exe_,
              ")");
}

void
Supervisor::stop()
{
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        if (!started_)
            return;
        started_ = false;
        stopping_ = true;
    }
    stopCv_.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();

    // Closing the request pipes is the drain signal: workers exit 0
    // on EOF.  Close them all first so the pool drains in parallel.
    for (auto &wp : workers_)
        if (wp->reqFd >= 0) {
            ::close(wp->reqFd);
            wp->reqFd = -1;
        }
    for (auto &wp : workers_) {
        Worker &w = *wp;
        if (w.proc.valid()) {
            bool reaped = false;
            for (int i = 0; i < 200 && !reaped; ++i) {
                if (w.proc.tryWait()) {
                    reaped = true;
                    break;
                }
                ::usleep(10'000);
            }
            if (!reaped) {
                w.proc.kill(SIGKILL);
                w.proc.wait();
            }
        }
        w.live = false;
        w.livePid.store(-1, std::memory_order_relaxed);
        retireWorker(w);
    }
}

void
Supervisor::retireWorker(Worker &worker)
{
    if (worker.reqFd >= 0) {
        ::close(worker.reqFd);
        worker.reqFd = -1;
    }
    if (worker.respFd >= 0) {
        ::close(worker.respFd);
        worker.respFd = -1;
    }
    if (worker.ring != nullptr) {
        ::munmap(worker.ring, sizeof(CrashRing));
        worker.ring = nullptr;
    }
    if (worker.ringFd >= 0) {
        ::close(worker.ringFd);
        worker.ringFd = -1;
    }
    worker.buffer.clear();
}

unsigned
Supervisor::liveWorkers() const
{
    unsigned n = 0;
    for (const auto &wp : workers_)
        if (wp->livePid.load(std::memory_order_relaxed) > 0)
            ++n;
    return n;
}

bool
Supervisor::spawnWorker(Worker &worker,
                        const obs::RequestTrace *trace)
{
    // The respawn gap is part of the victim request's latency; record
    // it as its own span so the trace shows where the time went.
    class SpanGuard
    {
      public:
        SpanGuard(const obs::RequestTrace *trace, bool &up)
            : trace_(trace), up_(up),
              t0_(trace ? trace->nowNs() : 0)
        {
        }
        ~SpanGuard()
        {
            if (trace_)
                trace_->span("respawn", -1, t0_, trace_->nowNs(),
                             up_ ? "ok" : "failed");
        }

      private:
        const obs::RequestTrace *trace_;
        bool &up_;
        std::uint64_t t0_;
    };

    bool up = false;
    SpanGuard guard(trace, up);

    retireWorker(worker);

    int req[2] = {-1, -1};
    int resp[2] = {-1, -1};
    if (::pipe2(req, O_CLOEXEC) < 0) {
        engine_.counters().workerSpawnFailures.fetch_add(
            1, std::memory_order_relaxed);
        return false;
    }
    if (::pipe2(resp, O_CLOEXEC) < 0) {
        ::close(req[0]);
        ::close(req[1]);
        engine_.counters().workerSpawnFailures.fetch_add(
            1, std::memory_order_relaxed);
        return false;
    }

    // Crash ring: best-effort — a daemon on a kernel without memfd
    // still isolates, it just loses killed-worker forensics.
    int ringFd = ::memfd_create("sched91-crash-ring", MFD_CLOEXEC);
    CrashRing *ring = nullptr;
    if (ringFd >= 0) {
        if (::ftruncate(ringFd, sizeof(CrashRing)) == 0) {
            void *mem =
                ::mmap(nullptr, sizeof(CrashRing),
                       PROT_READ | PROT_WRITE, MAP_SHARED, ringFd, 0);
            if (mem != MAP_FAILED)
                ring = static_cast<CrashRing *>(mem);
        }
        if (ring == nullptr) {
            ::close(ringFd);
            ringFd = -1;
        }
    }

    const EngineConfig &e = config_.engine;
    SpawnSpec spec;
    spec.argv = {exe_,
                 "__sandbox-worker",
                 "--req-fd",
                 std::to_string(kWorkerReqFd),
                 "--resp-fd",
                 std::to_string(kWorkerRespFd)};
    if (ringFd >= 0) {
        spec.argv.push_back("--ring-fd");
        spec.argv.push_back(std::to_string(kWorkerRingFd));
    }
    spec.argv.push_back("--builder");
    spec.argv.push_back(std::string(builderKindName(e.builder)));
    spec.argv.push_back("--algorithm");
    spec.argv.push_back(std::string(algorithmName(e.algorithm)));
    spec.argv.push_back("--policy");
    spec.argv.push_back(std::string(aliasPolicyName(e.policy)));
    spec.argv.push_back("--machine");
    spec.argv.push_back(e.machineName);
    if (e.maxBlockInsts > 0) {
        spec.argv.push_back("--max-block-insts");
        spec.argv.push_back(std::to_string(e.maxBlockInsts));
    }
    if (e.captureOutliers > 0 && !e.outlierDir.empty()) {
        spec.argv.push_back("--capture-outliers");
        spec.argv.push_back(std::to_string(e.captureOutliers));
        spec.argv.push_back("--outlier-dir");
        spec.argv.push_back(e.outlierDir);
    }
    if (!config_.faultSpec.empty()) {
        spec.argv.push_back("--fault-inject");
        spec.argv.push_back(config_.faultSpec);
    }
    spec.fds = {{kWorkerReqFd, req[0]}, {kWorkerRespFd, resp[1]}};
    if (ringFd >= 0)
        spec.fds.push_back({kWorkerRingFd, ringFd});
    spec.limits.cpuSeconds = config_.rlimitCpuSeconds;
    spec.limits.addressSpaceMb = config_.rlimitAsMb;

    bool spawned = false;
    try {
        worker.proc = Subprocess::spawn(spec);
        spawned = true;
    } catch (const std::exception &e) {
        log::warn("sandbox worker lane ", worker.lane,
                  ": spawn failed: ", e.what());
    }
    ::close(req[0]);
    ::close(resp[1]);
    worker.reqFd = req[1];
    worker.respFd = resp[0];
    worker.ringFd = ringFd;
    worker.ring = ring;
    worker.buffer.clear();
    if (!spawned) {
        retireWorker(worker);
        engine_.counters().workerSpawnFailures.fetch_add(
            1, std::memory_order_relaxed);
        return false;
    }

    // The ready banner bounds "came up"; its absence (exec failure,
    // instant death, wedged init) is a spawn failure, not a crash.
    std::string banner;
    const ReadStatus st = readLineFd(
        worker.respFd, worker.buffer, banner,
        nowNs() + static_cast<std::int64_t>(config_.spawnTimeoutMs) *
                      kMsNs);
    if (st != ReadStatus::Line ||
        banner.find("sandbox_ready") == std::string::npos) {
        worker.proc.kill(SIGKILL);
        const SpawnExit exit = worker.proc.wait();
        log::warn("sandbox worker lane ", worker.lane,
                  " never became ready (", exit.describe(), ")");
        retireWorker(worker);
        engine_.counters().workerSpawnFailures.fetch_add(
            1, std::memory_order_relaxed);
        return false;
    }

    worker.live = true;
    worker.everLive = true;
    worker.livePid.store(worker.proc.pid(),
                         std::memory_order_relaxed);
    up = true;
    return true;
}

void
Supervisor::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(stopMu_);
    while (!stopping_) {
        stopCv_.wait_for(lock, std::chrono::milliseconds(25));
        if (stopping_)
            break;
        const std::int64_t now = nowNs();
        for (auto &wp : workers_) {
            Worker &w = *wp;
            const std::int64_t killAt =
                w.killAtNs.load(std::memory_order_acquire);
            if (killAt == 0 || now <= killAt)
                continue;
            const pid_t pid =
                w.livePid.load(std::memory_order_relaxed);
            if (pid > 0) {
                // Flag first so the lane's EOF attributes the kill.
                w.watchdogKilled.store(true,
                                       std::memory_order_relaxed);
                ::kill(pid, SIGKILL);
            }
        }
    }
}

void
Supervisor::harvestCrash(Worker &worker, const RequestSpec &spec,
                         std::uint64_t key, const SpawnExit &exit)
{
    obs::flight::record(obs::flight::EventKind::Diag, "svc",
                        "worker crash", key,
                        static_cast<std::uint64_t>(
                            exit.signaled ? exit.sig : 0));
    if (config_.crashDir.empty() || worker.ring == nullptr ||
        worker.ring->magic != kCrashRingMagic)
        return;

    char keyHex[17];
    std::snprintf(keyHex, sizeof keyHex, "%016llx",
                  static_cast<unsigned long long>(key));

    // 1. The recovered flight ring: what the worker was doing when it
    //    died, pulled from shared memory — SIGKILL leaves no other
    //    trace.
    {
        const obs::flight::Recorder &rec = worker.ring->recorder;
        obs::JsonWriter w;
        w.beginObject();
        w.key("sched91_crash_ring").value(1);
        w.key("lane").value(static_cast<std::uint64_t>(worker.lane));
        w.key("worker_exit").value(exit.describe());
        w.key("events_total").value(rec.total());
        w.key("events").beginArray();
        for (std::size_t i = 0; i < rec.kept(); ++i) {
            const obs::flight::Event &ev = rec.keptAt(i);
            w.beginObject();
            w.key("kind").value(
                std::string(obs::flight::eventKindName(ev.kind)));
            w.key("tag").value(boundedString(ev.tag, sizeof ev.tag));
            w.key("detail").value(
                boundedString(ev.detail, sizeof ev.detail));
            w.key("block_key").value(ev.blockKey);
            w.key("seq").value(static_cast<std::uint64_t>(ev.seq));
            w.key("a").value(ev.a);
            w.key("b").value(ev.b);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        const std::string path = config_.crashDir +
                                 "/crash-ring-req" + keyHex + ".json";
        std::ofstream out(path);
        if (out)
            out << w.take() << '\n';
        else
            log::warn("cannot write crash ring '", path, "'");
    }

    // 2. A replayable bundle: the victim request's source under the
    //    daemon's configuration, marked as an outlier bundle so
    //    `sched91 explain` re-runs the killed payload in-process.
    {
        obs::OutlierRecord rec;
        rec.stage = "crash";
        rec.reason = exit.describe();
        rec.degraded = true;
        rec.source = spec.source;

        obs::RunMeta meta;
        meta.command = "serve";
        meta.input = spec.id.empty() ? "request" : spec.id;
        meta.builder = std::string(builderKindName(
            spec.builder.value_or(config_.engine.builder)));
        meta.algorithm = std::string(algorithmName(
            spec.algorithm.value_or(config_.engine.algorithm)));
        meta.machine = spec.machine.value_or(config_.engine.machineName);
        meta.policy = std::string(aliasPolicyName(
            spec.policy.value_or(config_.engine.policy)));
        meta.traceId = spec.traceId;

        const std::string path =
            config_.crashDir + "/crash-req" + keyHex + ".json";
        std::ofstream out(path);
        if (out)
            out << obs::outlierBundleJson(rec, meta) << '\n';
        else
            log::warn("cannot write crash bundle '", path, "'");
    }
}

Supervisor::DispatchResult
Supervisor::dispatchAttempt(Worker &worker,
                            const SandboxEnvelope &envelope,
                            double remainingSeconds,
                            std::string &line,
                            const obs::RequestTrace *trace)
{
    const std::string request = sandboxEnvelopeLine(envelope);
    const std::uint64_t dispatch0 = trace ? trace->nowNs() : 0;

    // A dead pipe *before* dispatch means the worker died idle or
    // never came up; the request has not reached any worker, so this
    // is respawn territory, not the crash rung.
    for (int spawnTry = 0;; ++spawnTry) {
        if (!worker.live) {
            const bool respawning = worker.everLive;
            if (!spawnWorker(worker, trace))
                return DispatchResult::NoWorker;
            if (respawning)
                engine_.counters().workerRespawns.fetch_add(
                    1, std::memory_order_relaxed);
        }
        if (writeLineFd(worker.reqFd, request))
            break;
        worker.live = false;
        worker.livePid.store(-1, std::memory_order_relaxed);
        worker.proc.kill(SIGKILL);
        worker.proc.wait();
        if (spawnTry == 1)
            return DispatchResult::NoWorker;
    }

    // Arm the watchdog for this attempt.
    worker.laneKilled = false;
    worker.watchdogKilled.store(false, std::memory_order_relaxed);
    const std::int64_t budgetNs =
        remainingSeconds > 0.0
            ? static_cast<std::int64_t>(
                  std::llround(remainingSeconds * 1e9)) +
                  static_cast<std::int64_t>(config_.deadlineGraceMs) *
                      kMsNs
            : static_cast<std::int64_t>(config_.hangTimeoutMs) * kMsNs;
    const std::int64_t killAt = nowNs() + budgetNs;
    worker.killAtNs.store(killAt, std::memory_order_release);

    ReadStatus st = readLineFd(worker.respFd, worker.buffer, line,
                               killAt + kLaneSlackNs);
    if (st == ReadStatus::Timeout) {
        // The watchdog is itself wedged (or this is a test with no
        // watchdog margin): the lane is the backstop.
        worker.laneKilled = true;
        worker.proc.kill(SIGKILL);
        st = ReadStatus::Eof;
    }
    worker.killAtNs.store(0, std::memory_order_relaxed);
    if (st == ReadStatus::Line)
        return DispatchResult::Answered;

    // The worker died holding this request: reap, account, harvest
    // forensics, respawn for the lane's next request.
    worker.live = false;
    worker.livePid.store(-1, std::memory_order_relaxed);
    const SpawnExit exit = worker.proc.wait();
    const bool killed =
        worker.laneKilled ||
        worker.watchdogKilled.load(std::memory_order_relaxed);
    engine_.counters().workerCrashes.fetch_add(
        1, std::memory_order_relaxed);
    if (killed)
        engine_.counters().workerKills.fetch_add(
            1, std::memory_order_relaxed);
    log::warn("sandbox worker lane ", worker.lane,
              " died mid-request (", exit.describe(),
              killed ? "; watchdog kill)" : ")");
    if (trace)
        trace->span("rung", envelope.attempt, dispatch0,
                    trace->nowNs(),
                    std::string("crash: ") + exit.describe());
    harvestCrash(worker, envelope.spec,
                 fault::fnv1a64(envelope.spec.source), exit);
    if (spawnWorker(worker, trace))
        engine_.counters().workerRespawns.fetch_add(
            1, std::memory_order_relaxed);
    return DispatchResult::Crashed;
}

std::string
Supervisor::process(unsigned lane, const RequestSpec &spec,
                    double remainingSeconds,
                    const obs::RequestTrace *trace)
{
    Worker &worker = *workers_[lane % workers_.size()];
    const std::uint64_t key = fault::fnv1a64(spec.source);
    const auto rungSpan = [trace](int rung, std::uint64_t startNs,
                                  std::string_view note) {
        if (trace)
            trace->span("rung", rung, startNs, trace->nowNs(), note);
    };

    // Validate a machine override in-parent, exactly where the
    // in-process engine answers "error" — a bad token must not burn
    // ladder attempts.
    if (spec.machine) {
        try {
            presetByName(*spec.machine);
        } catch (const std::exception &e) {
            engine_.counters().error.fetch_add(
                1, std::memory_order_relaxed);
            return errorLine(spec.id, e.what());
        }
    }

    if (engine_.isQuarantined(key)) {
        const std::uint64_t t0 = trace ? trace->nowNs() : 0;
        engine_.counters().quarantineHits.fetch_add(
            1, std::memory_order_relaxed);
        obs::flight::record(obs::flight::EventKind::Diag, "svc",
                            "quarantine hit", key);
        std::string line =
            engine_.degradedLine(spec, /*fromQuarantine=*/true,
                                 /*attempts=*/0);
        rungSpan(0, t0, "quarantine");
        return line;
    }

    const BuilderKind requested =
        spec.builder.value_or(config_.engine.builder);
    for (int attempt = 0; attempt < 2; ++attempt) {
        SandboxEnvelope env;
        env.spec = spec;
        env.spec.builder = attempt == 0 ? requested
                                        : BuilderKind::TableForward;
        env.spec.algorithm =
            spec.algorithm.value_or(config_.engine.algorithm);
        env.spec.policy = spec.policy.value_or(config_.engine.policy);
        env.spec.deadlineMs = remainingSeconds > 0.0
                                  ? remainingSeconds * 1000.0
                                  : 0.0;
        env.attempt = attempt;
        env.downgraded =
            attempt > 0 && requested != BuilderKind::TableForward;

        std::string line;
        const std::uint64_t t0 = trace ? trace->nowNs() : 0;
        const DispatchResult r =
            dispatchAttempt(worker, env, remainingSeconds, line,
                            trace);

        if (r == DispatchResult::Answered) {
            const Classified c = classifyResponse(line);
            if (c.status == "ok" || c.status == "degraded") {
                if (c.deadlineHit)
                    engine_.counters().deadlineExpired.fetch_add(
                        1, std::memory_order_relaxed);
                if (c.status == "ok")
                    engine_.counters().ok.fetch_add(
                        1, std::memory_order_relaxed);
                else
                    engine_.counters().degraded.fetch_add(
                        1, std::memory_order_relaxed);
                rungSpan(attempt, t0, c.status);
                recordPhaseSpans(trace, attempt, t0, c.spans,
                                 /*worker=*/true);
                return line;
            }
            // Status "error": the attempt failed inside the worker —
            // same ladder as the in-process engine's catch blocks.
            rungSpan(attempt, t0, "failed: " + c.error);
            if (attempt == 0) {
                engine_.counters().retries.fetch_add(
                    1, std::memory_order_relaxed);
                obs::flight::record(obs::flight::EventKind::Diag,
                                    "svc", "retry: table builder",
                                    key);
                log::info("request ", spec.id.empty() ? "?" : spec.id,
                          ": attempt 0 failed (", c.error,
                          "); retrying on table builder");
            } else {
                obs::flight::record(obs::flight::EventKind::Diag,
                                    "svc", "quarantine add", key);
                log::info("request ", spec.id.empty() ? "?" : spec.id,
                          ": attempt 1 failed (", c.error,
                          "); degrading to original order");
            }
            continue;
        }

        if (r == DispatchResult::NoWorker) {
            // Environment failure, not a payload failure: answer the
            // degraded rung but do not quarantine the content.
            log::warn("request ", spec.id.empty() ? "?" : spec.id,
                      ": no sandbox worker on lane ", worker.lane,
                      "; degrading to original order");
            const std::uint64_t t1 = trace ? trace->nowNs() : 0;
            std::string answer = engine_.degradedLine(
                spec, /*fromQuarantine=*/false, attempt);
            rungSpan(attempt, t1, "degrade: no-worker");
            return answer;
        }

        // Crashed: the worker-death rung.  The payload killed a
        // process — quarantine it and answer original order; a retry
        // would deterministically crash the replacement too.
        engine_.addToQuarantine(key);
        const std::uint64_t t1 = trace ? trace->nowNs() : 0;
        std::string answer = engine_.degradedLine(
            spec, /*fromQuarantine=*/false, attempt + 1);
        rungSpan(attempt + 1, t1, "degrade: crash");
        // The in-parent degrade re-parsed the source; stitch that in
        // so even a SIGKILLed request's tree has a phase child span.
        recordPhaseSpans(trace, attempt + 1, t1,
                         phaseSpansFromResponse(answer),
                         /*worker=*/false);
        return answer;
    }

    // Both attempts answered "error": last rung, as in-process.
    engine_.addToQuarantine(key);
    engine_.counters().degradedFallbacks.fetch_add(
        1, std::memory_order_relaxed);
    const std::uint64_t t1 = trace ? trace->nowNs() : 0;
    std::string answer = engine_.degradedLine(
        spec, /*fromQuarantine=*/false, /*attempts=*/3);
    rungSpan(2, t1, "last-rung");
    return answer;
}

} // namespace sched91::service
