/**
 * @file
 * Parent-process side of `sched91 serve --isolate=process`
 * (docs/ROBUSTNESS.md): a pool of pre-forked sandbox workers, one per
 * daemon lane, each a subprocess of the CLI binary running the hidden
 * `__sandbox-worker` command.
 *
 * Division of labor:
 *
 *  - The *supervisor* owns the resilience ladder — quarantine check,
 *    attempt sequencing, builder downgrade, last-rung degradation —
 *    and all service counters, so `--isolate=process` answers with
 *    exactly the tallies the in-process engine would produce for the
 *    same seed.
 *  - A *worker* runs exactly one ladder attempt per dispatch envelope
 *    (service/sandbox_worker.hh).  Anything that kills it — injected
 *    SIGSEGV/abort, an rlimit, a watchdog SIGKILL — is contained to
 *    the one request it was holding.
 *
 * Worker death is its own ladder rung: the victim request is answered
 * degraded to original instruction order, its content hash is
 * quarantined, `svc.worker_crashes` ticks, and a flight event records
 * the cause.  Every accepted request is answered exactly once; the
 * crashed worker is reaped and respawned before the lane takes its
 * next request.
 *
 * Hang containment is layered: a watchdog thread SIGKILLs any worker
 * busy past its deadline grace (or the idle hang bound when the
 * request has no deadline); the dispatching lane's poll loop is the
 * backstop when the watchdog itself is wedged; and RLIMIT_CPU, when
 * configured, is the kernel's final word.
 *
 * Each worker also carries a crash ring — a flight-recorder ring in a
 * shared memfd — that the supervisor harvests after a death, so even
 * a SIGKILLed worker leaves `sched91 explain`-able forensics.
 */

#ifndef SCHED91_SERVICE_SUPERVISOR_HH
#define SCHED91_SERVICE_SUPERVISOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/engine.hh"
#include "service/protocol.hh"
#include "support/subprocess.hh"

namespace sched91::service
{

struct SupervisorConfig
{
    /** One worker per daemon lane; lane i talks only to worker i, so
     * dispatch needs no pool lock. */
    unsigned workers = 1;

    /** Forwarded to each worker's engine via CLI flags. */
    EngineConfig engine;

    /** Worker executable; empty = /proc/self/exe.  Tests point this
     * at the real CLI binary. */
    std::string workerExe;

    /** Fault-injection spec forwarded to workers (they inherit the
     * daemon's faults; the supervisor process runs with them too). */
    std::string faultSpec;

    /** Per-worker RLIMIT_CPU seconds; 0 = unlimited. */
    int rlimitCpuSeconds = 0;

    /** Per-worker RLIMIT_AS MiB; 0 = unlimited.  Leave 0 under
     * sanitizers (support/subprocess.hh). */
    std::size_t rlimitAsMb = 0;

    /** Watchdog bound for requests with no deadline, ms. */
    int hangTimeoutMs = 10'000;

    /** Watchdog grace past a request's deadline, ms: the in-process
     * budget rung degrades at the deadline, so a worker healthy
     * enough to do the same answers before the SIGKILL lands. */
    int deadlineGraceMs = 500;

    /** How long a fresh worker may take to print its ready banner. */
    int spawnTimeoutMs = 10'000;

    /** Where crash forensics go (ring dump + replayable bundle);
     * empty = discard.  The daemon passes engine.outlierDir. */
    std::string crashDir;
};

class Supervisor
{
  public:
    /** @p engine is the daemon's in-parent engine: the supervisor
     * uses its quarantine table, counters, and last-rung answer. */
    Supervisor(SupervisorConfig config, Engine &engine);
    ~Supervisor();

    /** Spawn the pool and the watchdog.  A worker that fails to come
     * up is counted (svc.worker_spawn_failures) and retried at its
     * lane's first dispatch; start() itself only throws when no
     * worker executable can be resolved. */
    void start();

    /** Drain: close request pipes (workers exit 0 on EOF), reap with
     * a grace period, SIGKILL stragglers, stop the watchdog.
     * Idempotent. */
    void stop();

    /**
     * Run one request through the ladder, each attempt in lane @p
     * lane's sandbox worker.  Same contract as Engine::process():
     * returns the response line, never throws.  @p trace, when
     * non-null, receives the request's span tree: one "rung" span per
     * dispatch (crashes annotated with the worker's exit), "respawn"
     * spans for replacement workers, and the per-phase child spans
     * the worker reported back in its response envelope.
     */
    std::string process(unsigned lane, const RequestSpec &spec,
                        double remainingSeconds,
                        const obs::RequestTrace *trace = nullptr);

    /** Workers respawned so far (smoke/tests). */
    std::uint64_t respawns() const
    {
        return engine_.counters().workerRespawns.load();
    }

    /** Lanes whose sandbox worker is currently alive (stats/health
     * gauge; reads the watchdog atomics, so safe from any thread). */
    unsigned liveWorkers() const;

  private:
    struct Worker;

    bool spawnWorker(Worker &worker,
                     const obs::RequestTrace *trace = nullptr);
    void retireWorker(Worker &worker);
    void watchdogLoop();

    /** Outcome of one dispatched attempt. */
    enum class DispatchResult
    {
        Answered, ///< got a response line (any status)
        Crashed,  ///< worker died or was killed mid-attempt
        NoWorker, ///< worker absent and respawn failed
    };
    DispatchResult dispatchAttempt(Worker &worker,
                                   const SandboxEnvelope &envelope,
                                   double remainingSeconds,
                                   std::string &line,
                                   const obs::RequestTrace *trace);

    void harvestCrash(Worker &worker, const RequestSpec &spec,
                      std::uint64_t key, const SpawnExit &exit);

    SupervisorConfig config_;
    Engine &engine_;
    std::string exe_; ///< resolved worker executable
    std::vector<std::unique_ptr<Worker>> workers_;

    std::thread watchdog_;
    std::mutex stopMu_;
    std::condition_variable stopCv_;
    bool stopping_ = false;
    bool started_ = false;
};

} // namespace sched91::service

#endif // SCHED91_SERVICE_SUPERVISOR_HH
