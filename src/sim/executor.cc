#include "sim/executor.hh"

#include <bit>
#include <cmath>

#include "support/logging.hh"

namespace sched91
{

namespace
{

/** splitmix64 finalizer for deterministic pseudo-values. */
std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Assemble a double from an even/odd FP register pair (even = high). */
double
readDouble(const ExecState &s, int reg)
{
    std::uint64_t bits =
        (static_cast<std::uint64_t>(s.fpRegs[reg]) << 32) |
        s.fpRegs[reg + 1];
    return std::bit_cast<double>(bits);
}

void
writeDouble(ExecState &s, int reg, double value)
{
    std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    s.fpRegs[reg] = static_cast<std::uint32_t>(bits >> 32);
    s.fpRegs[reg + 1] = static_cast<std::uint32_t>(bits);
}

float
readFloat(const ExecState &s, int reg)
{
    return std::bit_cast<float>(s.fpRegs[reg]);
}

void
writeFloat(ExecState &s, int reg, float value)
{
    s.fpRegs[reg] = std::bit_cast<std::uint32_t>(value);
}

} // namespace

Executor::Executor(std::uint64_t seed) : seed_(seed)
{
    for (int i = 1; i < 32; ++i) {
        // Every register gets its own 16 MiB region (plus a seeded
        // sub-offset), so distinct base registers never produce
        // overlapping addresses for bounded displacements: this makes
        // the expression-as-resource disambiguation policy
        // (AliasPolicy::SymbolicExpr) sound at runtime, matching
        // compiler output where distinct expressions name distinct
        // objects.
        state_.intRegs[i] =
            0x1'0000'0000LL + (static_cast<std::int64_t>(i) << 24) +
            (static_cast<std::int64_t>(mix(seed ^ i) & 0xfff0) << 4);
    }
    // Stack pointers live in a dedicated high range disjoint from the
    // register regions and the symbolHash() range, making the
    // storage-class disambiguation sound at runtime.
    state_.intRegs[14] = 0x7000'0000'0000LL; // %sp
    state_.intRegs[30] = 0x7000'0100'0000LL; // %fp
    for (int i = 0; i < 32; ++i)
        state_.fpRegs[i] = static_cast<std::uint32_t>(mix(seed ^ (100 + i)));
}

std::uint64_t
Executor::memoryAddress(const MemOperand &mem) const
{
    std::uint64_t addr = 0;
    if (!mem.symbol.empty())
        addr += symbolHash(mem.symbol);
    if (mem.base >= 0)
        addr += static_cast<std::uint64_t>(state_.intRegs[mem.base]);
    if (mem.index >= 0)
        addr += static_cast<std::uint64_t>(state_.intRegs[mem.index]);
    return addr + static_cast<std::uint64_t>(mem.offset);
}

std::uint64_t
Executor::loadBytes(std::uint64_t addr, int width)
{
    std::uint64_t value = 0;
    for (int b = 0; b < width; ++b) {
        auto it = state_.memory.find(addr + b);
        std::uint8_t byte =
            it != state_.memory.end()
                ? it->second
                : static_cast<std::uint8_t>(mix(seed_ ^ (addr + b)));
        value = (value << 8) | byte;
    }
    return value;
}

void
Executor::storeBytes(std::uint64_t addr, std::uint64_t value, int width)
{
    for (int b = width - 1; b >= 0; --b) {
        state_.memory[addr + b] = static_cast<std::uint8_t>(value);
        value >>= 8;
    }
}

void
Executor::execute(const Instruction &inst)
{
    auto reg = [this](Resource r) -> std::int64_t {
        return r.kind() == Resource::Kind::IntReg ? state_.intRegs[r.index()]
                                                  : 0;
    };
    auto set_reg = [this](Resource r, std::int64_t v) {
        if (r.kind() == Resource::Kind::IntReg && r.index() != 0)
            state_.intRegs[r.index()] = v;
    };

    // Operand extraction from the def/use sets built by makeInstruction:
    // integer sources are the position-0/1 uses; the destination is the
    // first def.
    auto use_at = [&inst](int pos) -> Resource {
        const auto &uses = inst.uses();
        const auto &positions = inst.usePositions();
        for (std::size_t i = 0; i < uses.size(); ++i)
            if (positions[i] == pos)
                return uses[i];
        return Resource();
    };
    Resource rs1 = use_at(0);
    Resource rs2 = use_at(1);
    Resource rd = inst.defs().empty() ? Resource() : inst.defs().front();

    std::int64_t a = reg(rs1);
    std::int64_t b = inst.usesImm() ? inst.imm() : reg(rs2);

    auto set_icc = [this](std::int64_t result, bool carry, bool overflow) {
        state_.icc.n = result < 0;
        state_.icc.z = result == 0;
        state_.icc.c = carry;
        state_.icc.v = overflow;
    };

    switch (inst.op()) {
      case Opcode::Add:
        set_reg(rd, a + b);
        break;
      case Opcode::Sub:
        set_reg(rd, a - b);
        break;
      case Opcode::And:
        set_reg(rd, a & b);
        break;
      case Opcode::Or:
        set_reg(rd, a | b);
        break;
      case Opcode::Xor:
        set_reg(rd, a ^ b);
        break;
      case Opcode::Sll:
        set_reg(rd, a << (b & 63));
        break;
      case Opcode::Srl:
        set_reg(rd, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a) >> (b & 63)));
        break;
      case Opcode::Sra:
        set_reg(rd, a >> (b & 63));
        break;
      case Opcode::Addcc: {
        std::int64_t r = a + b;
        set_reg(rd, r);
        set_icc(r, static_cast<std::uint64_t>(r) <
                       static_cast<std::uint64_t>(a),
                ((a ^ r) & (b ^ r)) < 0);
        break;
      }
      case Opcode::Subcc:
      case Opcode::Cmp: {
        std::int64_t r = a - b;
        if (inst.op() == Opcode::Subcc)
            set_reg(rd, r);
        set_icc(r, static_cast<std::uint64_t>(a) <
                       static_cast<std::uint64_t>(b),
                ((a ^ b) & (a ^ r)) < 0);
        break;
      }
      case Opcode::Mov:
        set_reg(rd, inst.usesImm() ? inst.imm() : a);
        break;
      case Opcode::Sethi:
        set_reg(rd, inst.imm() << 10);
        break;
      case Opcode::Smul: {
        __int128 p = static_cast<__int128>(a) * b;
        set_reg(rd, static_cast<std::int64_t>(p));
        state_.y = static_cast<std::int64_t>(p >> 64);
        break;
      }
      case Opcode::Sdiv: {
        std::int64_t divisor = b == 0 ? 1 : b;
        set_reg(rd, a / divisor);
        break;
      }

      case Opcode::Ld:
      case Opcode::Ldub:
      case Opcode::Lduh: {
        std::uint64_t v = loadBytes(memoryAddress(*inst.mem()),
                                    inst.mem()->width);
        set_reg(rd, static_cast<std::int64_t>(v));
        break;
      }
      case Opcode::Ldsb: {
        auto v = static_cast<std::int8_t>(
            loadBytes(memoryAddress(*inst.mem()), 1));
        set_reg(rd, v);
        break;
      }
      case Opcode::Ldsh: {
        auto v = static_cast<std::int16_t>(
            loadBytes(memoryAddress(*inst.mem()), 2));
        set_reg(rd, v);
        break;
      }
      case Opcode::Ldx: {
        std::uint64_t v = loadBytes(memoryAddress(*inst.mem()), 8);
        set_reg(rd, static_cast<std::int64_t>(v));
        break;
      }
      case Opcode::Stx:
        storeBytes(memoryAddress(*inst.mem()),
                   static_cast<std::uint64_t>(a), 8);
        break;
      case Opcode::Ldd: {
        std::uint64_t v = loadBytes(memoryAddress(*inst.mem()), 8);
        set_reg(rd, static_cast<std::int64_t>(v >> 32));
        set_reg(Resource::intReg(rd.index() + 1),
                static_cast<std::int64_t>(v & 0xffffffffULL));
        break;
      }
      case Opcode::St:
        storeBytes(memoryAddress(*inst.mem()),
                   static_cast<std::uint64_t>(a), 4);
        break;
      case Opcode::Stb:
        storeBytes(memoryAddress(*inst.mem()),
                   static_cast<std::uint64_t>(a), 1);
        break;
      case Opcode::Sth:
        storeBytes(memoryAddress(*inst.mem()),
                   static_cast<std::uint64_t>(a), 2);
        break;
      case Opcode::Std: {
        std::uint64_t v =
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(reg(rs1)))
             << 32) |
            static_cast<std::uint32_t>(
                reg(Resource::intReg(rs1.index() + 1)));
        storeBytes(memoryAddress(*inst.mem()), v, 8);
        break;
      }

      case Opcode::Ldf:
        state_.fpRegs[rd.index()] = static_cast<std::uint32_t>(
            loadBytes(memoryAddress(*inst.mem()), 4));
        break;
      case Opcode::Lddf: {
        std::uint64_t v = loadBytes(memoryAddress(*inst.mem()), 8);
        state_.fpRegs[rd.index()] = static_cast<std::uint32_t>(v >> 32);
        state_.fpRegs[rd.index() + 1] = static_cast<std::uint32_t>(v);
        break;
      }
      case Opcode::Stf:
        storeBytes(memoryAddress(*inst.mem()),
                   state_.fpRegs[rs1.index()], 4);
        break;
      case Opcode::Stdf: {
        std::uint64_t v =
            (static_cast<std::uint64_t>(state_.fpRegs[rs1.index()]) << 32) |
            state_.fpRegs[rs1.index() + 1];
        storeBytes(memoryAddress(*inst.mem()), v, 8);
        break;
      }

      case Opcode::Fadds:
        writeFloat(state_, rd.index(),
                   readFloat(state_, rs1.index()) +
                       readFloat(state_, rs2.index()));
        break;
      case Opcode::Fsubs:
        writeFloat(state_, rd.index(),
                   readFloat(state_, rs1.index()) -
                       readFloat(state_, rs2.index()));
        break;
      case Opcode::Fmuls:
        writeFloat(state_, rd.index(),
                   readFloat(state_, rs1.index()) *
                       readFloat(state_, rs2.index()));
        break;
      case Opcode::Fdivs: {
        float d = readFloat(state_, rs2.index());
        writeFloat(state_, rd.index(),
                   readFloat(state_, rs1.index()) / (d == 0.0f ? 1.0f : d));
        break;
      }
      case Opcode::Faddd:
        writeDouble(state_, rd.index(),
                    readDouble(state_, rs1.index()) +
                        readDouble(state_, rs2.index()));
        break;
      case Opcode::Fsubd:
        writeDouble(state_, rd.index(),
                    readDouble(state_, rs1.index()) -
                        readDouble(state_, rs2.index()));
        break;
      case Opcode::Fmuld:
        writeDouble(state_, rd.index(),
                    readDouble(state_, rs1.index()) *
                        readDouble(state_, rs2.index()));
        break;
      case Opcode::Fdivd: {
        double d = readDouble(state_, rs2.index());
        writeDouble(state_, rd.index(),
                    readDouble(state_, rs1.index()) / (d == 0.0 ? 1.0 : d));
        break;
      }
      case Opcode::Fsqrts:
        writeFloat(state_, rd.index(),
                   std::sqrt(std::fabs(readFloat(state_, rs1.index()))));
        break;
      case Opcode::Fsqrtd:
        writeDouble(state_, rd.index(),
                    std::sqrt(std::fabs(readDouble(state_, rs1.index()))));
        break;
      case Opcode::Fmovs:
        state_.fpRegs[rd.index()] = state_.fpRegs[rs1.index()];
        break;
      case Opcode::Fnegs:
        writeFloat(state_, rd.index(), -readFloat(state_, rs1.index()));
        break;
      case Opcode::Fabss:
        writeFloat(state_, rd.index(),
                   std::fabs(readFloat(state_, rs1.index())));
        break;
      case Opcode::Fcmps: {
        float x = readFloat(state_, rs1.index());
        float y = readFloat(state_, rs2.index());
        state_.fcc = x < y ? -1 : (x > y ? 1 : (x == y ? 0 : 2));
        break;
      }
      case Opcode::Fcmpd: {
        double x = readDouble(state_, rs1.index());
        double y = readDouble(state_, rs2.index());
        state_.fcc = x < y ? -1 : (x > y ? 1 : (x == y ? 0 : 2));
        break;
      }
      case Opcode::Fitos:
        writeFloat(state_, rd.index(),
                   static_cast<float>(static_cast<std::int32_t>(
                       state_.fpRegs[rs1.index()])));
        break;
      case Opcode::Fitod:
        writeDouble(state_, rd.index(),
                    static_cast<double>(static_cast<std::int32_t>(
                        state_.fpRegs[rs1.index()])));
        break;
      case Opcode::Fstoi:
        state_.fpRegs[rd.index()] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(readFloat(state_, rs1.index())));
        break;
      case Opcode::Fdtoi:
        state_.fpRegs[rd.index()] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(readDouble(state_, rs1.index())));
        break;
      case Opcode::Fstod:
        writeDouble(state_, rd.index(),
                    static_cast<double>(readFloat(state_, rs1.index())));
        break;
      case Opcode::Fdtos:
        writeFloat(state_, rd.index(),
                   static_cast<float>(readDouble(state_, rs1.index())));
        break;

      case Opcode::Call:
        // Clobber the caller-saved registers deterministically (values
        // depend only on the call's program position, so any valid
        // schedule produces the same state).
        for (int i = 8; i <= 13; ++i)
            state_.intRegs[i] = static_cast<std::int64_t>(
                mix(seed_ ^ (inst.index() * 31ull + i)) & 0xffff);
        state_.intRegs[15] = static_cast<std::int64_t>(inst.index());
        break;
      case Opcode::Jmpl:
        set_reg(rd, static_cast<std::int64_t>(inst.index()));
        break;

      case Opcode::Save:
      case Opcode::Restore:
        if (rd.valid())
            set_reg(rd, a + (inst.usesImm() ? inst.imm() : reg(rs2)));
        break;

      default:
        // Branches and nop: no architectural effect within the block.
        break;
    }
}

ExecState
runBlock(const BlockView &block, const std::vector<std::uint32_t> &order,
         std::uint64_t seed)
{
    SCHED91_ASSERT(order.size() == block.size(), "order size mismatch");
    Executor exec(seed);
    for (std::uint32_t n : order)
        exec.execute(block.inst(n));
    return exec.state();
}

} // namespace sched91
