/**
 * @file
 * Functional executor: architectural-state semantics for basic blocks.
 *
 * Used by the property tests to verify that scheduling preserves
 * program semantics: a block is executed instruction by instruction in
 * original order and in scheduled order from the same deterministic
 * initial state, and the final states must match bit for bit.  Any
 * dependence the DAG builders fail to represent shows up as a state
 * divergence under some legal-looking reorder.
 *
 * The machine is a straight-line SPARC-like core: 32 64-bit integer
 * registers (%g0 hardwired to zero), 32 single-precision FP register
 * slots (doubles occupy even/odd pairs, even = high word), integer and
 * FP condition codes, %y, and a byte-addressed sparse memory whose
 * unwritten bytes read as a deterministic hash of their address.
 * Initial register values are seeded deterministically; %sp and %fp
 * point into a dedicated high address range disjoint from the range
 * symbol hashes map into, so the storage-class disambiguation the DAG
 * builders may apply is sound at runtime.
 */

#ifndef SCHED91_SIM_EXECUTOR_HH
#define SCHED91_SIM_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "dag/dag.hh"
#include "ir/instruction.hh"

namespace sched91
{

/** Integer condition codes. */
struct CondCodes
{
    bool n = false, z = false, v = false, c = false;
    bool operator==(const CondCodes &) const = default;
};

/** Complete architectural state. */
struct ExecState
{
    std::array<std::int64_t, 32> intRegs{};
    std::array<std::uint32_t, 32> fpRegs{};
    CondCodes icc;
    int fcc = 0; ///< -1 less, 0 equal, +1 greater, 2 unordered
    std::int64_t y = 0;
    std::map<std::uint64_t, std::uint8_t> memory; ///< written bytes only

    bool operator==(const ExecState &) const = default;
};

/** Straight-line functional interpreter. */
class Executor
{
  public:
    /** Initialize registers deterministically from @p seed. */
    explicit Executor(std::uint64_t seed);

    /** Execute one instruction. */
    void execute(const Instruction &inst);

    const ExecState &state() const { return state_; }

  private:
    std::uint64_t memoryAddress(const MemOperand &mem) const;
    std::uint64_t loadBytes(std::uint64_t addr, int width);
    void storeBytes(std::uint64_t addr, std::uint64_t value, int width);

    ExecState state_;
    std::uint64_t seed_;
};

/**
 * Execute the block in the given order (block-relative node ids) from
 * a fresh seeded state and return the final state.
 */
ExecState runBlock(const BlockView &block,
                   const std::vector<std::uint32_t> &order,
                   std::uint64_t seed);

} // namespace sched91

#endif // SCHED91_SIM_EXECUTOR_HH
