/**
 * @file
 * Block-lifetime bump allocator for the scheduling pipeline.
 *
 * Every basic block needs a burst of short-lived allocations — DAG arc
 * index lists, table-builder def/use lists, scheduler scratch — that
 * all die together when the block's schedule has been produced.  An
 * Arena turns those into pointer bumps within reused chunks: reset()
 * recycles all storage at once (retaining the chunks), so after the
 * first few blocks a worker stops touching the global heap entirely.
 *
 * ArenaAllocator is the std-allocator adapter.  It is deliberately
 * nullable: with no arena attached it degrades to plain new/delete, so
 * container types can be shared between arena-backed pipeline code and
 * ordinary callers (tests, single-block CLI commands) without template
 * plumbing.
 *
 * Lifetime rule: anything allocated from an arena must be destroyed
 * before the next reset().  The pipeline enforces this by resetting
 * only at block boundaries, when the previous block's DAG and scratch
 * are already gone (see docs/PERFORMANCE.md).
 */

#ifndef SCHED91_SUPPORT_ARENA_HH
#define SCHED91_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace sched91
{

/** Chunked bump allocator.  Not thread-safe; one per worker. */
class Arena
{
  public:
    static constexpr std::size_t kDefaultChunkBytes = 1 << 16;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
        : chunkBytes_(chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Aligned raw storage; never returns null (throws bad_alloc). */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
        if (p + bytes > limit_)
            return allocateSlow(bytes, align);
        cursor_ = p + bytes;
        bytesInUse_ += bytes;
        totalAllocated_ += bytes;
        return reinterpret_cast<void *>(p);
    }

    /** Uninitialized storage for @p n objects of type T. */
    template <typename T>
    T *
    allocateArray(std::size_t n)
    {
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Recycle every allocation at once.  Chunks are retained, so a
     * steady-state caller (one reset per block) stops allocating from
     * the heap after the high-water block has been seen.
     */
    void
    reset()
    {
        if (bytesInUse_ > highWater_)
            highWater_ = bytesInUse_;
        bytesInUse_ = 0;
        chunkIndex_ = 0;
        pendingAllocFailure_ = false;
        if (chunks_.empty()) {
            cursor_ = limit_ = 0;
            return;
        }
        cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[0].data.get());
        limit_ = cursor_ + chunks_[0].bytes;
    }

    /**
     * Fault injection (support/fault_inject.hh, alloc-fail): make the
     * next allocation throw std::bad_alloc from *inside* the arena —
     * the same unwind an exhausted heap would produce mid-build, which
     * is a different containment path than failing at the pipeline's
     * build boundary.  Retained chunks make "a new chunk is needed"
     * depend on which blocks this worker ran before, so firing there
     * would break the (seed, content) determinism contract; arming at
     * the block boundary and failing the first allocation keeps the
     * decision a pure function of the block.  One-shot: the throw (or
     * the next reset()) clears it and restores the arena to a clean
     * start-of-block state.
     */
    void
    armAllocFailure()
    {
        pendingAllocFailure_ = true;
        // Force even the fast path through allocateSlow, where the
        // armed flag is checked: zero hot-path cost when not armed.
        cursor_ = limit_ = 0;
    }

    /** Live bytes handed out since the last reset (without padding). */
    std::size_t bytesInUse() const { return bytesInUse_; }

    /** Cumulative bytes handed out over the arena's lifetime, across
     * resets (without padding).  Deterministic for a given block
     * sequence, so it can back `mem.*` counters. */
    std::size_t totalBytesAllocated() const { return totalAllocated_; }

    /** Largest bytesInUse() any single reset cycle (block) reached,
     * including the current one — the per-worker working-set peak. */
    std::size_t
    highWaterBytes() const
    {
        return bytesInUse_ > highWater_ ? bytesInUse_ : highWater_;
    }

    /** Total chunk storage owned by the arena. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.bytes;
        return total;
    }

    std::size_t numChunks() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t bytes = 0;
    };

    void *
    allocateSlow(std::size_t bytes, std::size_t align)
    {
        if (pendingAllocFailure_) {
            // armAllocFailure() zeroed the cursor to route the next
            // allocation here; restore the start-of-block state so the
            // degradation path can keep using the arena.
            pendingAllocFailure_ = false;
            chunkIndex_ = 0;
            if (chunks_.empty()) {
                cursor_ = limit_ = 0;
            } else {
                cursor_ = reinterpret_cast<std::uintptr_t>(
                    chunks_[0].data.get());
                limit_ = cursor_ + chunks_[0].bytes;
            }
            throw std::bad_alloc();
        }
        // Advance through retained chunks first; grow only when none
        // of them fits (doubling so chunk count stays logarithmic).
        while (chunkIndex_ + 1 < chunks_.size()) {
            ++chunkIndex_;
            const Chunk &c = chunks_[chunkIndex_];
            cursor_ = reinterpret_cast<std::uintptr_t>(c.data.get());
            limit_ = cursor_ + c.bytes;
            std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
            if (p + bytes <= limit_) {
                cursor_ = p + bytes;
                bytesInUse_ += bytes;
                totalAllocated_ += bytes;
                return reinterpret_cast<void *>(p);
            }
        }
        std::size_t want = bytes + align;
        std::size_t grown =
            chunks_.empty() ? chunkBytes_ : chunks_.back().bytes * 2;
        std::size_t size = want > grown ? want : grown;
        chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
        chunkIndex_ = chunks_.size() - 1;
        cursor_ =
            reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
        limit_ = cursor_ + size;
        std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
        cursor_ = p + bytes;
        bytesInUse_ += bytes;
        totalAllocated_ += bytes;
        return reinterpret_cast<void *>(p);
    }

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    std::size_t chunkIndex_ = 0;
    std::uintptr_t cursor_ = 0;
    std::uintptr_t limit_ = 0;
    std::size_t bytesInUse_ = 0;
    std::size_t totalAllocated_ = 0;
    std::size_t highWater_ = 0;
    bool pendingAllocFailure_ = false;
};

/**
 * std-allocator over an optional Arena.  A null arena falls back to
 * the global heap, so a default-constructed container behaves exactly
 * like one using std::allocator.  Deallocation into an arena is a
 * no-op (storage is reclaimed wholesale by Arena::reset()).
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (arena_)
            return arena_->allocateArray<T>(n);
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        if (!arena_)
            ::operator delete(p, std::align_val_t(alignof(T)));
    }

    Arena *arena() const { return arena_; }

    /** Copies keep the arena: they share the source's block lifetime. */
    ArenaAllocator
    select_on_container_copy_construction() const
    {
        return *this;
    }

    friend bool
    operator==(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return a.arena_ == b.arena_;
    }

    friend bool
    operator!=(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return !(a == b);
    }

  private:
    Arena *arena_ = nullptr;
};

/** Vector whose storage may come from a worker arena. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace sched91

#endif // SCHED91_SUPPORT_ARENA_HH
