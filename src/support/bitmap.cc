#include "support/bitmap.hh"

#include <bit>

namespace sched91
{

void
Bitmap::resize(std::size_t num_bits)
{
    if (num_bits <= numBits_)
        return;
    numBits_ = num_bits;
    words_.resize((num_bits + kBitsPerWord - 1) / kBitsPerWord, 0);
}

void
Bitmap::set(std::size_t idx)
{
    if (idx >= numBits_)
        resize(idx + 1);
    words_[idx / kBitsPerWord] |= std::uint64_t{1} << (idx % kBitsPerWord);
}

void
Bitmap::clear(std::size_t idx)
{
    if (idx >= numBits_)
        return;
    words_[idx / kBitsPerWord] &=
        ~(std::uint64_t{1} << (idx % kBitsPerWord));
}

bool
Bitmap::test(std::size_t idx) const
{
    if (idx >= numBits_)
        return false;
    return (words_[idx / kBitsPerWord] >>
            (idx % kBitsPerWord)) & std::uint64_t{1};
}

void
Bitmap::reset()
{
    std::fill(words_.begin(), words_.end(), 0);
}

void
Bitmap::orWith(const Bitmap &other)
{
    if (other.numBits_ > numBits_)
        resize(other.numBits_);
    for (std::size_t i = 0; i < other.words_.size(); ++i)
        words_[i] |= other.words_[i];
}

std::size_t
Bitmap::count() const
{
    std::size_t n = 0;
    for (std::uint64_t w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

unsigned
Bitmap::lowestBit(std::uint64_t word)
{
    return static_cast<unsigned>(std::countr_zero(word));
}

bool
Bitmap::none() const
{
    for (std::uint64_t w : words_)
        if (w)
            return false;
    return true;
}

} // namespace sched91
