/**
 * @file
 * Dynamically sized bit map used for DAG reachability tracking.
 *
 * The paper (Section 2) describes reachability bit maps with "one bit
 * position per node to indicate descendants"; the map for a node is
 * initialized so the node can reach itself, and arc insertion ORs the
 * child's map into the parent's.  #descendants is then the population
 * count minus one (Section 3).  This class provides exactly those
 * operations: test/set, whole-map OR, and popcount.
 */

#ifndef SCHED91_SUPPORT_BITMAP_HH
#define SCHED91_SUPPORT_BITMAP_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/arena.hh"

namespace sched91
{

/** Growable bit map with word-parallel OR and population count. */
class Bitmap
{
  public:
    Bitmap() = default;

    /** Construct with at least @p num_bits bits, all clear. */
    explicit Bitmap(std::size_t num_bits) { resize(num_bits); }

    /** Grow (never shrinks) so that bit indices < @p num_bits are valid. */
    void resize(std::size_t num_bits);

    /** Number of addressable bits. */
    std::size_t size() const { return numBits_; }

    /** Set bit @p idx (auto-grows). */
    void set(std::size_t idx);

    /** Clear bit @p idx; out-of-range indices are already clear. */
    void clear(std::size_t idx);

    /** Test bit @p idx; out-of-range indices read as false. */
    bool test(std::size_t idx) const;

    /** Clear every bit, keeping capacity. */
    void reset();

    /** this |= other (auto-grows to other's size). */
    void orWith(const Bitmap &other);

    /** Number of set bits. */
    std::size_t count() const;

    /** True when no bit is set. */
    bool none() const;

    /** Words backing the map (for tests / fast scans). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Invoke @p fn with the index of every set bit, ascending. */
    template <typename F>
    void
    forEachSet(F &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                unsigned b = lowestBit(bits);
                fn(w * kBitsPerWord + b);
                bits &= bits - 1;
            }
        }
    }

  private:
    static constexpr std::size_t kBitsPerWord = 64;

    /** Index of the lowest set bit of a nonzero word. */
    static unsigned lowestBit(std::uint64_t word);

    std::vector<std::uint64_t> words_;
    std::size_t numBits_ = 0;
};

/**
 * Read-only view of one fixed-width row inside a BitMatrix (or any
 * word array).  Same query surface as Bitmap — test / count /
 * forEachSet — but with no ownership and no growth.
 */
class ConstBitRow
{
  public:
    ConstBitRow() = default;

    ConstBitRow(const std::uint64_t *words, std::size_t num_bits)
        : words_(words), numBits_(num_bits)
    {
    }

    std::size_t size() const { return numBits_; }

    bool
    test(std::size_t idx) const
    {
        if (idx >= numBits_)
            return false;
        return (words_[idx / 64] >> (idx % 64)) & 1u;
    }

    /** Number of set bits (word-parallel popcount). */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (std::size_t w = 0; w < numWords(); ++w)
            n += static_cast<std::size_t>(std::popcount(words_[w]));
        return n;
    }

    bool
    none() const
    {
        for (std::size_t w = 0; w < numWords(); ++w)
            if (words_[w])
                return false;
        return true;
    }

    const std::uint64_t *words() const { return words_; }
    std::size_t numWords() const { return (numBits_ + 63) / 64; }

    /** Invoke @p fn with the index of every set bit, ascending. */
    template <typename F>
    void
    forEachSet(F &&fn) const
    {
        for (std::size_t w = 0; w < numWords(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                unsigned b =
                    static_cast<unsigned>(std::countr_zero(bits));
                fn(w * 64 + b);
                bits &= bits - 1;
            }
        }
    }

  protected:
    const std::uint64_t *words_ = nullptr;
    std::size_t numBits_ = 0;
};

/** Mutable row view: adds set() and word-granular OR-merge. */
class BitRow : public ConstBitRow
{
  public:
    BitRow() = default;

    BitRow(std::uint64_t *words, std::size_t num_bits)
        : ConstBitRow(words, num_bits)
    {
    }

    void
    set(std::size_t idx)
    {
        wordsMutable()[idx / 64] |= std::uint64_t{1} << (idx % 64);
    }

    /** this |= other over the common word span (one dense loop). */
    void
    orWith(ConstBitRow other)
    {
        std::size_t n = std::min(numWords(), other.numWords());
        std::uint64_t *dst = wordsMutable();
        const std::uint64_t *src = other.words();
        for (std::size_t w = 0; w < n; ++w)
            dst[w] |= src[w];
    }

    std::uint64_t *
    wordsMutable()
    {
        return const_cast<std::uint64_t *>(words_);
    }
};

/**
 * Dense rows × bits bit matrix in one contiguous slab — the DAG's
 * reachability maps live here so the per-arc OR-merge and the
 * #descendants popcount stream one allocation instead of chasing
 * per-node Bitmap headers.  Optionally arena-backed.
 */
class BitMatrix
{
  public:
    BitMatrix() = default;

    explicit BitMatrix(Arena *arena)
        : words_(ArenaAllocator<std::uint64_t>(arena))
    {
    }

    /** Resize to @p rows rows of @p bits bits, all clear. */
    void
    reset(std::size_t rows, std::size_t bits)
    {
        rows_ = rows;
        numBits_ = bits;
        rowWords_ = (bits + 63) / 64;
        words_.assign(rows_ * rowWords_, 0);
    }

    std::size_t rows() const { return rows_; }
    std::size_t bits() const { return numBits_; }
    std::size_t rowWords() const { return rowWords_; }
    bool empty() const { return rows_ == 0; }

    BitRow
    row(std::size_t r)
    {
        return BitRow(words_.data() + r * rowWords_, numBits_);
    }

    ConstBitRow
    row(std::size_t r) const
    {
        return ConstBitRow(words_.data() + r * rowWords_, numBits_);
    }

    /** row(dst) |= row(src): word loop within the slab. */
    void
    orRows(std::size_t dst, std::size_t src)
    {
        std::uint64_t *d = words_.data() + dst * rowWords_;
        const std::uint64_t *s = words_.data() + src * rowWords_;
        for (std::size_t w = 0; w < rowWords_; ++w)
            d[w] |= s[w];
    }

  private:
    ArenaVector<std::uint64_t> words_;
    std::size_t rows_ = 0;
    std::size_t numBits_ = 0;
    std::size_t rowWords_ = 0;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_BITMAP_HH
