/**
 * @file
 * Dynamically sized bit map used for DAG reachability tracking.
 *
 * The paper (Section 2) describes reachability bit maps with "one bit
 * position per node to indicate descendants"; the map for a node is
 * initialized so the node can reach itself, and arc insertion ORs the
 * child's map into the parent's.  #descendants is then the population
 * count minus one (Section 3).  This class provides exactly those
 * operations: test/set, whole-map OR, and popcount.
 */

#ifndef SCHED91_SUPPORT_BITMAP_HH
#define SCHED91_SUPPORT_BITMAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sched91
{

/** Growable bit map with word-parallel OR and population count. */
class Bitmap
{
  public:
    Bitmap() = default;

    /** Construct with at least @p num_bits bits, all clear. */
    explicit Bitmap(std::size_t num_bits) { resize(num_bits); }

    /** Grow (never shrinks) so that bit indices < @p num_bits are valid. */
    void resize(std::size_t num_bits);

    /** Number of addressable bits. */
    std::size_t size() const { return numBits_; }

    /** Set bit @p idx (auto-grows). */
    void set(std::size_t idx);

    /** Clear bit @p idx; out-of-range indices are already clear. */
    void clear(std::size_t idx);

    /** Test bit @p idx; out-of-range indices read as false. */
    bool test(std::size_t idx) const;

    /** Clear every bit, keeping capacity. */
    void reset();

    /** this |= other (auto-grows to other's size). */
    void orWith(const Bitmap &other);

    /** Number of set bits. */
    std::size_t count() const;

    /** True when no bit is set. */
    bool none() const;

    /** Words backing the map (for tests / fast scans). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Invoke @p fn with the index of every set bit, ascending. */
    template <typename F>
    void
    forEachSet(F &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                unsigned b = lowestBit(bits);
                fn(w * kBitsPerWord + b);
                bits &= bits - 1;
            }
        }
    }

  private:
    static constexpr std::size_t kBitsPerWord = 64;

    /** Index of the lowest set bit of a nonzero word. */
    static unsigned lowestBit(std::uint64_t word);

    std::vector<std::uint64_t> words_;
    std::size_t numBits_ = 0;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_BITMAP_HH
