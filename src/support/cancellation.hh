/**
 * @file
 * Cooperative cancellation for bounded scheduling work.
 *
 * The per-block time budget (`--max-block-seconds`) originally fired
 * only at phase boundaries, so one pathological phase — an n**2 build
 * over a huge block, a scheduler scan over a pathological ready list —
 * could blow arbitrarily far past the budget before anyone noticed.  A
 * CancellationToken closes that hole: the budget owner arms a token
 * with a deadline (or cancels it manually) and the hot loops poll it.
 *
 * poll() is cheap enough for inner loops: a relaxed atomic load per
 * call, with the wall-clock deadline checked only once every
 * kPollStride calls.  A token is armed by one owner and polled from
 * the single worker running that block; requestCancel() may be called
 * from any thread (tests cancel from outside).
 */

#ifndef SCHED91_SUPPORT_CANCELLATION_HH
#define SCHED91_SUPPORT_CANCELLATION_HH

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace sched91
{

/** Thrown by CancellationToken::poll() once the token is cancelled.
 * Deliberately NOT a FatalError/PanicError: the pipeline maps it onto
 * the budget rung of the degradation ladder, never onto a fault. */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One cancellation scope: manual trigger plus optional deadline. */
class CancellationToken
{
  public:
    CancellationToken() = default;

    /** Token that self-cancels once @p seconds of wall-clock elapse
     * (measured from construction).  Non-positive budgets cancel on
     * the first deadline check.  (The atomic member makes the token
     * immovable: construct it in place — emplace / prvalue init.) */
    explicit CancellationToken(double budgetSeconds)
        : hasDeadline_(true),
          deadline_(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(budgetSeconds)))
    {
    }

    /** Factory spelling of the budget constructor. */
    static CancellationToken
    withBudget(double seconds)
    {
        return CancellationToken(seconds);
    }

    /** Trigger cancellation from any thread. */
    void
    requestCancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** Has the token fired (manually or by deadline)?  Checks the
     * deadline every call — use poll() in hot loops. */
    bool
    cancelled() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        if (hasDeadline_ && Clock::now() >= deadline_) {
            cancelled_.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /**
     * Inner-loop check: throws CancelledError once cancelled.  The
     * deadline clock is consulted only every kPollStride calls, so the
     * steady-state cost is one relaxed load and one counter bump.
     */
    void
    poll() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            throwCancelled();
        if (hasDeadline_ && ++ticks_ >= kPollStride) {
            ticks_ = 0;
            if (Clock::now() >= deadline_) {
                cancelled_.store(true, std::memory_order_relaxed);
                throwCancelled();
            }
        }
    }

    /** What the thrown CancelledError says. */
    void setReason(std::string reason) { reason_ = std::move(reason); }

  private:
    using Clock = std::chrono::steady_clock;
    static constexpr unsigned kPollStride = 256;

    [[noreturn]] void
    throwCancelled() const
    {
        throw CancelledError(reason_.empty() ? "work cancelled"
                                             : reason_);
    }

    mutable std::atomic<bool> cancelled_{false};
    bool hasDeadline_ = false;
    Clock::time_point deadline_{};
    std::string reason_;
    /** Poll-stride counter; touched only by the polling thread. */
    mutable unsigned ticks_ = 0;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_CANCELLATION_HH
