/**
 * @file
 * d-ary max-heap over externally owned storage.
 *
 * The list scheduler's ready list is consumed by repeated extract-max
 * under a strict total order (ranked heuristic tuple, then original
 * program order).  A d-ary layout (d = 4 by default) trades slightly
 * more sift-down comparisons for a much shallower tree and cache-line
 * friendly child groups — the classic choice when pops dominate and
 * the element type is a small index.
 *
 * The comparator defines a *strict total order* ("a outranks b"); with
 * that, the pop sequence is unique and independent of push order,
 * which is what lets the scheduler swap its O(n) scan for the heap
 * without changing a single schedule.
 */

#ifndef SCHED91_SUPPORT_DARY_HEAP_HH
#define SCHED91_SUPPORT_DARY_HEAP_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace sched91
{

template <typename T, typename Outranks, unsigned D = 4>
class DaryHeap
{
    static_assert(D >= 2, "a heap needs at least two children per node");

  public:
    /**
     * @p outranks(a, b) — true when a must pop before b.  When
     * @p storage is non-null the heap borrows it (cleared on entry) so
     * callers can reuse capacity across runs.
     */
    explicit DaryHeap(Outranks outranks, std::vector<T> *storage = nullptr)
        : heap_(storage ? storage : &own_), outranks_(std::move(outranks))
    {
        heap_->clear();
    }

    bool empty() const { return heap_->empty(); }
    std::size_t size() const { return heap_->size(); }

    void
    push(T v)
    {
        heap_->push_back(std::move(v));
        siftUp(heap_->size() - 1);
    }

    /** Remove and return the top (maximum) element. */
    T
    pop()
    {
        std::vector<T> &h = *heap_;
        T top = std::move(h.front());
        h.front() = std::move(h.back());
        h.pop_back();
        if (!h.empty())
            siftDown(0);
        return top;
    }

  private:
    void
    siftUp(std::size_t i)
    {
        std::vector<T> &h = *heap_;
        while (i > 0) {
            std::size_t parent = (i - 1) / D;
            if (!outranks_(h[i], h[parent]))
                return;
            std::swap(h[i], h[parent]);
            i = parent;
        }
    }

    void
    siftDown(std::size_t i)
    {
        std::vector<T> &h = *heap_;
        const std::size_t n = h.size();
        for (;;) {
            std::size_t first = i * D + 1;
            if (first >= n)
                return;
            std::size_t best = first;
            std::size_t last = first + D < n ? first + D : n;
            for (std::size_t c = first + 1; c < last; ++c)
                if (outranks_(h[c], h[best]))
                    best = c;
            if (!outranks_(h[best], h[i]))
                return;
            std::swap(h[i], h[best]);
            i = best;
        }
    }

    std::vector<T> own_;
    std::vector<T> *heap_;
    Outranks outranks_;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_DARY_HEAP_HH
