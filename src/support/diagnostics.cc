#include "support/diagnostics.hh"

#include <sstream>
#include <utility>

#include "support/log.hh"
#include "support/logging.hh"

namespace sched91
{

std::string_view
severityName(Severity sev)
{
    return sev == Severity::Error ? "error" : "warning";
}

std::string
Diag::render() const
{
    std::ostringstream os;
    os << (file.empty() ? "<input>" : file);
    if (line > 0) {
        os << ':' << line;
        if (col > 0)
            os << ':' << col;
    }
    os << ": " << severityName(severity) << ": " << message;
    return os.str();
}

void
DiagnosticEngine::report(Diag d)
{
    if (d.severity == Severity::Error)
        ++errors_;
    else
        ++warnings_;
    diags_.push_back(std::move(d));

    const Diag &stored = diags_.back();
    if (opts_.strict && stored.severity == Severity::Error)
        throw FatalError(stored.render());
    if (opts_.maxErrors != 0 && errors_ > opts_.maxErrors) {
        fatal(stored.file.empty() ? "<input>" : stored.file,
              ": too many errors (", errors_, "; cap ", opts_.maxErrors,
              "), giving up");
    }
    if (opts_.echoToLog)
        log::write(stored.severity == Severity::Error ? log::Level::Error
                                                      : log::Level::Warn,
                   stored.render());
}

void
DiagnosticEngine::error(std::string_view file, int line, int col,
                        std::string message)
{
    Diag d;
    d.severity = Severity::Error;
    d.file = std::string(file);
    d.line = line;
    d.col = col;
    d.message = std::move(message);
    report(std::move(d));
}

void
DiagnosticEngine::warning(std::string_view file, int line, int col,
                          std::string message)
{
    Diag d;
    d.severity = Severity::Warning;
    d.file = std::string(file);
    d.line = line;
    d.col = col;
    d.message = std::move(message);
    report(std::move(d));
}

std::string
DiagnosticEngine::render() const
{
    std::string out;
    for (const Diag &d : diags_) {
        out += d.render();
        out += '\n';
    }
    return out;
}

} // namespace sched91
