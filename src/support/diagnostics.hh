/**
 * @file
 * Source-located diagnostics: the robustness layer's answer to
 * `fatal()`-on-first-error front ends.
 *
 * A Diag is one severity-tagged, source-located record
 * (`file:line:col: error: message`, the GCC/Clang convention, so
 * editors and CI log scrapers parse it for free).  A DiagnosticEngine
 * collects them with two policies:
 *
 *  - lenient (default): record the diagnostic and return, letting the
 *    producer recover (the assembly parser skips the malformed
 *    instruction and keeps parsing) — bounded by an error cap so a
 *    binary file fed in by accident cannot flood the terminal;
 *  - strict: rethrow every error as FatalError immediately,
 *    restoring the historical fail-fast behaviour (`--strict`).
 *
 * The engine is deliberately independent of the observability layer;
 * producers that want `robust.*` counters increment them at report
 * sites (see ir/parser.cc).
 */

#ifndef SCHED91_SUPPORT_DIAGNOSTICS_HH
#define SCHED91_SUPPORT_DIAGNOSTICS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sched91
{

/** Diagnostic severity; only Error counts toward the cap. */
enum class Severity : std::uint8_t
{
    Warning,
    Error,
};

/** "warning" / "error". */
std::string_view severityName(Severity sev);

/** One source-located diagnostic record. */
struct Diag
{
    Severity severity = Severity::Error;
    std::string file;    ///< input name; "<input>" when unknown
    int line = 0;        ///< 1-based; 0 = whole-file diagnostic
    int col = 0;         ///< 1-based; 0 = whole-line diagnostic
    std::string message;

    /** `file:line:col: severity: message` (location parts present
     * only when known). */
    std::string render() const;
};

/** Collects diagnostics under a lenient or strict policy. */
class DiagnosticEngine
{
  public:
    struct Options
    {
        /** Throw FatalError on the first error instead of recovering. */
        bool strict = false;

        /** Lenient-mode error cap: once more than this many errors
         * are recorded the engine gives up with FatalError ("too many
         * errors").  0 = unlimited. */
        std::size_t maxErrors = 64;

        /** Forward each recovered (non-throwing) diagnostic to the
         * leveled logger (support/log.hh) as it is reported: errors at
         * Error, warnings at Warn.  Diagnostics that throw are not
         * echoed — the catch site prints the carried rendering. */
        bool echoToLog = false;
    };

    DiagnosticEngine() = default;
    explicit DiagnosticEngine(Options opts) : opts_(opts) {}

    /**
     * Record one diagnostic.  Throws FatalError (carrying the
     * rendered diagnostic) when strict and @p d is an error, or when
     * the error cap is exceeded; otherwise returns so the caller can
     * recover.
     */
    void report(Diag d);

    /** Convenience: report an error at file:line:col. */
    void error(std::string_view file, int line, int col,
               std::string message);

    /** Convenience: report a warning at file:line:col. */
    void warning(std::string_view file, int line, int col,
                 std::string message);

    const std::vector<Diag> &diags() const { return diags_; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    bool hasErrors() const { return errors_ != 0; }
    bool strict() const { return opts_.strict; }

    /** Every recorded diagnostic, rendered one per line. */
    std::string render() const;

  private:
    Options opts_;
    std::vector<Diag> diags_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
};

} // namespace sched91

#endif // SCHED91_SUPPORT_DIAGNOSTICS_HH
