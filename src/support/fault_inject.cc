#include "support/fault_inject.hh"

#include <cstdlib>
#include <sstream>

#include "obs/events.hh"
#include "support/logging.hh"
#include "support/string_util.hh"

namespace sched91::fault
{

namespace
{

Config g_config;

/** splitmix64: the repo's standard cheap mixer (cf. support/prng.hh). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::string_view
pointName(Point p)
{
    switch (p) {
    case Point::BuilderThrow:
        return "builder-throw";
    case Point::VerifierReject:
        return "verifier-reject";
    case Point::SlowBlock:
        return "slow-block";
    case Point::AllocFail:
        return "alloc-fail";
    case Point::CrashSegv:
        return "crash-segv";
    case Point::CrashAbort:
        return "crash-abort";
    case Point::SpinForever:
        return "spin-forever";
    case Point::Count_:
        break;
    }
    return "?";
}

Config
parseSpec(std::string_view spec)
{
    Config config;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string_view token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        std::size_t eq = token.find('=');
        if (eq == std::string_view::npos)
            fatal("fault-inject: token '", std::string(token),
                  "' is not key=value");
        std::string key(token.substr(0, eq));
        std::string value(token.substr(eq + 1));
        if (key == "seed") {
            config.seed = std::strtoull(value.c_str(), nullptr, 10);
            continue;
        }
        if (key == "slow-ms") {
            config.slowBlockMs = std::atoi(value.c_str());
            if (config.slowBlockMs < 0)
                fatal("fault-inject: slow-ms must be >= 0");
            continue;
        }
        bool matched = false;
        for (std::size_t i = 0; i < kNumPoints; ++i) {
            if (pointName(static_cast<Point>(i)) == key) {
                double rate = std::atof(value.c_str());
                if (rate < 0.0 || rate > 1.0)
                    fatal("fault-inject: rate for '", key,
                          "' must be in [0, 1], got '", value, "'");
                config.rate[i] = rate;
                matched = true;
                break;
            }
        }
        if (!matched)
            fatal("fault-inject: unknown key '", key,
                  "' (expected seed, slow-ms, builder-throw, "
                  "verifier-reject, slow-block, alloc-fail, "
                  "crash-segv, crash-abort, or spin-forever)");
    }
    return config;
}

void
configure(const Config &config)
{
    g_config = config;
    bool any = false;
    for (double r : config.rate)
        any = any || r > 0.0;
    enabledFlag().store(any, std::memory_order_relaxed);
}

void
reset()
{
    enabledFlag().store(false, std::memory_order_relaxed);
    g_config = Config{};
}

const Config &
activeConfig()
{
    return g_config;
}

bool
shouldFire(Point point, std::uint64_t key, std::uint64_t salt)
{
    if (!enabled())
        return false;
    const double rate =
        g_config.rate[static_cast<std::size_t>(point)];
    if (rate <= 0.0)
        return false;
    std::uint64_t h = mix64(g_config.seed +
                            0x100001b3ULL *
                                (static_cast<std::uint64_t>(point) + 1));
    h = mix64(h ^ key);
    h = mix64(h ^ (salt * 0x9e3779b97f4a7c15ULL));
    // 53 uniform bits -> [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= rate)
        return false;
    obs::ev::faultInjected.inc();
    return true;
}

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
specString(const Config &config)
{
    std::ostringstream os;
    os << "seed=" << config.seed;
    for (std::size_t i = 0; i < kNumPoints; ++i)
        if (config.rate[i] > 0.0)
            os << ',' << pointName(static_cast<Point>(i)) << '='
               << config.rate[i];
    if (config.slowBlockMs != Config{}.slowBlockMs)
        os << ",slow-ms=" << config.slowBlockMs;
    return os.str();
}

} // namespace sched91::fault
